// wave-domain: pcie
// wave-shared(the lease is fed by the NIC-side agent and expired by host-side fallback logic; both shards read the deadline)
#include "wave/watchdog.h"

#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/trace.h"

namespace wave {

Watchdog::Watchdog(sim::Simulator& sim, sim::DurationNs timeout,
                   sim::DurationNs check_interval,
                   std::function<void()> on_expire)
    : sim_(sim),
      timeout_(timeout),
      check_interval_(check_interval),
      on_expire_(std::move(on_expire))
{
}

void
Watchdog::Arm()
{
    ++generation_;
    armed_ = true;
    expired_ = false;
    last_decision_ = sim_.Now();
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnWatchdogArmed(this, "Watchdog::Arm");
        }
    });
    sim_.Spawn(Monitor());
}

void
Watchdog::NoteDecision()
{
    last_decision_ = sim_.Now();
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnWatchdogFed(this, "Watchdog::NoteDecision");
        }
    });
}

void
Watchdog::Disarm()
{
    ++generation_;
    armed_ = false;
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the watchdog is owned by the runtime/enclave for the whole simulator run)
sim::Task<>
Watchdog::Monitor()
{
    const std::uint64_t my_generation = generation_;
    while (armed_ && generation_ == my_generation) {
        co_await sim_.Delay(check_interval_);
        if (!armed_ || generation_ != my_generation) {
            co_return;  // disarmed or re-armed while we slept
        }
        if (sim_.Now() - last_decision_ > timeout_) {
            expired_ = true;
            armed_ = false;
            // Record the expiry before on_expire_() so a synchronous
            // restart-and-rearm reaction leaves the shadow armed again.
            WAVE_CHECK_HOOK({
                if (protocol_ != nullptr) {
                    protocol_->OnWatchdogExpired(this,
                                                 "Watchdog::Monitor");
                }
            });
            WAVE_TRACE_EVENT(&sim_, "watchdog",
                             "expired: no decision for %llu ns",
                             static_cast<unsigned long long>(
                                 (sim_.Now() - last_decision_).ns()));
            on_expire_();
            co_return;
        }
    }
}

}  // namespace wave
