/**
 * @file
 * Transaction endpoints (the TXN_* half of Table 1).
 *
 * Agents stage decisions locally with TxnCreate() and publish a batch
 * with TxnsCommit(), optionally kicking the target host core with an
 * MSI-X. The host pulls decisions with PollTxns() (prefetching them
 * first via PrefetchTxns() to hide the PCIe read, §5.4), attempts the
 * atomic commit against live kernel state, and reports each result with
 * SetTxnsOutcomes(); the agent observes results via PollTxnsOutcomes().
 *
 * The atomic-commit guarantee itself lives with the kernel subsystem
 * (e.g. ghost::KernelSched checks that the scheduled thread is still
 * runnable); Wave transports the decision and its outcome.
 */
// wave-domain: pcie
// wave-shared(transaction slots are written by the host endpoint and committed by the NIC endpoint; slot lifecycle is the cross-shard protocol the checkers watch)
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "channel/mmio_queue.h"
#include "pcie/msix.h"
#include "sim/task.h"
#include "wave/api.h"

namespace wave::check {
class ProtocolChecker;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave {

/** A decision delivered to the host: txn id + subsystem payload. */
struct HostTxn {
    api::TxnId id;
    api::Bytes payload;
};

/** Computes queue payload sizes for a given inner decision size. */
struct TxnWire {
    static constexpr std::size_t kHeaderSize = sizeof(api::TxnId);
    static constexpr std::size_t kOutcomeSize = 16;  // id + status + pad

    static constexpr std::size_t
    DecisionPayloadSize(std::size_t inner)
    {
        return kHeaderSize + inner;
    }
};

/** Agent-side transaction endpoint over a NIC->host decision queue. */
class NicTxnEndpoint {
  public:
    /**
     * @param decisions NIC producer of the decision queue.
     * @param outcomes NIC consumer of the outcome queue.
     * @param msix optional vector to kick the host core; may be null
     *        for polled queues (the RPC stack skips the MSI-X, §4.3).
     */
    NicTxnEndpoint(channel::NicProducer& decisions,
                   channel::NicConsumer& outcomes,
                   pcie::MsiXVector* msix);

    /** Stages a decision locally; returns its transaction id. */
    api::TxnId TxnCreate(api::Bytes payload);

    /**
     * Publishes all staged transactions, in creation order, and
     * optionally sends the MSI-X. Returns how many were enqueued
     * (staged txns that did not fit remain staged).
     */
    sim::Task<std::size_t> TxnsCommit(bool send_msix);

    /** Drains up to @p max outcome records reported by the host. */
    sim::Task<std::vector<api::TxnOutcome>> PollTxnsOutcomes(
        std::size_t max);

    std::size_t StagedCount() const { return staged_.size(); }

    /**
     * Attaches the protocol state-machine verifier. The lifecycle
     * scope is the shared decision-queue storage, so the host endpoint
     * of the same channel resolves to the same scope.
     */
    void AttachProtocol(check::ProtocolChecker* protocol)
    {
        protocol_ = protocol;
    }

    /**
     * Attaches the fault injector. During a double-commit-bug window
     * TxnsCommit() re-publishes the first record it just sent under
     * the same transaction id — the deliberate protocol violation the
     * fuzz rig's seeded-bug demo must detect and shrink to.
     */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }

  private:
    channel::NicProducer& decisions_;
    channel::NicConsumer& outcomes_;
    pcie::MsiXVector* msix_;
    api::TxnId next_id_ = 1;
    std::vector<api::Bytes> staged_;  ///< already framed with txn ids
    std::vector<api::TxnId> staged_ids_;  ///< parallel to staged_
    check::ProtocolChecker* protocol_ = nullptr;
    sim::inject::FaultInjector* injector_ = nullptr;
};

/** Host-side transaction endpoint. */
class HostTxnEndpoint {
  public:
    HostTxnEndpoint(channel::HostConsumer& decisions,
                    channel::HostProducer& outcomes,
                    pcie::MsiXVector* msix);

    /**
     * Next pending transaction, if any.
     *
     * @param flush_first run the software-coherence flush before the
     *        read (required when new data may have arrived unprompted;
     *        unnecessary right after a prefetched hit).
     */
    sim::Task<std::optional<HostTxn>> PollTxns(bool flush_first);

    /** Prefetches the next decision slot (PREFETCH_TXNS, §5.4). */
    sim::Task<> PrefetchTxns();

    /** Flushes the next decision slot (software coherence on MSI-X). */
    sim::Task<> FlushTxns();

    /** Reports commit outcomes back to the agent. */
    sim::Task<> SetTxnsOutcomes(const std::vector<api::TxnOutcome>& outs);

    /** Suspends until the agent's MSI-X arrives (requires a vector). */
    sim::Task<> WaitForKick();

    /** Consumes a pending kick without blocking. */
    bool ConsumeKick();

    /** Attaches the protocol verifier (see NicTxnEndpoint). */
    void AttachProtocol(check::ProtocolChecker* protocol)
    {
        protocol_ = protocol;
    }

  private:
    channel::HostConsumer& decisions_;
    channel::HostProducer& outcomes_;
    pcie::MsiXVector* msix_;
    check::ProtocolChecker* protocol_ = nullptr;
};

}  // namespace wave
