/**
 * @file
 * Coherent shared-memory queue — the on-host baseline transport.
 *
 * ghOSt, Snap, and the other userspace resource-management systems in
 * §2.3 communicate over cache-coherent shared memory. This queue models
 * that path: entries move through host DRAM with cross-core cache-miss
 * costs (tens of ns), not PCIe costs. The apples-to-apples experiments
 * in §7 compare system software running over this queue (on-host)
 * against the same software over Wave's PCIe queues (offloaded).
 */
// wave-domain: pcie
// wave-shared(host-memory message ring written by one shard and polled by the other; the Wave one-way host-to-NIC flow crosses here)
// wave-hot
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "check/coherence.h"
#include "check/hb.h"
#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/actor.h"
#include "sim/fifo_ring.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace wave {

/** Cross-core shared-memory access costs. */
struct ShmCosts {
    /** Producer: write one entry + its flag (stores into own L1/L2). */
    sim::DurationNs write_entry_ns = 30;

    /** Consumer: read one entry across the LLC (typically a C2C miss). */
    sim::DurationNs read_entry_ns = 45;

    /** Consumer: poll an empty flag (also a coherence miss, often). */
    sim::DurationNs empty_poll_ns = 25;
};

/** Bounded SPSC queue over coherent host shared memory. */
class ShmQueue {
  public:
    ShmQueue(sim::Simulator& sim, std::size_t capacity,
             ShmCosts costs = {})
        : sim_(sim), capacity_(capacity), costs_(costs), items_(capacity)
    {
    }

    /** Enqueues a batch; returns how many fit. */
    // wave-lifetime(caller-awaits)
    sim::Task<std::size_t>
    Send(const std::vector<std::vector<std::byte>>& messages)
    {
        std::size_t sent = 0;
        for (const auto& message : messages) {
            if (items_.Size() >= capacity_) break;
            co_await sim_.Delay(costs_.write_entry_ns);
            WAVE_CHECK_HOOK({
                if (checker_ != nullptr) {
                    checker_->OnShmAccess(message.size());
                }
                // Entries never alias (absolute index), so each gets
                // its own shadow line; the push is the release.
                if (hb_ != nullptr) {
                    hb_->OnAccess(producer_actor_, this,
                                  sent_ * check::HbRaceDetector::kLineSize,
                                  check::HbRaceDetector::kLineSize,
                                  /*is_write=*/true, "ShmQueue::Send");
                    hb_->OnRelease(producer_actor_, this, sent_);
                }
                if (protocol_ != nullptr) {
                    protocol_->OnStreamSend(this, sent_,
                                            check::Domain::kHost,
                                            "ShmQueue::Send");
                }
            });
            items_.PushBack(message);
            ++sent_;
            ++sent;
        }
        co_return sent;
    }

    /** Dequeues the next entry if present. */
    sim::Task<std::optional<std::vector<std::byte>>>
    Poll()
    {
        if (items_.Empty()) {
            co_await sim_.Delay(costs_.empty_poll_ns);
            co_return std::nullopt;
        }
        co_await sim_.Delay(costs_.read_entry_ns);
        auto out = items_.PopFront();
        WAVE_CHECK_HOOK({
            if (checker_ != nullptr) {
                checker_->OnShmAccess(out.size());
            }
            if (hb_ != nullptr) {
                hb_->OnAcquire(consumer_actor_, this, received_);
                hb_->OnAccess(consumer_actor_, this,
                              received_ * check::HbRaceDetector::kLineSize,
                              check::HbRaceDetector::kLineSize,
                              /*is_write=*/false, "ShmQueue::Poll");
            }
            if (protocol_ != nullptr) {
                protocol_->OnStreamRecv(this, received_,
                                        check::Domain::kHost,
                                        "ShmQueue::Poll");
            }
        });
        ++received_;
        co_return out;
    }

    std::size_t Size() const { return items_.Size(); }

    /**
     * Attaches the wave::check checker. Coherent shared memory cannot
     * race across the PCIe clock domains, so traffic is only counted —
     * it shows up in CheckerStats::shm_accesses, confirming a workload
     * exercised the on-host path.
     */
    void AttachChecker(check::CoherenceChecker* checker)
    {
        checker_ = checker;
    }

    /**
     * Attaches the protocol/HB checkers. The queue is SPSC by design;
     * each side is bound to one actor. Callers with several producing
     * contexts serialized by a lock bind them as one actor (a
     * documented over-approximation, see docs/checker.md).
     */
    void
    BindCheckers(check::HbRaceDetector* hb,
                 check::ProtocolChecker* protocol,
                 sim::ActorId producer_actor, sim::ActorId consumer_actor)
    {
        hb_ = hb;
        protocol_ = protocol;
        producer_actor_ = producer_actor;
        consumer_actor_ = consumer_actor;
    }

    /** Entries enqueued / dequeued over the queue's lifetime. */
    std::uint64_t Enqueued() const { return sent_; }
    std::uint64_t Consumed() const { return received_; }

  private:
    sim::Simulator& sim_;
    std::size_t capacity_;
    ShmCosts costs_;
    sim::FifoRing<std::vector<std::byte>> items_;
    std::uint64_t sent_ = 0;      ///< absolute seqnum of next enqueue
    std::uint64_t received_ = 0;  ///< absolute seqnum of next dequeue
    check::CoherenceChecker* checker_ = nullptr;
    check::HbRaceDetector* hb_ = nullptr;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::ActorId producer_actor_ = sim::kNoActor;
    sim::ActorId consumer_actor_ = sim::kNoActor;
};

}  // namespace wave
