/**
 * @file
 * The Wave runtime: queue lifecycle, agent lifecycle, NIC DRAM.
 *
 * One WaveRuntime instance per simulated machine. It owns the MMIO-
 * exposed NIC DRAM window and the DMA engine, allocates queue storage
 * (CREATE_QUEUE / DESTROY_QUEUE), builds host/NIC endpoint pairs with
 * PTE types chosen from the active OptimizationConfig (SET_QUEUE_TYPE),
 * allocates MSI-X vectors, and runs agents on SmartNIC cores
 * (START_WAVE_AGENT / KILL_WAVE_AGENT).
 */
// wave-domain: pcie
// wave-shared(the runtime owns both seam endpoints and registers actors on both shards; its queues are exactly the state a parallel executor must synchronize on)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "channel/dma_queue.h"
#include "channel/mmio_queue.h"
#include "machine/machine.h"
#include "pcie/dma.h"
#include "pcie/mmio.h"
#include "pcie/msix.h"
#include "sim/simulator.h"
#include "wave/api.h"

namespace wave::check {
class CoherenceChecker;
class HbRaceDetector;
class ProtocolChecker;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave {

/** A host->NIC MMIO message channel (SEND_MESSAGES / POLL_MESSAGES). */
struct HostToNicChannel {
    std::unique_ptr<channel::MmioQueue> storage;
    std::unique_ptr<channel::HostProducer> host;
    std::unique_ptr<channel::NicConsumer> nic;
};

/** A NIC->host MMIO decision channel (TXNS_COMMIT / POLL_TXNS). */
struct NicToHostChannel {
    std::unique_ptr<channel::MmioQueue> storage;
    std::unique_ptr<channel::NicProducer> nic;
    std::unique_ptr<channel::HostConsumer> host;
};

/** A userspace system-software agent running on a SmartNIC core. */
class Agent {
  public:
    virtual ~Agent() = default;

    /** Diagnostic name, e.g. "fifo-sched" or "sol-memmgr". */
    virtual std::string Name() const = 0;

    /**
     * The agent main loop. Implementations must poll
     * @p ctx->StopRequested() regularly and return when it is set —
     * that is how KILL_WAVE_AGENT (and the watchdog) stop an agent.
     */
    virtual sim::Task<> Run(class AgentContext& ctx) = 0;
};

/** Execution context handed to a running agent. */
class AgentContext {
  public:
    AgentContext(sim::Simulator& sim, machine::Cpu& cpu)
        : sim_(sim), cpu_(cpu)
    {
    }

    sim::Simulator& Sim() { return sim_; }

    /** The SmartNIC core the agent runs on (for Work() costs). */
    machine::Cpu& Cpu() { return cpu_; }

    /** True once KILL_WAVE_AGENT was issued; the agent must return. */
    bool StopRequested() const { return stop_; }

    /**
     * While Now() < StallUntil() the agent is wedged: alive but making
     * no progress (a hung core, a runaway GC pause). Agent loops honour
     * this by idling instead of iterating — which is exactly the state
     * the watchdog exists to detect.
     */
    sim::TimeNs StallUntil() const { return stall_until_; }

  private:
    friend class WaveRuntime;
    sim::Simulator& sim_;
    machine::Cpu& cpu_;
    bool stop_ = false;
    sim::TimeNs stall_until_{};
};

/** Handle returned by StartWaveAgent. */
using AgentId = std::size_t;

/** Per-machine Wave runtime. */
class WaveRuntime {
  public:
    /**
     * @param nic_dram_bytes size of the MMIO-exposed NIC DRAM window
     *        used for queue storage.
     */
    WaveRuntime(sim::Simulator& sim, machine::Machine& machine,
                const pcie::PcieConfig& pcie_config,
                const api::OptimizationConfig& opt,
                std::size_t nic_dram_bytes = 16u << 20);
    ~WaveRuntime();

    // --- Queues (CREATE_QUEUE / SET_QUEUE_TYPE / DESTROY_QUEUE) ---

    /** Creates a host->NIC MMIO message queue. */
    HostToNicChannel CreateHostToNicQueue(const channel::QueueConfig& qc);

    /** Creates a NIC->host MMIO decision queue. */
    NicToHostChannel CreateNicToHostQueue(const channel::QueueConfig& qc);

    /**
     * Creates a DMA queue in the given direction (QueueBackend::kDmaSync
     * / kDmaAsync is chosen per Send call on the returned queue).
     */
    std::unique_ptr<channel::DmaQueue> CreateDmaQueue(
        const channel::QueueConfig& qc, pcie::DmaInitiator initiator);

    /** Allocates an MSI-X vector targeting a host core. */
    std::unique_ptr<pcie::MsiXVector> CreateMsiXVector();

    // --- Agents (START_WAVE_AGENT / KILL_WAVE_AGENT) ---

    /** Starts @p agent on NIC core @p nic_core; returns its id. */
    AgentId StartWaveAgent(std::shared_ptr<Agent> agent, int nic_core);

    /** Requests the agent stop; it exits at its next poll. */
    void KillWaveAgent(AgentId id);

    /**
     * Wedges the agent for @p duration: it stays alive but stops
     * iterating (fault injection for watchdog coverage). Extending an
     * active stall takes the later deadline.
     */
    void StallWaveAgent(AgentId id, sim::DurationNs duration);

    /** True while the agent's Run() has not returned. */
    bool AgentAlive(AgentId id) const;

    const api::OptimizationConfig& Opt() const { return opt_; }
    pcie::NicDram& Dram() { return *dram_; }
    pcie::DmaEngine& Dma() { return *dma_; }

    /**
     * The cross-domain coherence checker attached to this runtime's
     * fabric, or nullptr when built with -DWAVE_CHECK=OFF. On by
     * default: it records (and warns about) host<->NIC reads of lines
     * dirty in the other clock domain without an ordering point.
     */
    check::CoherenceChecker* Checker() { return checker_.get(); }

    /**
     * The protocol state-machine verifier, or nullptr under
     * -DWAVE_CHECK=OFF. Queue endpoints created by this runtime report
     * their seqnum streams to it automatically; subsystems (txn
     * endpoints, KernelSched, Watchdog) attach themselves on top.
     */
    check::ProtocolChecker* Protocol() { return protocol_.get(); }

    /**
     * The happens-before race detector, or nullptr under
     * -DWAVE_CHECK=OFF. Queue endpoints created by this runtime are
     * registered as actors and report accesses + sync edges.
     */
    check::HbRaceDetector* Hb() { return hb_.get(); }

    machine::Machine& GetMachine() { return machine_; }
    sim::Simulator& Sim() { return sim_; }
    const pcie::PcieConfig& PcieCfg() const { return pcie_config_; }

    /**
     * Wires a fault injector into this runtime's fabric: the NIC DRAM
     * window (MMIO latency spikes), the DMA engine, and every MSI-X
     * vector created afterwards. Transports built over this runtime
     * additionally bind their txn endpoints. Call before constructing
     * the transport; pass nullptr to detach from future creations.
     */
    void AttachInjector(sim::inject::FaultInjector* injector);

    /** The attached fault injector, or nullptr. */
    sim::inject::FaultInjector* Injector() const { return injector_; }

    /** PTE type NIC agents use for local queue access. */
    pcie::PteType
    NicPte() const
    {
        return opt_.nic_wb_ptes ? pcie::PteType::kWriteBack
                                : pcie::PteType::kUncacheable;
    }

  private:
    struct AgentSlot {
        std::shared_ptr<Agent> agent;
        std::unique_ptr<AgentContext> ctx;
        bool alive = false;
    };

    sim::Task<> RunAgent(AgentId id);

    std::size_t AllocateDram(std::size_t bytes);

    sim::Simulator& sim_;
    machine::Machine& machine_;
    pcie::PcieConfig pcie_config_;
    api::OptimizationConfig opt_;
    std::unique_ptr<pcie::NicDram> dram_;
    std::unique_ptr<pcie::DmaEngine> dma_;
    std::unique_ptr<check::CoherenceChecker> checker_;  ///< may be null
    std::unique_ptr<check::ProtocolChecker> protocol_;  ///< may be null
    std::unique_ptr<check::HbRaceDetector> hb_;         ///< may be null
    sim::inject::FaultInjector* injector_ = nullptr;    ///< not owned
    std::size_t dram_bump_ = 0;
    std::vector<AgentSlot> agents_;
};

}  // namespace wave
