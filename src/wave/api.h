/**
 * @file
 * Core Wave API types (Table 1 of the paper).
 *
 * Wave is a framework for offloading userspace system software to
 * SmartNIC agents. The host kernel sends state updates to agents as
 * *messages* over a unidirectional queue; agents send policy decisions
 * back as *transactions* over another queue, and the host reports each
 * transaction's atomic commit outcome on a third. Queues are backed by
 * MMIO or DMA (SET_QUEUE_TYPE) depending on the subsystem's
 * latency/throughput needs.
 */
// wave-domain: pcie
// wave-shared(pure configuration and ABI structs exchanged across the seam; immutable once the runtime is constructed)
#pragma once

#include <cstdint>
#include <vector>

namespace wave::api {

/** Queue transport selection (SET_QUEUE_TYPE). */
enum class QueueBackend {
    kMmio,      ///< low latency, low throughput (scheduling, RPC)
    kDmaSync,   ///< high throughput, producer blocks on completion
    kDmaAsync,  ///< high throughput, producer continues after doorbell
};

/**
 * The §5.3.1-§5.4 optimization ladder, matching the ablation in §7.2.2.
 *
 * Baseline maps everything uncacheable on both sides. Each flag enables
 * one paper optimization; benches sweep them cumulatively.
 */
struct OptimizationConfig {
    /** SmartNIC agents map NIC DRAM write-back instead of uncacheable. */
    bool nic_wb_ptes = false;

    /** Host maps queues write-combining (send) / write-through (recv). */
    bool host_wc_wt_ptes = false;

    /**
     * Policy-level: agents prestage decisions ahead of need and the
     * host prefetches them before blocking reads (§5.4).
     */
    bool prestage_prefetch = false;

    /** All optimizations on — the configuration Wave ships with. */
    static OptimizationConfig
    Full()
    {
        return {true, true, true};
    }

    /** No optimizations — the §7.2.2 baseline row. */
    static OptimizationConfig
    None()
    {
        return {false, false, false};
    }
};

/** Outcome of a transaction's atomic commit on the host (§3.2). */
enum class TxnStatus : std::uint32_t {
    kCommitted = 0,      ///< decision enforced
    kFailedStale = 1,    ///< target state changed (e.g. thread exited)
    kFailedRejected = 2, ///< host policy refused the decision
};

/** Identifier assigned by TXN_CREATE, unique per agent endpoint. */
using TxnId = std::uint64_t;

/** Wire record reporting one transaction's outcome. */
struct TxnOutcome {
    TxnId txn_id;
    TxnStatus status;
};

using Bytes = std::vector<std::byte>;

}  // namespace wave::api
