/**
 * @file
 * On-host watchdog for SmartNIC agents (§3.3).
 *
 * Each offloaded system-software component has an on-host watchdog that
 * kills its agent when the agent stops making decisions (default
 * threshold: 20 ms, the paper's thread-scheduler value). The host
 * subsystem calls NoteDecision() whenever it receives a decision; the
 * watchdog process periodically checks staleness and, on expiry, runs a
 * caller-supplied reaction — typically KILL_WAVE_AGENT followed by
 * either an agent restart or a fallback to on-host system software.
 * Recovery is simple because the host kernel stays the source of truth
 * for non-policy state (§6): a restarted agent just re-pulls state.
 */
// wave-domain: pcie
// wave-shared(the lease is fed by the NIC-side agent and expired by host-side fallback logic; both shards read the deadline)
#pragma once

#include <functional>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace wave::check {
class ProtocolChecker;
}

namespace wave {

/** Host-side liveness monitor for one agent. */
class Watchdog {
  public:
    /**
     * @param timeout decision-staleness threshold before expiry.
     * @param check_interval how often the watchdog polls.
     * @param on_expire reaction (kill/restart/fallback). Called at most
     *        once per Arm() cycle.
     */
    Watchdog(sim::Simulator& sim, sim::DurationNs timeout,
             sim::DurationNs check_interval,
             std::function<void()> on_expire);

    /** Starts monitoring; the first deadline is timeout from now. */
    void Arm();

    /** Stops monitoring (e.g. during planned agent upgrades). */
    void Disarm();

    /** Records that the agent produced a decision. */
    void NoteDecision();

    bool Expired() const { return expired_; }

    /**
     * Attaches the protocol verifier, which flags decisions accepted
     * as liveness evidence after expiry but before a re-arm — i.e. the
     * kill/fallback path of §3.3 was skipped.
     */
    void AttachProtocol(check::ProtocolChecker* protocol)
    {
        protocol_ = protocol;
    }

  private:
    sim::Task<> Monitor();

    sim::Simulator& sim_;
    sim::DurationNs timeout_;
    sim::DurationNs check_interval_;
    std::function<void()> on_expire_;
    sim::TimeNs last_decision_{};
    bool armed_ = false;
    bool expired_ = false;
    std::uint64_t generation_ = 0;  ///< invalidates stale monitor loops
    check::ProtocolChecker* protocol_ = nullptr;
};

}  // namespace wave
