// wave-domain: pcie
// wave-shared(transaction slots are written by the host endpoint and committed by the NIC endpoint; slot lifecycle is the cross-shard protocol the checkers watch)
#include "wave/txn.h"

#include "check/coherence.h"
#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/inject.h"

namespace wave {

namespace {

api::Bytes
FrameDecision(api::TxnId id, const api::Bytes& payload,
              std::size_t queue_payload_size)
{
    WAVE_ASSERT(TxnWire::kHeaderSize + payload.size() <=
                    queue_payload_size,
                "decision payload %zu too large for queue slot %zu",
                payload.size(), queue_payload_size);
    api::Bytes framed(queue_payload_size);
    std::memcpy(framed.data(), &id, sizeof(id));
    std::memcpy(framed.data() + TxnWire::kHeaderSize, payload.data(),
                payload.size());
    return framed;
}

}  // namespace

NicTxnEndpoint::NicTxnEndpoint(channel::NicProducer& decisions,
                               channel::NicConsumer& outcomes,
                               pcie::MsiXVector* msix)
    : decisions_(decisions), outcomes_(outcomes), msix_(msix)
{
}

api::TxnId
NicTxnEndpoint::TxnCreate(api::Bytes payload)
{
    const api::TxnId id = next_id_++;
    // Frame now so TxnsCommit is a pure queue push. The queue's payload
    // size comes from the storage the producer targets.
    staged_.push_back(FrameDecision(
        id, payload, decisions_.QueuePayloadSize()));
    staged_ids_.push_back(id);
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTxnCreated(&decisions_.Queue(), id,
                                    check::Domain::kNic,
                                    "NicTxnEndpoint::TxnCreate");
        }
    });
    return id;
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
NicTxnEndpoint::TxnsCommit(bool send_msix)
{
    const std::size_t sent = co_await decisions_.SendBatch(staged_);
    // Injected double-commit bug: capture the first record just sent so
    // it can be re-published below under the same transaction id.
    api::Bytes dup_record;
    api::TxnId dup_id = 0;
    bool dup = false;
    if (injector_ != nullptr && sent > 0 &&
        injector_->ShouldDoubleCommit()) {
        dup = true;
        dup_record = staged_.front();
        dup_id = staged_ids_.front();
    }
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(sent));
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            for (std::size_t i = 0; i < sent; ++i) {
                protocol_->OnTxnPublished(&decisions_.Queue(),
                                          staged_ids_[i],
                                          check::Domain::kNic,
                                          "NicTxnEndpoint::TxnsCommit");
            }
        }
    });
    staged_ids_.erase(staged_ids_.begin(),
                      staged_ids_.begin() +
                          static_cast<std::ptrdiff_t>(sent));
    WAVE_CHECK_HOOK({
        if (auto* checker = decisions_.Queue().Dram().Checker();
            checker != nullptr && sent > 0) {
            checker->OnOrderingPoint("txn-commit");
        }
    });
    if (dup) {
        // The bug on the wire: the same transaction id enters the
        // decision queue twice. The host will deliver, commit, and
        // report it twice — the protocol checker must flag every step.
        const bool resent = co_await decisions_.Send(dup_record);
        WAVE_CHECK_HOOK({
            if (resent && protocol_ != nullptr) {
                protocol_->OnTxnPublished(&decisions_.Queue(), dup_id,
                                          check::Domain::kNic,
                                          "NicTxnEndpoint::TxnsCommit[dup]");
            }
        });
        (void)resent;
    }
    if (send_msix && sent > 0) {
        WAVE_ASSERT(msix_ != nullptr,
                    "TxnsCommit(send_msix) on an endpoint with no vector");
        co_await msix_->Send();
    }
    co_return sent;
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<api::TxnOutcome>>
NicTxnEndpoint::PollTxnsOutcomes(std::size_t max)
{
    std::vector<api::TxnOutcome> out;
    while (out.size() < max) {
        auto record = co_await outcomes_.Poll();
        if (!record) break;
        api::TxnOutcome outcome;
        std::memcpy(&outcome.txn_id, record->data(),
                    sizeof(outcome.txn_id));
        std::memcpy(&outcome.status, record->data() + sizeof(api::TxnId),
                    sizeof(outcome.status));
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnTxnOutcomeObserved(
                    &decisions_.Queue(), outcome.txn_id,
                    check::Domain::kNic,
                    "NicTxnEndpoint::PollTxnsOutcomes");
            }
        });
        out.push_back(outcome);
    }
    co_return out;
}

HostTxnEndpoint::HostTxnEndpoint(channel::HostConsumer& decisions,
                                 channel::HostProducer& outcomes,
                                 pcie::MsiXVector* msix)
    : decisions_(decisions), outcomes_(outcomes), msix_(msix)
{
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<HostTxn>>
HostTxnEndpoint::PollTxns(bool flush_first)
{
    auto slot = co_await decisions_.Poll(flush_first);
    if (!slot) co_return std::nullopt;
    HostTxn txn;
    std::memcpy(&txn.id, slot->data(), sizeof(txn.id));
    txn.payload.assign(slot->begin() + TxnWire::kHeaderSize, slot->end());
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTxnDelivered(&decisions_.Queue(), txn.id,
                                      check::Domain::kHost,
                                      "HostTxnEndpoint::PollTxns");
        }
    });
    co_return txn;
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostTxnEndpoint::PrefetchTxns()
{
    co_await decisions_.PrefetchNext();
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostTxnEndpoint::FlushTxns()
{
    co_await decisions_.FlushNext();
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostTxnEndpoint::SetTxnsOutcomes(const std::vector<api::TxnOutcome>& outs)
{
    std::vector<api::Bytes> records;
    records.reserve(outs.size());
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            for (const api::TxnOutcome& outcome : outs) {
                protocol_->OnTxnOutcome(&decisions_.Queue(),
                                        outcome.txn_id,
                                        check::Domain::kHost,
                                        "HostTxnEndpoint::SetTxnsOutcomes");
            }
        }
    });
    for (const api::TxnOutcome& outcome : outs) {
        api::Bytes record(outcomes_.QueuePayloadSize());
        std::memcpy(record.data(), &outcome.txn_id,
                    sizeof(outcome.txn_id));
        std::memcpy(record.data() + sizeof(api::TxnId), &outcome.status,
                    sizeof(outcome.status));
        records.push_back(std::move(record));
    }
    const std::size_t sent = co_await outcomes_.Send(records);
    WAVE_ASSERT(sent == records.size(),
                "outcome queue overflow: agent is not draining outcomes");
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostTxnEndpoint::WaitForKick()
{
    WAVE_ASSERT(msix_ != nullptr);
    co_await msix_->WaitAndReceive();
}

bool
HostTxnEndpoint::ConsumeKick()
{
    WAVE_ASSERT(msix_ != nullptr);
    return msix_->ConsumePending();
}

}  // namespace wave
