// wave-domain: pcie
// wave-shared(the runtime owns both seam endpoints and registers actors on both shards; its queues are exactly the state a parallel executor must synchronize on)
#include "wave/runtime.h"

#include <algorithm>

#include "check/coherence.h"
#include "check/hb.h"
#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/inject.h"

namespace wave {

WaveRuntime::WaveRuntime(sim::Simulator& sim, machine::Machine& machine,
                         const pcie::PcieConfig& pcie_config,
                         const api::OptimizationConfig& opt,
                         std::size_t nic_dram_bytes)
    : sim_(sim),
      machine_(machine),
      pcie_config_(pcie_config),
      opt_(opt),
      dram_(std::make_unique<pcie::NicDram>(sim, pcie_config,
                                            nic_dram_bytes)),
      dma_(std::make_unique<pcie::DmaEngine>(sim, pcie_config))
{
    // DMA landings into the MMIO window must participate in the same
    // coherence machinery as NIC-core stores: invalidate host-cached
    // lines on coherent links, mark them stale on PCIe.
    dma_->SetWriteObserver([this](pcie::MemoryRegion& region,
                                  std::size_t offset, std::size_t n) {
        if (&region == &dram_->Backing()) {
            dram_->OnNicWrite(offset, n);
        }
    });
#ifdef WAVE_CHECK_ENABLED
    // Built with WAVE_CHECK (the default): every runtime carries the
    // cross-domain coherence checker, recording violations and warning
    // on stderr. Tests assert on Checker()->Violations().
    checker_ = std::make_unique<check::CoherenceChecker>(sim_);
    dram_->AttachChecker(checker_.get());
    dma_->AttachChecker(checker_.get());
    // The protocol verifier and the happens-before race detector ride
    // on the same gate; queue endpoints bind to them on creation.
    protocol_ = std::make_unique<check::ProtocolChecker>(sim_);
    hb_ = std::make_unique<check::HbRaceDetector>(sim_);
#endif
}

WaveRuntime::~WaveRuntime() = default;

std::size_t
WaveRuntime::AllocateDram(std::size_t bytes)
{
    // Line-align every allocation so queues never share cache lines.
    const std::size_t aligned =
        (bytes + pcie::PcieConfig::kLineSize - 1) /
        pcie::PcieConfig::kLineSize * pcie::PcieConfig::kLineSize;
    WAVE_ASSERT(dram_bump_ + aligned <= dram_->Backing().Size(),
                "NIC DRAM window exhausted");
    const std::size_t base = dram_bump_;
    dram_bump_ += aligned;
    return base;
}

HostToNicChannel
WaveRuntime::CreateHostToNicQueue(const channel::QueueConfig& qc)
{
    HostToNicChannel chan;
    const std::size_t base =
        AllocateDram(channel::RingLayout(qc).BytesNeeded());
    chan.storage = std::make_unique<channel::MmioQueue>(*dram_, base, qc);
    const pcie::PteType write_type = opt_.host_wc_wt_ptes
                                         ? pcie::PteType::kWriteCombining
                                         : pcie::PteType::kUncacheable;
    const pcie::PteType counter_read = opt_.host_wc_wt_ptes
                                           ? pcie::PteType::kWriteThrough
                                           : pcie::PteType::kUncacheable;
    chan.host = std::make_unique<channel::HostProducer>(
        *chan.storage, write_type, counter_read);
    chan.nic = std::make_unique<channel::NicConsumer>(*chan.storage,
                                                      NicPte());
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            chan.host->BindCheckers(hb_.get(), protocol_.get(),
                                    hb_->RegisterActor("host-producer"));
            chan.nic->BindCheckers(hb_.get(), protocol_.get(),
                                   hb_->RegisterActor("nic-consumer"));
        }
    });
    return chan;
}

NicToHostChannel
WaveRuntime::CreateNicToHostQueue(const channel::QueueConfig& qc)
{
    NicToHostChannel chan;
    const std::size_t base =
        AllocateDram(channel::RingLayout(qc).BytesNeeded());
    chan.storage = std::make_unique<channel::MmioQueue>(*dram_, base, qc);
    chan.nic = std::make_unique<channel::NicProducer>(*chan.storage,
                                                      NicPte());
    const pcie::PteType read_type = opt_.host_wc_wt_ptes
                                        ? pcie::PteType::kWriteThrough
                                        : pcie::PteType::kUncacheable;
    const pcie::PteType counter_write = opt_.host_wc_wt_ptes
                                            ? pcie::PteType::kWriteCombining
                                            : pcie::PteType::kUncacheable;
    chan.host = std::make_unique<channel::HostConsumer>(
        *chan.storage, read_type, counter_write);
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            chan.nic->BindCheckers(hb_.get(), protocol_.get(),
                                   hb_->RegisterActor("nic-producer"));
            chan.host->BindCheckers(hb_.get(), protocol_.get(),
                                    hb_->RegisterActor("host-consumer"));
        }
    });
    return chan;
}

std::unique_ptr<channel::DmaQueue>
WaveRuntime::CreateDmaQueue(const channel::QueueConfig& qc,
                            pcie::DmaInitiator initiator)
{
    // Producer/consumer local costs: NIC agents pay their local access
    // cost; host DRAM access is folded into compute costs elsewhere.
    const sim::DurationNs nic_local =
        opt_.nic_wb_ptes ? pcie_config_.nic_wb_access_ns
                         : pcie_config_.nic_uncached_access_ns;
    const bool nic_is_producer = initiator == pcie::DmaInitiator::kNic;
    auto queue = std::make_unique<channel::DmaQueue>(
        sim_, *dma_, initiator, qc,
        /*producer_local_ns=*/nic_is_producer ? nic_local : 0,
        /*consumer_local_ns=*/nic_is_producer ? 0 : nic_local);
    WAVE_CHECK_HOOK(queue->AttachProtocol(protocol_.get()));
    return queue;
}

std::unique_ptr<pcie::MsiXVector>
WaveRuntime::CreateMsiXVector()
{
    auto vector = std::make_unique<pcie::MsiXVector>(sim_, pcie_config_);
    WAVE_CHECK_HOOK(vector->AttachChecker(checker_.get()));
    vector->SetFaultInjector(injector_);
    return vector;
}

void
WaveRuntime::AttachInjector(sim::inject::FaultInjector* injector)
{
    injector_ = injector;
    dram_->SetFaultInjector(injector);
    dma_->SetFaultInjector(injector);
}

AgentId
WaveRuntime::StartWaveAgent(std::shared_ptr<Agent> agent, int nic_core)
{
    AgentSlot slot;
    slot.agent = std::move(agent);
    slot.ctx = std::make_unique<AgentContext>(sim_,
                                              machine_.NicCpu(nic_core));
    slot.alive = true;
    agents_.push_back(std::move(slot));
    const AgentId id = agents_.size() - 1;
    sim_.Spawn(RunAgent(id));
    return id;
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the runtime owns the agent and endpoints and outlives the simulator run)
sim::Task<>
WaveRuntime::RunAgent(AgentId id)
{
    // Hold shared ownership for the duration of the run so a kill +
    // release by the caller cannot free the agent under its own loop.
    std::shared_ptr<Agent> agent = agents_[id].agent;
    co_await agent->Run(*agents_[id].ctx);
    agents_[id].alive = false;
}

void
WaveRuntime::KillWaveAgent(AgentId id)
{
    WAVE_ASSERT(id < agents_.size());
    agents_[id].ctx->stop_ = true;
}

void
WaveRuntime::StallWaveAgent(AgentId id, sim::DurationNs duration)
{
    WAVE_ASSERT(id < agents_.size());
    AgentContext& ctx = *agents_[id].ctx;
    ctx.stall_until_ = std::max(ctx.stall_until_, sim_.Now() + duration);
}

bool
WaveRuntime::AgentAlive(AgentId id) const
{
    WAVE_ASSERT(id < agents_.size());
    return agents_[id].alive;
}

}  // namespace wave
