/**
 * @file
 * Compile-time gate for checker instrumentation.
 *
 * Model code wraps every call into wave::check with WAVE_CHECK_HOOK so
 * the whole instrumentation layer (including the null-pointer test on
 * the attached checker) disappears from release builds configured with
 * -DWAVE_CHECK=OFF. The CMake option defines WAVE_CHECK_ENABLED and
 * defaults to ON, so tests and normal development builds always check.
 */
// wave-domain: neutral
#pragma once

#ifdef WAVE_CHECK_ENABLED
#define WAVE_CHECK_HOOK(expr) \
    do {                      \
        expr;                 \
    } while (0)
#else
#define WAVE_CHECK_HOOK(expr) \
    do {                      \
    } while (0)
#endif
