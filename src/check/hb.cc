// wave-domain: neutral
#include "check/hb.h"

#include <algorithm>
#include <cstdio>

#include "check/fnv.h"
#include "sim/logging.h"
#include "sim/simulator.h"

namespace wave::check {

const char*
RaceKindName(RaceKind kind)
{
    switch (kind) {
        case RaceKind::kTieBreak: return "tie-break-race";
        case RaceKind::kVirtualTime: return "virtual-time-race";
    }
    return "?";
}

std::string
HbRace::Describe() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s on line %zu: %s %s by %s [%zu,+%zu)@%llu ns is unordered "
        "with %s %s by %s [%zu,+%zu)@%llu ns",
        RaceKindName(kind), line, second.is_write ? "write" : "read",
        second.label, second.actor, second.offset, second.size,
        static_cast<unsigned long long>(second.when.ns()),
        first.is_write ? "write" : "read", first.label, first.actor,
        first.offset, first.size,
        static_cast<unsigned long long>(first.when.ns()));
    return buf;
}

sim::ActorId
HbRaceDetector::RegisterActor(const char* label)
{
    const sim::ActorId id = actors_.Register(label);
    clocks_.emplace_back();
    return id;
}

HbRaceDetector::VectorClock&
HbRaceDetector::ClockOf(sim::ActorId actor)
{
    WAVE_ASSERT(actor != sim::kNoActor && actor <= clocks_.size(),
                "access stamped with an unregistered actor id %u", actor);
    VectorClock& vc = clocks_[actor - 1];
    if (vc.size() < clocks_.size()) vc.resize(clocks_.size(), 0);
    // An actor's own clock starts at 1: other actors' views start at 0,
    // so a first-epoch access (clock 1) is NOT ordered-before an actor
    // that never synchronized with it. At 0/0 the `>=` test would call
    // every initial access ordered and miss first-access races.
    if (vc[actor - 1] == 0) vc[actor - 1] = 1;
    return vc;
}

bool
HbRaceDetector::OrderedBefore(const Epoch& epoch, sim::ActorId actor)
{
    if (epoch.actor == actor) return true;  // program order
    const VectorClock& vc = ClockOf(actor);
    const std::size_t index = epoch.actor - 1;
    return index < vc.size() && vc[index] >= epoch.clock;
}

void
HbRaceDetector::OnAccess(sim::ActorId actor, const void* region,
                         std::size_t offset, std::size_t n, bool is_write,
                         const char* site)
{
    if (is_write) {
        stats_.writes += 1;
    } else {
        stats_.reads += 1;
    }
    if (n == 0) return;
    VectorClock& vc = ClockOf(actor);
    const std::uint64_t clock = vc[actor - 1];
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        LineState& state = lines_[LineKey{region, line}];
        const Epoch current{actor, clock, site, offset, n, sim_.Now()};
        if (state.allow_unordered) {
            stats_.allowed_unordered += 1;
        } else {
            if (state.last_write.actor != sim::kNoActor &&
                !OrderedBefore(state.last_write, actor)) {
                Report(line, state.last_write, /*prev_is_write=*/true,
                       current, is_write);
            }
            if (is_write) {
                for (const Epoch& read : state.reads) {
                    if (!OrderedBefore(read, actor)) {
                        Report(line, read, /*prev_is_write=*/false,
                               current, is_write);
                    }
                }
            }
        }
        if (is_write) {
            state.last_write = current;
            state.reads.clear();
        } else {
            auto it = std::find_if(
                state.reads.begin(), state.reads.end(),
                [actor](const Epoch& e) { return e.actor == actor; });
            if (it != state.reads.end()) {
                *it = current;
            } else {
                state.reads.push_back(current);
            }
        }
    }
}

void
HbRaceDetector::OnRelease(sim::ActorId actor, const void* obj,
                          std::uint64_t tag)
{
    stats_.releases += 1;
    VectorClock& vc = ClockOf(actor);
    VectorClock& sync = sync_[SyncKey{obj, tag}];
    if (sync.size() < vc.size()) sync.resize(vc.size(), 0);
    for (std::size_t i = 0; i < vc.size(); ++i) {
        sync[i] = std::max(sync[i], vc[i]);
    }
    // Advance the actor's own clock so work after the release is not
    // ordered before acquirers of this (now-frozen) sync state.
    vc[actor - 1] += 1;
}

void
HbRaceDetector::OnAcquire(sim::ActorId actor, const void* obj,
                          std::uint64_t tag)
{
    stats_.acquires += 1;
    auto it = sync_.find(SyncKey{obj, tag});
    if (it == sync_.end()) return;  // nothing released yet
    VectorClock& vc = ClockOf(actor);
    const VectorClock& sync = it->second;
    if (vc.size() < sync.size()) vc.resize(sync.size(), 0);
    for (std::size_t i = 0; i < sync.size(); ++i) {
        vc[i] = std::max(vc[i], sync[i]);
    }
}

void
HbRaceDetector::AllowUnordered(const void* region, std::size_t offset,
                               std::size_t n)
{
    if (n == 0) return;
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        lines_[LineKey{region, line}].allow_unordered = true;
    }
}

void
HbRaceDetector::Report(std::size_t line, const Epoch& prev,
                       bool prev_is_write, const Epoch& current,
                       bool current_is_write)
{
    // One report per unique (line, site pair, prior-access time): a
    // polling loop re-hitting one racy line produces one report.
    std::uint64_t key = kFnvOffsetBasis;
    key = FnvWord(key, line);
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(prev.site));
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(current.site));
    key = FnvWord(key, prev.when.ns());
    if (!reported_.insert(key).second) return;

    const RaceKind kind = prev.when == current.when
                              ? RaceKind::kTieBreak
                              : RaceKind::kVirtualTime;
    HbRace race;
    race.kind = kind;
    race.line = line;
    race.first = RaceAccess{prev.site, actors_.LabelOf(prev.actor),
                            prev_is_write, prev.offset, prev.size,
                            prev.when};
    race.second = RaceAccess{current.site, actors_.LabelOf(current.actor),
                             current_is_write, current.offset,
                             current.size, current.when};
    races_.push_back(race);
    const std::string what = races_.back().Describe();
    if (fail_fast_) {
        sim::Panic("virtual-time race: %s", what.c_str());
    }
    sim::Warn("virtual-time race: %s", what.c_str());
}

void
HbRaceDetector::Clear()
{
    for (VectorClock& vc : clocks_) {
        std::fill(vc.begin(), vc.end(), 0);
    }
    lines_.clear();
    sync_.clear();
    races_.clear();
    reported_.clear();
    stats_ = HbStats{};
}

}  // namespace wave::check
