// wave-domain: neutral
#include "check/protocol.h"

#include <cstdio>

#include "check/fnv.h"
#include "sim/logging.h"
#include "sim/simulator.h"

namespace wave::check {

const char*
ProtocolViolationKindName(ProtocolViolationKind kind)
{
    switch (kind) {
        case ProtocolViolationKind::kDoubleCommit:
            return "double-commit";
        case ProtocolViolationKind::kTxnClaimedTwice:
            return "txn-claimed-twice";
        case ProtocolViolationKind::kDuplicateOutcome:
            return "duplicate-outcome";
        case ProtocolViolationKind::kOutcomeBeforeDelivery:
            return "outcome-before-delivery";
        case ProtocolViolationKind::kPhantomOutcome:
            return "phantom-outcome";
        case ProtocolViolationKind::kUnknownTxn:
            return "unknown-txn";
        case ProtocolViolationKind::kSeqnumRegression:
            return "seqnum-regression";
        case ProtocolViolationKind::kBarrierSkip:
            return "barrier-skip";
        case ProtocolViolationKind::kPhantomMessage:
            return "phantom-message";
        case ProtocolViolationKind::kStaleViewCommit:
            return "stale-view-commit";
        case ProtocolViolationKind::kDoubleClaim:
            return "double-claim";
        case ProtocolViolationKind::kCommitAfterTimeout:
            return "commit-after-timeout";
    }
    return "?";
}

const char*
TaskShadowName(TaskShadow state)
{
    switch (state) {
        case TaskShadow::kUnknown: return "unknown";
        case TaskShadow::kRunnable: return "runnable";
        case TaskShadow::kRunning: return "running";
        case TaskShadow::kBlocked: return "blocked";
        case TaskShadow::kDead: return "dead";
    }
    return "?";
}

std::string
ProtocolViolation::Describe() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s: %s %s(id=%llu)@%llu ns conflicts with %s %s(id=%llu)@%llu ns",
        ProtocolViolationKindName(kind), DomainName(current.domain),
        current.label, static_cast<unsigned long long>(current.id),
        static_cast<unsigned long long>(current.when.ns()),
        DomainName(previous.domain), previous.label,
        static_cast<unsigned long long>(previous.id),
        static_cast<unsigned long long>(previous.when.ns()));
    return buf;
}

ProtocolSite
ProtocolChecker::Site(const char* label, Domain domain,
                      std::uint64_t id) const
{
    return ProtocolSite{label, domain, id, sim_.Now()};
}

void
ProtocolChecker::OnTxnCreated(const void* scope, std::uint64_t id,
                              Domain domain, const char* site)
{
    stats_.txns_created += 1;
    const ProtocolSite current = Site(site, domain, id);
    auto [it, inserted] = txns_.emplace(ScopedKey{scope, id}, TxnShadow{});
    if (!inserted) {
        // Two agents claimed the same transaction id on one queue —
        // their outcomes would be indistinguishable on the wire.
        Report(ProtocolViolationKind::kTxnClaimedTwice, current,
               it->second.created);
        return;
    }
    it->second.created = current;
    it->second.last_event = current;
}

void
ProtocolChecker::OnTxnPublished(const void* scope, std::uint64_t id,
                                Domain domain, const char* site)
{
    stats_.txns_published += 1;
    const ProtocolSite current = Site(site, domain, id);
    auto it = txns_.find(ScopedKey{scope, id});
    if (it == txns_.end()) {
        Report(ProtocolViolationKind::kUnknownTxn, current, current);
        return;
    }
    TxnShadow& txn = it->second;
    if (txn.phase != TxnShadow::Phase::kCreated) {
        Report(ProtocolViolationKind::kDoubleCommit, current,
               txn.last_event);
        return;
    }
    txn.phase = TxnShadow::Phase::kPublished;
    txn.last_event = current;
}

void
ProtocolChecker::OnTxnDelivered(const void* scope, std::uint64_t id,
                                Domain domain, const char* site)
{
    stats_.txns_delivered += 1;
    const ProtocolSite current = Site(site, domain, id);
    auto it = txns_.find(ScopedKey{scope, id});
    if (it == txns_.end()) {
        Report(ProtocolViolationKind::kUnknownTxn, current, current);
        return;
    }
    TxnShadow& txn = it->second;
    if (txn.phase != TxnShadow::Phase::kPublished) {
        // Delivered twice (host re-read a consumed slot) or delivered
        // without a publish; either way the queue handed the host a
        // transaction the agent did not just commit.
        Report(ProtocolViolationKind::kUnknownTxn, current,
               txn.last_event);
        return;
    }
    txn.phase = TxnShadow::Phase::kDelivered;
    txn.last_event = current;
}

void
ProtocolChecker::OnTxnOutcome(const void* scope, std::uint64_t id,
                              Domain domain, const char* site)
{
    stats_.outcomes_reported += 1;
    const ProtocolSite current = Site(site, domain, id);
    auto it = txns_.find(ScopedKey{scope, id});
    if (it == txns_.end()) {
        Report(ProtocolViolationKind::kPhantomOutcome, current, current);
        return;
    }
    TxnShadow& txn = it->second;
    if (txn.phase == TxnShadow::Phase::kResolved) {
        Report(ProtocolViolationKind::kDuplicateOutcome, current,
               txn.last_event);
        return;
    }
    if (txn.phase != TxnShadow::Phase::kDelivered) {
        Report(ProtocolViolationKind::kOutcomeBeforeDelivery, current,
               txn.last_event);
        return;
    }
    txn.phase = TxnShadow::Phase::kResolved;
    txn.last_event = current;
}

void
ProtocolChecker::OnTxnOutcomeObserved(const void* scope, std::uint64_t id,
                                      Domain domain, const char* site)
{
    stats_.outcomes_observed += 1;
    const ProtocolSite current = Site(site, domain, id);
    auto it = txns_.find(ScopedKey{scope, id});
    if (it == txns_.end()) {
        Report(ProtocolViolationKind::kPhantomOutcome, current, current);
        return;
    }
    // Observation completes the lifecycle; the record can be retired so
    // long-running agents do not grow the shadow map without bound.
    txns_.erase(it);
}

void
ProtocolChecker::OnStreamSend(const void* scope, std::uint64_t seq,
                              Domain domain, const char* site)
{
    stats_.stream_sends += 1;
    StreamShadow& stream = streams_[scope];
    stream.last_send = Site(site, domain, seq);
    if (seq >= stream.next_send) {
        stream.next_send = seq + 1;
    }
}

void
ProtocolChecker::OnStreamRecv(const void* scope, std::uint64_t seq,
                              Domain domain, const char* site)
{
    stats_.stream_recvs += 1;
    StreamShadow& stream = streams_[scope];
    const ProtocolSite current = Site(site, domain, seq);
    if (seq >= stream.next_send) {
        Report(ProtocolViolationKind::kPhantomMessage, current,
               stream.last_send);
        return;
    }
    if (seq < stream.next_recv) {
        Report(ProtocolViolationKind::kSeqnumRegression, current,
               stream.last_recv);
        return;
    }
    if (seq > stream.next_recv) {
        // The consumer accepted seq without the entries before it —
        // any decision based on this view skipped a message barrier.
        Report(ProtocolViolationKind::kBarrierSkip, current,
               stream.last_recv);
        // Resync so one gap does not cascade into a report per entry.
        stream.next_recv = seq + 1;
        stream.last_recv = current;
        return;
    }
    stream.next_recv = seq + 1;
    stream.last_recv = current;
}

void
ProtocolChecker::OnTaskState(const void* scope, std::int64_t tid,
                             TaskShadow state, const char* site)
{
    stats_.task_transitions += 1;
    TaskState& task =
        tasks_[ScopedKey{scope, static_cast<std::uint64_t>(tid)}];
    task.state = state;
    task.set_by = Site(site, Domain::kHost,
                       static_cast<std::uint64_t>(tid));
}

void
ProtocolChecker::OnCommitDecision(const void* scope, std::uint64_t txn_id,
                                  std::int64_t tid, bool run_decision,
                                  bool committed, const char* site)
{
    stats_.commits_checked += 1;
    if (!run_decision || !committed) return;
    const ProtocolSite current = Site(site, Domain::kHost, txn_id);
    TaskState& task =
        tasks_[ScopedKey{scope, static_cast<std::uint64_t>(tid)}];
    if (task.state == TaskShadow::kRunning) {
        Report(ProtocolViolationKind::kDoubleClaim, current, task.set_by);
    } else if (task.state != TaskShadow::kRunnable) {
        // The host accepted a decision its own thread-state machine
        // says is stale — the atomic commit (§3.2) should have failed
        // this transaction instead.
        Report(ProtocolViolationKind::kStaleViewCommit, current,
               task.set_by);
    }
    task.state = TaskShadow::kRunning;
    task.set_by = current;
}

void
ProtocolChecker::OnWatchdogArmed(const void* scope, const char* site)
{
    DogShadow& dog = dogs_[scope];
    dog.armed = true;
    dog.expired = false;
    (void)site;
}

void
ProtocolChecker::OnWatchdogExpired(const void* scope, const char* site)
{
    DogShadow& dog = dogs_[scope];
    dog.armed = false;
    dog.expired = true;
    dog.expired_at = Site(site, Domain::kHost, 0);
}

void
ProtocolChecker::OnWatchdogFed(const void* scope, const char* site)
{
    stats_.watchdog_feeds += 1;
    DogShadow& dog = dogs_[scope];
    if (dog.expired && !dog.armed) {
        // The agent was declared dead but its decisions are still
        // being accepted as liveness evidence — the kill/fallback
        // path (§3.3) was skipped.
        Report(ProtocolViolationKind::kCommitAfterTimeout,
               Site(site, Domain::kHost, 0), dog.expired_at);
    }
}

void
ProtocolChecker::Report(ProtocolViolationKind kind,
                        const ProtocolSite& current,
                        const ProtocolSite& previous)
{
    // One report per unique (kind, sites, ids): retries of a rejected
    // action must not flood the log with copies of one violation.
    std::uint64_t key = kFnvOffsetBasis;
    key = FnvByte(key, static_cast<std::uint8_t>(kind));
    key = FnvWord(key, current.id);
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(current.label));
    key = FnvWord(key, previous.id);
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(previous.label));
    key = FnvWord(key, previous.when.ns());
    if (!reported_.insert(key).second) return;

    violations_.push_back(ProtocolViolation{kind, current, previous});
    const std::string what = violations_.back().Describe();
    if (fail_fast_) {
        sim::Panic("protocol violation: %s", what.c_str());
    }
    sim::Warn("protocol violation: %s", what.c_str());
}

void
ProtocolChecker::Clear()
{
    txns_.clear();
    streams_.clear();
    tasks_.clear();
    dogs_.clear();
    violations_.clear();
    reported_.clear();
    stats_ = ProtocolStats{};
}

}  // namespace wave::check
