/**
 * @file
 * FNV-1a hashing for event-stream fingerprints.
 *
 * The determinism auditor folds every executed simulator event into a
 * rolling 64-bit FNV-1a hash; two runs of the same configuration must
 * end with the same fingerprint. FNV is chosen for the same reasons
 * trace checksummers usually choose it: cheap enough for the event hot
 * path, stateless (one word of state), and order-sensitive, so any
 * divergence in event execution order changes the final digest.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>

namespace wave::check {

/** 64-bit FNV-1a offset basis. */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/** 64-bit FNV-1a prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/** Folds one byte into the running hash. */
constexpr std::uint64_t
FnvByte(std::uint64_t hash, std::uint8_t byte)
{
    return (hash ^ byte) * kFnvPrime;
}

/** Folds a 64-bit word into the running hash, little-endian bytewise. */
constexpr std::uint64_t
FnvWord(std::uint64_t hash, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        hash = FnvByte(hash, static_cast<std::uint8_t>(word >> (i * 8)));
    }
    return hash;
}

}  // namespace wave::check
