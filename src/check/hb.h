/**
 * @file
 * Virtual-time happens-before race detector over simulated actors.
 *
 * The discrete-event simulator is single-threaded and deterministic, so
 * a pair of conflicting accesses that no protocol edge orders will
 * still execute in *some* fixed order — decided by `ScheduleKeyed`
 * tie-breaks or event-insertion luck, not by the protocol. The PR-1
 * determinism auditor makes such schedules reproducible; it cannot say
 * they are bugs. This detector can: it runs a vector-clock analysis
 * (FastTrack-style epochs) over the modelled execution contexts — host
 * CPUs, SmartNIC cores, the DMA engine, MSI-X delivery — and reports
 * any conflicting same-line access pair with no happens-before path as
 * a race, even though the run produced a stable answer.
 *
 * Happens-before edges come from the protocol's sanctioned
 * synchronization actions, reported by the instrumented endpoints:
 * generation-flag publication and consumption on MMIO/shm queue slots,
 * lazy consumed-counter updates, MSI-X deliveries, and lock
 * acquire/release (`sim::Resource`). Accesses by the same actor are
 * ordered by program order. Flag polls and counter reads are modelled
 * as the synchronization operations they are, not as data accesses, so
 * the optimistic (`tolerate_stale`) protocol reads never produce
 * false positives.
 *
 * Races are classified by simulated time: accesses at the *same*
 * timestamp are ordered purely by the event queue's tie-break
 * (kTieBreak); accesses at different timestamps with no HB path are
 * ordered only by this run's timing luck (kVirtualTime).
 *
 * Intentionally unordered accesses (e.g. diagnostic snapshots) are
 * annotated with AllowUnordered(), the analogue of the coherence
 * checker's tolerate_stale.
 */
// wave-domain: neutral
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/actor.h"
#include "sim/time.h"

namespace wave::sim {
class Simulator;
}

namespace wave::check {

/** How the reported pair ended up ordered in this run. */
enum class RaceKind {
    /** Same timestamp: ordered only by the event-queue tie-break. */
    kTieBreak,
    /** Different timestamps, but no happens-before path: ordered only
        by this configuration's timing luck. */
    kVirtualTime,
};

const char* RaceKindName(RaceKind kind);

/** One side of a reported race. */
struct RaceAccess {
    const char* label = "?";  ///< e.g. "HostProducer::Send[payload]"
    const char* actor = "?";  ///< registered actor label
    bool is_write = false;
    std::size_t offset = 0;
    std::size_t size = 0;
    sim::TimeNs when{};
};

/** A conflicting access pair with no happens-before ordering. */
struct HbRace {
    RaceKind kind;
    std::size_t line;    ///< 64-byte line index within the region
    RaceAccess first;    ///< the earlier access (tie: the one on record)
    RaceAccess second;   ///< the later access that exposed the race

    /** One-line diagnostic, e.g. for test failure messages. */
    std::string Describe() const;
};

/** Aggregate instrumentation counters. */
struct HbStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t releases = 0;
    std::uint64_t acquires = 0;
    std::uint64_t allowed_unordered = 0;  ///< accesses skipped by annotation
};

/**
 * The vector-clock race detector.
 *
 * Regions are opaque tags (the instrumented layer passes the address of
 * the shared object); lines are 64 bytes, matching the PCIe model.
 * Sync variables are keyed by (object address, tag), so one queue can
 * carry an independent sync var per slot and one for its counter.
 */
class HbRaceDetector {
  public:
    static constexpr std::size_t kLineSize = 64;

    explicit HbRaceDetector(sim::Simulator& sim) : sim_(sim) {}

    HbRaceDetector(const HbRaceDetector&) = delete;
    HbRaceDetector& operator=(const HbRaceDetector&) = delete;

    /** Registers one execution context (label is a string literal). */
    sim::ActorId RegisterActor(const char* label);

    const sim::ActorRegistry& Actors() const { return actors_; }

    // --- Instrumentation entry points ---

    /** Actor @p actor accessed [offset, offset+n) of @p region. */
    void OnAccess(sim::ActorId actor, const void* region,
                  std::size_t offset, std::size_t n, bool is_write,
                  const char* site);

    /**
     * Release edge: actor @p actor published through sync var
     * (@p obj, @p tag) — e.g. a generation-flag write, a consumed-
     * counter update, a lock release, an MSI-X send.
     */
    void OnRelease(sim::ActorId actor, const void* obj, std::uint64_t tag);

    /**
     * Acquire edge: actor @p actor observed sync var (@p obj, @p tag)
     * — e.g. a matching generation-flag poll, a counter refresh, a
     * lock acquire, an MSI-X delivery.
     */
    void OnAcquire(sim::ActorId actor, const void* obj, std::uint64_t tag);

    /**
     * Annotates [offset, offset+n) of @p region as intentionally
     * unordered: conflicting accesses there are counted, not reported.
     * Use for lines whose readers validate freshness another way.
     */
    void AllowUnordered(const void* region, std::size_t offset,
                        std::size_t n);

    // --- Results ---

    const std::vector<HbRace>& Races() const { return races_; }
    const HbStats& Stats() const { return stats_; }

    /** When true, the first race panics instead of recording. */
    void SetFailFast(bool on) { fail_fast_ = on; }

    /** Drops all recorded races and shadow state (actors persist). */
    void Clear();

  private:
    using VectorClock = std::vector<std::uint64_t>;

    /** A FastTrack epoch: (actor, that actor's clock at the access). */
    struct Epoch {
        sim::ActorId actor = sim::kNoActor;
        std::uint64_t clock = 0;
        const char* site = "?";
        std::size_t offset = 0;
        std::size_t size = 0;
        sim::TimeNs when{};
    };

    /** Shadow state of one 64-byte line. */
    struct LineState {
        Epoch last_write;
        std::vector<Epoch> reads;  ///< one per actor since last write
        bool allow_unordered = false;
    };

    struct LineKey {
        const void* region;
        std::size_t line;

        bool
        operator==(const LineKey& other) const
        {
            return region == other.region && line == other.line;
        }
    };

    struct LineKeyHash {
        std::size_t
        operator()(const LineKey& key) const
        {
            return std::hash<const void*>()(key.region) ^
                   (key.line * 0x9e3779b97f4a7c15ULL);
        }
    };

    struct SyncKey {
        const void* obj;
        std::uint64_t tag;

        bool
        operator==(const SyncKey& other) const
        {
            return obj == other.obj && tag == other.tag;
        }
    };

    struct SyncKeyHash {
        std::size_t
        operator()(const SyncKey& key) const
        {
            return std::hash<const void*>()(key.obj) ^
                   (key.tag * 0x9e3779b97f4a7c15ULL);
        }
    };

    static std::size_t LineOf(std::size_t offset)
    {
        return offset / kLineSize;
    }

    VectorClock& ClockOf(sim::ActorId actor);

    /** True when @p epoch happens-before @p actor's current view. */
    bool OrderedBefore(const Epoch& epoch, sim::ActorId actor);

    void Report(std::size_t line, const Epoch& prev, bool prev_is_write,
                const Epoch& current, bool current_is_write);

    sim::Simulator& sim_;
    sim::ActorRegistry actors_;
    std::vector<VectorClock> clocks_;  ///< indexed by actor id - 1
    std::unordered_map<LineKey, LineState, LineKeyHash> lines_;
    std::unordered_map<SyncKey, VectorClock, SyncKeyHash> sync_;
    std::vector<HbRace> races_;
    std::unordered_set<std::uint64_t> reported_;  ///< dedup keys
    HbStats stats_;
    bool fail_fast_ = false;
};

}  // namespace wave::check
