// wave-domain: neutral
#include "check/coherence.h"

#include <cstdio>

#include "check/fnv.h"
#include "sim/logging.h"
#include "sim/simulator.h"

namespace wave::check {

const char*
DomainName(Domain domain)
{
    switch (domain) {
        case Domain::kHost: return "host";
        case Domain::kNic: return "nic";
        case Domain::kDma: return "dma";
    }
    return "?";
}

namespace {

const char*
KindName(ViolationKind kind)
{
    switch (kind) {
        case ViolationKind::kStaleCachedRead: return "stale-cached-read";
        case ViolationKind::kUnflushedWcRead: return "unflushed-wc-read";
    }
    return "?";
}

}  // namespace

std::string
Violation::Describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s on line %zu: %s read %s[%zu,+%zu)@%llu ns races "
                  "%s write %s[%zu,+%zu)@%llu ns",
                  KindName(kind), line, DomainName(read.domain),
                  read.label, read.offset, read.size,
                  static_cast<unsigned long long>(read.when.ns()),
                  DomainName(write.domain), write.label, write.offset,
                  write.size,
                  static_cast<unsigned long long>(write.when.ns()));
    return buf;
}

void
CoherenceChecker::OnWrite(const void* region, Domain domain,
                          std::size_t offset, std::size_t n,
                          const char* site)
{
    stats_.writes += 1;
    if (domain == Domain::kHost || n == 0) return;
    RecordRemoteWrite(region, offset, n,
                      AccessSite{site, domain, offset, n, sim_.Now()});
}

void
CoherenceChecker::OnDmaWrite(const void* region, std::size_t offset,
                             std::size_t n, const char* site)
{
    stats_.dma_writes += 1;
    if (n == 0) return;
    RecordRemoteWrite(
        region, offset, n,
        AccessSite{site, Domain::kDma, offset, n, sim_.Now()});
}

void
CoherenceChecker::RecordRemoteWrite(const void* region, std::size_t offset,
                                    std::size_t n, const AccessSite& site)
{
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        LineState& state = State(region, line);
        state.last_remote_write = site;
        if (state.host_cached) {
            state.stale = true;
        }
    }
}

void
CoherenceChecker::OnRead(const void* region, Domain domain,
                         std::size_t offset, std::size_t n,
                         bool from_host_cache, bool tolerate_stale,
                         const char* site)
{
    stats_.reads += 1;
    if (n == 0) return;
    const AccessSite read{site, domain, offset, n, sim_.Now()};
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        LineState* state = Find(region, line);
        if (state == nullptr) continue;
        if (domain == Domain::kHost && from_host_cache && state->stale) {
            if (tolerate_stale) {
                stats_.tolerated_stale_reads += 1;
            } else {
                Report(ViolationKind::kStaleCachedRead, line, read,
                       state->last_remote_write);
            }
        }
        if (domain != Domain::kHost && state->wc_pending &&
            !tolerate_stale) {
            Report(ViolationKind::kUnflushedWcRead, line, read,
                   state->last_wc_store);
        }
    }
}

void
CoherenceChecker::OnCacheFill(const void* region, std::size_t line)
{
    stats_.cache_fills += 1;
    LineState& state = State(region, line);
    state.host_cached = true;
    state.stale = false;
}

void
CoherenceChecker::OnCacheDrop(const void* region, std::size_t line)
{
    stats_.cache_drops += 1;
    LineState* state = Find(region, line);
    if (state == nullptr) return;
    state->host_cached = false;
    state->stale = false;
}

void
CoherenceChecker::OnWcBuffered(const void* region, std::size_t offset,
                               std::size_t n, const char* site)
{
    stats_.wc_buffered += 1;
    if (n == 0) return;
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        LineState& state = State(region, line);
        state.wc_pending = true;
        state.last_wc_store =
            AccessSite{site, Domain::kHost, offset, n, sim_.Now()};
    }
}

void
CoherenceChecker::OnWcDrained(const void* region, std::size_t offset,
                              std::size_t n)
{
    stats_.wc_drains += 1;
    if (n == 0) return;
    const std::size_t first = LineOf(offset);
    const std::size_t last = LineOf(offset + n - 1);
    for (std::size_t line = first; line <= last; ++line) {
        LineState* state = Find(region, line);
        if (state != nullptr) {
            state->wc_pending = false;
        }
    }
}

void
CoherenceChecker::OnOrderingPoint(const char* what)
{
    stats_.ordering_points += 1;
    last_ordering_point_ = what;
}

void
CoherenceChecker::OnShmAccess(std::size_t bytes)
{
    (void)bytes;
    stats_.shm_accesses += 1;
}

void
CoherenceChecker::Report(ViolationKind kind, std::size_t line,
                         const AccessSite& read, const AccessSite& write)
{
    // One report per unique (kind, line, write event, read site): a
    // polling loop that re-reads the same stale line should not flood
    // the log with hundreds of copies of the same race.
    std::uint64_t key = kFnvOffsetBasis;
    key = FnvByte(key, static_cast<std::uint8_t>(kind));
    key = FnvWord(key, line);
    key = FnvWord(key, write.when.ns());
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(write.label));
    key = FnvWord(key, reinterpret_cast<std::uintptr_t>(read.label));
    if (!reported_.insert(key).second) return;

    violations_.push_back(Violation{kind, line, read, write});
    const std::string what = violations_.back().Describe();
    if (fail_fast_) {
        sim::Panic("coherence violation: %s", what.c_str());
    }
    sim::Warn("coherence violation: %s", what.c_str());
}

void
CoherenceChecker::Clear()
{
    lines_.clear();
    violations_.clear();
    reported_.clear();
    stats_ = CheckerStats{};
    last_ordering_point_ = "(none)";
}

}  // namespace wave::check
