/**
 * @file
 * Cross-domain coherence checker for the simulated PCIe fabric.
 *
 * Wave's correctness argument rests on every host<->NIC state exchange
 * going through the modelled PCIe paths with explicit software
 * coherence: a host that caches a write-through line must clflush it
 * before trusting bytes the NIC (or the DMA engine) wrote afterwards,
 * and a NIC that consumes host data must never observe a line whose
 * stores are still sitting in the host's write-combining buffer.
 *
 * Nothing in the type system enforces this — a policy change can
 * silently read a line that is dirty in the other clock domain and the
 * generation-flag protocol usually (but not always) hides the damage.
 * This checker is a happens-before detector for the simulated hardware,
 * in the spirit of TSan: the access-path models report every read,
 * write, cache fill/drop, WC buffer/drain, DMA landing, and ordering
 * point (clflush, sfence, DMA completion, MSI-X delivery, txn commit
 * barrier) to an attached checker, which keeps per-64-byte-line shadow
 * state and records a Violation — with *both* access sites — whenever
 *
 *   1. a host cache hit serves a line the other domain has written
 *      since the fill, with no intervening clflush/invalidate
 *      ("stale cached read"), or
 *   2. the NIC reads a line whose host write-combining stores have not
 *      been drained by an sfence ("unflushed WC read").
 *
 * Protocol paths that are *designed* to tolerate bounded staleness
 * (optimistic generation-flag polls, lazy consumed counters) annotate
 * their reads as stale-tolerant, exactly like TSan benign-race
 * annotations; everything else is checked strictly.
 *
 * The checker is attached at runtime (WaveRuntime does it automatically
 * when built with WAVE_CHECK_ENABLED) and all instrumentation compiles
 * away when the WAVE_CHECK CMake option is OFF.
 */
// wave-domain: neutral
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace wave::sim {
class Simulator;
}

namespace wave::check {

/** Which clock domain performed an access. */
enum class Domain { kHost, kNic, kDma };

/** Human-readable domain name. */
const char* DomainName(Domain domain);

/**
 * One side of a reported race.
 *
 * @note @p label must point at storage that outlives the checker
 *       (instrumentation sites pass string literals), keeping the
 *       per-access cost to a pointer copy.
 */
struct AccessSite {
    const char* label = "?";  ///< e.g. "HostMmioMapping::Read[WT]"
    Domain domain = Domain::kHost;
    std::size_t offset = 0;  ///< byte offset of the access
    std::size_t size = 0;    ///< bytes accessed
    sim::TimeNs when{};    ///< simulated time of the access
};

/** What kind of coherence rule a violation broke. */
enum class ViolationKind {
    /** Host cache hit on a line the NIC/DMA dirtied since the fill. */
    kStaleCachedRead,
    /** NIC read of a line with undrained host write-combining stores. */
    kUnflushedWcRead,
};

/** A detected cross-domain coherence race, with both access sites. */
struct Violation {
    ViolationKind kind;
    std::size_t line;  ///< 64-byte line index within the region
    AccessSite read;   ///< the racing read
    AccessSite write;  ///< the conflicting cross-domain write

    /** One-line diagnostic, e.g. for test failure messages. */
    std::string Describe() const;
};

/** Aggregate instrumentation counters (cheap sanity metrics). */
struct CheckerStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t cache_fills = 0;
    std::uint64_t cache_drops = 0;
    std::uint64_t wc_buffered = 0;
    std::uint64_t wc_drains = 0;
    std::uint64_t dma_writes = 0;
    std::uint64_t ordering_points = 0;
    std::uint64_t shm_accesses = 0;
    std::uint64_t tolerated_stale_reads = 0;
};

/**
 * The coherence race detector.
 *
 * Regions are identified by an opaque tag (the instrumented layer
 * passes the address of its pcie::MemoryRegion), so this library does
 * not depend on the pcie model. Line granularity is 64 bytes, matching
 * pcie::PcieConfig::kLineSize.
 */
class CoherenceChecker {
  public:
    static constexpr std::size_t kLineSize = 64;

    explicit CoherenceChecker(sim::Simulator& sim) : sim_(sim) {}

    CoherenceChecker(const CoherenceChecker&) = delete;
    CoherenceChecker& operator=(const CoherenceChecker&) = delete;

    // --- Instrumentation entry points (called by the models) ---

    /** A domain wrote [offset, offset+n) directly to the region. */
    void OnWrite(const void* region, Domain domain, std::size_t offset,
                 std::size_t n, const char* site);

    /**
     * A domain read [offset, offset+n).
     *
     * @param from_host_cache true when served from the host WT cache
     *        (only cache hits can observe stale bytes).
     * @param tolerate_stale annotates protocol reads that validate the
     *        data another way (generation flags); stale hits are
     *        counted but not reported.
     */
    void OnRead(const void* region, Domain domain, std::size_t offset,
                std::size_t n, bool from_host_cache, bool tolerate_stale,
                const char* site);

    /** The host cache filled @p line from the region. */
    void OnCacheFill(const void* region, std::size_t line);

    /** The host cache dropped @p line (clflush or hw invalidate). */
    void OnCacheDrop(const void* region, std::size_t line);

    /** Host stores to [offset, offset+n) parked in the WC buffer. */
    void OnWcBuffered(const void* region, std::size_t offset,
                      std::size_t n, const char* site);

    /** An sfence drained the buffered stores at [offset, offset+n). */
    void OnWcDrained(const void* region, std::size_t offset,
                     std::size_t n);

    /** The DMA engine landed @p n bytes at @p offset in the region. */
    void OnDmaWrite(const void* region, std::size_t offset, std::size_t n,
                    const char* site);

    /** An ordering point executed (msix, txn-commit, dma-completion). */
    void OnOrderingPoint(const char* what);

    /** Coherent shared-memory traffic (counted, never racy). */
    void OnShmAccess(std::size_t bytes);

    // --- Results ---

    const std::vector<Violation>& Violations() const
    {
        return violations_;
    }
    const CheckerStats& Stats() const { return stats_; }

    /** The most recent ordering point seen, for diagnostics. */
    const char* LastOrderingPoint() const { return last_ordering_point_; }

    /** When true, the first violation panics instead of recording. */
    void SetFailFast(bool on) { fail_fast_ = on; }

    /** Drops all recorded violations and line state. */
    void Clear();

  private:
    /** Shadow state for one 64-byte line of one region. */
    struct LineState {
        bool host_cached = false;
        bool stale = false;       ///< remote write since the last fill
        bool wc_pending = false;  ///< host WC stores not yet drained
        AccessSite last_remote_write;
        AccessSite last_wc_store;
    };

    /** Key for the (region, line) shadow map. */
    struct LineKey {
        const void* region;
        std::size_t line;

        bool
        operator==(const LineKey& other) const
        {
            return region == other.region && line == other.line;
        }
    };

    struct LineKeyHash {
        std::size_t
        operator()(const LineKey& key) const
        {
            return std::hash<const void*>()(key.region) ^
                   (key.line * 0x9e3779b97f4a7c15ULL);
        }
    };

    static std::size_t LineOf(std::size_t offset)
    {
        return offset / kLineSize;
    }

    LineState& State(const void* region, std::size_t line)
    {
        return lines_[LineKey{region, line}];
    }

    LineState* Find(const void* region, std::size_t line)
    {
        auto it = lines_.find(LineKey{region, line});
        return it == lines_.end() ? nullptr : &it->second;
    }

    void RecordRemoteWrite(const void* region, std::size_t offset,
                           std::size_t n, const AccessSite& site);
    void Report(ViolationKind kind, std::size_t line,
                const AccessSite& read, const AccessSite& write);

    sim::Simulator& sim_;
    std::unordered_map<LineKey, LineState, LineKeyHash> lines_;
    std::vector<Violation> violations_;
    std::unordered_set<std::uint64_t> reported_;  ///< dedup keys
    CheckerStats stats_;
    const char* last_ordering_point_ = "(none)";
    bool fail_fast_ = false;
};

}  // namespace wave::check
