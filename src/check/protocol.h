/**
 * @file
 * Runtime state-machine verifier for the ghOSt/Wave protocol contract.
 *
 * The coherence checker (coherence.h) catches byte-level staleness; it
 * cannot see *logical* protocol violations where every individual
 * access is coherent but the sequence breaks the contract the paper's
 * correctness argument rests on (§3.2, §4): transactions must move
 * created -> published -> delivered -> outcome-reported exactly once,
 * message streams must be received in seqnum order with no gaps, the
 * host must never report a commit against a thread view that its own
 * state machine says is stale, and a watchdog-expired agent must not
 * keep producing accepted decisions.
 *
 * This checker shadows those state machines from instrumentation hooks
 * in the txn endpoints, the queue endpoints, the kernel scheduling
 * class, and the watchdog. Every violation carries *both* participating
 * sites — the action that tripped the rule and the earlier action that
 * set the state it conflicts with — mirroring the coherence checker's
 * two-site attribution.
 *
 * All hooks compile away under -DWAVE_CHECK=OFF (see check/hooks.h).
 */
// wave-domain: neutral
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/coherence.h"  // for check::Domain
#include "sim/time.h"

namespace wave::sim {
class Simulator;
}

namespace wave::check {

/** Which protocol rule a violation broke. */
enum class ProtocolViolationKind {
    /** The same transaction id was published (TXNS_COMMIT) twice. */
    kDoubleCommit,
    /** Two agents created/claimed the same txn id on one queue. */
    kTxnClaimedTwice,
    /** The host reported an outcome for one txn twice. */
    kDuplicateOutcome,
    /** An outcome was reported for a txn the host never received. */
    kOutcomeBeforeDelivery,
    /** An outcome references a txn id that was never created. */
    kPhantomOutcome,
    /** A delivered/observed record references an unknown txn id. */
    kUnknownTxn,
    /** A stream receive went backwards (seqnum monotonicity). */
    kSeqnumRegression,
    /** A stream receive skipped seqnums (barrier-before-decision). */
    kBarrierSkip,
    /** A stream receive of a seqnum that was never sent. */
    kPhantomMessage,
    /** Commit reported OK against a thread view that was not runnable. */
    kStaleViewCommit,
    /** Commit reported OK for a thread already running elsewhere. */
    kDoubleClaim,
    /** A decision was accepted after watchdog expiry, before re-arm. */
    kCommitAfterTimeout,
};

const char* ProtocolViolationKindName(ProtocolViolationKind kind);

/** Kernel-visible thread state as the checker shadows it. */
enum class TaskShadow {
    kUnknown,
    kRunnable,
    kRunning,
    kBlocked,
    kDead,
};

const char* TaskShadowName(TaskShadow state);

/**
 * One side of a reported protocol violation.
 *
 * @note @p label must point at storage that outlives the checker
 *       (instrumentation sites pass string literals).
 */
struct ProtocolSite {
    const char* label = "?";  ///< e.g. "NicTxnEndpoint::TxnsCommit"
    Domain domain = Domain::kHost;
    std::uint64_t id = 0;   ///< txn id / seqnum / tid, per the kind
    sim::TimeNs when{};   ///< simulated time of the action
};

/** A detected protocol violation, with both participating sites. */
struct ProtocolViolation {
    ProtocolViolationKind kind;
    ProtocolSite current;   ///< the action that tripped the rule
    ProtocolSite previous;  ///< the earlier conflicting action

    /** One-line diagnostic, e.g. for test failure messages. */
    std::string Describe() const;
};

/** Aggregate instrumentation counters (cheap sanity metrics). */
struct ProtocolStats {
    std::uint64_t txns_created = 0;
    std::uint64_t txns_published = 0;
    std::uint64_t txns_delivered = 0;
    std::uint64_t outcomes_reported = 0;
    std::uint64_t outcomes_observed = 0;
    std::uint64_t stream_sends = 0;
    std::uint64_t stream_recvs = 0;
    std::uint64_t commits_checked = 0;
    std::uint64_t task_transitions = 0;
    std::uint64_t watchdog_feeds = 0;
};

/**
 * The protocol state-machine verifier.
 *
 * Scopes are opaque tags identifying one protocol instance — one
 * decision queue for the txn lifecycle, one message queue for a seqnum
 * stream, one KernelSched for the task-state machine, one Watchdog for
 * liveness — so independent enclaves sharing a checker never alias.
 */
class ProtocolChecker {
  public:
    explicit ProtocolChecker(sim::Simulator& sim) : sim_(sim) {}

    ProtocolChecker(const ProtocolChecker&) = delete;
    ProtocolChecker& operator=(const ProtocolChecker&) = delete;

    // --- Transaction lifecycle (scope = one decision queue) ---

    /** TXN_CREATE: an agent claimed @p id and staged a decision. */
    void OnTxnCreated(const void* scope, std::uint64_t id, Domain domain,
                      const char* site);

    /** TXNS_COMMIT: @p id was published to the host. */
    void OnTxnPublished(const void* scope, std::uint64_t id, Domain domain,
                        const char* site);

    /** POLL_TXNS: the host pulled @p id off the queue. */
    void OnTxnDelivered(const void* scope, std::uint64_t id, Domain domain,
                        const char* site);

    /** SET_TXNS_OUTCOMES: the host reported @p id's commit outcome. */
    void OnTxnOutcome(const void* scope, std::uint64_t id, Domain domain,
                      const char* site);

    /** POLL_TXNS_OUTCOMES: the agent observed @p id's outcome. */
    void OnTxnOutcomeObserved(const void* scope, std::uint64_t id,
                              Domain domain, const char* site);

    // --- Message streams (scope = one queue endpoint pair) ---

    /** The producer published the entry with absolute seqnum @p seq. */
    void OnStreamSend(const void* scope, std::uint64_t seq, Domain domain,
                      const char* site);

    /** The consumer accepted the entry with absolute seqnum @p seq. */
    void OnStreamRecv(const void* scope, std::uint64_t seq, Domain domain,
                      const char* site);

    // --- Kernel task state machine (scope = one KernelSched) ---

    /** The kernel moved @p tid to @p state (the source of truth, §6). */
    void OnTaskState(const void* scope, std::int64_t tid, TaskShadow state,
                     const char* site);

    /**
     * The host resolved a commit attempt. For committed run-decisions
     * the checker validates the thread's shadow state: committing a
     * thread that is already running is a double claim; committing one
     * that is blocked/dead/unknown means the host enforced a decision
     * against a stale view that its atomic commit should have failed.
     *
     * @param run_decision false for idle decisions (nothing to check).
     * @param committed whether the host reported kCommitted.
     */
    void OnCommitDecision(const void* scope, std::uint64_t txn_id,
                          std::int64_t tid, bool run_decision,
                          bool committed, const char* site);

    // --- Watchdog liveness (scope = one Watchdog) ---

    void OnWatchdogArmed(const void* scope, const char* site);
    void OnWatchdogExpired(const void* scope, const char* site);

    /** A decision from the agent was accepted as liveness evidence. */
    void OnWatchdogFed(const void* scope, const char* site);

    // --- Results ---

    const std::vector<ProtocolViolation>&
    Violations() const
    {
        return violations_;
    }
    const ProtocolStats& Stats() const { return stats_; }

    /** When true, the first violation panics instead of recording. */
    void SetFailFast(bool on) { fail_fast_ = on; }

    /** Drops all recorded violations and shadow state. */
    void Clear();

  private:
    /** Lifecycle shadow of one transaction. */
    struct TxnShadow {
        enum class Phase { kCreated, kPublished, kDelivered, kResolved };
        Phase phase = Phase::kCreated;
        ProtocolSite created;
        ProtocolSite last_event;  ///< most recent lifecycle action
    };

    /** Seqnum shadow of one stream. */
    struct StreamShadow {
        std::uint64_t next_send = 0;
        std::uint64_t next_recv = 0;
        ProtocolSite last_send;
        ProtocolSite last_recv;
    };

    /** Shadow of one kernel-visible thread. */
    struct TaskState {
        TaskShadow state = TaskShadow::kUnknown;
        ProtocolSite set_by;
    };

    /** Shadow of one watchdog. */
    struct DogShadow {
        bool armed = false;
        bool expired = false;
        ProtocolSite expired_at;
    };

    struct ScopedKey {
        const void* scope;
        std::uint64_t id;

        bool
        operator==(const ScopedKey& other) const
        {
            return scope == other.scope && id == other.id;
        }
    };

    struct ScopedKeyHash {
        std::size_t
        operator()(const ScopedKey& key) const
        {
            return std::hash<const void*>()(key.scope) ^
                   (key.id * 0x9e3779b97f4a7c15ULL);
        }
    };

    ProtocolSite Site(const char* label, Domain domain,
                      std::uint64_t id) const;

    void Report(ProtocolViolationKind kind, const ProtocolSite& current,
                const ProtocolSite& previous);

    sim::Simulator& sim_;
    std::unordered_map<ScopedKey, TxnShadow, ScopedKeyHash> txns_;
    std::unordered_map<const void*, StreamShadow> streams_;
    std::unordered_map<ScopedKey, TaskState, ScopedKeyHash> tasks_;
    std::unordered_map<const void*, DogShadow> dogs_;
    std::vector<ProtocolViolation> violations_;
    std::unordered_set<std::uint64_t> reported_;  ///< dedup keys
    ProtocolStats stats_;
    bool fail_fast_ = false;
};

}  // namespace wave::check
