// wave-domain: neutral
#include "offload/pipeline.h"

#include "sim/logging.h"

namespace wave::offload {

OffloadPipeline::OffloadPipeline(sim::Simulator& sim,
                                 const PipelineConfig& config)
    : sim_(sim), config_(config), chain_(config.chain)
{
    WAVE_ASSERT(config_.pool_size > 0);
    WAVE_ASSERT(config_.batch > 0);
    pool_.resize(config_.pool_size);
    free_.Reserve(config_.pool_size);
    for (std::size_t i = 0; i < config_.pool_size; ++i) {
        free_.PushBack(static_cast<std::uint32_t>(i));
    }
}

void
OffloadPipeline::AddWorker(machine::Cpu& cpu)
{
    WAVE_ASSERT(!started_, "AddWorker after Start");
    workers_.push_back(&cpu);
}

void
OffloadPipeline::Start()
{
    WAVE_ASSERT(!started_, "pipeline started twice");
    started_ = true;
    running_ = true;

    // Build segments: one for run-to-completion, else one contiguous
    // chunk per worker (never more segments than stages, sizes within
    // one of each other).
    const std::size_t stages = chain_.NumStages();
    std::size_t nseg = 1;
    if (config_.placement == Placement::kPipelined && !workers_.empty()) {
        nseg = workers_.size() < stages ? workers_.size() : stages;
    }
    segments_.clear();
    const std::size_t base = stages / nseg;
    const std::size_t rem = stages % nseg;
    std::size_t at = 0;
    for (std::size_t s = 0; s < nseg; ++s) {
        const std::size_t size = base + (s < rem ? 1 : 0);
        segments_.push_back(Segment{at, at + size});
        at += size;
    }
    rings_.resize(nseg);
    for (auto& ring : rings_) ring.Reserve(config_.pool_size);

    for (std::size_t w = 0; w < workers_.size(); ++w) {
        sim_.Spawn(RunWorker(*workers_[w], w % nseg));
    }
}

// wave-hot: begin
bool
OffloadPipeline::Inject(const PacketDesc& desc)
{
    WAVE_ASSERT(started_, "Inject before Start");
    if (free_.Empty()) {
        ++stats_.dropped;  // RX queue overrun: the NIC tail-drops
        return false;
    }
    const std::uint32_t idx = free_.PopFront();
    Packet& p = pool_[idx];
    p.id = next_id_++;
    p.tuple = desc.tuple;
    p.arrival = sim_.Now();
    p.acl_allowed = 1;
    p.http_ok = 0;
    p.backend = 0;
    p.scan_hits = 0;
    p.digest = 0;

    std::size_t len = desc.payload_len < kMaxPayloadBytes
                          ? desc.payload_len
                          : kMaxPayloadBytes;
    if (desc.http) {
        const std::size_t header = RenderHttpGet(
            desc.http_key, p.payload.data(), kMaxPayloadBytes);
        if (len < header) len = header;
        if (len > header) {
            FillRandomBytes(desc.payload_seed, p.payload.data() + header,
                            len - header);
        }
    } else {
        FillRandomBytes(desc.payload_seed, p.payload.data(), len);
    }
    p.payload_len = static_cast<std::uint32_t>(len);

    rings_[0].PushBack(idx);  // ring capacity == pool size: never grows
    ++stats_.injected;
    return true;
}

sim::DurationNs
OffloadPipeline::StepPacket(std::uint32_t idx, std::size_t segment,
                            bool* alive)
{
    const Segment& seg = segments_[segment];
    return chain_.ProcessRange(pool_[idx], seg.stage_begin, seg.stage_end,
                               alive);
}

void
OffloadPipeline::Route(std::uint32_t idx, std::size_t segment, bool alive)
{
    if (!alive) {
        Retire(idx, /*completed=*/false);
    } else if (segment + 1 < segments_.size()) {
        rings_[segment + 1].PushBack(idx);
    } else {
        Retire(idx, /*completed=*/true);
    }
}

void
OffloadPipeline::Retire(std::uint32_t idx, bool completed)
{
    const Packet& p = pool_[idx];
    if (completed) {
        ++stats_.completed;
        if (p.arrival >= window_begin_ && p.arrival < window_end_) {
            latency_.Record((sim_.Now() - p.arrival).ns());
        }
    } else {
        ++stats_.denied;
    }
    free_.PushBack(idx);
}
// wave-hot: end

// wave-lifetime(spawn-safe: the pipeline and its worker Cpus are owned by the experiment/test frame, which drives the simulator to completion before destroying either)
sim::Task<>
OffloadPipeline::RunWorker(machine::Cpu& cpu, std::size_t segment)
{
    while (running_) {
        std::size_t n = 0;
        while (n < config_.batch && !rings_[segment].Empty()) {
            const std::uint32_t idx = rings_[segment].PopFront();
            bool alive = true;
            const sim::DurationNs cost = StepPacket(idx, segment, &alive);
            co_await cpu.Work(cost);
            Route(idx, segment, alive);
            ++n;
        }
        if (n == 0) {
            co_await sim_.Delay(config_.idle_poll_ns);
        }
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
OffloadPipeline::RunColocatedSlice(machine::Cpu& cpu, std::size_t budget)
{
    if (!started_) co_return;
    std::size_t n = 0;
    while (n < budget && !rings_[0].Empty()) {
        const std::uint32_t idx = rings_[0].PopFront();
        bool alive = true;
        const sim::DurationNs cost = StepPacket(idx, 0, &alive);
        co_await cpu.Work(cost);
        Route(idx, 0, alive);
        ++n;
    }
}

}  // namespace wave::offload
