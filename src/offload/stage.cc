// wave-domain: neutral
#include "offload/stage.h"

#include "sim/logging.h"

namespace wave::offload {

namespace {

/** The fixed AES key/IV the encrypt stage uses (identity per chain). */
constexpr std::array<std::uint8_t, 16> kStageAesKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

}  // namespace

const char*
StageName(StageKind kind)
{
    switch (kind) {
      case StageKind::kFirewall:     return "firewall";
      case StageKind::kLoadBalancer: return "load_balancer";
      case StageKind::kHttpParser:   return "http_parser";
      case StageKind::kAesCtr:       return "aes_ctr";
      case StageKind::kSha256:       return "sha256";
      case StageKind::kRegexScan:    return "regex_scan";
      case StageKind::kMonitor:      return "monitor";
    }
    return "unknown";
}

std::vector<AclRule>
BuildDefaultAcl()
{
    // A plausible edge ACL: drop a blocklisted /16, drop telnet and a
    // debug port range, allow an allowlisted management /24 ahead of
    // the port denies, default-allow the rest.
    std::vector<AclRule> rules;
    rules.push_back(AclRule{.src_addr = 0x0a630000,  // allow 10.99.0.0/24
                            .src_mask = 0xffffff00,
                            .allow = true});
    rules.push_back(AclRule{.src_addr = 0xc6120000,  // deny 198.18.0.0/16
                            .src_mask = 0xffff0000,
                            .allow = false});
    rules.push_back(AclRule{.dst_port_lo = 23,  // deny telnet
                            .dst_port_hi = 23,
                            .allow = false});
    rules.push_back(AclRule{.dst_port_lo = 9000,  // deny debug range
                            .dst_port_hi = 9099,
                            .proto = 6,
                            .allow = false});
    return rules;
}

std::vector<std::string>
BuildDefaultSignatures()
{
    // IDS-style literal signatures: worm shellcode markers, traversal,
    // and scripting probes — the classic Snort literal pre-filter set.
    return {"/etc/passwd", "cmd.exe", "<script>", "../..",
            "SELECT *",    "\x90\x90\x90\x90"};
}

StageChain::StageChain(const StageChainConfig& config)
    : order_(config.stages),
      costs_(config.costs),
      touch_payload_(config.touch_payload),
      num_backends_(config.num_backends),
      acl_(config.acl_rules.empty() ? BuildDefaultAcl() : config.acl_rules,
           config.default_allow),
      rss_key_(DefaultRssKey()),
      aes_(kStageAesKey),
      scanner_(config.scan_patterns.empty() ? BuildDefaultSignatures()
                                            : config.scan_patterns),
      cms_(/*width_log2=*/12, /*depth=*/4),
      hll_(/*precision_bits=*/10)
{
    WAVE_ASSERT(!order_.empty(), "stage chain with no stages");
    WAVE_ASSERT(num_backends_ > 0);
    connections_.reserve(config.expected_flows);
}

// wave-hot: begin
const StageCost&
StageChain::CostOf(StageKind kind) const
{
    switch (kind) {
      case StageKind::kFirewall:     return costs_.firewall;
      case StageKind::kLoadBalancer: return costs_.load_balancer;
      case StageKind::kHttpParser:   return costs_.http_parser;
      case StageKind::kAesCtr:       return costs_.aes_ctr;
      case StageKind::kSha256:       return costs_.sha256;
      case StageKind::kRegexScan:    return costs_.regex_scan;
      case StageKind::kMonitor:      return costs_.monitor;
    }
    return costs_.firewall;
}

sim::DurationNs
StageChain::ProcessRange(Packet& p, std::size_t begin, std::size_t end,
                         bool* alive)
{
    *alive = true;
    sim::DurationNs total = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const StageKind kind = order_[i];
        total += StageCostNs(CostOf(kind), p.payload_len);
        if (!RunStage(kind, p)) {
            *alive = false;
            break;
        }
    }
    return total;
}

bool
StageChain::RunStage(StageKind kind, Packet& p)
{
    StageStats& st = MutableStats(kind);
    ++st.packets;
    st.bytes += p.payload_len;
    switch (kind) {
      case StageKind::kFirewall: {
        const AclTable::Verdict v = acl_.Lookup(p.tuple);
        p.acl_allowed = v.allow ? 1 : 0;
        if (!v.allow) {
            ++st.denied;
            return false;
        }
        return true;
      }
      case StageKind::kLoadBalancer: {
        const std::uint64_t key = FlowKey(p.tuple);
        const auto it = connections_.find(key);
        if (it != connections_.end()) {
            p.backend = it->second;  // flow stickiness
            ++st.sticky_hits;
        } else {
            const std::uint32_t h = ToeplitzHashTuple(rss_key_, p.tuple);
            p.backend = static_cast<std::uint16_t>(h % num_backends_);
            connections_.emplace(key, p.backend);
            ++st.new_flows;
        }
        return true;
      }
      case StageKind::kHttpParser: {
        if (touch_payload_) {
            HttpRequest req;
            p.http_ok = ParseHttpRequest(p.payload.data(), p.payload_len,
                                         &req)
                            ? 1
                            : 0;
            if (p.http_ok == 0) ++st.parse_errors;
        }
        return true;
      }
      case StageKind::kAesCtr: {
        if (touch_payload_) {
            std::array<std::uint8_t, 16> ctr{};
            for (int b = 0; b < 8; ++b) {
                ctr[static_cast<std::size_t>(b)] =
                    static_cast<std::uint8_t>(p.id >> (56 - 8 * b));
            }
            aes_.CtrCrypt(ctr, p.payload.data(), p.payload_len);
        }
        return true;
      }
      case StageKind::kSha256: {
        if (touch_payload_) {
            const auto digest =
                Sha256::Digest(p.payload.data(), p.payload_len);
            p.digest = (static_cast<std::uint32_t>(digest[0]) << 24) |
                       (static_cast<std::uint32_t>(digest[1]) << 16) |
                       (static_cast<std::uint32_t>(digest[2]) << 8) |
                       static_cast<std::uint32_t>(digest[3]);
        }
        return true;
      }
      case StageKind::kRegexScan: {
        if (touch_payload_) {
            const std::uint32_t hits =
                scanner_.Scan(p.payload.data(), p.payload_len);
            p.scan_hits = static_cast<std::uint16_t>(
                hits > 0xffff ? 0xffff : hits);
            st.scan_hits += hits;
        }
        return true;
      }
      case StageKind::kMonitor: {
        const std::uint64_t key = FlowKey(p.tuple);
        cms_.Add(key);
        hll_.Add(Mix64(key));
        return true;
      }
    }
    return true;
}
// wave-hot: end

}  // namespace wave::offload
