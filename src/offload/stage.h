/**
 * @file
 * Composable datapath stages (wave::offload).
 *
 * A StageChain applies an ordered list of StageKinds to each packet,
 * charging the calibrated cost from offload/costs.h per application and
 * running the genuine kernel from offload/kernels.h on the packet's
 * bytes/metadata. The chain holds all kernel state (ACL table,
 * connection table, AES schedule, scanner automaton, sketches) in one
 * place so the pipeline can consolidate any stage subset onto any core
 * — the stage-placement axis the Meili/Mulan line of work sweeps.
 *
 * Only the firewall terminates a packet early (deny → the packet exits
 * the chain); every other stage annotates and passes through. With a
 * deny-free ACL, per-stage packet counts are invariant under chain
 * reordering — the property test in tests/offload_test.cc pins that.
 *
 * Construction allocates (tables, automaton, sketch arrays, connection
 * table reserve); Process()/RunStage() are allocation-free once the
 * connection table has seen the flow universe.
 */
// wave-domain: neutral
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "offload/costs.h"
#include "offload/kernels.h"
#include "offload/packet.h"
#include "sim/time.h"

namespace wave::offload {

/** The stage catalog (ROADMAP item 3, borrowed from Meili/Mulan). */
enum class StageKind : std::uint8_t {
    kFirewall,      ///< ACL first-match over the 5-tuple
    kLoadBalancer,  ///< connection table + Toeplitz backend pick
    kHttpParser,    ///< request-line and header scan
    kAesCtr,        ///< AES-128-CTR over payload bytes
    kSha256,        ///< SHA-256 over payload bytes
    kRegexScan,     ///< literal-automaton (Aho-Corasick) pre-filter
    kMonitor,       ///< count-min sketch + HyperLogLog update
};

inline constexpr std::array<StageKind, 7> kAllStages = {
    StageKind::kFirewall,  StageKind::kLoadBalancer,
    StageKind::kHttpParser, StageKind::kAesCtr,
    StageKind::kSha256,     StageKind::kRegexScan,
    StageKind::kMonitor,
};

const char* StageName(StageKind kind);

/** Per-stage counters (all stages count packets/bytes seen). */
struct StageStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t denied = 0;        ///< firewall
    std::uint64_t parse_errors = 0;  ///< HTTP parser
    std::uint64_t scan_hits = 0;     ///< regex scan (total occurrences)
    std::uint64_t new_flows = 0;     ///< load balancer (table inserts)
    std::uint64_t sticky_hits = 0;   ///< load balancer (table hits)
};

/** Chain configuration: order, costs, and kernel shapes. */
struct StageChainConfig {
    /** Stage order; duplicates are allowed (a stage can run twice). */
    std::vector<StageKind> stages{kAllStages.begin(), kAllStages.end()};

    OffloadCosts costs;

    /** Load-balancer backend pool size. */
    std::uint16_t num_backends = 8;

    /** Connection-table reserve (flows expected in steady state). */
    std::size_t expected_flows = 4096;

    /** Firewall default action when no rule matches. */
    bool default_allow = true;

    /** ACL rules; empty selects a small built-in rule set. */
    std::vector<AclRule> acl_rules;

    /** Scan patterns; empty selects the built-in signature set. */
    std::vector<std::string> scan_patterns;

    /**
     * Run the byte-touching kernels (AES/SHA/scan/parse) on the
     * payload. Off = cost model only; on (default) keeps them honest.
     */
    bool touch_payload = true;
};

/** The default deny rules the built-in ACL ships with. */
std::vector<AclRule> BuildDefaultAcl();

/** The built-in signature set for the scan stage. */
std::vector<std::string> BuildDefaultSignatures();

/** An ordered, stateful application of the stage catalog. */
class StageChain {
  public:
    explicit StageChain(const StageChainConfig& config);

    /**
     * Runs stages [begin, end) of the configured order on @p p and
     * returns the summed reference-ns cost. Sets @p *alive false when
     * the firewall denied the packet (the packet exits the chain).
     */
    sim::DurationNs ProcessRange(Packet& p, std::size_t begin,
                                 std::size_t end, bool* alive);

    /** Full-chain convenience: ProcessRange over every stage. */
    sim::DurationNs
    Process(Packet& p, bool* alive)
    {
        return ProcessRange(p, 0, order_.size(), alive);
    }

    std::size_t NumStages() const { return order_.size(); }
    StageKind KindAt(std::size_t i) const { return order_[i]; }

    const StageStats& Stats(StageKind kind) const
    {
        return stats_[static_cast<std::size_t>(kind)];
    }

    const CountMinSketch& FlowSketch() const { return cms_; }
    const HyperLogLog& FlowCardinality() const { return hll_; }
    std::size_t ConnectionCount() const { return connections_.size(); }

  private:
    /** Applies one stage; returns false when the packet is terminated. */
    bool RunStage(StageKind kind, Packet& p);

    /** Calibrated cost entry for @p kind. */
    const StageCost& CostOf(StageKind kind) const;

    StageStats& MutableStats(StageKind kind)
    {
        return stats_[static_cast<std::size_t>(kind)];
    }

    std::vector<StageKind> order_;
    OffloadCosts costs_;
    bool touch_payload_;
    std::uint16_t num_backends_;

    AclTable acl_;
    ToeplitzKey rss_key_;
    // Flow key -> backend. Never iterated (W205); reserved up front so
    // steady-state lookups and warm-universe inserts stay rehash-free.
    std::unordered_map<std::uint64_t, std::uint16_t> connections_;
    Aes128 aes_;
    SignatureScanner scanner_;
    CountMinSketch cms_;
    HyperLogLog hll_;

    std::array<StageStats, 7> stats_{};
};

}  // namespace wave::offload
