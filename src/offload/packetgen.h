/**
 * @file
 * Open-loop packet generator feeding the offload pipeline.
 *
 * Poisson arrivals at a configured aggregate rate; flow popularity is
 * Zipf over a fixed flow universe (no new-flow churn in steady state,
 * so the connection table warms once); payload sizes are uniform in a
 * range; a configurable fraction of packets carry a rendered HTTP GET
 * (the rest are opaque filler). Open loop means drops at the pool are
 * *counted, not back-pressured* — exactly how an RX ring sheds load.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>

#include "offload/pipeline.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace wave::offload {

struct PacketGenConfig {
    /** Aggregate offered packet rate. <= 0 disables the generator. */
    double rate_pps = 200'000;

    /** Fixed flow universe size (Zipf-distributed popularity). */
    std::size_t flows = 256;
    double zipf_theta = 0.9;

    /** Payload length range (uniform, inclusive). */
    std::uint32_t payload_min = 64;
    std::uint32_t payload_max = 1024;

    /** Fraction of packets carrying a rendered HTTP request. */
    double http_fraction = 0.75;

    /** No arrivals at or after this time. */
    sim::TimeNs end_time{};

    std::uint64_t seed = 1;
};

/** Deterministic 5-tuple for flow @p flow of the generator universe. */
FiveTuple FlowTuple(std::size_t flow);

/** The open-loop arrival process (spawn on the simulator). */
sim::Task<> RunPacketGenerator(sim::Simulator& sim,
                               OffloadPipeline& pipeline,
                               PacketGenConfig config);

}  // namespace wave::offload
