// wave-domain: neutral
#include "offload/packetgen.h"

namespace wave::offload {

FiveTuple
FlowTuple(std::size_t flow)
{
    // Deterministic synthetic universe: clients in 10.x.y.z hitting one
    // VIP, source ports spread so Toeplitz/connection keys differ.
    FiveTuple t;
    const auto f = static_cast<std::uint32_t>(flow);
    t.src_ip = 0x0a000000u | ((f & 0xffffu) << 8) | ((f >> 16) & 0xffu);
    t.dst_ip = 0xc0a80001u;  // 192.168.0.1 (the load-balancer VIP)
    t.src_port = static_cast<std::uint16_t>(1024 + (f * 7919) % 60000);
    t.dst_port = 80;
    t.proto = 6;
    return t;
}

// wave-lifetime(spawn-safe: sim and the pipeline are owned by the caller's frame, which runs the simulator to completion before destroying them; config is taken by value)
sim::Task<>
RunPacketGenerator(sim::Simulator& sim, OffloadPipeline& pipeline,
                   PacketGenConfig config)
{
    if (config.rate_pps <= 0) co_return;
    // Distinct streams so tuning the payload mix never perturbs the
    // arrival process (same discipline as the workload load generator).
    sim::Rng arrivals(sim::StreamSeed(config.seed, "pkt-arrivals"));
    sim::Rng shape(sim::StreamSeed(config.seed, "pkt-shape"));
    const sim::ZipfDistribution zipf(config.flows, config.zipf_theta);
    const double mean_gap_ns = 1e9 / config.rate_pps;

    while (sim.Now() < config.end_time) {
        const double gap = arrivals.NextExponential(mean_gap_ns);
        co_await sim.Delay(sim::DurationNs::FromDouble(gap));
        if (sim.Now() >= config.end_time) break;

        const std::size_t flow = zipf.Sample(shape);
        PacketDesc desc;
        desc.tuple = FlowTuple(flow);
        desc.payload_len = static_cast<std::uint32_t>(shape.NextInRange(
            config.payload_min, config.payload_max));
        desc.payload_seed = shape.Next();
        desc.http = shape.NextBernoulli(config.http_fraction);
        desc.http_key = static_cast<std::uint32_t>(flow);
        pipeline.Inject(desc);  // false = counted RX drop (open loop)
    }
}

}  // namespace wave::offload
