// wave-domain: neutral
#include "offload/kernels.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "sim/logging.h"

namespace wave::offload {

// ---------------------------------------------------------------------------
// Toeplitz
// ---------------------------------------------------------------------------

ToeplitzKey
DefaultRssKey()
{
    // The 40-byte key Microsoft published with the original RSS spec;
    // shipped as the default by most NIC drivers since.
    return ToeplitzKey{{0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
                        0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
                        0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
                        0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
                        0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa}};
}

// wave-hot: begin
std::uint32_t
ToeplitzHash(const ToeplitzKey& key, const std::uint8_t* data,
             std::size_t len)
{
    WAVE_ASSERT(len <= 36, "Toeplitz input exceeds key window");
    // The hash XORs in the 32-bit key window aligned at each *set* bit
    // of the input. Maintain the window in the top 32 bits of a 64-bit
    // register and refill 8 key bits per input byte.
    std::uint64_t window =
        (static_cast<std::uint64_t>(key.bytes[0]) << 56) |
        (static_cast<std::uint64_t>(key.bytes[1]) << 48) |
        (static_cast<std::uint64_t>(key.bytes[2]) << 40) |
        (static_cast<std::uint64_t>(key.bytes[3]) << 32);
    std::uint32_t hash = 0;
    for (std::size_t i = 0; i < len; ++i) {
        window |= static_cast<std::uint64_t>(key.bytes[i + 4]) << 24;
        const std::uint8_t byte = data[i];
        for (int bit = 7; bit >= 0; --bit) {
            if ((byte >> bit) & 1) {
                hash ^= static_cast<std::uint32_t>(window >> 32);
            }
            window <<= 1;
        }
    }
    return hash;
}

std::uint32_t
ToeplitzHashTuple(const ToeplitzKey& key, const FiveTuple& t)
{
    // Canonical RSS input layout: src ip, dst ip, src port, dst port,
    // all big-endian.
    std::uint8_t in[12];
    in[0] = static_cast<std::uint8_t>(t.src_ip >> 24);
    in[1] = static_cast<std::uint8_t>(t.src_ip >> 16);
    in[2] = static_cast<std::uint8_t>(t.src_ip >> 8);
    in[3] = static_cast<std::uint8_t>(t.src_ip);
    in[4] = static_cast<std::uint8_t>(t.dst_ip >> 24);
    in[5] = static_cast<std::uint8_t>(t.dst_ip >> 16);
    in[6] = static_cast<std::uint8_t>(t.dst_ip >> 8);
    in[7] = static_cast<std::uint8_t>(t.dst_ip);
    in[8] = static_cast<std::uint8_t>(t.src_port >> 8);
    in[9] = static_cast<std::uint8_t>(t.src_port);
    in[10] = static_cast<std::uint8_t>(t.dst_port >> 8);
    in[11] = static_cast<std::uint8_t>(t.dst_port);
    return ToeplitzHash(key, in, sizeof(in));
}
// wave-hot: end

// ---------------------------------------------------------------------------
// AES-128
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

// wave-hot: begin
inline std::uint8_t
XTime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}
// wave-hot: end

}  // namespace

Aes128::Aes128(const std::array<std::uint8_t, 16>& key)
{
    // FIPS-197 key expansion, byte-oriented: 11 round keys of 16 bytes.
    std::memcpy(round_keys_.data(), key.data(), 16);
    for (int i = 4; i < 44; ++i) {
        std::uint8_t t[4];
        std::memcpy(t, &round_keys_[static_cast<std::size_t>(i - 1) * 4], 4);
        if (i % 4 == 0) {
            const std::uint8_t t0 = t[0];  // RotWord + SubWord + Rcon
            t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^
                                             kRcon[i / 4 - 1]);
            t[1] = kSbox[t[2]];
            t[2] = kSbox[t[3]];
            t[3] = kSbox[t0];
        }
        for (int b = 0; b < 4; ++b) {
            round_keys_[static_cast<std::size_t>(i) * 4 +
                        static_cast<std::size_t>(b)] =
                round_keys_[static_cast<std::size_t>(i - 4) * 4 +
                            static_cast<std::size_t>(b)] ^
                t[b];
        }
    }
}

// wave-hot: begin
void
Aes128::EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    // State is column-major per FIPS-197: s[r][c] = a[c*4 + r], which
    // is exactly the input byte order.
    std::uint8_t a[16];
    for (int i = 0; i < 16; ++i) a[i] = in[i] ^ round_keys_[i];

    for (int round = 1; round <= 10; ++round) {
        // SubBytes + ShiftRows fused: row r rotates left by r columns.
        std::uint8_t b[16];
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r) {
                b[c * 4 + r] = kSbox[a[((c + r) % 4) * 4 + r]];
            }
        }
        if (round < 10) {
            // MixColumns over each column of b.
            for (int c = 0; c < 4; ++c) {
                const std::uint8_t* col = &b[c * 4];
                const std::uint8_t all =
                    col[0] ^ col[1] ^ col[2] ^ col[3];
                const std::uint8_t c0 = col[0];
                a[c * 4 + 0] = col[0] ^ all ^ XTime(col[0] ^ col[1]);
                a[c * 4 + 1] = col[1] ^ all ^ XTime(col[1] ^ col[2]);
                a[c * 4 + 2] = col[2] ^ all ^ XTime(col[2] ^ col[3]);
                a[c * 4 + 3] = col[3] ^ all ^ XTime(col[3] ^ c0);
            }
        } else {
            std::memcpy(a, b, 16);
        }
        const std::uint8_t* rk =
            &round_keys_[static_cast<std::size_t>(round) * 16];
        for (int i = 0; i < 16; ++i) a[i] ^= rk[i];
    }
    std::memcpy(out, a, 16);
}

void
Aes128::CtrCrypt(const std::array<std::uint8_t, 16>& counter,
                 std::uint8_t* data, std::size_t len) const
{
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter.data(), 16);
    std::uint8_t keystream[16];
    std::size_t off = 0;
    while (off < len) {
        EncryptBlock(ctr, keystream);
        const std::size_t n = len - off < 16 ? len - off : 16;
        for (std::size_t i = 0; i < n; ++i) {
            data[off + i] ^= keystream[i];
        }
        off += n;
        // 128-bit big-endian increment.
        for (int i = 15; i >= 0; --i) {
            if (++ctr[i] != 0) break;
        }
    }
}
// wave-hot: end

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kShaK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// wave-hot: begin
inline std::uint32_t
Rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}
// wave-hot: end

}  // namespace

void
Sha256::Reset()
{
    state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
              0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    total_len_ = 0;
    buffered_ = 0;
}

// wave-hot: begin
void
Sha256::Compress(const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^
                                 (w[i - 15] >> 3);
        const std::uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^
                                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kShaK[i] + w[i];
        const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::Update(const std::uint8_t* data, std::size_t len)
{
    total_len_ += len;
    while (len > 0) {
        if (buffered_ == 0 && len >= 64) {
            Compress(data);
            data += 64;
            len -= 64;
            continue;
        }
        const std::size_t n = len < 64 - buffered_ ? len : 64 - buffered_;
        std::memcpy(buffer_.data() + buffered_, data, n);
        buffered_ += n;
        data += n;
        len -= n;
        if (buffered_ == 64) {
            Compress(buffer_.data());
            buffered_ = 0;
        }
    }
}

std::array<std::uint8_t, 32>
Sha256::Finish()
{
    const std::uint64_t bit_len = total_len_ * 8;
    const std::uint8_t pad = 0x80;
    Update(&pad, 1);
    const std::uint8_t zero = 0;
    while (buffered_ != 56) Update(&zero, 1);
    // Length bytes complete the final block directly (bit_len snapshots
    // the message length from before the padding Updates above).
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    std::memcpy(buffer_.data() + 56, len_be, 8);
    Compress(buffer_.data());
    std::array<std::uint8_t, 32> digest;
    for (int i = 0; i < 8; ++i) {
        digest[static_cast<std::size_t>(i * 4)] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >>
                                      24);
        digest[static_cast<std::size_t>(i * 4 + 1)] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >>
                                      16);
        digest[static_cast<std::size_t>(i * 4 + 2)] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >>
                                      8);
        digest[static_cast<std::size_t>(i * 4 + 3)] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
    }
    return digest;
}
// wave-hot: end

std::array<std::uint8_t, 32>
Sha256::Digest(const std::uint8_t* data, std::size_t len)
{
    Sha256 h;
    h.Update(data, len);
    return h.Finish();
}

// ---------------------------------------------------------------------------
// ACL
// ---------------------------------------------------------------------------

AclTable::AclTable(std::vector<AclRule> rules, bool default_allow)
    : rules_(std::move(rules)), default_allow_(default_allow)
{}

// wave-hot: begin
AclTable::Verdict
AclTable::Lookup(const FiveTuple& t) const
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AclRule& r = rules_[i];
        if ((t.src_ip & r.src_mask) != (r.src_addr & r.src_mask)) continue;
        if ((t.dst_ip & r.dst_mask) != (r.dst_addr & r.dst_mask)) continue;
        if (t.dst_port < r.dst_port_lo || t.dst_port > r.dst_port_hi) {
            continue;
        }
        if (r.proto != 0 && r.proto != t.proto) continue;
        return Verdict{r.allow, static_cast<int>(i)};
    }
    return Verdict{default_allow_, -1};
}
// wave-hot: end

// ---------------------------------------------------------------------------
// HTTP parser
// ---------------------------------------------------------------------------

// wave-hot: begin
bool
ParseHttpRequest(const std::uint8_t* data, std::size_t len,
                 HttpRequest* out)
{
    *out = HttpRequest{};
    std::size_t i = 0;

    // Method token up to the first space.
    const std::size_t method_begin = i;
    while (i < len && data[i] != ' ' && data[i] != '\r' && data[i] != '\n') {
        ++i;
    }
    if (i >= len || data[i] != ' ' || i == method_begin) return false;
    const std::size_t method_len = i - method_begin;
    const char* m = reinterpret_cast<const char*>(data + method_begin);
    if (method_len == 3 && std::memcmp(m, "GET", 3) == 0) {
        out->method = HttpMethod::kGet;
    } else if (method_len == 4 && std::memcmp(m, "POST", 4) == 0) {
        out->method = HttpMethod::kPost;
    } else if (method_len == 3 && std::memcmp(m, "PUT", 3) == 0) {
        out->method = HttpMethod::kPut;
    } else if (method_len == 6 && std::memcmp(m, "DELETE", 6) == 0) {
        out->method = HttpMethod::kDelete;
    } else if (method_len == 4 && std::memcmp(m, "HEAD", 4) == 0) {
        out->method = HttpMethod::kHead;
    } else {
        out->method = HttpMethod::kOther;
    }
    ++i;  // consume the space

    // URI token: non-empty, no embedded spaces or CR/LF.
    const std::size_t uri_begin = i;
    while (i < len && data[i] != ' ' && data[i] != '\r' && data[i] != '\n') {
        ++i;
    }
    if (i >= len || data[i] != ' ' || i == uri_begin) return false;
    out->uri_begin = static_cast<std::uint16_t>(uri_begin);
    out->uri_len = static_cast<std::uint16_t>(i - uri_begin);
    ++i;

    // "HTTP/1.x" followed by CRLF.
    if (len - i < 8 || std::memcmp(data + i, "HTTP/1.", 7) != 0) {
        return false;
    }
    const std::uint8_t minor = data[i + 7];
    if (minor < '0' || minor > '9') return false;
    out->version_minor = static_cast<std::uint8_t>(minor - '0');
    i += 8;
    if (len - i < 2 || data[i] != '\r' || data[i + 1] != '\n') return false;
    i += 2;

    // Headers until the empty line.
    while (true) {
        if (len - i >= 2 && data[i] == '\r' && data[i + 1] == '\n') {
            out->header_bytes = static_cast<std::uint16_t>(i + 2);
            return true;  // end of headers
        }
        // "name: value\r\n" — a colon must appear before the CR.
        std::size_t colon = i;
        while (colon < len && data[colon] != ':' && data[colon] != '\r' &&
               data[colon] != '\n') {
            ++colon;
        }
        if (colon >= len || data[colon] != ':' || colon == i) return false;
        std::size_t eol = colon + 1;
        while (eol < len && data[eol] != '\r' && data[eol] != '\n') ++eol;
        if (len - eol < 2 || data[eol] != '\r' || data[eol + 1] != '\n') {
            return false;
        }
        // Content-Length is the one header value the stages consume.
        const std::size_t name_len = colon - i;
        if (name_len == 14) {
            char lower[14];
            for (std::size_t k = 0; k < 14; ++k) {
                const std::uint8_t ch = data[i + k];
                lower[k] = static_cast<char>(
                    ch >= 'A' && ch <= 'Z' ? ch + ('a' - 'A') : ch);
            }
            if (std::memcmp(lower, "content-length", 14) == 0) {
                std::uint32_t v = 0;
                for (std::size_t k = colon + 1; k < eol; ++k) {
                    const std::uint8_t ch = data[k];
                    if (ch == ' ') continue;
                    if (ch < '0' || ch > '9') {
                        v = 0;
                        break;
                    }
                    v = v * 10 + (ch - '0');
                }
                out->content_length = v;
            }
        }
        ++out->num_headers;
        i = eol + 2;
        if (i >= len) return false;  // ran out before the empty line
    }
}
// wave-hot: end

// ---------------------------------------------------------------------------
// SignatureScanner
// ---------------------------------------------------------------------------

SignatureScanner::SignatureScanner(const std::vector<std::string>& patterns)
{
    // Trie construction (goto function).
    struct Node {
        std::array<std::uint32_t, 256> next;
        std::uint32_t fail = 0;
        std::uint32_t ends = 0;
        Node() { next.fill(0); }
    };
    std::vector<Node> trie(1);
    for (const std::string& p : patterns) {
        WAVE_ASSERT(!p.empty(), "empty scan pattern");
        std::uint32_t s = 0;
        for (const char ch : p) {
            const auto b = static_cast<std::uint8_t>(ch);
            if (trie[s].next[b] == 0) {
                trie[s].next[b] = static_cast<std::uint32_t>(trie.size());
                trie.emplace_back();
            }
            s = trie[s].next[b];
        }
        ++trie[s].ends;
    }

    // BFS: fail links, output aggregation, and goto completion, turning
    // the trie into a dense DFA (next_ fully defined for every byte).
    std::vector<std::uint32_t> queue;
    queue.reserve(trie.size());
    for (int b = 0; b < 256; ++b) {
        const std::uint32_t s = trie[0].next[static_cast<std::size_t>(b)];
        if (s != 0) queue.push_back(s);  // fail already 0
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const std::uint32_t u = queue[qi];
        trie[u].ends += trie[trie[u].fail].ends;
        for (int b = 0; b < 256; ++b) {
            const auto bi = static_cast<std::size_t>(b);
            const std::uint32_t v = trie[u].next[bi];
            if (v != 0) {
                trie[v].fail = trie[trie[u].fail].next[bi];
                queue.push_back(v);
            } else {
                trie[u].next[bi] = trie[trie[u].fail].next[bi];
            }
        }
    }

    next_.resize(trie.size() * 256);
    out_count_.resize(trie.size());
    for (std::size_t s = 0; s < trie.size(); ++s) {
        std::memcpy(&next_[s * 256], trie[s].next.data(),
                    256 * sizeof(std::uint32_t));
        out_count_[s] = trie[s].ends;
    }
}

// wave-hot: begin
std::uint32_t
SignatureScanner::Scan(const std::uint8_t* data, std::size_t len) const
{
    std::uint32_t state = 0;
    std::uint32_t hits = 0;
    const std::uint32_t* next = next_.data();
    const std::uint32_t* out = out_count_.data();
    for (std::size_t i = 0; i < len; ++i) {
        state = next[state * 256 + data[i]];
        hits += out[state];
    }
    return hits;
}
// wave-hot: end

// ---------------------------------------------------------------------------
// CountMinSketch
// ---------------------------------------------------------------------------

CountMinSketch::CountMinSketch(std::size_t width_log2, std::size_t depth)
    : mask_((static_cast<std::size_t>(1) << width_log2) - 1), depth_(depth)
{
    WAVE_ASSERT(depth_ > 0);
    cells_.assign((mask_ + 1) * depth_, 0);
}

// wave-hot: begin
std::size_t
CountMinSketch::RowIndex(std::size_t row, std::uint64_t key) const
{
    // Independent-enough row hashes: splitmix of key xor a row tag.
    const std::uint64_t h =
        Mix64(key ^ (0xa076'1d64'78bd'642full * (row + 1)));
    return row * (mask_ + 1) + (static_cast<std::size_t>(h) & mask_);
}

void
CountMinSketch::Add(std::uint64_t key, std::uint64_t count)
{
    for (std::size_t row = 0; row < depth_; ++row) {
        cells_[RowIndex(row, key)] += count;
    }
    total_ += count;
}

std::uint64_t
CountMinSketch::Estimate(std::uint64_t key) const
{
    std::uint64_t best = ~0ull;
    for (std::size_t row = 0; row < depth_; ++row) {
        const std::uint64_t v = cells_[RowIndex(row, key)];
        best = v < best ? v : best;
    }
    return best;
}
// wave-hot: end

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

HyperLogLog::HyperLogLog(int precision_bits)
    : precision_bits_(precision_bits)
{
    WAVE_ASSERT(precision_bits_ >= 4 && precision_bits_ <= 16);
    registers_.assign(static_cast<std::size_t>(1) << precision_bits_, 0);
}

// wave-hot: begin
void
HyperLogLog::Add(std::uint64_t hash)
{
    const std::size_t idx =
        static_cast<std::size_t>(hash >> (64 - precision_bits_));
    // Rank of the remaining bits: leading zeros + 1, with the sentinel
    // bit keeping all-zero suffixes finite.
    const std::uint64_t rest = (hash << precision_bits_) | 1;
    const auto rank = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[idx]) registers_[idx] = rank;
}
// wave-hot: end

double
HyperLogLog::Estimate() const
{
    const double m = static_cast<double>(registers_.size());
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double inv_sum = 0.0;
    std::size_t zeros = 0;
    for (const std::uint8_t reg : registers_) {
        inv_sum += 1.0 / static_cast<double>(1ull << reg);
        if (reg == 0) ++zeros;
    }
    double estimate = alpha * m * m / inv_sum;
    if (estimate <= 2.5 * m && zeros > 0) {
        // Small-range correction: linear counting over empty registers.
        estimate = m * std::log(m / static_cast<double>(zeros));
    }
    return estimate;
}

// ---------------------------------------------------------------------------
// Payload materialization
// ---------------------------------------------------------------------------

// wave-hot: begin
void
FillRandomBytes(std::uint64_t seed, std::uint8_t* out, std::size_t len)
{
    // xorshift64* stream, 8 bytes per draw; seed 0 is remapped.
    std::uint64_t x = seed ? seed : 0x9e3779b97f4a7c15ull;
    std::size_t i = 0;
    while (i < len) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        const std::uint64_t word = x * 0x2545f4914f6cdd1dull;
        const std::size_t n = len - i < 8 ? len - i : 8;
        for (std::size_t b = 0; b < n; ++b) {
            out[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
        }
        i += n;
    }
}

std::size_t
RenderHttpGet(std::uint32_t key, std::uint8_t* out, std::size_t cap)
{
    static constexpr char kPrefix[] = "GET /kv/";
    static constexpr char kSuffix[] =
        " HTTP/1.1\r\nHost: wave-lb\r\nUser-Agent: pktgen\r\n"
        "Accept: */*\r\n\r\n";
    char digits[10];
    std::size_t nd = 0;
    do {
        digits[nd++] = static_cast<char>('0' + key % 10);
        key /= 10;
    } while (key != 0);
    const std::size_t total =
        (sizeof(kPrefix) - 1) + nd + (sizeof(kSuffix) - 1);
    if (total > cap) return 0;
    std::size_t i = 0;
    std::memcpy(out + i, kPrefix, sizeof(kPrefix) - 1);
    i += sizeof(kPrefix) - 1;
    while (nd > 0) out[i++] = static_cast<std::uint8_t>(digits[--nd]);
    std::memcpy(out + i, kSuffix, sizeof(kSuffix) - 1);
    i += sizeof(kSuffix) - 1;
    return i;
}
// wave-hot: end

}  // namespace wave::offload
