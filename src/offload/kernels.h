/**
 * @file
 * Functional datapath kernels for the offload stages (wave::offload).
 *
 * These are real, self-contained implementations — software AES-128-CTR
 * and SHA-256, a Toeplitz (RSS) hash, a first-match ACL table, a
 * minimal HTTP/1.x request parser, an Aho-Corasick literal scanner (the
 * Hyperscan-style pre-filter stand-in for "regex scan"), a count-min
 * sketch, and a HyperLogLog — not latency stand-ins. The *time* a stage
 * charges comes from the calibrated table in offload/costs.h; running
 * the genuine transforms keeps the stages honest (known-answer tests in
 * tests/offload_test.cc validate AES against NIST SP 800-38A / FIPS-197
 * and SHA-256 against FIPS 180 vectors) and gives downstream stages
 * real bytes and digests to consume.
 *
 * Construction may allocate (tables, automata); the per-packet entry
 * points are allocation-free and marked wave-hot.
 */
// wave-domain: neutral
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "offload/packet.h"

namespace wave::offload {

// ---------------------------------------------------------------------------
// Toeplitz (RSS) hash
// ---------------------------------------------------------------------------

/** 40-byte Toeplitz key, enough for an IPv4 4-tuple window. */
struct ToeplitzKey {
    std::array<std::uint8_t, 40> bytes;
};

/** The de-facto standard RSS key used by most NIC drivers. */
ToeplitzKey DefaultRssKey();

/** Toeplitz hash of @p len bytes (len <= 36) under @p key. */
std::uint32_t ToeplitzHash(const ToeplitzKey& key, const std::uint8_t* data,
                           std::size_t len);

/** Toeplitz hash over the canonical src/dst ip+port RSS input. */
std::uint32_t ToeplitzHashTuple(const ToeplitzKey& key, const FiveTuple& t);

// ---------------------------------------------------------------------------
// AES-128 (encrypt-only) + CTR mode
// ---------------------------------------------------------------------------

/** Software AES-128 with precomputed round keys; encrypt-only. */
class Aes128 {
  public:
    explicit Aes128(const std::array<std::uint8_t, 16>& key);

    /** Encrypts one 16-byte block (FIPS-197). */
    void EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /**
     * CTR-mode keystream XOR over @p len bytes in place, starting from
     * the big-endian 16-byte counter block @p counter (SP 800-38A:
     * the counter increments as one 128-bit big-endian integer).
     * Encryption and decryption are the same operation.
     */
    void CtrCrypt(const std::array<std::uint8_t, 16>& counter,
                  std::uint8_t* data, std::size_t len) const;

  private:
    std::array<std::uint8_t, 176> round_keys_;  ///< 11 round keys
};

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

/** Incremental software SHA-256 (FIPS 180-4). */
class Sha256 {
  public:
    Sha256() { Reset(); }

    void Reset();
    void Update(const std::uint8_t* data, std::size_t len);
    std::array<std::uint8_t, 32> Finish();

    /** One-shot digest of a buffer. */
    static std::array<std::uint8_t, 32> Digest(const std::uint8_t* data,
                                               std::size_t len);

  private:
    void Compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::uint64_t total_len_ = 0;
    std::size_t buffered_ = 0;
};

// ---------------------------------------------------------------------------
// Firewall ACL
// ---------------------------------------------------------------------------

/** One prefix/port/proto rule; first match wins (rule order = priority). */
struct AclRule {
    std::uint32_t src_addr = 0;
    std::uint32_t src_mask = 0;  ///< 0 = any source
    std::uint32_t dst_addr = 0;
    std::uint32_t dst_mask = 0;  ///< 0 = any destination
    std::uint16_t dst_port_lo = 0;
    std::uint16_t dst_port_hi = 0xffff;
    std::uint8_t proto = 0;  ///< 0 = any protocol
    bool allow = false;
};

/** First-match linear ACL, the classic software firewall fast path. */
class AclTable {
  public:
    AclTable(std::vector<AclRule> rules, bool default_allow);

    struct Verdict {
        bool allow;
        int rule;  ///< matching rule index, -1 for the default action
    };

    Verdict Lookup(const FiveTuple& t) const;

    std::size_t NumRules() const { return rules_.size(); }

  private:
    std::vector<AclRule> rules_;
    bool default_allow_;
};

// ---------------------------------------------------------------------------
// HTTP request parser
// ---------------------------------------------------------------------------

enum class HttpMethod : std::uint8_t {
    kGet,
    kPost,
    kPut,
    kDelete,
    kHead,
    kOther,
};

/** Parsed request-line + header summary (offsets into the input). */
struct HttpRequest {
    HttpMethod method = HttpMethod::kOther;
    std::uint16_t uri_begin = 0;
    std::uint16_t uri_len = 0;
    std::uint8_t version_minor = 0;  ///< HTTP/1.<minor>
    std::uint16_t num_headers = 0;
    std::uint32_t content_length = 0;
    std::uint16_t header_bytes = 0;  ///< bytes up to and incl. CRLFCRLF
};

/**
 * Parses "METHOD SP URI SP HTTP/1.x CRLF (name: value CRLF)* CRLF".
 * Returns false (leaving @p out partially filled) on malformed input:
 * missing tokens, bare LF, non-1.x version, a header without a colon,
 * or a request that never terminates within @p len.
 */
bool ParseHttpRequest(const std::uint8_t* data, std::size_t len,
                      HttpRequest* out);

// ---------------------------------------------------------------------------
// Literal multi-pattern scanner (Aho-Corasick)
// ---------------------------------------------------------------------------

/**
 * Aho-Corasick automaton over byte strings: the literal pre-filter that
 * IDS-style regex engines (Hyperscan, Snort) run on every payload.
 * Build allocates; Scan is allocation-free.
 */
class SignatureScanner {
  public:
    explicit SignatureScanner(const std::vector<std::string>& patterns);

    /** Total pattern occurrences in the buffer (overlaps counted). */
    std::uint32_t Scan(const std::uint8_t* data, std::size_t len) const;

    std::size_t NumStates() const { return next_.size() / 256; }

  private:
    // Flattened goto table: next_[state * 256 + byte], plus the number
    // of pattern ends reachable from each state via suffix links.
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> out_count_;
};

// ---------------------------------------------------------------------------
// Count-min sketch
// ---------------------------------------------------------------------------

/** Count-min sketch over 64-bit keys; width is a power of two. */
class CountMinSketch {
  public:
    CountMinSketch(std::size_t width_log2, std::size_t depth);

    void Add(std::uint64_t key, std::uint64_t count = 1);

    /** Point estimate: never under the true count. */
    std::uint64_t Estimate(std::uint64_t key) const;

    std::uint64_t TotalAdded() const { return total_; }
    std::size_t Width() const { return mask_ + 1; }
    std::size_t Depth() const { return depth_; }

  private:
    std::size_t RowIndex(std::size_t row, std::uint64_t key) const;

    std::vector<std::uint64_t> cells_;  ///< depth_ rows of (mask_+1)
    std::size_t mask_;
    std::size_t depth_;
    std::uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------------

/** HyperLogLog cardinality sketch over pre-hashed 64-bit values. */
class HyperLogLog {
  public:
    explicit HyperLogLog(int precision_bits = 10);

    /** Adds one *hashed* value (hash your key first). */
    void Add(std::uint64_t hash);

    /** Estimated distinct count, with small-range linear counting. */
    double Estimate() const;

    std::size_t NumRegisters() const { return registers_.size(); }

  private:
    std::vector<std::uint8_t> registers_;
    int precision_bits_;
};

// ---------------------------------------------------------------------------
// Payload materialization helpers
// ---------------------------------------------------------------------------

// wave-hot: begin
/** splitmix64: the stateless mixer the sketches and fillers share. */
inline std::uint64_t
Mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
// wave-hot: end

/** Fills @p len bytes deterministically from @p seed (xorshift64*). */
void FillRandomBytes(std::uint64_t seed, std::uint8_t* out, std::size_t len);

/**
 * Renders "GET /kv/<key> HTTP/1.1\r\nHost: ...\r\n...\r\n\r\n" into
 * @p out (capacity @p cap) and returns the rendered length (0 if it
 * does not fit). Allocation-free: digits are formatted by hand.
 */
std::size_t RenderHttpGet(std::uint32_t key, std::uint8_t* out,
                          std::size_t cap);

}  // namespace wave::offload
