/**
 * @file
 * The offload datapath pipeline: stage execution on machine::Cpu NIC
 * cores (wave::offload).
 *
 * Ingress materializes packets into a fixed pool (inline payloads, a
 * FifoRing free list — pool exhaustion models RX-queue drop and keeps
 * the steady state allocation-free). Worker coroutines on NIC cores
 * pull packet indices from segment rings, run their stage segment via
 * StageChain, pay the calibrated cost on their Cpu, and hand off to the
 * next segment ring or retire the packet (latency histogram + free
 * list).
 *
 * Two placements:
 *  - kRunToCompletion (default): one segment; every worker runs the
 *    full chain per packet (Meili-style consolidation).
 *  - kPipelined: the chain splits into one contiguous segment per
 *    worker; packets flow worker 0 → 1 → ... (classic stage-per-core).
 *
 * The scheduling agent participates through RunColocatedSlice(): a
 * bounded batch of first-segment work per agent iteration on the
 * agent's own core — the "datapath shares the agent's core" half of
 * the contention sweep, with the budget (and a run-queue backpressure
 * check in the sweep harness) expressing agent priority over stage
 * work.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <vector>

#include "machine/cpu.h"
#include "offload/stage.h"
#include "sim/fifo_ring.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "stats/histogram.h"

namespace wave::offload {

enum class Placement : std::uint8_t {
    kRunToCompletion,  ///< every worker runs the full chain
    kPipelined,        ///< one contiguous chain segment per worker
};

struct PipelineConfig {
    StageChainConfig chain;
    Placement placement = Placement::kRunToCompletion;

    /** Packet pool size; also every segment ring's capacity. */
    std::size_t pool_size = 4096;

    /** Max packets a worker processes per wakeup. */
    std::size_t batch = 16;

    /** Poll period when a worker finds its ring empty. */
    sim::DurationNs idle_poll_ns = 500;
};

/** Aggregate pipeline counters. */
struct PipelineStats {
    std::uint64_t injected = 0;
    std::uint64_t completed = 0;  ///< retired after the full chain
    std::uint64_t denied = 0;     ///< terminated by the firewall
    std::uint64_t dropped = 0;    ///< pool full at ingress (RX drop)
};

/** The datapath pipeline; owns packets, rings, and worker tasks. */
class OffloadPipeline {
  public:
    OffloadPipeline(sim::Simulator& sim, const PipelineConfig& config);

    OffloadPipeline(const OffloadPipeline&) = delete;
    OffloadPipeline& operator=(const OffloadPipeline&) = delete;

    /**
     * Registers @p cpu as a worker. Call before Start(); workers map
     * to chain segments per the configured placement.
     */
    void AddWorker(machine::Cpu& cpu);

    /** Spawns the worker loops. Idempotent per worker set. */
    void Start();

    /** Workers exit at their next wakeup; ingress still accepted. */
    void RequestStop() { running_ = false; }

    /**
     * Materializes one packet and enqueues it on the first segment
     * ring. Returns false — counting an RX drop — when the pool is
     * exhausted.
     */
    bool Inject(const PacketDesc& desc);

    /**
     * Processes up to @p budget packets of first-segment work on
     * @p cpu (the agent-co-location entry point; see file comment).
     */
    sim::Task<> RunColocatedSlice(machine::Cpu& cpu, std::size_t budget);

    /** Packet latencies are recorded only for arrivals in [b, e). */
    void
    SetMeasureWindow(sim::TimeNs begin, sim::TimeNs end)
    {
        window_begin_ = begin;
        window_end_ = end;
    }

    /** Ingress→retire latency of completed packets in the window. */
    const stats::Histogram& Latency() const { return latency_; }

    const PipelineStats& Stats() const { return stats_; }
    const StageChain& Chain() const { return chain_; }

    /** Packets currently in flight (injected, not yet retired). */
    std::size_t
    Pending() const
    {
        return static_cast<std::size_t>(stats_.injected - stats_.completed -
                                        stats_.denied);
    }

    std::size_t NumWorkers() const { return workers_.size(); }
    std::size_t NumSegments() const { return segments_.size(); }

  private:
    struct Segment {
        std::size_t stage_begin;
        std::size_t stage_end;
    };

    /** Long-lived per-core worker loop (spawned by Start()). */
    sim::Task<> RunWorker(machine::Cpu& cpu, std::size_t segment);

    /**
     * Runs segment @p segment's stages on the packet at pool index
     * @p idx (functional mutation only — the caller pays the returned
     * reference-ns cost on its Cpu before routing).
     */
    sim::DurationNs StepPacket(std::uint32_t idx, std::size_t segment,
                               bool* alive);

    /** Hands the packet to the next segment ring or retires it. */
    void Route(std::uint32_t idx, std::size_t segment, bool alive);

    void Retire(std::uint32_t idx, bool completed);

    sim::Simulator& sim_;
    PipelineConfig config_;
    StageChain chain_;

    std::vector<Packet> pool_;
    sim::FifoRing<std::uint32_t> free_;
    std::vector<sim::FifoRing<std::uint32_t>> rings_;  ///< per segment
    std::vector<Segment> segments_;
    std::vector<machine::Cpu*> workers_;

    stats::Histogram latency_;
    PipelineStats stats_;
    sim::TimeNs window_begin_{};
    sim::TimeNs window_end_{};
    std::uint64_t next_id_ = 1;
    bool running_ = false;
    bool started_ = false;
};

}  // namespace wave::offload
