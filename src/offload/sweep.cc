// wave-domain: host
#include "offload/sweep.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/supervisor.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "pcie/config.h"
#include "sched/cfs_lite.h"
#include "sched/shinjuku.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "workload/kv_service.h"
#include "workload/loadgen.h"

namespace wave::offload {

using sim::inject::FaultInjector;
using sim::inject::FaultKind;
using sim::inject::FaultSpec;

OffloadSweepResult
RunOffloadSweep(const OffloadSweepConfig& cfg)
{
    sim::Simulator sim;

    machine::MachineConfig mc;
    // +1 host core: home for the watchdog-fallback agent (§3.3).
    mc.host_cores = cfg.worker_cores + 1;
    mc.nic_cores = cfg.nic_cores;
    machine::Machine machine(sim, mc);

    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig{});

    // The injector must be attached before the transport exists so the
    // MSI-X vectors and txn endpoints created inside bind to it. An
    // armed-empty injector is fingerprint-identical, so fault-free
    // sweeps share goldens with this wiring in place.
    FaultInjector injector(sim);
    runtime.AttachInjector(&injector);

    std::vector<int> worker_cores;
    for (int i = 0; i < cfg.worker_cores; ++i) worker_cores.push_back(i);

    ghost::WaveSchedTransport transport(runtime, cfg.worker_cores);

    ghost::KernelSched kernel(sim, machine, transport, ghost::GhostCosts{},
                              ghost::KernelOptions{});
    kernel.SetFaultInjector(&injector);

    auto policy =
        std::make_shared<sched::MultiQueueShinjukuPolicy>(cfg.slice_ns);

    // --- the offload datapath ---
    const bool datapath = cfg.core_share > 0 && cfg.nic_cores > 1;
    PipelineConfig pc;
    pc.placement = cfg.placement;
    pc.pool_size = cfg.pool_size;
    pc.batch = cfg.batch;
    pc.chain.expected_flows = cfg.flows * 2;
    OffloadPipeline pipeline(sim, pc);

    const sim::TimeNs measure_begin{cfg.warmup_ns};
    const sim::TimeNs measure_end{cfg.warmup_ns + cfg.measure_ns};

    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = worker_cores;
    agent_cfg.iter_window_begin = measure_begin;
    agent_cfg.iter_window_end = measure_end;
    if (datapath) {
        // The co-located slice: bounded stage work on the agent's own
        // core, skipped while the scheduling run queue is deep. The
        // lambda is a plain adapter (not a coroutine) so the frame it
        // returns borrows only the long-lived pipeline and context —
        // see rpc_experiment.cc for the W202 rationale.
        ghost::SchedPolicy* pol = policy.get();
        const std::size_t budget = cfg.colo_batch;
        const std::size_t skip_depth = cfg.colo_skip_depth;
        agent_cfg.aux_stage = [&pipeline, pol, budget,
                               skip_depth](AgentContext& ctx) {
            const std::size_t b =
                skip_depth > 0 && pol->RunQueueDepth() >= skip_depth
                    ? 0
                    : budget;
            return pipeline.RunColocatedSlice(ctx.Cpu(), b);
        };
    }
    auto agent =
        std::make_shared<ghost::GhostAgent>(transport, policy, agent_cfg);
    const AgentId agent_id = runtime.StartWaveAgent(agent, /*nic_core=*/0);

    std::optional<ghost::AgentSupervisor> supervisor;
    if (cfg.supervise) {
        ghost::SupervisorConfig sup_cfg;
        sup_cfg.timeout =
            static_cast<sim::DurationNs>(cfg.watchdog_timeout_ns);
        sup_cfg.check_interval =
            static_cast<sim::DurationNs>(cfg.watchdog_check_ns);
        sup_cfg.feed_interval =
            static_cast<sim::DurationNs>(cfg.watchdog_check_ns);
        supervisor.emplace(sim, runtime, kernel, sup_cfg);
        supervisor->Supervise(
            agent_id, agent,
            [&transport, &agent_cfg] {
                // Host fallback: plain CFS-class scheduling, no
                // prestaging and no datapath slice — the datapath
                // stays on its dedicated NIC cores.
                ghost::AgentConfig fb_cfg = agent_cfg;
                fb_cfg.prestage = false;
                fb_cfg.aux_stage = nullptr;
                return std::make_shared<ghost::GhostAgent>(
                    transport, std::make_shared<sched::CfsLitePolicy>(),
                    fb_cfg);
            },
            machine.HostCpu(cfg.worker_cores));
    }

    auto on_assign = [&policy](ghost::Tid tid, std::uint32_t slo) {
        policy->SetThreadSlo(tid, slo);
    };
    workload::KvService service(sim, kernel, cfg.num_workers,
                                /*first_tid=*/1000, on_assign);
    service.SetMeasureWindow(measure_begin, measure_end);

    kernel.Start(worker_cores);

    workload::LoadGenConfig lg;
    lg.rate_rps = cfg.offered_rps;
    lg.get_fraction = cfg.get_fraction;
    lg.get_service_ns = cfg.get_service_ns;
    lg.range_service_ns = cfg.range_service_ns;
    lg.end_time = measure_end;
    lg.seed = sim::StreamSeed(cfg.seed, "workload");
    sim.Spawn(workload::RunLoadGenerator(sim, service, lg));

    if (datapath) {
        for (int core = 1; core < cfg.nic_cores; ++core) {
            pipeline.AddWorker(machine.NicCpu(core));
        }
        pipeline.Start();
        pipeline.SetMeasureWindow(measure_begin, measure_end);

        PacketGenConfig pg;
        pg.rate_pps = cfg.core_share * cfg.full_rate_pps;
        pg.flows = cfg.flows;
        pg.zipf_theta = cfg.zipf_theta;
        pg.payload_min = cfg.payload_min;
        pg.payload_max = cfg.payload_max;
        pg.http_fraction = cfg.http_fraction;
        pg.end_time = measure_end;
        pg.seed = sim::StreamSeed(cfg.seed, "packets");
        sim.Spawn(RunPacketGenerator(sim, pipeline, pg));
    }

    // Fault actions, wired exactly like the fuzzer (fuzz/runner.cc).
    const double nic_base_speed = machine.NicDomain().Speed();
    injector.SetActionHandler([&runtime, &machine, agent_id,
                               nic_base_speed](const FaultSpec& f,
                                               bool begin) {
        switch (f.kind) {
          case FaultKind::kAgentCrash:
            if (begin) runtime.KillWaveAgent(agent_id);
            break;
          case FaultKind::kAgentStall:
            if (begin) runtime.StallWaveAgent(agent_id, f.duration);
            break;
          case FaultKind::kNicSlowdown: {
            const double scale =
                static_cast<double>(std::max<std::uint64_t>(f.param, 1)) /
                1000.0;
            machine.NicDomain().SetSpeed(begin ? nic_base_speed * scale
                                               : nic_base_speed);
            break;
          }
          default:
            break;
        }
    });
    injector.Arm(cfg.faults);

    // Occupancy snapshots bracketing the measure window.
    machine::Cpu::Occupancy agent_core_begin{}, agent_core_end{};
    std::vector<machine::Cpu::Occupancy> dp_begin(
        static_cast<std::size_t>(cfg.nic_cores));
    std::vector<machine::Cpu::Occupancy> dp_end(
        static_cast<std::size_t>(cfg.nic_cores));
    sim.ScheduleAt(measure_begin, [&] {
        agent_core_begin = machine.NicCpu(0).Snapshot();
        for (int c = 1; c < cfg.nic_cores; ++c) {
            dp_begin[static_cast<std::size_t>(c)] =
                machine.NicCpu(c).Snapshot();
        }
    });
    sim.ScheduleAt(measure_end, [&] {
        agent_core_end = machine.NicCpu(0).Snapshot();
        for (int c = 1; c < cfg.nic_cores; ++c) {
            dp_end[static_cast<std::size_t>(c)] =
                machine.NicCpu(c).Snapshot();
        }
    });

    sim.RunUntil(sim::TimeNs{cfg.warmup_ns + cfg.measure_ns +
                             cfg.drain_ns});

    OffloadSweepResult r;
    r.agent_iterations = agent->Stats().iterations;
    const stats::Histogram& iter = agent->IterationLatency();
    r.agent_iter_p50 = iter.Percentile(0.50);
    r.agent_iter_p99 = iter.Percentile(0.99);
    r.agent_iter_p999 = iter.Percentile(0.999);

    r.completed = service.CompletedInWindow();
    r.achieved_rps = static_cast<double>(r.completed) /
                     sim::ToSec(sim::DurationNs{cfg.measure_ns});
    const auto& get_hist =
        service.Latency(workload::RequestKind::kGet);
    r.get_p50 = get_hist.Percentile(0.50);
    r.get_p99 = get_hist.Percentile(0.99);

    const PipelineStats& ps = pipeline.Stats();
    r.packets_injected = ps.injected;
    r.packets_completed = ps.completed;
    r.packets_denied = ps.denied;
    r.packets_dropped = ps.dropped;
    r.packets_pending = pipeline.Pending();
    r.achieved_pps =
        static_cast<double>(pipeline.Latency().Count()) /
        sim::ToSec(sim::DurationNs{cfg.measure_ns});
    r.packet_p50 = pipeline.Latency().Percentile(0.50);
    r.packet_p99 = pipeline.Latency().Percentile(0.99);
    r.parse_errors =
        pipeline.Chain().Stats(StageKind::kHttpParser).parse_errors;
    r.scan_hits =
        pipeline.Chain().Stats(StageKind::kRegexScan).scan_hits;
    r.new_flows =
        pipeline.Chain().Stats(StageKind::kLoadBalancer).new_flows;

    const auto window = sim::DurationNs{cfg.measure_ns};
    r.agent_core_busy =
        machine::BusyFraction(agent_core_begin, agent_core_end, window);
    double dp_sum = 0;
    for (int c = 1; c < cfg.nic_cores; ++c) {
        dp_sum += machine::BusyFraction(dp_begin[static_cast<std::size_t>(c)],
                                        dp_end[static_cast<std::size_t>(c)],
                                        window);
    }
    r.datapath_core_busy =
        cfg.nic_cores > 1 ? dp_sum / (cfg.nic_cores - 1) : 0.0;

    if (supervisor) {
        r.watchdog_expiries = supervisor->Stats().expiries;
        r.fallback_active = supervisor->Stats().fallback_active;
        r.fallback_at_ns =
            static_cast<std::uint64_t>(supervisor->Stats().fallback_at.ns());
    }
    r.event_hash = sim.EventHash();
    return r;
}

}  // namespace wave::offload
