/**
 * @file
 * Packet model for the offload-stage datapath (wave::offload).
 *
 * A Packet is a pooled, fixed-footprint record: a 5-tuple, an arrival
 * timestamp, and an inline payload buffer (no heap indirection, so a
 * warm PacketPool is allocation-free at line rate). Stages communicate
 * through the small result fields instead of re-parsing bytes.
 *
 * Payload bytes are materialized at ingress — either a rendered HTTP
 * request line or seeded pseudo-random filler — so the compute stages
 * (AES-CTR, SHA-256, regex scan) have real bytes to chew on and their
 * calibrated cycle costs model something the kernels actually do.
 */
// wave-domain: neutral
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace wave::offload {

/** Largest payload a pooled packet carries (one MTU, no jumbo). */
inline constexpr std::size_t kMaxPayloadBytes = 1500;

/** Classic IP 5-tuple; the flow identity every stage keys on. */
struct FiveTuple {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t proto = 6;  ///< IPPROTO_TCP by default
};

// wave-hot: begin
/** 64-bit flow key: a splitmix-style mix of the 5-tuple fields. */
inline std::uint64_t
FlowKey(const FiveTuple& t)
{
    std::uint64_t x = (static_cast<std::uint64_t>(t.src_ip) << 32) |
                      static_cast<std::uint64_t>(t.dst_ip);
    x ^= (static_cast<std::uint64_t>(t.src_port) << 24) ^
         (static_cast<std::uint64_t>(t.dst_port) << 8) ^
         static_cast<std::uint64_t>(t.proto);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
// wave-hot: end

/** One in-flight packet; lives in a PacketPool slot, never on the heap. */
struct Packet {
    std::uint64_t id = 0;
    FiveTuple tuple;
    sim::TimeNs arrival{};
    std::uint32_t payload_len = 0;

    // Stage results (written by the stage named in the comment).
    std::uint8_t acl_allowed = 1;   ///< firewall
    std::uint8_t http_ok = 0;       ///< HTTP parser
    std::uint16_t backend = 0;      ///< L3 load balancer
    std::uint16_t scan_hits = 0;    ///< regex/signature scan
    std::uint32_t digest = 0;       ///< SHA-256 (first word, folded)

    std::array<std::uint8_t, kMaxPayloadBytes> payload;
};

/**
 * What ingress needs to materialize one packet: flow identity plus a
 * recipe for the payload bytes (HTTP request line or seeded filler).
 */
struct PacketDesc {
    FiveTuple tuple;
    std::uint32_t payload_len = 0;
    std::uint64_t payload_seed = 0;
    bool http = false;           ///< render an HTTP GET into the payload
    std::uint32_t http_key = 0;  ///< key id in the rendered request URI
};

}  // namespace wave::offload
