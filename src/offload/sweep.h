/**
 * @file
 * The NIC-core contention sweep: Wave's scheduling agent sharing
 * SmartNIC cores with a live offload datapath (ROADMAP item 3).
 *
 * One run builds the full deployment — host workers + KV service + load
 * generator, the ghOSt agent on NIC core 0 over the Wave/PCIe
 * transport, and the offload pipeline with dedicated workers on NIC
 * cores 1..N-1 plus a bounded co-located slice on the agent's own core
 * — then offers datapath load equal to `core_share` of the NIC's
 * aggregate stage-processing capacity. Sweeping core_share 0 → 1
 * reproduces the question the paper assumes away: how much datapath
 * contention can the resource-management agent absorb before its
 * reaction time (iteration tail latency) and its policy quality (KV
 * p99) degrade?
 *
 * The harness also carries the fault-injection knobs (NIC slowdown,
 * agent stall/crash via sim::inject) and the AgentSupervisor watchdog
 * so recovery tests can drive fault interplay through the same wiring
 * the fuzzer uses.
 */
// wave-domain: host
#pragma once

#include <cstdint>
#include <vector>

#include "offload/packetgen.h"
#include "offload/pipeline.h"
#include "sim/inject.h"
#include "sim/time.h"

namespace wave::offload {

/** One contention-sweep point. */
struct OffloadSweepConfig {
    // --- topology ---
    int worker_cores = 8;  ///< host cores running KV workers
    int num_workers = 32;  ///< KV worker threads
    int nic_cores = 8;     ///< agent on core 0, datapath on 1..N-1

    // --- the sweep axis ---
    /**
     * Offered datapath load as a fraction of the NIC's aggregate
     * stage-processing capacity: packet rate = core_share *
     * full_rate_pps. 0 disables the datapath entirely (the isolation
     * baseline); 1.0 saturates every NIC core including the agent's.
     */
    double core_share = 0.5;

    /** Packet rate that saturates the NIC datapath (calibrated). */
    double full_rate_pps = 900'000;

    // --- datapath shape ---
    Placement placement = Placement::kRunToCompletion;
    std::size_t pool_size = 4096;
    std::size_t batch = 16;
    std::size_t flows = 256;
    double zipf_theta = 0.9;
    std::uint32_t payload_min = 64;
    std::uint32_t payload_max = 1024;
    double http_fraction = 0.75;

    /**
     * Max packets the agent's co-located slice processes per agent
     * iteration (the agent-priority bound: stage work can never hold
     * the agent core longer than this per pass).
     */
    std::size_t colo_batch = 4;

    /**
     * Skip the co-located slice entirely while the scheduling run
     * queue is at least this deep (0 = never skip): scheduling work
     * preempts stage work when the agent is behind.
     */
    std::size_t colo_skip_depth = 16;

    // --- host workload ---
    double offered_rps = 150'000;
    double get_fraction = 1.0;
    sim::DurationNs get_service_ns = 10'000;
    sim::DurationNs range_service_ns = 10'000'000;
    sim::DurationNs slice_ns = 30'000;

    // --- windows ---
    std::uint64_t warmup_ns = 15'000'000;
    std::uint64_t measure_ns = 50'000'000;
    std::uint64_t drain_ns = 5'000'000;

    std::uint64_t seed = 42;

    // --- faults + supervision (recovery interplay tests) ---
    std::vector<sim::inject::FaultSpec> faults;
    bool supervise = false;
    std::uint64_t watchdog_timeout_ns = 20'000'000;
    std::uint64_t watchdog_check_ns = 500'000;
};

/** Everything one sweep point reports. */
struct OffloadSweepResult {
    // Agent responsiveness.
    std::uint64_t agent_iterations = 0;
    std::uint64_t agent_iter_p50 = 0;
    std::uint64_t agent_iter_p99 = 0;
    std::uint64_t agent_iter_p999 = 0;

    // Scheduling policy quality (the host KV workload).
    std::uint64_t completed = 0;
    double achieved_rps = 0;
    std::uint64_t get_p50 = 0;
    std::uint64_t get_p99 = 0;

    // Datapath.
    std::uint64_t packets_injected = 0;
    std::uint64_t packets_completed = 0;
    std::uint64_t packets_denied = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_pending = 0;
    double achieved_pps = 0;  ///< window arrivals retired / window
    std::uint64_t packet_p50 = 0;
    std::uint64_t packet_p99 = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t scan_hits = 0;
    std::uint64_t new_flows = 0;

    // Occupancy over the measure window.
    double agent_core_busy = 0;
    double datapath_core_busy = 0;  ///< mean over cores 1..N-1

    // Recovery.
    std::uint64_t watchdog_expiries = 0;
    bool fallback_active = false;
    std::uint64_t fallback_at_ns = 0;

    std::uint64_t event_hash = 0;
};

OffloadSweepResult RunOffloadSweep(const OffloadSweepConfig& cfg);

}  // namespace wave::offload
