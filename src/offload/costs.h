/**
 * @file
 * Calibrated per-packet cycle cost model for the offload stages.
 *
 * Each stage charges `base_ns + ns_per_byte * payload_len` of compute at
 * the *reference clock* (one host x86 core at max turbo, 3.5 GHz —
 * machine::kReferenceFreq); machine::Cpu::Work scales that onto the
 * wimpy NIC cores via the clock-domain speed ratio (0.61 by default),
 * exactly like every other cost in the model.
 *
 * The numbers are derived from published per-stage figures for
 * software datapaths on ARM SmartNIC cores (see docs/offload.md for
 * the calibration method and sources): byte-wise stages are expressed
 * as cycles/byte at 3.5 GHz (1 cycle = 0.2857 ns), header-only stages
 * as a flat per-packet cost. tests/calibration_test.cc pins every
 * constant so a drive-by edit cannot silently shift the contention
 * sweeps.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace wave::offload {

/** Cost recipe for one stage: flat part plus a per-payload-byte part. */
struct StageCost {
    sim::DurationNs base_ns = 0;
    double ns_per_byte = 0.0;
};

/**
 * The calibrated stage table (reference-core nanoseconds).
 *
 *  - firewall: linear ACL match over a few dozen rules, headers only
 *    (~140 cycles).
 *  - load_balancer: connection-table lookup, Toeplitz hash + insert on
 *    miss amortized in (~210 cycles).
 *  - http_parser: request-line + header scan, ~2 cycles/byte.
 *  - aes_ctr: software AES-128-CTR without crypto extensions,
 *    ~10 cycles/byte plus key/counter setup.
 *  - sha256: software SHA-256, ~13 cycles/byte plus padding/finish.
 *  - regex_scan: DFA/literal-automaton pre-filter, ~4 cycles/byte.
 *  - monitor: count-min-sketch + HyperLogLog update, a handful of
 *    multiplicative hashes (~120 cycles).
 */
struct OffloadCosts {
    StageCost firewall{40, 0.0};
    StageCost load_balancer{60, 0.0};
    StageCost http_parser{50, 0.6};
    StageCost aes_ctr{80, 2.9};
    StageCost sha256{60, 3.7};
    StageCost regex_scan{30, 1.1};
    StageCost monitor{35, 0.0};
};

// wave-hot: begin
/** Reference-ns cost of one stage application to @p payload_len bytes. */
inline sim::DurationNs
StageCostNs(const StageCost& cost, std::uint32_t payload_len)
{
    return cost.base_ns + sim::DurationNs::FromDouble(
                              cost.ns_per_byte *
                              static_cast<double>(payload_len));
}
// wave-hot: end

}  // namespace wave::offload
