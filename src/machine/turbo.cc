// wave-domain: neutral
#include "machine/turbo.h"

#include <algorithm>

#include "sim/logging.h"

namespace wave::machine {

TurboModel::TurboModel() : config_() {}

TurboModel::TurboModel(Config config) : config_(std::move(config)) {}

double
TurboModel::Interpolate(const Curve& curve, int active)
{
    WAVE_ASSERT(!curve.empty());
    if (active <= curve.front().first) return curve.front().second;
    if (active >= curve.back().first) return curve.back().second;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (active <= curve[i].first) {
            const auto [x0, y0] = curve[i - 1];
            const auto [x1, y1] = curve[i];
            const double t = static_cast<double>(active - x0) /
                             static_cast<double>(x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    return curve.back().second;
}

FreqGhz
TurboModel::Frequency(int active_physical_cores,
                      bool idle_cores_deep) const
{
    const Curve& curve =
        idle_cores_deep ? config_.deep_idle : config_.shallow_idle;
    const double freq = Interpolate(curve, std::max(active_physical_cores, 1));
    return FreqGhz{std::max(freq, config_.base_ghz)};
}

}  // namespace wave::machine
