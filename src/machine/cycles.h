/**
 * @file
 * Strong-typed cycle counts for the two clock domains.
 *
 * The testbed stitches together an x86 host socket and an ARM SmartNIC
 * SoC whose cores tick at different frequencies. A raw uint64 "cycles"
 * value silently crosses that seam; HostCycles and NicCycles are
 * distinct wrapper types so host-cycle arithmetic can never mix with
 * NIC-cycle arithmetic, and neither mixes with nanoseconds — the
 * compiler rejects `host + nic` and `cycles + duration` outright.
 *
 * Conversion between cycles and simulated time always carries the
 * frequency explicitly (CyclesIn / DurationOf take a FreqGhz), so the
 * clock rate used at a conversion site is visible in the source rather
 * than baked into a constant nobody can audit.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <type_traits>

#include "sim/time.h"

namespace wave::machine {

/**
 * A core clock frequency in GHz (== cycles per nanosecond).
 *
 * Strong wrapper over double so a frequency cannot be confused with a
 * speed *ratio* (machine::ClockDomain::Speed) or a plain scalar.
 */
class FreqGhz {
  public:
    constexpr FreqGhz() = default;
    constexpr explicit FreqGhz(double ghz) : ghz_(ghz) {}

    constexpr double ghz() const { return ghz_; }

    /** Ratio of two frequencies (e.g. turbo grant / nominal). */
    constexpr double
    RatioTo(FreqGhz base) const
    {
        return ghz_ / base.ghz_;
    }

    friend constexpr bool
    operator==(FreqGhz a, FreqGhz b)
    {
        return a.ghz_ == b.ghz_;
    }

    friend constexpr bool
    operator<(FreqGhz a, FreqGhz b)
    {
        return a.ghz_ < b.ghz_;
    }

    friend constexpr bool
    operator>(FreqGhz a, FreqGhz b)
    {
        return a.ghz_ > b.ghz_;
    }

  private:
    double ghz_ = 0.0;
};

/**
 * A count of core clock cycles in one clock domain.
 *
 * The Tag parameter makes each instantiation a distinct type with no
 * cross-domain operators; all arithmetic is uint64 modulo 2^64.
 */
template <typename Tag>
class CycleCount {
  public:
    constexpr CycleCount() = default;

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr explicit CycleCount(T cycles)
        : cycles_(static_cast<std::uint64_t>(cycles))
    {
    }

    constexpr std::uint64_t count() const { return cycles_; }

    constexpr CycleCount&
    operator+=(CycleCount o)
    {
        cycles_ += o.cycles_;
        return *this;
    }

    constexpr CycleCount&
    operator-=(CycleCount o)
    {
        cycles_ -= o.cycles_;
        return *this;
    }

    friend constexpr CycleCount
    operator+(CycleCount a, CycleCount b)
    {
        return CycleCount(a.cycles_ + b.cycles_);
    }

    friend constexpr CycleCount
    operator-(CycleCount a, CycleCount b)
    {
        return CycleCount(a.cycles_ - b.cycles_);
    }

    friend constexpr bool
    operator==(CycleCount a, CycleCount b)
    {
        return a.cycles_ == b.cycles_;
    }

    friend constexpr bool
    operator!=(CycleCount a, CycleCount b)
    {
        return a.cycles_ != b.cycles_;
    }

    friend constexpr bool
    operator<(CycleCount a, CycleCount b)
    {
        return a.cycles_ < b.cycles_;
    }

    friend constexpr bool
    operator<=(CycleCount a, CycleCount b)
    {
        return a.cycles_ <= b.cycles_;
    }

    friend constexpr bool
    operator>(CycleCount a, CycleCount b)
    {
        return a.cycles_ > b.cycles_;
    }

    friend constexpr bool
    operator>=(CycleCount a, CycleCount b)
    {
        return a.cycles_ >= b.cycles_;
    }

  private:
    std::uint64_t cycles_ = 0;
};

struct HostCycleTag;
struct NicCycleTag;

/** Cycles of an x86 host core. Will not mix with NicCycles or ns. */
using HostCycles = CycleCount<HostCycleTag>;

/** Cycles of an ARM SmartNIC core. Will not mix with HostCycles/ns. */
using NicCycles = CycleCount<NicCycleTag>;

/**
 * Cycles a clock at @p freq accumulates over @p d (truncating).
 *
 * Explicit, frequency-carrying conversion: the same duration converts
 * to different cycle counts in the two domains, so the frequency must
 * appear at the call site.
 */
template <typename Tag>
constexpr CycleCount<Tag>
CyclesIn(sim::DurationNs d, FreqGhz freq)
{
    // GHz == cycles per nanosecond, so cycles = ns * GHz.
    return CycleCount<Tag>(
        static_cast<std::uint64_t>(d.ToDouble() * freq.ghz()));
}

/** Simulated time a clock at @p freq needs for @p c cycles. */
template <typename Tag>
constexpr sim::DurationNs
DurationOf(CycleCount<Tag> c, FreqGhz freq)
{
    return sim::DurationNs::FromDouble(static_cast<double>(c.count()) /
                                       freq.ghz());
}

/** CyclesIn instantiation helpers with the domain spelled out. */
constexpr HostCycles
HostCyclesIn(sim::DurationNs d, FreqGhz freq)
{
    return CyclesIn<HostCycleTag>(d, freq);
}

constexpr NicCycles
NicCyclesIn(sim::DurationNs d, FreqGhz freq)
{
    return CyclesIn<NicCycleTag>(d, freq);
}

}  // namespace wave::machine
