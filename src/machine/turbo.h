/**
 * @file
 * Socket turbo-frequency model for the Figure 5 VM experiment.
 *
 * AMD's turbo governor grants higher frequencies when fewer cores are
 * active, and grants more when the idle cores sit in deep C-states. The
 * paper's Figure 5 turns on exactly this effect: eliding timer ticks
 * (possible when scheduling is offloaded to the SmartNIC) lets idle
 * vCPU cores reach deep C-states, boosting the active cores.
 *
 * The model is a pair of piecewise-linear curves — frequency vs. number
 * of active physical cores — one for "idle cores deeply sleeping" and
 * one for "idle cores kept shallow by 1 ms ticks". The default points
 * are calibrated so the reproduced Figure 5b endpoints match the paper
 * (+11.2% at 1 active vCPU, ~+9.7% at 31, +1.7% at 128).
 */
// wave-domain: neutral
#pragma once

#include <utility>
#include <vector>

#include "machine/cycles.h"

namespace wave::machine {

/** Piecewise-linear turbo curve set for one socket. */
class TurboModel {
  public:
    /** (active physical cores, GHz) knots, ascending in cores. */
    using Curve = std::vector<std::pair<int, double>>;

    struct Config {
        /** Frequency curve when idle cores reach deep C-states. */
        Curve deep_idle = {{1, 3.50}, {8, 3.50}, {16, 3.40},
                           {32, 3.20}, {48, 2.90}, {64, 2.60}};

        /** Frequency curve when ticks hold idle cores in shallow states. */
        Curve shallow_idle = {{1, 3.20}, {8, 3.20}, {16, 3.13},
                              {32, 2.95}, {48, 2.78}, {64, 2.60}};

        /** Nominal (non-turbo) frequency, the floor. */
        double base_ghz = 2.45;
    };

    TurboModel();
    explicit TurboModel(Config config);

    /**
     * Frequency granted to active cores.
     *
     * @param active_physical_cores cores with at least one busy sibling.
     * @param idle_cores_deep true when idle cores sleep deeply (no ticks).
     */
    FreqGhz Frequency(int active_physical_cores,
                      bool idle_cores_deep) const;

    const Config& GetConfig() const { return config_; }

  private:
    static double Interpolate(const Curve& curve, int active);

    Config config_;
};

}  // namespace wave::machine
