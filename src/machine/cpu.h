/**
 * @file
 * CPU execution model.
 *
 * A Cpu is a serial execution resource with a clock domain. Work is
 * expressed in nanoseconds at the *reference speed* (defined as one host
 * x86 core at maximum turbo); a core's ClockDomain scales that into
 * simulated time. This is how the model captures both the ARM-vs-x86
 * per-cycle gap and turbo frequency changes (Figure 5) with one knob.
 */
// wave-domain: neutral
#pragma once

#include <string>

#include "sim/simulator.h"
#include "sim/task.h"

namespace wave::machine {

/**
 * A frequency/performance domain shared by a group of cores.
 *
 * speed() is a multiplier relative to the reference core: executing W
 * reference-nanoseconds of work takes W / speed() simulated nanoseconds.
 */
class ClockDomain {
  public:
    explicit ClockDomain(double speed = 1.0) : speed_(speed) {}

    double Speed() const { return speed_; }

    void
    SetSpeed(double speed)
    {
        WAVE_ASSERT(speed > 0.0);
        speed_ = speed;
    }

  private:
    double speed_;
};

/** A single hardware thread: runs one piece of work at a time. */
class Cpu {
  public:
    Cpu(sim::Simulator& sim, std::string name, ClockDomain* domain)
        : sim_(sim), name_(std::move(name)), domain_(domain)
    {
        WAVE_ASSERT(domain_ != nullptr);
    }

    Cpu(const Cpu&) = delete;
    Cpu& operator=(const Cpu&) = delete;

    /**
     * Executes @p reference_ns of compute on this core.
     *
     * Scales by the clock domain's current speed (sampled at start).
     * Asserts that the core is not already executing something — each
     * core must host exactly one running activity at a time.
     */
    sim::Task<>
    Work(sim::DurationNs reference_ns)
    {
        WAVE_ASSERT(!busy_, "core %s is already busy", name_.c_str());
        busy_ = true;
        const auto scaled = sim::DurationNs::FromDouble(
            reference_ns.ToDouble() / domain_->Speed());
        co_await sim_.Delay(scaled);
        busy_ns_ += scaled;
        ++work_segments_;
        busy_ = false;
    }

    /** Name for diagnostics, e.g. "host3" or "nic0". */
    const std::string& Name() const { return name_; }

    /** Total simulated time this core spent in Work(). */
    sim::DurationNs BusyNs() const { return busy_ns_; }

    /** Completed Work() calls (occupancy accounting, with BusyNs). */
    std::uint64_t WorkSegments() const { return work_segments_; }

    /**
     * Snapshot for windowed occupancy: diff two snapshots across a
     * measurement window and divide by its length (BusyFraction below)
     * to get the core's utilization in that window alone.
     */
    struct Occupancy {
        sim::DurationNs busy_ns = 0;
        std::uint64_t segments = 0;
    };

    Occupancy
    Snapshot() const
    {
        return Occupancy{busy_ns_, work_segments_};
    }

    /** True while a Work() call is in flight. */
    bool Busy() const { return busy_; }

    ClockDomain& Domain() { return *domain_; }
    sim::Simulator& Sim() { return sim_; }

  private:
    sim::Simulator& sim_;
    std::string name_;
    ClockDomain* domain_;
    sim::DurationNs busy_ns_ = 0;
    std::uint64_t work_segments_ = 0;
    bool busy_ = false;
};

/** Busy fraction of the window [begin, end] between two snapshots. */
inline double
BusyFraction(const Cpu::Occupancy& begin, const Cpu::Occupancy& end,
             sim::DurationNs window)
{
    if (window.ns() == 0) return 0.0;
    return (end.busy_ns - begin.busy_ns).ToDouble() / window.ToDouble();
}

}  // namespace wave::machine
