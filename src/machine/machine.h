/**
 * @file
 * Host + SmartNIC machine topology.
 *
 * Builds the simulated testbed from the paper's evaluation setup: an AMD
 * Zen3-style host (CCXs of 8 physical cores, SMT2, 2.45-3.5 GHz) and an
 * Intel Mount Evans-style SmartNIC SoC (16 ARM Neoverse N1 cores @
 * 3.0 GHz). Only the parameters the experiments depend on are modelled;
 * they are all configurable.
 */
// wave-domain: neutral
#pragma once

#include <memory>
#include <vector>

#include "machine/cpu.h"
#include "machine/cycles.h"
#include "sim/simulator.h"

namespace wave::machine {

/**
 * The reference clock: one host x86 core at maximum turbo (3.5 GHz).
 * Work costs throughout the model are expressed in nanoseconds at this
 * frequency; ClockDomain speed ratios scale them to other cores.
 */
inline constexpr FreqGhz kReferenceFreq{3.5};

/** Testbed shape and speed parameters (defaults match the paper §7). */
struct MachineConfig {
    /** Host logical cores to instantiate (first SMT siblings only). */
    int host_cores = 16;

    /** Physical cores per CCX (shared L3 domain). */
    int ccx_size = 8;

    /**
     * Host core speed relative to the reference (host at max turbo).
     * Microsecond-scale experiments run with few cores active, i.e. at
     * full turbo, hence the default of 1.0.
     */
    double host_speed = 1.0;

    /** SmartNIC ARM cores to instantiate. */
    int nic_cores = 16;

    /**
     * NIC ARM core speed relative to the reference host core. The
     * Neoverse N1 @ 3.0 GHz vs Zen3 @ 3.5 GHz lands around 0.61 for the
     * policy code in §7.4 (calibrated from the paper's SOL table).
     */
    double nic_speed = 0.61;

    /**
     * Nominal clock frequencies of the two domains. Distinct from the
     * speed ratios above: speed folds in per-cycle IPC differences,
     * while these are the raw clock rates used to convert between
     * HostCycles/NicCycles and simulated time (machine/cycles.h).
     */
    FreqGhz host_freq = kReferenceFreq;
    FreqGhz nic_freq{3.0};
};

/** The simulated testbed: host cores, NIC cores, and clock domains. */
class Machine {
  public:
    Machine(sim::Simulator& sim, const MachineConfig& config = {})
        : config_(config),
          host_domain_(config.host_speed),
          nic_domain_(config.nic_speed)
    {
        for (int i = 0; i < config.host_cores; ++i) {
            host_.push_back(std::make_unique<Cpu>(
                sim, "host" + std::to_string(i), &host_domain_));
        }
        for (int i = 0; i < config.nic_cores; ++i) {
            nic_.push_back(std::make_unique<Cpu>(
                sim, "nic" + std::to_string(i), &nic_domain_));
        }
    }

    Cpu& HostCpu(int i) { return *host_.at(static_cast<std::size_t>(i)); }
    Cpu& NicCpu(int i) { return *nic_.at(static_cast<std::size_t>(i)); }

    int HostCoreCount() const { return static_cast<int>(host_.size()); }
    int NicCoreCount() const { return static_cast<int>(nic_.size()); }

    /** CCX index of a host core (cores in a CCX share an L3). */
    int CcxOf(int host_core) const { return host_core / config_.ccx_size; }

    ClockDomain& HostDomain() { return host_domain_; }
    ClockDomain& NicDomain() { return nic_domain_; }

    /** Host clock rate, for HostCycles <-> DurationNs conversions. */
    FreqGhz HostFreq() const { return config_.host_freq; }

    /** NIC clock rate, for NicCycles <-> DurationNs conversions. */
    FreqGhz NicFreq() const { return config_.nic_freq; }

    const MachineConfig& Config() const { return config_; }

  private:
    MachineConfig config_;
    ClockDomain host_domain_;
    ClockDomain nic_domain_;
    std::vector<std::unique_ptr<Cpu>> host_;
    std::vector<std::unique_ptr<Cpu>> nic_;
};

}  // namespace wave::machine
