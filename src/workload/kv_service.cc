// wave-domain: host
#include "workload/kv_service.h"

namespace wave::workload {

KvService::KvService(
    sim::Simulator& sim, ghost::KernelSched& kernel, int num_workers,
    ghost::Tid first_tid,
    std::function<void(ghost::Tid, std::uint32_t)> on_assign)
    : sim_(sim), kernel_(kernel), on_assign_(std::move(on_assign))
{
    for (int i = 0; i < num_workers; ++i) {
        const ghost::Tid tid = first_tid + i;
        auto body = std::make_shared<KvWorkerBody>(this, i);
        workers_.push_back(body);
        worker_tids_.push_back(tid);
        kernel_.AddThread(tid, body);
        idle_workers_.push_back(i);
    }
    // Freshly created threads are runnable; they will run once, find no
    // request, and block — after which Submit() wakes them as needed.
}

void
KvService::Assign(int worker_index, Request request)
{
    KvWorkerBody& worker = *workers_[static_cast<std::size_t>(worker_index)];
    WAVE_ASSERT(!worker.assigned_.has_value(),
                "double-assigning worker %d", worker_index);
    worker.remaining_ = request.service_ns;
    if (on_assign_) {
        on_assign_(worker_tids_[static_cast<std::size_t>(worker_index)],
                   request.slo_class);
    }
    worker.assigned_ = std::move(request);
    kernel_.WakeThread(
        worker_tids_[static_cast<std::size_t>(worker_index)]);
}

void
KvService::Submit(Request request)
{
    if (idle_workers_.empty()) {
        pending_.push_back(std::move(request));
        return;
    }
    const int worker = idle_workers_.front();
    idle_workers_.pop_front();
    Assign(worker, std::move(request));
}

void
KvService::OnWorkerDone(int worker_index, const Request& request)
{
    ++completed_;
    if (completion_hook_) {
        completion_hook_(request);
    } else if (request.arrival >= window_start_ &&
               request.arrival < window_end_) {
        ++completed_in_window_;
        latency_[static_cast<std::size_t>(request.kind)].Record(
            (sim_.Now() - request.arrival).ns());
    }
    if (!pending_.empty()) {
        Request next = std::move(pending_.front());
        pending_.pop_front();
        Assign(worker_index, std::move(next));
    } else {
        idle_workers_.push_back(worker_index);
    }
}

// wave-lifetime(caller-awaits)
sim::Task<ghost::RunStop>
KvWorkerBody::Run(ghost::RunContext& ctx)
{
    if (!assigned_.has_value()) {
        co_return ghost::RunStop::kBlocked;  // spurious wake: nothing to do
    }
    while (remaining_ > 0) {
        const sim::DurationNs ran =
            co_await ctx.interrupt.SleepInterruptible(remaining_);
        remaining_ -= std::min(ran, remaining_);
        if (remaining_ > 0) {
            // An interrupt arrived mid-request; the kernel decides
            // whether it carries a real preemption.
            co_return ghost::RunStop::kPreempted;
        }
    }
    const Request done = *assigned_;
    assigned_.reset();
    // OnWorkerDone may assign the next request and wake us; that wake
    // lands as wake_pending because we are still 'running'.
    service_->OnWorkerDone(index_, done);
    co_return ghost::RunStop::kBlocked;
}

}  // namespace wave::workload
