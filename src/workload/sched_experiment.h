/**
 * @file
 * Reusable harness for the §7.2 scheduling experiments.
 *
 * Builds one complete simulated deployment — machine, transport
 * (on-host shared memory or Wave/PCIe), ghOSt kernel, scheduling agent,
 * KV service, load generator — runs one offered-load point, and reports
 * throughput and latency. The Figure 4 benches sweep offered load over
 * this; the §7.2.2 optimization-ladder bench sweeps OptimizationConfig;
 * tests pin single points.
 */
// wave-domain: host
#pragma once

#include <memory>
#include <string>

#include "ghost/agent.h"
#include "ghost/costs.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "pcie/config.h"
#include "sched/fifo.h"
#include "sched/shinjuku.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "workload/kv_service.h"
#include "workload/loadgen.h"

namespace wave::workload {

/** Which scheduling policy the experiment runs. */
enum class PolicyKind {
    kFifo,
    kShinjuku,
    kMultiQueueShinjuku,
};

/** Where the agent runs. */
enum class Deployment {
    kOnHost,  ///< agent on a dedicated host core, shared-memory queues
    kWave,    ///< agent on a SmartNIC core, PCIe queues (offloaded)
};

/** Full experiment configuration for one load point. */
struct SchedExperimentConfig {
    Deployment deployment = Deployment::kWave;
    PolicyKind policy = PolicyKind::kFifo;

    /** Host cores running workers (On-Host uses one more for the agent). */
    int worker_cores = 15;

    /** Worker thread pool size. */
    int num_workers = 60;

    /** PCIe model (swap for PcieConfig::Upi() in §7.3.3). */
    pcie::PcieConfig pcie = {};

    /** Wave optimization ladder position (§7.2.2). */
    api::OptimizationConfig opt = api::OptimizationConfig::Full();

    /** Policy-level prestaging (applies to both deployments). */
    bool prestage = true;

    /** Prestage eagerness (run-queue depth threshold). */
    std::size_t prestage_min_depth = 8;

    /** Host idle cores poll instead of sleeping; agent skips kicks. */
    bool poll_mode = false;

    /** Shinjuku preemption slice. */
    sim::DurationNs slice_ns = 30'000;

    /** NIC core speed override (0 = use MachineConfig default). */
    double nic_speed = 0.0;

    /** Workload. */
    double offered_rps = 500'000;
    double get_fraction = 1.0;
    sim::DurationNs get_service_ns = 10'000;
    sim::DurationNs range_service_ns = 10'000'000;

    sim::DurationNs warmup_ns = 30'000'000;    ///< 30 ms
    sim::DurationNs measure_ns = 200'000'000;  ///< 200 ms
    std::uint64_t seed = 42;
};

/** One load point's results. */
struct SchedExperimentResult {
    double achieved_rps = 0;
    std::uint64_t completed = 0;
    sim::DurationNs get_p50 = 0;
    sim::DurationNs get_p99 = 0;
    sim::DurationNs get_p999 = 0;
    sim::DurationNs range_p99 = 0;
    sim::DurationNs ctx_switch_p50 = 0;
    std::uint64_t commits_failed = 0;
    std::uint64_t prestage_hits = 0;
    std::uint64_t idle_waits = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t agent_decisions = 0;
    std::uint64_t agent_prestages = 0;
    std::uint64_t agent_kicks = 0;
    std::uint64_t messages_sent = 0;
    /** Simulator event-stream fingerprint (determinism auditing). */
    std::uint64_t event_hash = 0;
};

/** Runs one load point to completion and reports. */
SchedExperimentResult RunSchedExperiment(const SchedExperimentConfig& cfg);

/**
 * Sweeps offered load and returns the saturation throughput: the
 * highest achieved rate among the swept points whose achieved rate
 * stays within @p efficiency of offered (past saturation, achieved
 * flattens while offered keeps growing).
 */
double FindSaturationThroughput(const SchedExperimentConfig& base,
                                double start_rps, double end_rps,
                                double step_rps, double efficiency = 0.97);

}  // namespace wave::workload
