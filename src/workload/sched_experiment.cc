// wave-domain: host
#include "workload/sched_experiment.h"

#include <algorithm>

namespace wave::workload {

namespace {

std::shared_ptr<ghost::SchedPolicy>
MakePolicy(const SchedExperimentConfig& cfg)
{
    switch (cfg.policy) {
      case PolicyKind::kFifo:
        return std::make_shared<sched::FifoPolicy>();
      case PolicyKind::kShinjuku:
        return std::make_shared<sched::ShinjukuPolicy>(cfg.slice_ns);
      case PolicyKind::kMultiQueueShinjuku:
      default:
        return std::make_shared<sched::MultiQueueShinjukuPolicy>(
            cfg.slice_ns);
    }
}

}  // namespace

SchedExperimentResult
RunSchedExperiment(const SchedExperimentConfig& cfg)
{
    sim::Simulator sim;

    machine::MachineConfig mc;
    mc.host_cores = cfg.worker_cores + 1;  // +1 for a possible host agent
    if (cfg.nic_speed > 0) mc.nic_speed = cfg.nic_speed;
    machine::Machine machine(sim, mc);

    WaveRuntime runtime(sim, machine, cfg.pcie, cfg.opt);

    // Worker cores are 0..worker_cores-1; the on-host agent (if any)
    // runs on the last core, mirroring the paper's 15+1 split.
    std::vector<int> worker_cores;
    for (int i = 0; i < cfg.worker_cores; ++i) worker_cores.push_back(i);

    std::unique_ptr<ghost::SchedTransport> transport;
    if (cfg.deployment == Deployment::kWave) {
        transport = std::make_unique<ghost::WaveSchedTransport>(
            runtime, cfg.worker_cores);
    } else {
        transport = std::make_unique<ghost::ShmSchedTransport>(
            sim, cfg.worker_cores);
    }

    ghost::KernelOptions kernel_options;
    // Decision prefetching is the host half of the §5.4 optimization;
    // it rides the optimization ladder together with prestaging.
    kernel_options.prefetch_decisions =
        cfg.deployment == Deployment::kOnHost || cfg.opt.prestage_prefetch;
    kernel_options.poll_idle = cfg.poll_mode;
    ghost::KernelSched kernel(sim, machine, *transport, ghost::GhostCosts{},
                              kernel_options);

    auto policy = MakePolicy(cfg);
    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = worker_cores;
    agent_cfg.prestage = cfg.prestage;
    agent_cfg.prestage_min_depth = cfg.prestage_min_depth;
    agent_cfg.use_kicks = !cfg.poll_mode;
    auto agent =
        std::make_shared<ghost::GhostAgent>(*transport, policy, agent_cfg);

    std::unique_ptr<AgentContext> host_agent_ctx;
    if (cfg.deployment == Deployment::kWave) {
        runtime.StartWaveAgent(agent, /*nic_core=*/0);
    } else {
        // The on-host agent occupies the extra host core.
        host_agent_ctx = std::make_unique<AgentContext>(
            sim, machine.HostCpu(cfg.worker_cores));
        sim.Spawn(agent->Run(*host_agent_ctx));
    }

    auto on_assign = [&policy, &cfg](ghost::Tid tid, std::uint32_t slo) {
        if (cfg.policy == PolicyKind::kMultiQueueShinjuku) {
            static_cast<sched::MultiQueueShinjukuPolicy*>(policy.get())
                ->SetThreadSlo(tid, slo);
        }
    };
    KvService service(sim, kernel, cfg.num_workers, /*first_tid=*/1000,
                      on_assign);
    service.SetMeasureWindow(sim::TimeNs{cfg.warmup_ns},
                             sim::TimeNs{cfg.warmup_ns + cfg.measure_ns});

    kernel.Start(worker_cores);

    LoadGenConfig lg;
    lg.rate_rps = cfg.offered_rps;
    lg.get_fraction = cfg.get_fraction;
    lg.get_service_ns = cfg.get_service_ns;
    lg.range_service_ns = cfg.range_service_ns;
    lg.end_time = sim::TimeNs{cfg.warmup_ns + cfg.measure_ns};
    lg.seed = cfg.seed;
    sim.Spawn(RunLoadGenerator(sim, service, lg));

    sim.RunUntil(sim::TimeNs{cfg.warmup_ns + cfg.measure_ns});

    SchedExperimentResult result;
    result.completed = service.CompletedInWindow();
    result.achieved_rps = static_cast<double>(result.completed) /
                          sim::ToSec(cfg.measure_ns);
    const auto& get_hist = service.Latency(RequestKind::kGet);
    result.get_p50 = get_hist.Percentile(0.50);
    result.get_p99 = get_hist.Percentile(0.99);
    result.get_p999 = get_hist.Percentile(0.999);
    result.range_p99 =
        service.Latency(RequestKind::kRange).Percentile(0.99);
    result.ctx_switch_p50 =
        kernel.Stats().ctx_switch_overhead.Percentile(0.50);
    result.commits_failed = kernel.Stats().commits_failed;
    result.prestage_hits = kernel.Stats().prestage_hits;
    result.idle_waits = kernel.Stats().idle_waits;
    result.preemptions = kernel.Stats().preemptions;
    result.agent_decisions = agent->Stats().decisions;
    result.agent_prestages = agent->Stats().prestages;
    result.agent_kicks = agent->Stats().kicks;
    result.messages_sent = kernel.Stats().messages_sent;
    result.event_hash = sim.EventHash();
    return result;
}

double
FindSaturationThroughput(const SchedExperimentConfig& base,
                         double start_rps, double end_rps, double step_rps,
                         double efficiency)
{
    double best = 0;
    for (double rps = start_rps; rps <= end_rps + 1; rps += step_rps) {
        SchedExperimentConfig cfg = base;
        cfg.offered_rps = rps;
        const SchedExperimentResult r = RunSchedExperiment(cfg);
        if (r.achieved_rps >= efficiency * rps) {
            best = std::max(best, r.achieved_rps);
        } else if (best > 0) {
            break;  // past the knee; achieved has flattened
        }
    }
    return best;
}

}  // namespace wave::workload
