/**
 * @file
 * A generic pool of CPU-bound servers draining a job queue.
 *
 * Used for pipeline stages that are queueing systems in their own
 * right: the RPC stack's protocol-processing cores (§4.3), response
 * serialization, etc. Each worker CPU loops: take a job, execute its
 * cost on the CPU, run its completion.
 */
// wave-domain: host
#pragma once

#include <functional>
#include <vector>

#include "machine/cpu.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace wave::workload {

/** A unit of work for the pool. */
struct PoolJob {
    /** Compute cost at reference-core speed. */
    sim::DurationNs cost_ns = 0;

    /** Runs after the cost has been paid. */
    std::function<void()> done;
};

/** Fixed set of CPUs serving a FIFO job queue. */
class ServerPool {
  public:
    ServerPool(sim::Simulator& sim, std::vector<machine::Cpu*> cpus)
        : sim_(sim), cpus_(std::move(cpus)), jobs_(sim)
    {
        WAVE_ASSERT(!cpus_.empty(), "pool needs at least one CPU");
    }

    /** Starts the worker loops. */
    void
    Start()
    {
        for (machine::Cpu* cpu : cpus_) {
            sim_.Spawn(WorkerLoop(cpu));
        }
    }

    /** Enqueues a job. */
    void
    Submit(PoolJob job)
    {
        ++submitted_;
        jobs_.Push(std::move(job));
    }

    std::uint64_t Submitted() const { return submitted_; }
    std::uint64_t Completed() const { return completed_; }
    std::size_t QueueDepth() const { return jobs_.Size(); }

  private:
    // wave-lifetime(spawn-safe: only `this` is borrowed; the pool is owned by the service, which outlives the simulator run)
    sim::Task<>
    WorkerLoop(machine::Cpu* cpu)
    {
        for (;;) {
            PoolJob job = co_await jobs_.Receive();
            co_await cpu->Work(job.cost_ns);
            ++completed_;
            if (job.done) job.done();
        }
    }

    sim::Simulator& sim_;
    std::vector<machine::Cpu*> cpus_;
    sim::Channel<PoolJob> jobs_;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace wave::workload
