/**
 * @file
 * The busy_loop compute-characterization workload (§7.2.4).
 *
 * The paper uses an internal busy_loop utility — arithmetic plus
 * syscalls in a tight loop — to measure VM compute performance under
 * different schedulers. Here a BusyLoopBody accumulates the simulated
 * time it actually ran; work output is that time multiplied by the
 * core's turbo frequency (done by the Figure 5 bench, which owns the
 * TurboModel). Timer ticks interrupt the loop, and the tick-handling
 * time the kernel steals is exactly the overhead Figure 5's flat 1.7%
 * component measures.
 */
// wave-domain: host
#pragma once

#include "ghost/thread.h"

namespace wave::workload {

/** A vCPU that never blocks: consumes all CPU it is given. */
class BusyLoopBody : public ghost::ThreadBody {
  public:
    // wave-lifetime(caller-awaits)
    sim::Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        for (;;) {
            const sim::DurationNs ran =
                co_await ctx.interrupt.SleepInterruptible(kChunkNs);
            busy_ns_ += ran;
            if (ctx.interrupt.Pending()) {
                // Tick or preemption: hand control to the kernel; it
                // resumes us if the interrupt was only a tick.
                co_return ghost::RunStop::kPreempted;
            }
        }
    }

    /** Total simulated time this vCPU actually executed. */
    sim::DurationNs BusyNs() const { return busy_ns_; }

    /** Snapshot helper for windowed measurements. */
    sim::DurationNs
    BusySince(sim::DurationNs snapshot) const
    {
        return busy_ns_ - snapshot;
    }

  private:
    static constexpr sim::DurationNs kChunkNs = 100'000;  // 0.1 ms

    sim::DurationNs busy_ns_ = 0;
};

/** A vCPU that is idle: blocks immediately whenever scheduled. */
class IdleVcpuBody : public ghost::ThreadBody {
  public:
    // wave-lifetime(caller-awaits)
    sim::Task<ghost::RunStop>
    Run(ghost::RunContext&) override
    {
        co_return ghost::RunStop::kBlocked;
    }
};

}  // namespace wave::workload
