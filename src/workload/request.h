/**
 * @file
 * Request model for the key-value workloads.
 *
 * The paper drives RocksDB with 10 µs GET requests and, for the
 * Shinjuku experiments, a 99.5/0.5 mix of 10 µs GETs and 10 ms RANGE
 * queries. Requests carry an SLO class for the multi-queue Shinjuku
 * policy (§7.3.2): GETs are class 0 (strict), RANGEs class 1.
 */
// wave-domain: host
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace wave::workload {

/** Request kinds in the paper's KV workloads. */
enum class RequestKind : std::uint32_t {
    kGet = 0,
    kRange = 1,
};

/** One KV request. */
struct Request {
    std::uint64_t id = 0;
    RequestKind kind = RequestKind::kGet;
    std::uint32_t slo_class = 0;
    sim::TimeNs arrival{};
    sim::DurationNs service_ns = 0;
};

}  // namespace wave::workload
