/**
 * @file
 * Open-loop Poisson load generator.
 *
 * Generates KV requests at a configured offered rate with exponential
 * inter-arrivals, mixing GETs and RANGEs per the experiment (§7.2:
 * 100% 10 µs GETs for FIFO; 99.5% GET + 0.5% 10 ms RANGE for
 * Shinjuku). Open loop: arrivals do not slow down when the system
 * backs up, so tail latency explodes past saturation, producing the
 * throughput-latency curves of Figures 4 and 6.
 */
// wave-domain: host
#pragma once

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "workload/kv_service.h"
#include "workload/request.h"

namespace wave::workload {

/** Load-generation parameters. */
struct LoadGenConfig {
    /** Offered load in requests per second. */
    double rate_rps = 100'000;

    /** Fraction of requests that are GETs (the rest are RANGEs). */
    double get_fraction = 1.0;

    sim::DurationNs get_service_ns = 10'000;         ///< 10 us
    sim::DurationNs range_service_ns = 10'000'000;   ///< 10 ms

    /** GETs are the strict SLO class for multi-queue Shinjuku. */
    std::uint32_t get_slo = 0;
    std::uint32_t range_slo = 1;

    /** Generation stops at this simulated time. */
    sim::TimeNs end_time{};

    std::uint64_t seed = 1;
};

/** Runs the generator as a simulation process. */
sim::Task<> RunLoadGenerator(sim::Simulator& sim, KvService& service,
                             LoadGenConfig config);

}  // namespace wave::workload
