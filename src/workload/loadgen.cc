// wave-domain: host
#include "workload/loadgen.h"

namespace wave::workload {

// wave-lifetime(spawn-safe: sim, service, and config are owned by the experiment frame, which runs the simulator to completion before returning)
sim::Task<>
RunLoadGenerator(sim::Simulator& sim, KvService& service,
                 LoadGenConfig config)
{
    sim::Rng rng(config.seed);
    const double mean_gap_ns = 1e9 / config.rate_rps;
    std::uint64_t next_id = 1;

    while (sim.Now() < config.end_time) {
        const double gap = rng.NextExponential(mean_gap_ns);
        co_await sim.Delay(sim::DurationNs::FromDouble(gap));
        if (sim.Now() >= config.end_time) break;

        Request request;
        request.id = next_id++;
        request.arrival = sim.Now();
        if (rng.NextBernoulli(config.get_fraction)) {
            request.kind = RequestKind::kGet;
            request.slo_class = config.get_slo;
            request.service_ns = config.get_service_ns;
        } else {
            request.kind = RequestKind::kRange;
            request.slo_class = config.range_slo;
            request.service_ns = config.range_service_ns;
        }
        service.Submit(std::move(request));
    }
}

}  // namespace wave::workload
