/**
 * @file
 * Simulated key-value service (the RocksDB stand-in).
 *
 * A dispatcher feeds requests to a pool of ghOSt-class worker threads,
 * one request per thread wake — the per-request scheduling pattern the
 * paper's RocksDB experiments stress. When no worker is idle, requests
 * queue at the dispatcher; when a worker finishes and more work is
 * pending, the dispatcher re-arms it immediately (the wake rides the
 * kernel's wake-while-running path, so every request still goes through
 * a full scheduling decision).
 *
 * Request latency is measured arrival -> completion, per request kind,
 * within a configurable measurement window.
 */
// wave-domain: host
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ghost/kernel.h"
#include "ghost/thread.h"
#include "stats/histogram.h"
#include "workload/request.h"

namespace wave::workload {

class KvWorkerBody;

/** Dispatcher + worker pool serving KV requests. */
class KvService {
  public:
    /**
     * Creates @p num_workers ghOSt worker threads (tids starting at
     * @p first_tid) registered with @p kernel.
     *
     * @param on_assign optional hook invoked when a request is assigned
     *        to a worker — the RPC/scheduling integration uses it to
     *        tag the thread's SLO class with the policy.
     */
    KvService(sim::Simulator& sim, ghost::KernelSched& kernel,
              int num_workers, ghost::Tid first_tid = 1000,
              std::function<void(ghost::Tid, std::uint32_t)> on_assign = {});

    /** Submits a request: assigns an idle worker or queues it. */
    void Submit(Request request);

    /**
     * When set, completions are handed to the hook instead of being
     * recorded internally — the RPC pipeline uses this to route
     * responses back through the RPC stack before measuring latency.
     */
    void
    SetCompletionHook(std::function<void(const Request&)> hook)
    {
        completion_hook_ = std::move(hook);
    }

    /** Only requests arriving inside [start, end) are recorded. */
    void
    SetMeasureWindow(sim::TimeNs start, sim::TimeNs end)
    {
        window_start_ = start;
        window_end_ = end;
    }

    /** Latency histogram for a request kind (window-filtered). */
    const stats::Histogram&
    Latency(RequestKind kind) const
    {
        return latency_[static_cast<std::size_t>(kind)];
    }

    /** Completed requests whose arrival fell inside the window. */
    std::uint64_t CompletedInWindow() const { return completed_in_window_; }

    /** All completions since start. */
    std::uint64_t Completed() const { return completed_; }

    /** Requests waiting at the dispatcher right now. */
    std::size_t PendingDepth() const { return pending_.size(); }

  private:
    friend class KvWorkerBody;

    /** Worker finished its request; rearm it or mark it idle. */
    void OnWorkerDone(int worker_index, const Request& request);

    void Assign(int worker_index, Request request);

    sim::Simulator& sim_;
    ghost::KernelSched& kernel_;
    std::function<void(ghost::Tid, std::uint32_t)> on_assign_;
    std::vector<std::shared_ptr<KvWorkerBody>> workers_;
    std::vector<ghost::Tid> worker_tids_;
    std::deque<int> idle_workers_;
    std::deque<Request> pending_;
    std::function<void(const Request&)> completion_hook_;
    stats::Histogram latency_[2];
    sim::TimeNs window_start_{};
    sim::TimeNs window_end_{~0ull};
    std::uint64_t completed_ = 0;
    std::uint64_t completed_in_window_ = 0;
};

/** Worker thread body: serves one assigned request per wake. */
class KvWorkerBody : public ghost::ThreadBody {
  public:
    KvWorkerBody(KvService* service, int index)
        : service_(service), index_(index)
    {
    }

    sim::Task<ghost::RunStop> Run(ghost::RunContext& ctx) override;

    bool HasRequest() const { return assigned_.has_value(); }

  private:
    friend class KvService;

    KvService* service_;
    int index_;
    std::optional<Request> assigned_;
    sim::DurationNs remaining_ = 0;
};

}  // namespace wave::workload
