// wave-domain: nic
#include "sol/agent.h"

#include "sim/sync.h"

namespace wave::sol {

SolAgent::SolAgent(sim::Simulator& sim, memmgr::AddressSpace& space,
                   SolDeployment deployment, SolConfig config,
                   memmgr::MemCosts costs)
    : SolAgent(sim, space, std::move(deployment),
               std::make_unique<SolPolicy>(
                   config, space.NumPages() / config.pages_per_batch),
               costs)
{
}

SolAgent::SolAgent(sim::Simulator& sim, memmgr::AddressSpace& space,
                   SolDeployment deployment,
                   std::unique_ptr<memmgr::MemPolicy> policy,
                   memmgr::MemCosts costs)
    : sim_(sim),
      space_(space),
      deployment_(std::move(deployment)),
      pages_per_batch_(space.NumPages() / policy->NumBatches()),
      costs_(costs),
      policy_(std::move(policy)),
      next_epoch_(policy_->EpochNs()),
      xfer_src_(space.NumPages() / 8 + policy_->NumBatches() * 16 + 64),
      xfer_dst_(space.NumPages() / 8 + policy_->NumBatches() * 16 + 64)
{
    WAVE_ASSERT(!deployment_.cpus.empty(), "agent needs worker CPUs");
    harvested_.resize(policy_->NumBatches());
    due_.resize(policy_->NumBatches());
}

// wave-lifetime(caller-awaits)
sim::Task<>
SolAgent::ScanShard(machine::Cpu* cpu, std::size_t first, std::size_t last,
                    sim::TimeNs now, std::size_t* scanned)
{
    // The policy math runs for real; the compute time is charged as one
    // aggregate Work per shard (events stay O(shards), not O(batches)).
    std::size_t shard_scans = 0;
    for (std::size_t batch = first; batch < last; ++batch) {
        if (!due_[batch]) continue;
        if (policy_->ScanBatch(batch, harvested_[batch], now)) {
            ++shard_scans;
        }
    }
    *scanned += shard_scans;
    co_await cpu->Work(policy_->ScanComputePerBatchNs() * shard_scans);
}

// wave-lifetime(caller-awaits)
sim::Task<sim::DurationNs>
SolAgent::RunIteration()
{
    const sim::TimeNs start = sim_.Now();
    const sim::TimeNs now = start;
    const std::size_t ppb = pages_per_batch_;

    // --- 1. host kernel harvests access bits for due batches ---
    std::size_t due_count = 0;
    for (std::size_t batch = 0; batch < policy_->NumBatches(); ++batch) {
        due_[batch] = policy_->Due(batch, now) ? 1 : 0;
        if (!due_[batch]) continue;
        ++due_count;
        harvested_[batch] = static_cast<std::uint32_t>(
            space_.HarvestAccessBits(batch * ppb, ppb));
    }
    // Harvest walk + amortized ranged TLB shootdowns, on the host.
    co_await sim_.Delay(
        costs_.harvest_per_page_ns * due_count * ppb +
        costs_.tlb_flush_ns * (due_count / 64 + 1));

    // --- 2. access bits reach the agent ---
    if (deployment_.dma != nullptr && due_count > 0) {
        // One bit per page of every due batch, DMA'd host -> NIC.
        const std::size_t bytes = due_count * ppb / 8;
        co_await deployment_.dma->Transfer(pcie::DmaInitiator::kNic,
                                           xfer_src_, 0, xfer_dst_, 0,
                                           bytes);
    }

    // --- 3. parallel shard scans on the worker CPUs ---
    const std::size_t workers = deployment_.cpus.size();
    const std::size_t per_shard =
        (policy_->NumBatches() + workers - 1) / workers;
    std::vector<std::size_t> scanned(workers, 0);
    std::vector<sim::Task<>> shards;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t first = w * per_shard;
        const std::size_t last =
            std::min(policy_->NumBatches(), first + per_shard);
        if (first >= last) break;
        shards.push_back(ScanShard(deployment_.cpus[w], first, last, now,
                                   &scanned[w]));
    }
    co_await sim::AwaitAll(sim_, std::move(shards));

    std::size_t total_scanned = 0;
    for (std::size_t s : scanned) total_scanned += s;
    stats_.batches_scanned += total_scanned;

    // --- 4. serial merge on the first worker CPU ---
    co_await deployment_.cpus[0]->Work(
        policy_->MergeComputePerBatchNs() * total_scanned);

    // --- epoch migration ---
    if (sim_.Now() >= next_epoch_) {
        next_epoch_ += policy_->EpochNs();
        ++stats_.epochs;
        auto plan = policy_->EpochPlan();
        std::size_t pages = plan.size() * ppb;
        if (deployment_.dma != nullptr && !plan.empty()) {
            // Migration decisions (batch id + tier) DMA'd NIC -> host.
            co_await deployment_.dma->Transfer(pcie::DmaInitiator::kNic,
                                               xfer_src_, 0, xfer_dst_, 0,
                                               plan.size() * 16);
        }
        // The host applies the plan through the madvise path.
        for (const auto& [batch, tier] : plan) {
            for (std::size_t p = 0; p < ppb; ++p) {
                space_.SetTier(batch * ppb + p, tier);
            }
        }
        co_await sim_.Delay(costs_.migrate_per_page_ns * pages);
        stats_.pages_migrated += pages;
    }

    const sim::DurationNs duration = sim_.Now() - start;
    stats_.last_iteration_ns = duration;
    stats_.iteration_ns.Record(duration.ns());
    ++stats_.iterations;
    co_return duration;
}

// wave-lifetime(caller-awaits)
sim::Task<>
SolAgent::RunUntil(sim::TimeNs until)
{
    const sim::DurationNs min_period = policy_->MinScanPeriodNs();
    while (sim_.Now() < until) {
        const sim::TimeNs iter_start = sim_.Now();
        co_await RunIteration();
        const sim::TimeNs next = iter_start + min_period;
        if (sim_.Now() < next) {
            co_await sim_.Delay(next - sim_.Now());
        }
    }
}

}  // namespace wave::sol
