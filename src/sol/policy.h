/**
 * @file
 * The SOL machine-learning memory policy (§4.2, reproducing Wang et
 * al.'s "SOL: Safe on-node learning in cloud platforms").
 *
 * SOL groups consecutive pages into batches (64 x 4 KiB = 256 KiB),
 * models each batch's hotness with a Beta posterior, and uses Thompson
 * sampling to decide how often to scan each batch's access bits (the
 * ladder 600 ms ... 9.6 s used in §7.4.1; scanning costs a TLB flush,
 * so cold batches should be scanned rarely). Once per 38.4 s epoch —
 * 4x the slowest scan period — batches are classified hot/cold and
 * migrated between the fast tier (local DRAM) and the slow tier.
 *
 * The policy is deliberately compute-hungry (it is the paper's example
 * of ML-based system software that is costly without offload): every
 * scanned batch pays posterior-update + sampling compute, calibrated
 * so the §7.4.2 per-iteration table reproduces.
 */
// wave-domain: nic
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "memmgr/address_space.h"
#include "memmgr/policy.h"
#include "sim/random.h"
#include "sim/time.h"

namespace wave::sol {

/** SOL configuration (§7.4.1 evaluation defaults). */
struct SolConfig {
    /** Pages per classification batch (64 x 4 KiB = 256 KiB). */
    std::size_t pages_per_batch = 64;

    /** Scan-period ladder, fastest first. */
    std::vector<sim::DurationNs> scan_periods = {
        600'000'000ull,    // 600 ms
        1'200'000'000ull,  // 1.2 s
        2'400'000'000ull,  // 2.4 s
        4'800'000'000ull,  // 4.8 s
        9'600'000'000ull,  // 9.6 s
    };

    /** Migration epoch: 4x the slowest scan period. */
    sim::DurationNs epoch_ns = 38'400'000'000ull;  // 38.4 s

    /** Posterior-mean threshold for the fast tier at epoch time. */
    double hot_threshold = 0.25;

    /** Thompson-sample thresholds selecting the scan period. */
    std::vector<double> period_thresholds = {0.5, 0.3, 0.2, 0.1};

    /** Parallelizable compute per scanned batch (reference core). */
    sim::DurationNs scan_compute_per_batch_ns = 870;

    /** Serial merge/bookkeeping compute per scanned batch. */
    sim::DurationNs merge_compute_per_batch_ns = 400;

    std::uint64_t seed = 7;
};

/** Per-batch learning state. */
struct BatchState {
    double alpha = 1.0;  ///< Beta prior: accesses observed
    double beta = 1.0;   ///< Beta prior: quiet scans observed
    std::size_t period_index = 0;
    sim::TimeNs next_scan{};
    memmgr::Tier tier = memmgr::Tier::kFast;
};

/** The SOL decision logic (no timing; agents charge compute). */
class SolPolicy : public memmgr::MemPolicy {
  public:
    SolPolicy(const SolConfig& config, std::size_t num_batches);

    std::string Name() const override { return "sol"; }

    /**
     * Scans one batch that is due: consumes the harvested access count,
     * updates the posterior, Thompson-samples the next scan period.
     * Returns true if the batch was due and scanned.
     */
    bool ScanBatch(std::size_t batch, std::uint64_t accessed_pages,
                   sim::TimeNs now) override;

    /** True if the batch's next scan time has arrived. */
    bool
    Due(std::size_t batch, sim::TimeNs now) const override
    {
        return batches_[batch].next_scan <= now;
    }

    /**
     * Epoch classification: returns the migration plan as (batch, tier)
     * pairs for batches whose tier should change.
     */
    std::vector<std::pair<std::size_t, memmgr::Tier>> EpochPlan() override;

    /** Posterior mean hotness of a batch. */
    double
    HotnessMean(std::size_t batch) const
    {
        const BatchState& b = batches_[batch];
        return b.alpha / (b.alpha + b.beta);
    }

    const BatchState& Batch(std::size_t i) const { return batches_[i]; }
    std::size_t NumBatches() const override { return batches_.size(); }
    const SolConfig& Config() const { return config_; }

    sim::DurationNs EpochNs() const override { return config_.epoch_ns; }
    sim::DurationNs
    MinScanPeriodNs() const override
    {
        return config_.scan_periods.front();
    }
    sim::DurationNs
    ScanComputePerBatchNs() const override
    {
        return config_.scan_compute_per_batch_ns;
    }
    sim::DurationNs
    MergeComputePerBatchNs() const override
    {
        return config_.merge_compute_per_batch_ns;
    }

    std::uint64_t ScansPerformed() const { return scans_; }

  private:
    SolConfig config_;
    std::vector<BatchState> batches_;
    sim::Rng rng_;
    std::uint64_t scans_ = 0;
};

}  // namespace wave::sol
