/**
 * @file
 * The SOL memory-management agent (§4.2, evaluated in §7.4).
 *
 * One agent manages one address space, parallelized across worker CPUs
 * by sharding the batch range ("each memory agent thread manages an
 * address space chunk", §6). An iteration:
 *
 *   1. The host kernel harvests access bits for due batches (serial,
 *      on-host in both deployments — the mechanism stays on the host).
 *   2. The harvested bits reach the agent: over DMA when offloaded
 *      (the high-throughput, latency-tolerant transport of §4.2), at
 *      memory cost when on-host.
 *   3. Worker CPUs scan their shards in parallel: posterior updates +
 *      Thompson sampling (the compute-heavy part that motivates
 *      offload).
 *   4. A serial merge integrates shard results; at epoch boundaries
 *      the agent plans migrations and the host applies them through
 *      the madvise path (decisions DMA'd back when offloaded).
 */
// wave-domain: nic
#pragma once

#include <memory>
#include <vector>

#include "machine/cpu.h"
#include "memmgr/address_space.h"
#include "memmgr/policy.h"
#include "pcie/dma.h"
#include "sim/simulator.h"
#include "sol/policy.h"
#include "stats/histogram.h"

namespace wave::sol {

/** Where the agent's compute runs. */
struct SolDeployment {
    /** Worker CPUs (host cores on-host, SmartNIC cores offloaded). */
    std::vector<machine::Cpu*> cpus;

    /** Non-null when offloaded: transfers cross PCIe via this engine. */
    pcie::DmaEngine* dma = nullptr;
};

/** Per-iteration and cumulative agent statistics. */
struct SolStats {
    stats::Histogram iteration_ns;
    std::uint64_t iterations = 0;
    std::uint64_t batches_scanned = 0;
    std::uint64_t pages_migrated = 0;
    std::uint64_t epochs = 0;
    sim::DurationNs last_iteration_ns = 0;
};

/** The SOL agent driving one address space. */
class SolAgent {
  public:
    SolAgent(sim::Simulator& sim, memmgr::AddressSpace& space,
             SolDeployment deployment, SolConfig config = {},
             memmgr::MemCosts costs = {});

    /**
     * Drives an arbitrary memory policy (e.g. the LRU-CLOCK baseline)
     * through the same agent loop — the §4.2 comparison axis.
     */
    SolAgent(sim::Simulator& sim, memmgr::AddressSpace& space,
             SolDeployment deployment,
             std::unique_ptr<memmgr::MemPolicy> policy,
             memmgr::MemCosts costs = {});

    /**
     * Runs one scan iteration (and an epoch migration if due).
     * Returns the iteration's duration in simulated ns.
     */
    sim::Task<sim::DurationNs> RunIteration();

    /**
     * Runs iterations back to back until @p until, pacing to at least
     * the fastest scan period between starts.
     */
    sim::Task<> RunUntil(sim::TimeNs until);

    const SolStats& Stats() const { return stats_; }
    memmgr::MemPolicy& Policy() { return *policy_; }

  private:
    /** Scans the due batches in [first, last) on one worker CPU. */
    sim::Task<> ScanShard(machine::Cpu* cpu, std::size_t first,
                          std::size_t last, sim::TimeNs now,
                          std::size_t* scanned);

    sim::Simulator& sim_;
    memmgr::AddressSpace& space_;
    SolDeployment deployment_;
    std::size_t pages_per_batch_;
    memmgr::MemCosts costs_;
    std::unique_ptr<memmgr::MemPolicy> policy_;
    SolStats stats_;
    sim::TimeNs next_epoch_;
    // Scratch access counts harvested by the host, consumed by shards.
    std::vector<std::uint32_t> harvested_;
    std::vector<std::uint8_t> due_;
    // Transfer staging for the offloaded deployment (bitmaps / plans).
    pcie::MemoryRegion xfer_src_;
    pcie::MemoryRegion xfer_dst_;
};

}  // namespace wave::sol
