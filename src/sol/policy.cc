// wave-domain: nic
#include "sol/policy.h"

#include <algorithm>

namespace wave::sol {

SolPolicy::SolPolicy(const SolConfig& config, std::size_t num_batches)
    : config_(config), batches_(num_batches), rng_(config.seed)
{
    WAVE_ASSERT(!config_.scan_periods.empty());
    WAVE_ASSERT(config_.period_thresholds.size() + 1 ==
                    config_.scan_periods.size(),
                "thresholds must partition the period ladder");
}

bool
SolPolicy::ScanBatch(std::size_t batch, std::uint64_t accessed_pages,
                     sim::TimeNs now)
{
    WAVE_ASSERT(batch < batches_.size());
    BatchState& state = batches_[batch];
    if (state.next_scan > now) return false;
    ++scans_;

    // Fractional evidence: the share of the batch's pages touched since
    // the last scan. A hot 256 KiB batch has most of its pages accessed
    // even in a short interval; a cold batch collects only stray
    // touches. Fractional pseudo-counts keep the Beta posterior well
    // defined.
    const double fraction =
        std::min(1.0, static_cast<double>(accessed_pages) /
                          static_cast<double>(config_.pages_per_batch));
    state.alpha += fraction;
    state.beta += 1.0 - fraction;

    // Thompson sampling: draw a hotness estimate from the posterior and
    // map it onto the scan-period ladder — likely-hot batches are
    // scanned often (their state changes matter), likely-cold ones
    // rarely (each scan costs a TLB flush).
    const double theta = rng_.NextBeta(state.alpha, state.beta);
    std::size_t index = config_.period_thresholds.size();  // slowest
    for (std::size_t i = 0; i < config_.period_thresholds.size(); ++i) {
        if (theta >= config_.period_thresholds[i]) {
            index = i;
            break;
        }
    }
    state.period_index = index;
    state.next_scan = now + config_.scan_periods[index];
    return true;
}

std::vector<std::pair<std::size_t, memmgr::Tier>>
SolPolicy::EpochPlan()
{
    std::vector<std::pair<std::size_t, memmgr::Tier>> plan;
    for (std::size_t i = 0; i < batches_.size(); ++i) {
        BatchState& state = batches_[i];
        const double mean = state.alpha / (state.alpha + state.beta);
        const memmgr::Tier want = mean > config_.hot_threshold
                                      ? memmgr::Tier::kFast
                                      : memmgr::Tier::kSlow;
        if (want != state.tier) {
            state.tier = want;
            plan.emplace_back(i, want);
        }
    }
    return plan;
}

}  // namespace wave::sol
