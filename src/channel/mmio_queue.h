/**
 * @file
 * MMIO-backed unidirectional queues (§5.3 of the paper).
 *
 * MMIO queues always live in SmartNIC DRAM — only the NIC exposes its
 * memory over PCIe — regardless of which side produces. The host
 * accesses them through an MMIO mapping with a configurable PTE type
 * (the §5.3.1 optimization axis); NIC agents access them as local
 * memory, either uncacheable (baseline) or write-back (optimized).
 *
 * Two directions, four endpoint classes:
 *
 *   host -> NIC (message queue): HostProducer + NicConsumer
 *   NIC -> host (decision queue): NicProducer + HostConsumer
 *
 * The HostConsumer supports the full §5.3.2/§5.4 toolkit: write-through
 * caching, clflush-based software coherence, and prefetching.
 */
// wave-domain: pcie
// wave-shared(host/nic ring endpoints over one BAR window — the sanctioned cross-domain channel; a parallel executor must treat ring head/tail state as a synchronization point between the two shards)
// wave-hot
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/layout.h"
#include "pcie/mmio.h"
#include "sim/actor.h"
#include "sim/task.h"

namespace wave::check {
class HbRaceDetector;
class ProtocolChecker;
}

namespace wave::channel {

using Bytes = std::vector<std::byte>;

/** The shared ring storage, placed at an offset inside NIC DRAM. */
class MmioQueue {
  public:
    MmioQueue(pcie::NicDram& dram, std::size_t base_offset,
              const QueueConfig& config)
        : dram_(dram), base_(base_offset), layout_(config)
    {
        WAVE_ASSERT(base_offset + layout_.BytesNeeded() <=
                        dram.Backing().Size(),
                    "queue does not fit in NIC DRAM window");
    }

    pcie::NicDram& Dram() { return dram_; }
    const RingLayout& Layout() const { return layout_; }
    std::size_t Base() const { return base_; }

    std::size_t
    PayloadAddr(std::uint64_t index) const
    {
        return base_ + layout_.PayloadOffset(index);
    }
    std::size_t
    FlagAddr(std::uint64_t index) const
    {
        return base_ + layout_.FlagOffset(index);
    }
    std::size_t
    CounterAddr() const
    {
        return base_ + layout_.ConsumedCounterOffset();
    }

  private:
    pcie::NicDram& dram_;
    std::size_t base_;
    RingLayout layout_;
};

/** Host-side producer for a host->NIC message queue. */
class HostProducer {
  public:
    /**
     * @param write_type PTE type for entry stores: kUncacheable
     *        (baseline) or kWriteCombining (§5.3.1 batching).
     * @param counter_read_type PTE type for reading the consumer
     *        counter: kUncacheable or kWriteThrough. A stale cached
     *        counter is conservative (the ring merely looks fuller than
     *        it is), so WT is safe and cheap.
     */
    HostProducer(MmioQueue& queue, pcie::PteType write_type,
                 pcie::PteType counter_read_type);

    /**
     * Enqueues a batch of messages; each must be exactly payload_size
     * bytes. Returns the number actually enqueued (less than the batch
     * size only if the ring filled). One sfence covers the whole batch
     * when write-combining is enabled.
     */
    sim::Task<std::size_t> Send(const std::vector<Bytes>& messages);

    /** Number of entries enqueued over the queue's lifetime. */
    std::uint64_t Enqueued() const { return head_; }

    /** Payload bytes per entry of the underlying ring. */
    std::size_t
    QueuePayloadSize() const
    {
        return queue_.Layout().Config().payload_size;
    }

    const pcie::MmioStats& WriteStats() const { return write_map_.Stats(); }

    /** The underlying ring (e.g. to reach the DRAM's checker). */
    MmioQueue& Queue() { return queue_; }

    /**
     * Attaches the protocol/HB checkers. @p actor identifies this
     * endpoint's execution context; the binding is structural (one
     * actor per endpoint) because the simulator has no ambient
     * "current actor" across coroutine suspensions (see sim/actor.h).
     */
    void
    BindCheckers(check::HbRaceDetector* hb,
                 check::ProtocolChecker* protocol, sim::ActorId actor)
    {
        hb_ = hb;
        protocol_ = protocol;
        actor_ = actor;
    }

    sim::ActorId HbActor() const { return actor_; }

  private:
    /** Refreshes the cached consumed counter over PCIe. */
    sim::Task<> RefreshConsumed();

    MmioQueue& queue_;
    pcie::HostMmioMapping write_map_;
    pcie::HostMmioMapping counter_map_;
    std::uint64_t head_ = 0;           ///< next absolute index to write
    std::uint64_t cached_consumed_ = 0;
    check::HbRaceDetector* hb_ = nullptr;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::ActorId actor_ = sim::kNoActor;
};

/** NIC-side consumer for a host->NIC message queue. */
class NicConsumer {
  public:
    /** @param local_type kUncacheable (baseline) or kWriteBack. */
    NicConsumer(MmioQueue& queue, pcie::PteType local_type);

    /** Returns the next message if one is ready; nullopt otherwise. */
    sim::Task<std::optional<Bytes>> Poll();

    /**
     * Allocation-free poll: resizes @p out to the payload size and
     * fills it if a message is ready. A caller that reuses one buffer
     * across polls pays no per-message heap allocation — the hot-loop
     * form of Poll().
     */
    sim::Task<bool> PollInto(Bytes& out);

    /** Drains up to @p max ready messages. */
    sim::Task<std::vector<Bytes>> PollBatch(std::size_t max);

    std::uint64_t Consumed() const { return tail_; }

    /** The underlying ring (e.g. to reach the DRAM's checker). */
    MmioQueue& Queue() { return queue_; }

    /** Attaches the protocol/HB checkers (see HostProducer). */
    void
    BindCheckers(check::HbRaceDetector* hb,
                 check::ProtocolChecker* protocol, sim::ActorId actor)
    {
        hb_ = hb;
        protocol_ = protocol;
        actor_ = actor;
    }

    sim::ActorId HbActor() const { return actor_; }

  private:
    sim::Task<> MaybeSyncCounter();

    MmioQueue& queue_;
    pcie::NicLocalMapping map_;
    std::uint64_t tail_ = 0;  ///< next absolute index to read
    std::uint64_t last_synced_ = 0;
    check::HbRaceDetector* hb_ = nullptr;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::ActorId actor_ = sim::kNoActor;
};

/** NIC-side producer for a NIC->host decision queue. */
class NicProducer {
  public:
    NicProducer(MmioQueue& queue, pcie::PteType local_type);

    /** Enqueues one message; false if the ring is full. */
    sim::Task<bool> Send(const Bytes& message);

    /** Enqueues a batch; returns how many fit. */
    sim::Task<std::size_t> SendBatch(const std::vector<Bytes>& messages);

    std::uint64_t Enqueued() const { return head_; }

    /** Payload bytes per entry of the underlying ring. */
    std::size_t
    QueuePayloadSize() const
    {
        return queue_.Layout().Config().payload_size;
    }

    /** True if the ring has no free slot (by local counter read). */
    sim::Task<bool> Full();

    /** The underlying ring (e.g. to reach the DRAM's checker). */
    MmioQueue& Queue() { return queue_; }

    /** Attaches the protocol/HB checkers (see HostProducer). */
    void
    BindCheckers(check::HbRaceDetector* hb,
                 check::ProtocolChecker* protocol, sim::ActorId actor)
    {
        hb_ = hb;
        protocol_ = protocol;
        actor_ = actor;
    }

    sim::ActorId HbActor() const { return actor_; }

  private:
    MmioQueue& queue_;
    pcie::NicLocalMapping map_;
    std::uint64_t head_ = 0;
    std::uint64_t cached_consumed_ = 0;
    check::HbRaceDetector* hb_ = nullptr;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::ActorId actor_ = sim::kNoActor;
};

/** Host-side consumer for a NIC->host decision queue. */
class HostConsumer {
  public:
    /**
     * @param read_type kUncacheable (baseline) or kWriteThrough
     *        (§5.3.2 caching; requires the software-coherence protocol).
     * @param counter_write_type PTE type for consumer-counter updates.
     */
    HostConsumer(MmioQueue& queue, pcie::PteType read_type,
                 pcie::PteType counter_write_type);

    /**
     * Returns the next message if ready.
     *
     * With a write-through mapping the slot line may be cached stale;
     * callers that *know* new data may have arrived (e.g. on MSI-X
     * receipt) should pass @p flush_first = true, which is the software
     * coherence protocol from §5.3.2.
     */
    sim::Task<std::optional<Bytes>> Poll(bool flush_first);

    /**
     * Allocation-free poll: resizes @p out to the payload size and
     * fills it if a message is ready (see NicConsumer::PollInto).
     */
    sim::Task<bool> PollInto(Bytes& out, bool flush_first);

    /**
     * Prefetches the line(s) of the next slot (§5.4). Call before doing
     * unrelated work; a subsequent Poll() then hits the host cache.
     *
     * The slot's line may still be cached — stale — from the previous
     * ring lap, so this first clflushes it (software coherence) and
     * then starts the fill. The clflush cost is paid here.
     */
    sim::Task<> PrefetchNext();

    /** Flushes the next slot's cached line (software coherence). */
    sim::Task<> FlushNext();

    std::uint64_t Consumed() const { return tail_; }

    /** Payload bytes per entry of the underlying ring. */
    std::size_t
    QueuePayloadSize() const
    {
        return queue_.Layout().Config().payload_size;
    }

    const pcie::MmioStats& ReadStats() const { return read_map_.Stats(); }

    /** The underlying ring (e.g. to reach the DRAM's checker). */
    MmioQueue& Queue() { return queue_; }

    /** Attaches the protocol/HB checkers (see HostProducer). */
    void
    BindCheckers(check::HbRaceDetector* hb,
                 check::ProtocolChecker* protocol, sim::ActorId actor)
    {
        hb_ = hb;
        protocol_ = protocol;
        actor_ = actor;
    }

    sim::ActorId HbActor() const { return actor_; }

  private:
    sim::Task<> MaybeSyncCounter();

    MmioQueue& queue_;
    pcie::HostMmioMapping read_map_;
    pcie::HostMmioMapping counter_map_;
    std::uint64_t tail_ = 0;
    std::uint64_t last_synced_ = 0;
    check::HbRaceDetector* hb_ = nullptr;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::ActorId actor_ = sim::kNoActor;
};

}  // namespace wave::channel
