/**
 * @file
 * Ring-buffer layout shared by the MMIO and DMA queue implementations.
 *
 * A queue is `capacity` fixed-size slots followed by a consumer-progress
 * counter on its own cache line. Each slot holds the entry payload plus
 * a trailing 64-bit *generation flag* — the Floem per-entry valid flag,
 * extended to a generation number so slots never need to be cleared:
 *
 *     slot for absolute index p lives at (p mod capacity);
 *     its flag is valid when it equals (p / capacity) + 1.
 *
 * The producer writes the payload first and the flag last, which is safe
 * over posted PCIe writes because they arrive in order. The consumer
 * never writes slots at all; it advertises progress by updating the
 * consumed counter every `sync_interval` entries (iPipe's lazy head
 * synchronization), which the producer reads only when the ring looks
 * full.
 *
 * Slots are line-aligned and, for payloads <= 56 bytes, fit a single
 * cache line, so a write-through host consumer fetches flag + payload in
 * one PCIe roundtrip.
 */
// wave-domain: pcie
// wave-shared(immutable ring-layout geometry computed at setup and read-only afterwards on both shards)
// wave-hot
#pragma once

#include <cstddef>
#include <algorithm>
#include <cstdint>

#include "pcie/config.h"
#include "sim/logging.h"

namespace wave::channel {

/** Static queue shape parameters. */
struct QueueConfig {
    /** Number of slots; must be a power of two. */
    std::size_t capacity = 64;

    /** Payload bytes per entry. */
    std::size_t payload_size = 48;

    /**
     * Consumer advertises progress every this many entries. Smaller
     * values cost more counter writes; larger values make the ring
     * appear full sooner under bursts.
     */
    std::size_t sync_interval = 16;
};

/** Computes byte offsets for a ring with the given config. */
class RingLayout {
  public:
    explicit RingLayout(const QueueConfig& config)
        : config_(config),
          slot_size_(AlignUp(config.payload_size + kFlagSize,
                             pcie::PcieConfig::kLineSize))
    {
        WAVE_ASSERT(config.capacity > 0 &&
                        (config.capacity & (config.capacity - 1)) == 0,
                    "capacity must be a power of two");
        WAVE_ASSERT(config.payload_size > 0);
        WAVE_ASSERT(config.sync_interval > 0);
        // The default interval is tuned for larger rings; clamp for
        // small ones so progress is always advertised before a full lap.
        config_.sync_interval =
            std::min(config.sync_interval, config.capacity);
    }

    static constexpr std::size_t kFlagSize = 8;

    /** Total bytes of backing memory the ring needs. */
    std::size_t
    BytesNeeded() const
    {
        return slot_size_ * config_.capacity + pcie::PcieConfig::kLineSize;
    }

    std::size_t SlotSize() const { return slot_size_; }

    /** Offset of the payload of the slot for absolute index @p index. */
    std::size_t
    PayloadOffset(std::uint64_t index) const
    {
        return SlotIndex(index) * slot_size_;
    }

    /** Offset of the generation flag of the slot for @p index. */
    std::size_t
    FlagOffset(std::uint64_t index) const
    {
        return PayloadOffset(index) + config_.payload_size;
    }

    /** Offset of the consumer-progress counter (own line). */
    std::size_t
    ConsumedCounterOffset() const
    {
        return slot_size_ * config_.capacity;
    }

    /** Ring slot for an absolute index. */
    std::size_t
    SlotIndex(std::uint64_t index) const
    {
        return static_cast<std::size_t>(index &
                                        (config_.capacity - 1));
    }

    /** Generation flag value that marks @p index valid. */
    std::uint64_t
    GenerationOf(std::uint64_t index) const
    {
        return index / config_.capacity + 1;
    }

    const QueueConfig& Config() const { return config_; }

  private:
    static std::size_t
    AlignUp(std::size_t v, std::size_t a)
    {
        return (v + a - 1) / a * a;
    }

    QueueConfig config_;
    std::size_t slot_size_;
};

}  // namespace wave::channel
