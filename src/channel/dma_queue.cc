// wave-domain: pcie
// wave-shared(DMA-batched ring crossing the seam; producer and consumer live on different shards and rendezvous through the modeled DMA engine)
// wave-hot
#include "channel/dma_queue.h"

#include <cstring>

#include "check/hooks.h"
#include "check/protocol.h"

namespace wave::channel {

namespace {

/** Per-access cost of local ring memory (0 => free host DRAM). */
// wave-lifetime(caller-awaits)
sim::Task<>
LocalAccess(sim::Simulator& sim, sim::DurationNs per_word_ns, std::size_t n)
{
    if (per_word_ns == 0) co_return;
    const std::size_t words =
        (n + pcie::PcieConfig::kWordSize - 1) / pcie::PcieConfig::kWordSize;
    co_await sim.Delay(per_word_ns * words);
}

}  // namespace

DmaQueue::DmaQueue(sim::Simulator& sim, pcie::DmaEngine& dma,
                   pcie::DmaInitiator initiator, const QueueConfig& config,
                   sim::DurationNs producer_local_ns,
                   sim::DurationNs consumer_local_ns)
    : sim_(sim),
      dma_(dma),
      initiator_(initiator),
      layout_(config),
      producer_local_ns_(producer_local_ns),
      consumer_local_ns_(consumer_local_ns),
      producer_ring_(layout_.BytesNeeded()),
      consumer_ring_(layout_.BytesNeeded())
{
}

// wave-lifetime(caller-awaits)
sim::Task<>
DmaQueue::ShipRange(std::uint64_t from, std::uint64_t to, bool sync)
{
    if (from == to) co_return;
    // Ship contiguous slot runs; a batch that wraps the ring needs two
    // transfers.
    while (from < to) {
        const std::size_t first_slot = layout_.SlotIndex(from);
        const std::uint64_t until_wrap =
            layout_.Config().capacity - first_slot;
        const std::uint64_t run = std::min<std::uint64_t>(to - from,
                                                          until_wrap);
        const std::size_t offset = first_slot * layout_.SlotSize();
        const std::size_t bytes =
            static_cast<std::size_t>(run) * layout_.SlotSize();
        if (sync) {
            co_await dma_.Transfer(initiator_, producer_ring_, offset,
                                   consumer_ring_, offset, bytes);
        } else {
            co_await dma_.TransferAsync(initiator_, producer_ring_, offset,
                                        consumer_ring_, offset, bytes);
        }
        from += run;
    }
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
DmaQueue::Send(const std::vector<Bytes>& messages, bool sync)
{
    const std::size_t capacity = layout_.Config().capacity;
    const std::uint64_t batch_start = head_;

    std::size_t sent = 0;
    for (const Bytes& message : messages) {
        WAVE_ASSERT(message.size() == layout_.Config().payload_size);
        if (head_ - producer_view_of_consumed_ >= capacity) {
            // The consumed counter lives at a fixed offset in the
            // producer ring, DMA'd back by the consumer.
            std::uint64_t counter = 0;
            producer_ring_.ReadRaw(layout_.ConsumedCounterOffset(),
                                   &counter, sizeof(counter));
            producer_view_of_consumed_ = counter;
            if (head_ - producer_view_of_consumed_ >= capacity) break;
        }
        producer_ring_.WriteRaw(layout_.PayloadOffset(head_),
                                message.data(), message.size());
        const std::uint64_t gen = layout_.GenerationOf(head_);
        producer_ring_.WriteRaw(layout_.FlagOffset(head_), &gen,
                                sizeof(gen));
        co_await LocalAccess(sim_, producer_local_ns_,
                             layout_.SlotSize());
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnStreamSend(this, head_, check::Domain::kDma,
                                        "DmaQueue::Send");
            }
        });
        ++head_;
        ++sent;
    }
    co_await ShipRange(batch_start, head_, sync);
    co_return sent;
}

// wave-lifetime(caller-awaits)
sim::Task<bool>
DmaQueue::PollInto(Bytes& out)
{
    std::uint64_t flag = 0;
    consumer_ring_.ReadRaw(layout_.FlagOffset(tail_), &flag, sizeof(flag));
    co_await LocalAccess(sim_, consumer_local_ns_, sizeof(flag));
    if (flag != layout_.GenerationOf(tail_)) {
        co_return false;
    }
    // A reused @p out keeps its capacity, so steady-state polling never
    // touches the allocator.
    out.resize(layout_.Config().payload_size);
    consumer_ring_.ReadRaw(layout_.PayloadOffset(tail_), out.data(),
                           out.size());
    co_await LocalAccess(sim_, consumer_local_ns_, out.size());
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnStreamRecv(this, tail_, check::Domain::kDma,
                                    "DmaQueue::Poll");
        }
    });
    ++tail_;
    co_await MaybeSyncCounter();
    co_return true;
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<Bytes>>
DmaQueue::Poll()
{
    // The returned message is caller-owned, so this form pays one
    // buffer per message by contract; PollInto is the reusing form.
    Bytes payload;
    if (!co_await PollInto(payload)) {
        co_return std::nullopt;
    }
    co_return std::move(payload);
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<Bytes>>
DmaQueue::PollBatch(std::size_t max)
{
    std::vector<Bytes> out;
    out.reserve(max);
    while (out.size() < max) {
        Bytes payload;
        if (!co_await PollInto(payload)) break;
        out.push_back(std::move(payload));
    }
    co_return out;
}

// wave-lifetime(caller-awaits)
sim::Task<>
DmaQueue::MaybeSyncCounter()
{
    if (tail_ - last_synced_ < layout_.Config().sync_interval) {
        co_return;
    }
    last_synced_ = tail_;
    // Write the counter into the consumer ring's counter slot and DMA
    // that line back to the producer ring (reverse direction). Async:
    // flow control tolerates lag.
    consumer_ring_.WriteRaw(layout_.ConsumedCounterOffset(), &tail_,
                            sizeof(tail_));
    co_await dma_.TransferAsync(initiator_, consumer_ring_,
                                layout_.ConsumedCounterOffset(),
                                producer_ring_,
                                layout_.ConsumedCounterOffset(),
                                RingLayout::kFlagSize);
}

}  // namespace wave::channel
