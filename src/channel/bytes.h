/**
 * @file
 * POD <-> byte-vector serialization helpers for queue payloads.
 *
 * Queue payloads are fixed-size byte vectors; system software exchanges
 * trivially-copyable message structs. These helpers keep the
 * reinterpretation in one audited place.
 */
// wave-domain: pcie
// wave-shared(value type with no global state; each Bytes instance is owned by the shard holding it, and the seam moves copies)
// wave-hot
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "sim/logging.h"

namespace wave::channel {

/** Serializes a trivially-copyable struct into a payload of given size. */
template <typename T>
std::vector<std::byte>
ToBytes(const T& value, std::size_t payload_size)
{
    static_assert(std::is_trivially_copyable_v<T>);
    WAVE_ASSERT(sizeof(T) <= payload_size,
                "message type (%zu bytes) exceeds payload size %zu",
                sizeof(T), payload_size);
    // wave-analyze: allow(W101 serialization mints the caller-owned payload by contract; hot loops reuse buffers via the PollInto/PushBatch APIs instead)
    std::vector<std::byte> out(payload_size);
    std::memcpy(out.data(), &value, sizeof(T));
    return out;
}

/** Deserializes a struct from a queue payload. */
template <typename T>
T
FromBytes(const std::vector<std::byte>& bytes)
{
    static_assert(std::is_trivially_copyable_v<T>);
    WAVE_ASSERT(sizeof(T) <= bytes.size());
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
}

}  // namespace wave::channel
