// wave-domain: pcie
// wave-shared(host/nic ring endpoints over one BAR window — the sanctioned cross-domain channel; a parallel executor must treat ring head/tail state as a synchronization point between the two shards)
// wave-hot
#include "channel/mmio_queue.h"

#include <cstring>

#include "check/hb.h"
#include "check/hooks.h"
#include "check/protocol.h"

namespace wave::channel {

namespace {

/**
 * Sync-variable tag for the consumed counter. Slot sync vars are
 * tagged with the slot's absolute index, which never reaches 2^64-1.
 */
constexpr std::uint64_t kCounterSyncTag = ~0ULL;

std::uint64_t
FromFlagBytes(const std::byte* data)
{
    std::uint64_t v;
    std::memcpy(&v, data, sizeof(v));
    return v;
}

}  // namespace

// --- HostProducer ---

HostProducer::HostProducer(MmioQueue& queue, pcie::PteType write_type,
                           pcie::PteType counter_read_type)
    : queue_(queue),
      write_map_(queue.Dram(), write_type),
      counter_map_(queue.Dram(), counter_read_type)
{
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostProducer::RefreshConsumed()
{
    // A stale cached counter only under-reports progress, so flushing
    // before the read is needed only when we actually must see newer
    // data — which is exactly when this is called.
    co_await counter_map_.Clflush(queue_.CounterAddr(),
                                  RingLayout::kFlagSize);
    std::uint64_t counter = 0;
    co_await counter_map_.Read(queue_.CounterAddr(), &counter,
                               sizeof(counter));
    cached_consumed_ = counter;
    // Observing the consumer's counter is the acquire half of the lap
    // handshake: it is what licenses overwriting consumed slots.
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnAcquire(actor_, &queue_, kCounterSyncTag);
        }
    });
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
HostProducer::Send(const std::vector<Bytes>& messages)
{
    const auto& layout = queue_.Layout();
    const std::size_t capacity = layout.Config().capacity;
    std::size_t sent = 0;

    for (const Bytes& message : messages) {
        WAVE_ASSERT(message.size() == layout.Config().payload_size,
                    "message size %zu != payload size %zu", message.size(),
                    layout.Config().payload_size);
        if (head_ - cached_consumed_ >= capacity) {
            co_await RefreshConsumed();
            if (head_ - cached_consumed_ >= capacity) {
                break;  // genuinely full
            }
        }
        // Payload first, then the generation flag; posted-write ordering
        // guarantees the consumer never sees a flag without its payload.
        co_await write_map_.Write(queue_.PayloadAddr(head_),
                                  message.data(), message.size());
        const std::uint64_t gen = layout.GenerationOf(head_);
        co_await write_map_.Write(queue_.FlagAddr(head_), &gen,
                                  sizeof(gen));
        // The payload store is a data access; the flag store is the
        // release half of the publication handshake (the flag bytes
        // themselves are never treated as data). The access must be
        // recorded before the release advances this actor's clock.
        WAVE_CHECK_HOOK({
            if (hb_ != nullptr) {
                hb_->OnAccess(actor_, &queue_, queue_.PayloadAddr(head_),
                              message.size(), /*is_write=*/true,
                              "HostProducer::Send[payload]");
                hb_->OnRelease(actor_, &queue_, head_);
            }
            if (protocol_ != nullptr) {
                protocol_->OnStreamSend(&queue_, head_, check::Domain::kHost,
                                        "HostProducer::Send");
            }
        });
        ++head_;
        ++sent;
    }
    // One fence drains the whole batch (WC batching, §5.3.1). A no-op
    // for uncacheable mappings.
    co_await write_map_.Sfence();
    co_return sent;
}

// --- NicConsumer ---

NicConsumer::NicConsumer(MmioQueue& queue, pcie::PteType local_type)
    : queue_(queue), map_(queue.Dram(), local_type)
{
}

// wave-lifetime(caller-awaits)
sim::Task<>
NicConsumer::MaybeSyncCounter()
{
    if (tail_ - last_synced_ >= queue_.Layout().Config().sync_interval) {
        co_await map_.Write(queue_.CounterAddr(), &tail_, sizeof(tail_));
        // Publishing the counter releases every slot read so far: the
        // producer may overwrite them only after acquiring this value.
        WAVE_CHECK_HOOK({
            if (hb_ != nullptr) {
                hb_->OnRelease(actor_, &queue_, kCounterSyncTag);
            }
        });
        last_synced_ = tail_;
    }
}

// wave-lifetime(caller-awaits)
sim::Task<bool>
NicConsumer::PollInto(Bytes& out)
{
    const auto& layout = queue_.Layout();
    std::byte flag_raw[RingLayout::kFlagSize];
    // The flag poll is the sanctioned optimistic read: host stores may
    // still be parked in the WC buffer, in which case the generation
    // simply does not match yet and we retry later.
    co_await map_.Read(queue_.FlagAddr(tail_), flag_raw, sizeof(flag_raw),
                       /*tolerate_stale=*/true);  // gen mismatch => retry
    if (FromFlagBytes(flag_raw) != layout.GenerationOf(tail_)) {
        co_return false;
    }
    // Once the flag matched, the payload must have drained too (it is
    // written before the flag and fenced by the same sfence), so this
    // read is checked strictly. A reused @p out keeps its capacity, so
    // steady-state polling never touches the allocator.
    out.resize(layout.Config().payload_size);
    co_await map_.Read(queue_.PayloadAddr(tail_), out.data(), out.size());
    // The matching flag poll is the acquire half of the publication
    // handshake; it must precede the payload-read race check.
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnAcquire(actor_, &queue_, tail_);
            hb_->OnAccess(actor_, &queue_, queue_.PayloadAddr(tail_),
                          out.size(), /*is_write=*/false,
                          "NicConsumer::Poll[payload]");
        }
        if (protocol_ != nullptr) {
            protocol_->OnStreamRecv(&queue_, tail_, check::Domain::kNic,
                                    "NicConsumer::Poll");
        }
    });
    ++tail_;
    co_await MaybeSyncCounter();
    co_return true;
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<Bytes>>
NicConsumer::Poll()
{
    // The returned message is caller-owned, so this form pays one
    // buffer per message by contract; PollInto is the reusing form.
    Bytes payload;
    if (!co_await PollInto(payload)) {
        co_return std::nullopt;
    }
    co_return std::move(payload);
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<Bytes>>
NicConsumer::PollBatch(std::size_t max)
{
    std::vector<Bytes> out;
    out.reserve(max);
    while (out.size() < max) {
        Bytes payload;
        if (!co_await PollInto(payload)) break;
        out.push_back(std::move(payload));
    }
    co_return out;
}

// --- NicProducer ---

NicProducer::NicProducer(MmioQueue& queue, pcie::PteType local_type)
    : queue_(queue), map_(queue.Dram(), local_type)
{
}

// wave-lifetime(caller-awaits)
sim::Task<bool>
NicProducer::Full()
{
    const std::size_t capacity = queue_.Layout().Config().capacity;
    if (head_ - cached_consumed_ < capacity) {
        co_return false;
    }
    // A stale counter only under-reports consumption (the ring looks
    // fuller than it is), which is conservative and safe.
    std::uint64_t counter = 0;
    co_await map_.Read(queue_.CounterAddr(), &counter, sizeof(counter),
                       /*tolerate_stale=*/true);  // stale => looks full
    cached_consumed_ = counter;
    // Acquire the consumer's release; a stale value joins an *older*
    // release state, which only adds edges the producer then does not
    // rely on (it refuses to overwrite), so this stays sound.
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnAcquire(actor_, &queue_, kCounterSyncTag);
        }
    });
    co_return head_ - cached_consumed_ >= capacity;
}

// wave-lifetime(caller-awaits)
sim::Task<bool>
NicProducer::Send(const Bytes& message)
{
    const auto& layout = queue_.Layout();
    WAVE_ASSERT(message.size() == layout.Config().payload_size);
    if (co_await Full()) {
        co_return false;
    }
    co_await map_.Write(queue_.PayloadAddr(head_), message.data(),
                        message.size());
    const std::uint64_t gen = layout.GenerationOf(head_);
    co_await map_.Write(queue_.FlagAddr(head_), &gen, sizeof(gen));
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnAccess(actor_, &queue_, queue_.PayloadAddr(head_),
                          message.size(), /*is_write=*/true,
                          "NicProducer::Send[payload]");
            hb_->OnRelease(actor_, &queue_, head_);
        }
        if (protocol_ != nullptr) {
            protocol_->OnStreamSend(&queue_, head_, check::Domain::kNic,
                                    "NicProducer::Send");
        }
    });
    ++head_;
    co_return true;
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
NicProducer::SendBatch(const std::vector<Bytes>& messages)
{
    std::size_t sent = 0;
    for (const Bytes& message : messages) {
        if (!co_await Send(message)) break;
        ++sent;
    }
    co_return sent;
}

// --- HostConsumer ---

HostConsumer::HostConsumer(MmioQueue& queue, pcie::PteType read_type,
                           pcie::PteType counter_write_type)
    : queue_(queue),
      read_map_(queue.Dram(), read_type),
      counter_map_(queue.Dram(), counter_write_type)
{
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostConsumer::MaybeSyncCounter()
{
    if (tail_ - last_synced_ >= queue_.Layout().Config().sync_interval) {
        co_await counter_map_.Write(queue_.CounterAddr(), &tail_,
                                    sizeof(tail_));
        co_await counter_map_.Sfence();
        WAVE_CHECK_HOOK({
            if (hb_ != nullptr) {
                hb_->OnRelease(actor_, &queue_, kCounterSyncTag);
            }
        });
        last_synced_ = tail_;
    }
}

// wave-lifetime(caller-awaits)
sim::Task<bool>
HostConsumer::PollInto(Bytes& out, bool flush_first)
{
    if (flush_first) {
        co_await FlushNext();
    }
    const auto& layout = queue_.Layout();
    // Slots are line-aligned with the flag adjacent to the payload, so
    // with a WT mapping this single read pulls flag + payload in one
    // PCIe roundtrip (or hits the cache if prefetched). Without an
    // explicit flush this is the sanctioned optimistic poll: a stale
    // cached slot fails the generation check and we retry after the
    // next flush point, so the checker must not flag it. A reused
    // @p out keeps its capacity across polls, so neither resize here
    // allocates in steady state.
    out.resize(layout.Config().payload_size + RingLayout::kFlagSize);
    co_await read_map_.Read(queue_.PayloadAddr(tail_), out.data(),
                            out.size(),
                            /*tolerate_stale=*/!flush_first);  // gen-checked
    const std::uint64_t flag =
        FromFlagBytes(out.data() + layout.Config().payload_size);
    if (flag != layout.GenerationOf(tail_)) {
        co_return false;
    }
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnAcquire(actor_, &queue_, tail_);
            hb_->OnAccess(actor_, &queue_, queue_.PayloadAddr(tail_),
                          layout.Config().payload_size,
                          /*is_write=*/false, "HostConsumer::Poll[payload]");
        }
        if (protocol_ != nullptr) {
            protocol_->OnStreamRecv(&queue_, tail_, check::Domain::kHost,
                                    "HostConsumer::Poll");
        }
    });
    out.resize(layout.Config().payload_size);
    ++tail_;
    co_await MaybeSyncCounter();
    co_return true;
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<Bytes>>
HostConsumer::Poll(bool flush_first)
{
    // The returned message is caller-owned, so this form pays one
    // buffer per message by contract; PollInto is the reusing form.
    Bytes slot;
    if (!co_await PollInto(slot, flush_first)) {
        co_return std::nullopt;
    }
    co_return std::move(slot);
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostConsumer::PrefetchNext()
{
    // Drop any stale copy from the previous lap, then start the fill.
    co_await FlushNext();
    read_map_.Prefetch(queue_.PayloadAddr(tail_),
                       queue_.Layout().Config().payload_size +
                           RingLayout::kFlagSize);
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostConsumer::FlushNext()
{
    co_await read_map_.Clflush(queue_.PayloadAddr(tail_),
                               queue_.Layout().Config().payload_size +
                                   RingLayout::kFlagSize);
}

}  // namespace wave::channel
