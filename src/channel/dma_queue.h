/**
 * @file
 * DMA-backed unidirectional queue (the Floem queue Wave re-uses, §5.3).
 *
 * The producer writes entries into a local ring at memory speed, then
 * kicks the SmartNIC DMA engine to copy the touched slots into the
 * consumer's replica ring. The consumer polls its local replica for
 * valid generation flags — it never touches PCIe. Flow control uses the
 * same lazy consumed-counter scheme as the MMIO queues, with the counter
 * DMA'd back to the producer.
 *
 * This is the right transport for high-throughput, latency-tolerant
 * traffic (1+ Gbps of page-table entries in §4.2): per-entry cost
 * amortizes to bytes/bandwidth, but every transfer pays ~1 µs of engine
 * setup, which is why µs-scale software uses MMIO queues instead.
 *
 * Transfers can be synchronous (producer blocks until the batch lands)
 * or asynchronous (producer continues; iPipe reports 2-7x throughput
 * gains from async DMA, which bench_queue_primitives reproduces).
 */
// wave-domain: pcie
// wave-shared(DMA-batched ring crossing the seam; producer and consumer live on different shards and rendezvous through the modeled DMA engine)
// wave-hot
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/layout.h"
#include "pcie/dma.h"
#include "pcie/memory.h"
#include "sim/task.h"

namespace wave::check {
class ProtocolChecker;
}

namespace wave::channel {

using Bytes = std::vector<std::byte>;

/** A unidirectional DMA queue between two memory regions. */
class DmaQueue {
  public:
    /**
     * @param initiator which side kicks the DMA engine (pays doorbell).
     * @param producer_local_ns per-word cost of producer local access
     *        (0 for host DRAM, NIC WB cost for agents).
     */
    DmaQueue(sim::Simulator& sim, pcie::DmaEngine& dma,
             pcie::DmaInitiator initiator, const QueueConfig& config,
             sim::DurationNs producer_local_ns = 0,
             sim::DurationNs consumer_local_ns = 0);

    /**
     * Producer: enqueues a batch and DMAs it to the consumer replica.
     *
     * @param sync if true, waits for the DMA to land before returning;
     *        otherwise returns after the doorbell (async mode).
     * @return number of messages enqueued (< batch size if full).
     */
    sim::Task<std::size_t> Send(const std::vector<Bytes>& messages,
                                bool sync);

    /** Consumer: next message from the local replica, if ready. */
    sim::Task<std::optional<Bytes>> Poll();

    /**
     * Allocation-free poll: resizes @p out to the payload size and
     * fills it if a message is ready. A caller that reuses one buffer
     * across polls pays no per-message heap allocation — the hot-loop
     * form of Poll().
     */
    sim::Task<bool> PollInto(Bytes& out);

    /** Consumer: drains up to @p max ready messages. */
    sim::Task<std::vector<Bytes>> PollBatch(std::size_t max);

    std::uint64_t Enqueued() const { return head_; }
    std::uint64_t Consumed() const { return tail_; }

    /**
     * Attaches the protocol verifier for seqnum-stream checking. The
     * HB detector is not wired here: async DMA landing times live in
     * the engine, so a sound release point would need completion
     * callbacks (see docs/checker.md).
     */
    void AttachProtocol(check::ProtocolChecker* protocol)
    {
        protocol_ = protocol;
    }

  private:
    /** DMAs the slot range [from, to) from producer to consumer ring. */
    sim::Task<> ShipRange(std::uint64_t from, std::uint64_t to, bool sync);

    sim::Task<> MaybeSyncCounter();

    sim::Simulator& sim_;
    pcie::DmaEngine& dma_;
    pcie::DmaInitiator initiator_;
    RingLayout layout_;
    sim::DurationNs producer_local_ns_;
    sim::DurationNs consumer_local_ns_;

    pcie::MemoryRegion producer_ring_;
    pcie::MemoryRegion consumer_ring_;

    std::uint64_t head_ = 0;            ///< producer: next index to write
    std::uint64_t tail_ = 0;            ///< consumer: next index to read
    std::uint64_t last_synced_ = 0;     ///< consumer: last advertised tail
    std::uint64_t producer_view_of_consumed_ = 0;
    check::ProtocolChecker* protocol_ = nullptr;
};

}  // namespace wave::channel
