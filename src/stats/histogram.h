/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * Records unsigned 64-bit values (nanoseconds, by convention) into
 * buckets whose width grows with magnitude, giving ~3% relative error at
 * any scale while using a few KiB of memory. This is what every workload
 * driver uses to report p50/p99/p99.9 latencies in the reproduced
 * figures.
 */
// wave-domain: neutral
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace wave::stats {

/** A fixed-precision logarithmic histogram of uint64 samples. */
class Histogram {
  public:
    /**
     * The bucket table covers every representable msb row up front
     * (~15 KiB), so the record path is branch-reduced and never
     * resizes: workload drivers record at event rate.
     */
    Histogram() : buckets_(kBucketTableSize, 0) {}

    // wave-hot: begin
    /**
     * Records one sample. Branch-free: BucketIndex is a pure bit
     * computation and the min/max updates compile to conditional
     * moves, so the record path has no data-dependent branches for
     * the predictor to miss at event rate.
     */
    void
    Record(std::uint64_t value)
    {
        ++buckets_[BucketIndex(value)];
        ++count_;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        sum_ += static_cast<double>(value);
    }

    /** Records @p count identical samples. */
    void
    RecordMany(std::uint64_t value, std::uint64_t count)
    {
        if (count == 0) return;
        buckets_[BucketIndex(value)] += count;
        count_ += count;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        sum_ += static_cast<double>(value) * static_cast<double>(count);
    }
    // wave-hot: end

    /** Number of recorded samples. */
    std::uint64_t Count() const { return count_; }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t Min() const { return count_ ? min_ : 0; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t Max() const { return max_; }

    /** Arithmetic mean of recorded samples (0 if empty). */
    double Mean() const;

    /**
     * Value at quantile @p q in [0, 1]. Returns the representative value
     * of the bucket containing the q-th sample, clamped to the recorded
     * [Min(), Max()] range so a bucket midpoint can never report a value
     * outside what was actually observed. Percentile(1.0) is Max()
     * exactly; 0 if empty.
     */
    std::uint64_t Percentile(double q) const;

    /** Merges another histogram's samples into this one. */
    void Merge(const Histogram& other);

    /** Discards all samples. */
    void Reset();

    // 2^kSubBucketBits sub-buckets per power of two: ~3% relative error.
    static constexpr int kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;

    /** One row per msb in [kSubBucketBits, 63], plus the exact range. */
    static constexpr std::size_t kBucketTableSize =
        kSubBucketCount + (64 - kSubBucketBits) * kSubBucketCount;

    // wave-hot: begin
    /**
     * Branch-free bucket mapping. For msb < kSubBucketBits the shift
     * clamps to 0 and the row to 0, so small values index the exact
     * [0, kSubBucketCount) range directly; for msb == kSubBucketBits
     * the row is 1 and the mapping is also exact. Both agree with the
     * historical branchy mapping (index layout is unchanged —
     * BucketRepresentative still inverts it). `value | 1` pins msb=0
     * for value 0 without a zero check, and std::max compiles to
     * cmov, so the whole computation is straight-line.
     */
    static std::size_t
    BucketIndex(std::uint64_t value)
    {
        const int msb = 63 - std::countl_zero(value | 1);
        const int shift = std::max(msb - kSubBucketBits, 0);
        const std::size_t row =
            static_cast<std::size_t>(std::max(msb - kSubBucketBits + 1, 0));
        const std::uint64_t sub = (value >> shift) & (kSubBucketCount - 1);
        return row * kSubBucketCount + static_cast<std::size_t>(sub);
    }
    // wave-hot: end

  private:
    static std::uint64_t BucketRepresentative(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
    double sum_ = 0;
};

}  // namespace wave::stats
