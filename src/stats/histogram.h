/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * Records unsigned 64-bit values (nanoseconds, by convention) into
 * buckets whose width grows with magnitude, giving ~3% relative error at
 * any scale while using a few KiB of memory. This is what every workload
 * driver uses to report p50/p99/p99.9 latencies in the reproduced
 * figures.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <vector>

namespace wave::stats {

/** A fixed-precision logarithmic histogram of uint64 samples. */
class Histogram {
  public:
    Histogram() = default;

    /** Records one sample. */
    void Record(std::uint64_t value);

    /** Records @p count identical samples. */
    void RecordMany(std::uint64_t value, std::uint64_t count);

    /** Number of recorded samples. */
    std::uint64_t Count() const { return count_; }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t Min() const { return count_ ? min_ : 0; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t Max() const { return max_; }

    /** Arithmetic mean of recorded samples (0 if empty). */
    double Mean() const;

    /**
     * Value at quantile @p q in [0, 1]. Returns the representative value
     * of the bucket containing the q-th sample; 0 if empty.
     */
    std::uint64_t Percentile(double q) const;

    /** Merges another histogram's samples into this one. */
    void Merge(const Histogram& other);

    /** Discards all samples. */
    void Reset();

  private:
    // 2^kSubBucketBits sub-buckets per power of two: ~3% relative error.
    static constexpr int kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;

    static std::size_t BucketIndex(std::uint64_t value);
    static std::uint64_t BucketRepresentative(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
    double sum_ = 0;
};

}  // namespace wave::stats
