/**
 * @file
 * ASCII table/series printing shared by the benchmark harnesses.
 *
 * Every bench binary reproduces one table or figure from the paper; this
 * printer renders aligned columns so the output reads like the paper's
 * artifact (plus a `paper=` reference column where applicable).
 */
// wave-domain: neutral
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wave::stats {

/** Column-aligned ASCII table builder. */
class Table {
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; must have exactly as many cells as headers. */
    void AddRow(std::vector<std::string> cells);

    /** Renders the table with a header rule to a string. */
    std::string ToString() const;

    /** Prints the rendered table to stdout. */
    void Print() const;

    /** printf-style cell formatting helper. */
    static std::string Fmt(const char* fmt, ...)
        __attribute__((format(printf, 1, 2)));

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a section heading for a bench binary. */
void PrintHeading(const std::string& title);

}  // namespace wave::stats
