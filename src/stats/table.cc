// wave-domain: neutral
#include "stats/table.h"

#include <cstdarg>
#include <cstdio>

#include "sim/logging.h"

namespace wave::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::AddRow(std::vector<std::string> cells)
{
    WAVE_ASSERT(cells.size() == headers_.size(),
                "row width %zu != header width %zu", cells.size(),
                headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::ToString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string out;
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += "| ";
            out += row[c];
            out += std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out += "|\n";
        return out;
    };

    std::string out = render_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += "|" + std::string(widths[c] + 2, '-');
    }
    out += rule + "|\n";
    for (const auto& row : rows_) {
        out += render_row(row);
    }
    return out;
}

void
Table::Print() const
{
    std::fputs(ToString().c_str(), stdout);
    std::fflush(stdout);
}

std::string
Table::Fmt(const char* fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

void
PrintHeading(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::fflush(stdout);
}

}  // namespace wave::stats
