// wave-domain: neutral
#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace wave::stats {

std::uint64_t
Histogram::BucketRepresentative(std::size_t index)
{
    if (index < kSubBucketCount) {
        return static_cast<std::uint64_t>(index);
    }
    const std::size_t rel = index - kSubBucketCount;
    const std::size_t row = rel / kSubBucketCount;
    const std::uint64_t sub = rel % kSubBucketCount;
    const int msb = static_cast<int>(row) + kSubBucketBits;
    const int shift = msb - kSubBucketBits;
    const std::uint64_t lo = (1ull << msb) + (sub << shift);
    const std::uint64_t width = 1ull << shift;
    return lo + width / 2;  // bucket midpoint
}

double
Histogram::Mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
Histogram::Percentile(double q) const
{
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // The maximum is tracked exactly, so the top quantile owes the
    // caller the recorded maximum itself, not a bucket midpoint that
    // may sit above (or below) every sample.
    if (q >= 1.0) return max_;
    // Rank of the target sample (1-based), ceil(q * count), at least 1.
    const double target_f = q * static_cast<double>(count_);
    const std::uint64_t target = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(std::ceil(target_f)), 1);

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            // A bucket midpoint can fall outside the recorded range
            // (below min_ in the lowest occupied bucket as q -> 0,
            // above max_ in the highest): clamp the representative so
            // every reported quantile is a value that could actually
            // have been recorded.
            return std::clamp(BucketRepresentative(i), min_, max_);
        }
    }
    return max_;
}

void
Histogram::Merge(const Histogram& other)
{
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
Histogram::Reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = ~0ull;
    max_ = 0;
    sum_ = 0;
}

}  // namespace wave::stats
