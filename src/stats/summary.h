/**
 * @file
 * Latency summary: the standard percentile set extracted from a
 * histogram, with a compact formatter for logs and bench output.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace wave::stats {

/** Snapshot of the usual latency percentiles. */
struct Summary {
    std::uint64_t count = 0;
    double mean = 0;
    std::uint64_t min = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;

    /** Extracts the summary from a histogram. */
    static Summary
    From(const Histogram& histogram)
    {
        Summary s;
        s.count = histogram.Count();
        s.mean = histogram.Mean();
        s.min = histogram.Min();
        s.p50 = histogram.Percentile(0.50);
        s.p90 = histogram.Percentile(0.90);
        s.p99 = histogram.Percentile(0.99);
        s.p999 = histogram.Percentile(0.999);
        s.max = histogram.Max();
        return s;
    }

    /** "n=1000 mean=12.1us p50=11us p99=31us max=110us". */
    std::string
    ToString() const
    {
        auto us = [](std::uint64_t ns) {
            return Table::Fmt("%.1fus", sim::ToUs(sim::DurationNs{ns}));
        };
        return Table::Fmt("n=%llu mean=%.1fus p50=%s p90=%s p99=%s "
                          "p99.9=%s max=%s",
                          static_cast<unsigned long long>(count),
                          mean / 1e3, us(p50).c_str(), us(p90).c_str(),
                          us(p99).c_str(), us(p999).c_str(),
                          us(max).c_str());
    }
};

}  // namespace wave::stats
