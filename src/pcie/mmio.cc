// wave-domain: pcie
// wave-shared(MMIO mappings are the host shard's window into NIC DRAM and vice versa; cache/WC shadow state is touched from both sides by design)
// wave-hot
#include "pcie/mmio.h"

#include <algorithm>
#include <cstring>

#include "check/coherence.h"
#include "check/hooks.h"
#include "sim/inject.h"

namespace wave::pcie {

namespace {

/** Clamps the accessed range to one line for per-line checker reports. */
struct LineSpan {
    std::size_t offset;
    std::size_t size;
};

LineSpan
ClampToLine(std::size_t line, std::size_t offset, std::size_t n)
{
    const std::size_t lo =
        std::max(offset, line * PcieConfig::kLineSize);
    const std::size_t hi =
        std::min(offset + n, (line + 1) * PcieConfig::kLineSize);
    return LineSpan{lo, hi - lo};
}

}  // namespace

void
NicDram::RegisterHostMapping(HostMmioMapping* mapping)
{
    // wave-analyze: allow(W101 mapping registration happens once per mapping at setup, never per access)
    host_mappings_.push_back(mapping);
}

void
NicDram::OnNicWrite(std::size_t offset, std::size_t n)
{
    for (HostMmioMapping* mapping : host_mappings_) {
        if (config_.coherent) {
            mapping->InvalidateLines(offset, n);
        } else {
            mapping->MarkNicDirtied(offset, n);
        }
    }
}

HostMmioMapping::HostMmioMapping(NicDram& dram, PteType type)
    : dram_(dram), config_(dram.Config()), type_(type)
{
    WAVE_ASSERT(type != PteType::kWriteBack || config_.coherent,
                "write-back host mappings of NIC DRAM require a coherent "
                "interconnect");
    dram.RegisterHostMapping(this);
    // Pay the buffer capacities at setup time: a WC line holds at most
    // kLineSize / kWordSize word stores, and the posted-buffer pool
    // levels off at the number of concurrently in-flight bursts.
    wc_stores_.reserve(PcieConfig::kLineSize / PcieConfig::kWordSize);
    posted_pool_.reserve(16);
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::Read(std::size_t offset, void* dst, std::size_t n,
                      bool tolerate_stale)
{
    // Reads must observe our own buffered WC stores; real WC reads are
    // unordered with the buffer, so Wave's queues always drain first.
    if (wc_active_) {
        co_await Sfence();
    }
    const bool cached_reads =
        type_ == PteType::kWriteThrough || type_ == PteType::kWriteBack;
    if (cached_reads) {
        co_await ReadCachedWt(offset, dst, n, tolerate_stale);
    } else {
        co_await ReadUncached(offset, dst, n);
    }
}

sim::DurationNs
HostMmioMapping::ExtraPcieDelay() const
{
    auto* injector = dram_.Injector();
    return injector != nullptr ? injector->MmioExtraDelay() : 0;
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::ReadUncached(std::size_t offset, void* dst, std::size_t n)
{
    const std::size_t words = WordsIn(n);
    stats_.pcie_reads += words;
    co_await dram_.Sim().Delay(config_.mmio_read_ns * words +
                               ExtraPcieDelay());
    dram_.Backing().ReadRaw(offset, dst, n);
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnRead(&dram_.Backing(), check::Domain::kHost,
                            offset, n, /*from_host_cache=*/false,
                            /*tolerate_stale=*/false,
                            "HostMmioMapping::ReadUncached");
        }
    });
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::ReadCachedWt(std::size_t offset, void* dst, std::size_t n,
                              bool tolerate_stale)
{
    constexpr std::size_t kLine = PcieConfig::kLineSize;
    const std::size_t first_line = LineOf(offset);
    const std::size_t last_line = LineOf(offset + n - 1);

    for (std::size_t line = first_line; line <= last_line; ++line) {
        auto it = cache_.find(line);
        if (it != cache_.end() && !it->second.data.empty()) {
            // Filled line in cache: a hit, possibly a stale one.
            stats_.cache_hits += 1;
            if (it->second.nic_dirtied) stats_.stale_reads += 1;
            WAVE_CHECK_HOOK({
                if (auto* checker = dram_.Checker()) {
                    const LineSpan span = ClampToLine(line, offset, n);
                    checker->OnRead(&dram_.Backing(),
                                    check::Domain::kHost, span.offset,
                                    span.size, /*from_host_cache=*/true,
                                    tolerate_stale,
                                    "HostMmioMapping::ReadCachedWt");
                }
            });
            co_await dram_.Sim().Delay(config_.cache_hit_ns);
            continue;
        }
        if (it != cache_.end() &&
            it->second.fill_done > dram_.Sim().Now()) {
            // Prefetch in flight: wait for the remainder only.
            stats_.prefetch_hits += 1;
            co_await dram_.Sim().Delay(it->second.fill_done -
                                       dram_.Sim().Now());
        } else if (it != cache_.end()) {
            // A completed prefetch whose snapshot event already landed
            // would have non-empty data (handled above); an empty entry
            // here means the snapshot races with us at this timestamp.
            stats_.prefetch_hits += 1;
            co_await dram_.Sim().Delay(config_.cache_hit_ns);
        } else {
            // Demand miss: full roundtrip for the line.
            stats_.pcie_reads += 1;
            co_await dram_.Sim().Delay(config_.mmio_read_ns +
                                       ExtraPcieDelay());
        }
        // Snapshot the line's current contents into the host cache. Use
        // operator[] again: a clflush may have raced with the fill.
        CacheLine& cl = cache_[line];
        cl.data.resize(kLine);
        const std::size_t base = line * kLine;
        const std::size_t len =
            std::min(kLine, dram_.Backing().Size() - base);
        dram_.Backing().ReadRaw(base, cl.data.data(), len);
        cl.nic_dirtied = false;
        cl.fill_done = dram_.Sim().Now();
        WAVE_CHECK_HOOK({
            if (auto* checker = dram_.Checker()) {
                checker->OnCacheFill(&dram_.Backing(), line);
                const LineSpan span = ClampToLine(line, offset, n);
                checker->OnRead(&dram_.Backing(), check::Domain::kHost,
                                span.offset, span.size,
                                /*from_host_cache=*/false,
                                tolerate_stale,
                                "HostMmioMapping::ReadCachedWt(fill)");
            }
        });
    }

    // Serve the bytes from the cached copies (which may be stale — that
    // is the point of modelling software coherence). A line ensured
    // above can have been invalidated during a later line's fill (only
    // in coherent mode, where remote stores erase it in hardware); in
    // that case the backing store is authoritative and fresh.
    for (std::size_t i = 0; i < n;) {
        const std::size_t line = LineOf(offset + i);
        const std::size_t line_off = (offset + i) % kLine;
        const std::size_t chunk = std::min(kLine - line_off, n - i);
        const auto it = cache_.find(line);
        if (it != cache_.end() && !it->second.data.empty()) {
            std::memcpy(static_cast<std::byte*>(dst) + i,
                        it->second.data.data() + line_off, chunk);
        } else {
            WAVE_ASSERT(config_.coherent,
                        "line vanished mid-read on a non-coherent link");
            dram_.Backing().ReadRaw(offset + i,
                                    static_cast<std::byte*>(dst) + i,
                                    chunk);
        }
        i += chunk;
    }
}

std::vector<std::byte>
HostMmioMapping::AcquirePostedBuf(std::size_t n)
{
    std::vector<std::byte> buf;
    if (!posted_pool_.empty()) {
        buf = std::move(posted_pool_.back());
        posted_pool_.pop_back();
    }
    buf.resize(n);
    return buf;
}

void
HostMmioMapping::RecyclePostedBuf(std::vector<std::byte>&& buf)
{
    posted_pool_.push_back(std::move(buf));
}

void
HostMmioMapping::PostStores(std::size_t offset, const void* src,
                            std::size_t n)
{
    // Posted writes become visible in NIC DRAM after the one-way delay.
    // A constant delay alone preserves PCIe's posted write ordering (the
    // event queue is FIFO at equal timestamps), but injected latency
    // spikes vary it, so clamp each landing to the previous burst's
    // visibility time: posted writes never reorder, they only bunch up.
    std::vector<std::byte> copy = AcquirePostedBuf(n);
    std::memcpy(copy.data(), src, n);
    const sim::TimeNs visible_at =
        std::max(dram_.Sim().Now() + config_.posted_visibility_ns +
                     ExtraPcieDelay(),
                 last_posted_visible_);
    last_posted_visible_ = visible_at;
    dram_.Sim().ScheduleAt(
        visible_at, [this, offset, data = std::move(copy)]() mutable {
            dram_.Backing().WriteRaw(offset, data.data(), data.size());
            RecyclePostedBuf(std::move(data));
        });
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::Write(std::size_t offset, const void* src, std::size_t n)
{
    if (type_ == PteType::kWriteCombining) {
        // Stores accumulate in the combining buffer; leaving the current
        // line drains it, like hardware WC buffers.
        const std::size_t first_line = LineOf(offset);
        const std::size_t last_line = LineOf(offset + n - 1);
        if (wc_active_ && (first_line != wc_line_ || last_line != wc_line_)) {
            co_await Sfence();
        }
        if (first_line == last_line) {
            wc_active_ = true;
            wc_line_ = first_line;
            WcStore& store = wc_stores_.emplace_back();
            store.offset = offset;
            store.len = n;
            std::memcpy(store.data.data(), src, n);
            WAVE_CHECK_HOOK({
                if (auto* checker = dram_.Checker()) {
                    checker->OnWcBuffered(&dram_.Backing(), offset, n,
                                          "HostMmioMapping::Write[WC]");
                }
            });
            co_await dram_.Sim().Delay(
                config_.wc_store_ns * WordsIn(n));
        } else {
            // Multi-line store: issue line-by-line.
            std::size_t done = 0;
            while (done < n) {
                const std::size_t line_off = (offset + done) %
                                             PcieConfig::kLineSize;
                const std::size_t chunk = std::min(
                    PcieConfig::kLineSize - line_off, n - done);
                co_await Write(offset + done,
                               static_cast<const std::byte*>(src) + done,
                               chunk);
                done += chunk;
            }
        }
        co_return;
    }

    // UC and WT stores are posted individually: 50 ns of CPU cost per
    // 64-bit word, visible at the NIC after the one-way delay.
    const std::size_t words = WordsIn(n);
    stats_.posted_writes += words;
    co_await dram_.Sim().Delay(config_.mmio_write_ns * words);
    if (type_ == PteType::kWriteThrough || type_ == PteType::kWriteBack) {
        // Write-through updates any cached copy in place.
        constexpr std::size_t kLine = PcieConfig::kLineSize;
        for (std::size_t i = 0; i < n;) {
            const std::size_t line = LineOf(offset + i);
            const std::size_t line_off = (offset + i) % kLine;
            const std::size_t chunk = std::min(kLine - line_off, n - i);
            auto it = cache_.find(line);
            if (it != cache_.end() && !it->second.data.empty()) {
                std::memcpy(it->second.data.data() + line_off,
                            static_cast<const std::byte*>(src) + i, chunk);
            }
            i += chunk;
        }
    }
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnWrite(&dram_.Backing(), check::Domain::kHost,
                             offset, n, "HostMmioMapping::Write");
        }
    });
    PostStores(offset, src, n);
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::Sfence()
{
    if (!wc_active_) co_return;
    stats_.wc_flushes += 1;
    stats_.posted_writes += 1;  // the drained burst is one posted write
    wc_active_ = false;
    // Move to a local: a nested Write/Sfence during the delay below may
    // start (and drain) a new buffer, which must not clobber this one.
    auto stores = std::move(wc_stores_);
    wc_stores_.clear();
    co_await dram_.Sim().Delay(config_.sfence_ns);
    for (const WcStore& store : stores) {
        WAVE_CHECK_HOOK({
            if (auto* checker = dram_.Checker()) {
                checker->OnWcDrained(&dram_.Backing(), store.offset,
                                     store.len);
            }
        });
        PostStores(store.offset, store.data.data(), store.len);
    }
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnOrderingPoint("sfence");
        }
    });
    // Hand the drained buffer's capacity back unless a nested burst
    // already started a fresh one.
    if (wc_stores_.capacity() == 0) {
        stores.clear();
        wc_stores_ = std::move(stores);
    }
}

void
HostMmioMapping::Prefetch(std::size_t offset, std::size_t n)
{
    if (type_ != PteType::kWriteThrough && type_ != PteType::kWriteBack) {
        return;  // prefetch only helps cacheable mappings
    }
    const std::size_t first_line = LineOf(offset);
    const std::size_t last_line = LineOf(offset + n - 1);
    for (std::size_t line = first_line; line <= last_line; ++line) {
        auto it = cache_.find(line);
        if (it != cache_.end()) continue;  // cached or already in flight
        CacheLine& cl = cache_[line];
        const sim::TimeNs fill_done =
            dram_.Sim().Now() + config_.mmio_read_ns + ExtraPcieDelay();
        cl.fill_done = fill_done;
        // Snapshot the line contents when the fill lands, so the data in
        // the host cache is as-of fill time even if read much later.
        dram_.Sim().ScheduleAt(fill_done, [this, line, fill_done] {
            auto entry = cache_.find(line);
            if (entry == cache_.end() || !entry->second.data.empty() ||
                entry->second.fill_done != fill_done) {
                return;  // clflushed or refilled in the meantime
            }
            constexpr std::size_t kLine = PcieConfig::kLineSize;
            entry->second.data.resize(kLine);
            const std::size_t base = line * kLine;
            const std::size_t len =
                std::min(kLine, dram_.Backing().Size() - base);
            dram_.Backing().ReadRaw(base, entry->second.data.data(), len);
            entry->second.nic_dirtied = false;
            WAVE_CHECK_HOOK({
                if (auto* checker = dram_.Checker()) {
                    checker->OnCacheFill(&dram_.Backing(), line);
                }
            });
        });
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
HostMmioMapping::Clflush(std::size_t offset, std::size_t n)
{
    const std::size_t first_line = LineOf(offset);
    const std::size_t last_line = LineOf(offset + n - 1);
    sim::DurationNs cost = 0;
    for (std::size_t line = first_line; line <= last_line; ++line) {
        if (cache_.erase(line) > 0) {
            stats_.clflushes += 1;
            cost += config_.clflush_ns;
            WAVE_CHECK_HOOK({
                if (auto* checker = dram_.Checker()) {
                    checker->OnCacheDrop(&dram_.Backing(), line);
                }
            });
        }
    }
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnOrderingPoint("clflush");
        }
    });
    if (cost > 0) {
        co_await dram_.Sim().Delay(cost);
    }
}

void
HostMmioMapping::InvalidateLines(std::size_t offset, std::size_t n)
{
    const std::size_t first_line = LineOf(offset);
    const std::size_t last_line = LineOf(offset + n - 1);
    for (std::size_t line = first_line; line <= last_line; ++line) {
        if (cache_.erase(line) > 0) {
            WAVE_CHECK_HOOK({
                if (auto* checker = dram_.Checker()) {
                    checker->OnCacheDrop(&dram_.Backing(), line);
                }
            });
        }
    }
}

void
HostMmioMapping::MarkNicDirtied(std::size_t offset, std::size_t n)
{
    const std::size_t first_line = LineOf(offset);
    const std::size_t last_line = LineOf(offset + n - 1);
    for (std::size_t line = first_line; line <= last_line; ++line) {
        auto it = cache_.find(line);
        if (it != cache_.end() && !it->second.data.empty()) {
            it->second.nic_dirtied = true;
        }
    }
}

NicLocalMapping::NicLocalMapping(NicDram& dram, PteType type)
    : dram_(dram), config_(dram.Config()), type_(type)
{
    WAVE_ASSERT(type == PteType::kUncacheable || type == PteType::kWriteBack,
                "NIC cores map their DRAM UC (baseline) or WB (optimized)");
}

sim::DurationNs
NicLocalMapping::AccessCost(std::size_t n) const
{
    const std::size_t words =
        (n + PcieConfig::kWordSize - 1) / PcieConfig::kWordSize;
    const sim::DurationNs per_word = type_ == PteType::kUncacheable
                                         ? config_.nic_uncached_access_ns
                                         : config_.nic_wb_access_ns;
    return per_word * words;
}

// wave-lifetime(caller-awaits)
sim::Task<>
NicLocalMapping::Read(std::size_t offset, void* dst, std::size_t n,
                      bool tolerate_stale)
{
    co_await dram_.Sim().Delay(AccessCost(n));
    dram_.Backing().ReadRaw(offset, dst, n);
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnRead(&dram_.Backing(), check::Domain::kNic, offset,
                            n, /*from_host_cache=*/false, tolerate_stale,
                            "NicLocalMapping::Read");
        }
    });
}

// wave-lifetime(caller-awaits)
sim::Task<>
NicLocalMapping::Write(std::size_t offset, const void* src, std::size_t n)
{
    co_await dram_.Sim().Delay(AccessCost(n));
    dram_.Backing().WriteRaw(offset, src, n);
    WAVE_CHECK_HOOK({
        if (auto* checker = dram_.Checker()) {
            checker->OnWrite(&dram_.Backing(), check::Domain::kNic,
                             offset, n, "NicLocalMapping::Write");
        }
    });
    dram_.OnNicWrite(offset, n);
}

}  // namespace wave::pcie
