/**
 * @file
 * MSI-X interrupt model (Table 2 rows 3-6).
 *
 * A SmartNIC agent sends an MSI-X vector to kick a specific host core
 * (step 5 of the Wave decision lifetime, Figure 2). The sender pays the
 * register-write cost (70 ns direct, 340 ns through the kernel ioctl
 * path); the interrupt reaches the host core after the one-way PCIe
 * trip; the host's handler entry costs the receive overhead (350 ns).
 * The end-to-end number in Table 2 (1.6 µs) is send + PCIe + receive.
 *
 * Vectors can be masked (the "disable interrupts under heavy load"
 * optimization from §5.1): sends while masked set only the pending bit,
 * which the host observes when it next polls.
 */
// wave-domain: pcie
// wave-shared(interrupt vectors are raised by the NIC shard and consumed by the host shard; the pending/masked state is the cross-shard handshake itself)
#pragma once

#include <cstdint>
#include <functional>

#include "pcie/config.h"
#include "sim/actor.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace wave::check {
class CoherenceChecker;
class HbRaceDetector;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave::pcie {

/** One MSI-X vector targeting one host core. */
class MsiXVector {
  public:
    MsiXVector(sim::Simulator& sim, const PcieConfig& config)
        : sim_(sim), config_(config), arrival_(sim)
    {
    }

    /** How the sender reaches the MSI-X register. */
    enum class SendPath {
        kRegisterWrite,  ///< direct userspace register write (70 ns)
        kIoctl,          ///< through the NIC kernel (340 ns)
    };

    /**
     * Sends the interrupt. Costs the sender the register-write time;
     * the vector becomes pending at the host after the PCIe trip.
     */
    sim::Task<> Send(SendPath path = SendPath::kRegisterWrite);

    /**
     * Host side: suspends until the vector is pending, then clears it
     * and pays the interrupt receive cost. Models a core taking the
     * interrupt out of idle/halt.
     */
    sim::Task<> WaitAndReceive();

    /** Host side: consumes a pending interrupt without blocking. */
    bool ConsumePending();

    /** True if an interrupt is latched and unconsumed. */
    bool Pending() const { return pending_; }

    /** Masks the vector: sends latch the pending bit but do not wake. */
    void SetMasked(bool masked) { masked_ = masked; }
    bool Masked() const { return masked_; }

    /**
     * Registers a callback invoked at delivery time (when the vector
     * becomes pending at the host). Used to wire the vector into a host
     * core's interrupt controller; the interrupt *receive* cost is paid
     * by whoever handles it, not by this callback.
     */
    void SetDeliveryHandler(std::function<void()> handler)
    {
        delivery_handler_ = std::move(handler);
    }

    std::uint64_t SendCount() const { return sends_; }
    std::uint64_t DroppedCount() const { return drops_; }

    /**
     * Attaches the fault injector; sends then consult it for extra
     * wire delay and for drops (the interrupt is lost in flight: the
     * sender pays its cost but the pending bit never latches).
     */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }

    /**
     * Attaches the wave::check coherence checker; deliveries are then
     * recorded as "msix-delivery" ordering points.
     */
    void AttachChecker(check::CoherenceChecker* checker)
    {
        checker_ = checker;
    }

    /**
     * Attaches the happens-before detector: every send is a release by
     * @p sender, every delivery an acquire by @p receiver, giving the
     * interrupt its natural cross-domain synchronization edge.
     */
    void
    AttachHb(check::HbRaceDetector* hb, sim::ActorId sender,
             sim::ActorId receiver)
    {
        hb_ = hb;
        hb_sender_ = sender;
        hb_receiver_ = receiver;
    }

  private:
    sim::Simulator& sim_;
    PcieConfig config_;
    sim::Signal arrival_;
    std::function<void()> delivery_handler_;
    sim::inject::FaultInjector* injector_ = nullptr;
    check::CoherenceChecker* checker_ = nullptr;
    check::HbRaceDetector* hb_ = nullptr;
    sim::ActorId hb_sender_ = sim::kNoActor;
    sim::ActorId hb_receiver_ = sim::kNoActor;
    bool pending_ = false;
    bool masked_ = false;
    std::uint64_t sends_ = 0;
    std::uint64_t drops_ = 0;
};

}  // namespace wave::pcie
