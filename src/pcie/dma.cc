// wave-domain: pcie
// wave-shared(the DMA engine is the seam device both shards program; transfer state is serialized by the simulator event loop today and becomes a cross-shard rendezvous under a parallel executor)
// wave-hot
#include "pcie/dma.h"

#include "check/coherence.h"
#include "check/hooks.h"
#include "sim/inject.h"

namespace wave::pcie {

// wave-lifetime(caller-awaits)
sim::Task<std::shared_ptr<DmaCompletion>>
DmaEngine::TransferAsync(DmaInitiator initiator, MemoryRegion& src,
                         std::size_t src_offset, MemoryRegion& dst,
                         std::size_t dst_offset, std::size_t n)
{
    // The host reaches the engine's doorbell over PCIe; the NIC uses
    // local registers.
    if (initiator == DmaInitiator::kHost) {
        co_await sim_.Delay(
            config_.mmio_write_ns * config_.dma_doorbell_writes);
    } else {
        co_await sim_.Delay(config_.nic_wb_access_ns *
                            config_.dma_doorbell_writes);
    }
    auto completion = AcquireCompletion();
    sim_.Spawn(
        RunTransfer(completion, src, src_offset, dst, dst_offset, n));
    co_return completion;
}

std::shared_ptr<DmaCompletion>
DmaEngine::AcquireCompletion()
{
    for (auto& pooled : completion_pool_) {
        if (pooled.use_count() == 1 && pooled->Done()) {
            pooled->Reset();
            return pooled;
        }
    }
    // Pool growth: only while more transfers are outstanding than ever
    // before; steady state always finds a reusable handle above.
    // wave-analyze: allow(W101 pool-growth path; runs only when outstanding transfers exceed the pool high-water mark)
    auto fresh = std::make_shared<DmaCompletion>(sim_);
    // wave-analyze: allow(W101 same pool-growth path as the make_shared above)
    completion_pool_.push_back(fresh);
    return fresh;
}

// wave-lifetime(caller-awaits)
sim::Task<>
DmaEngine::Transfer(DmaInitiator initiator, MemoryRegion& src,
                    std::size_t src_offset, MemoryRegion& dst,
                    std::size_t dst_offset, std::size_t n)
{
    auto completion = co_await TransferAsync(initiator, src, src_offset,
                                             dst, dst_offset, n);
    co_await completion->Wait();
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the DmaEngine is a PcieLink member alive for the whole simulator run, and the transfer descriptor is copied into the frame)
sim::Task<>
DmaEngine::RunTransfer(std::shared_ptr<DmaCompletion> completion,
                       MemoryRegion& src, std::size_t src_offset,
                       MemoryRegion& dst, std::size_t dst_offset,
                       std::size_t n)
{
    co_await channel_.Acquire();
    ++transfers_;
    bytes_moved_ += n;
    sim::DurationNs duration = TransferTime(n);
    if (injector_ != nullptr) {
        duration += injector_->DmaExtraDelay();
    }
    co_await sim_.Delay(duration);
    // Data lands atomically at completion time: the engine writes the
    // destination only after the full burst has crossed PCIe. The
    // staging buffer is safe to share across transfers because the
    // capacity-1 channel serializes this section.
    scratch_.resize(n);
    src.ReadRaw(src_offset, scratch_.data(), n);
    dst.WriteRaw(dst_offset, scratch_.data(), n);
    if (write_observer_) {
        write_observer_(dst, dst_offset, n);
    }
    WAVE_CHECK_HOOK({
        if (checker_ != nullptr) {
            checker_->OnRead(&src, check::Domain::kDma, src_offset, n,
                             /*from_host_cache=*/false,
                             /*tolerate_stale=*/false,
                             "DmaEngine::RunTransfer(src)");
            checker_->OnDmaWrite(&dst, dst_offset, n,
                                 "DmaEngine::RunTransfer(dst)");
            checker_->OnOrderingPoint("dma-completion");
        }
    });
    channel_.Release();
    completion->MarkDone();
}

}  // namespace wave::pcie
