// wave-domain: pcie
#include "pcie/dma.h"

#include "check/coherence.h"
#include "check/hooks.h"
#include "sim/inject.h"

namespace wave::pcie {

sim::Task<std::shared_ptr<DmaCompletion>>
DmaEngine::TransferAsync(DmaInitiator initiator, MemoryRegion& src,
                         std::size_t src_offset, MemoryRegion& dst,
                         std::size_t dst_offset, std::size_t n)
{
    // The host reaches the engine's doorbell over PCIe; the NIC uses
    // local registers.
    if (initiator == DmaInitiator::kHost) {
        co_await sim_.Delay(
            config_.mmio_write_ns * config_.dma_doorbell_writes);
    } else {
        co_await sim_.Delay(config_.nic_wb_access_ns *
                            config_.dma_doorbell_writes);
    }
    auto completion = std::make_shared<DmaCompletion>(sim_);
    sim_.Spawn(
        RunTransfer(completion, src, src_offset, dst, dst_offset, n));
    co_return completion;
}

sim::Task<>
DmaEngine::Transfer(DmaInitiator initiator, MemoryRegion& src,
                    std::size_t src_offset, MemoryRegion& dst,
                    std::size_t dst_offset, std::size_t n)
{
    auto completion = co_await TransferAsync(initiator, src, src_offset,
                                             dst, dst_offset, n);
    co_await completion->Wait();
}

sim::Task<>
DmaEngine::RunTransfer(std::shared_ptr<DmaCompletion> completion,
                       MemoryRegion& src, std::size_t src_offset,
                       MemoryRegion& dst, std::size_t dst_offset,
                       std::size_t n)
{
    co_await channel_.Acquire();
    ++transfers_;
    bytes_moved_ += n;
    sim::DurationNs duration = TransferTime(n);
    if (injector_ != nullptr) {
        duration += injector_->DmaExtraDelay();
    }
    co_await sim_.Delay(duration);
    // Data lands atomically at completion time: the engine writes the
    // destination only after the full burst has crossed PCIe.
    std::vector<std::byte> buffer(n);
    src.ReadRaw(src_offset, buffer.data(), n);
    dst.WriteRaw(dst_offset, buffer.data(), n);
    if (write_observer_) {
        write_observer_(dst, dst_offset, n);
    }
    WAVE_CHECK_HOOK({
        if (checker_ != nullptr) {
            checker_->OnRead(&src, check::Domain::kDma, src_offset, n,
                             /*from_host_cache=*/false,
                             /*tolerate_stale=*/false,
                             "DmaEngine::RunTransfer(src)");
            checker_->OnDmaWrite(&dst, dst_offset, n,
                                 "DmaEngine::RunTransfer(dst)");
            checker_->OnOrderingPoint("dma-completion");
        }
    });
    channel_.Release();
    completion->MarkDone();
}

}  // namespace wave::pcie
