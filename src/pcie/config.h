/**
 * @file
 * Calibrated PCIe interconnect parameters.
 *
 * Defaults reproduce Table 2 of the paper (measured on an Intel Mount
 * Evans IPU attached to an AMD Zen3 host) plus the secondary constants
 * those numbers imply. Every latency in the simulated transport stack
 * comes from this struct, so experiments can swap interconnects (e.g.
 * the §7.3.3 UPI emulation) by swapping configs.
 */
// wave-domain: pcie
// wave-shared(immutable link-cost configuration; read-only on both shards after construction)
#pragma once

#include "sim/time.h"

namespace wave::pcie {

using sim::DurationNs;

/** Interconnect latency/bandwidth model parameters. */
struct PcieConfig {
    // --- Host MMIO costs (Table 2 rows 1-2) ---

    /** Host 64-bit uncacheable MMIO read: full PCIe roundtrip. */
    DurationNs mmio_read_ns = 750;

    /** Host 64-bit uncacheable/posted MMIO write: CPU-side cost only. */
    DurationNs mmio_write_ns = 50;

    /** One-way delay until a posted host write is visible in NIC DRAM. */
    DurationNs posted_visibility_ns = 400;

    // --- Write-combining / caching refinements (§5.3.1-5.3.2) ---

    /** Per-64-bit store into the write-combining buffer. */
    DurationNs wc_store_ns = 2;

    /** sfence: drain the WC buffer onto PCIe. */
    DurationNs sfence_ns = 60;

    /** Host cache hit on a previously-fetched write-through line. */
    DurationNs cache_hit_ns = 2;

    /** clflush of one line from the host cache. */
    DurationNs clflush_ns = 40;

    // --- SmartNIC-side access to its own DRAM (§5.3.1) ---

    /** NIC 64-bit access when the region is mapped uncacheable. */
    DurationNs nic_uncached_access_ns = 95;

    /** NIC 64-bit access when mapped write-back (local coherent DRAM). */
    DurationNs nic_wb_access_ns = 5;

    // --- MSI-X (Table 2 rows 3-6) ---

    /** NIC-side MSI-X send via direct register write. */
    DurationNs msix_send_ns = 70;

    /** NIC-side MSI-X send through the kernel (ioctl + write). */
    DurationNs msix_send_ioctl_ns = 340;

    /** Host-side interrupt entry/dispatch cost. */
    DurationNs msix_receive_ns = 350;

    /** Send-initiation to handler-entry latency, including PCIe. */
    DurationNs msix_end_to_end_ns = 1600;

    // --- DMA engine (§5.2) ---

    /** Engine latency per transfer (descriptor fetch, setup). */
    DurationNs dma_setup_ns = 1000;

    /** Doorbell cost: MMIO writes needed to kick the engine from host. */
    int dma_doorbell_writes = 2;

    /** Sustained DMA bandwidth in bytes per nanosecond (~20 GB/s). */
    double dma_bytes_per_ns = 20.0;

    /**
     * Effective-bandwidth multiplier when buffers are NOT on the
     * recipient's local NUMA node (§5.1: Neugebauer et al. report a
     * 10-20% throughput difference; Floem writes to the local node).
     */
    double dma_remote_numa_factor = 0.85;

    // --- Interconnect semantics ---

    /**
     * True for coherent interconnects (CXL/UPI/NVLink, §7.3.3): remote
     * stores invalidate host-cached lines in hardware, so the software
     * clflush protocol is unnecessary, and cacheable mappings are legal.
     */
    bool coherent = false;

    /** Cache line size used by the WT cache and WC buffer models. */
    static constexpr std::size_t kLineSize = 64;

    /** Word size for MMIO cost accounting. */
    static constexpr std::size_t kWordSize = 8;

    /**
     * Coherent UPI-socket emulation preset (§7.3.3): the "SmartNIC" is
     * the other socket of a 2-socket host. Latencies drop by roughly
     * the PCIe-vs-UPI gap and coherence is handled in hardware.
     */
    static PcieConfig
    Upi()
    {
        PcieConfig cfg;
        cfg.mmio_read_ns = 220;
        cfg.mmio_write_ns = 25;
        cfg.posted_visibility_ns = 110;
        cfg.wc_store_ns = 2;
        cfg.sfence_ns = 40;
        cfg.cache_hit_ns = 2;
        cfg.clflush_ns = 0;
        cfg.nic_uncached_access_ns = 45;
        cfg.nic_wb_access_ns = 5;
        cfg.msix_send_ns = 60;
        cfg.msix_send_ioctl_ns = 200;
        cfg.msix_receive_ns = 350;
        cfg.msix_end_to_end_ns = 950;
        cfg.dma_setup_ns = 600;
        cfg.dma_bytes_per_ns = 30.0;
        cfg.coherent = true;
        return cfg;
    }
};

}  // namespace wave::pcie
