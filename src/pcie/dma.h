/**
 * @file
 * SmartNIC DMA engine model (§5.2).
 *
 * The engine moves data between host DRAM and NIC SoC DRAM without
 * consuming CPU on either side. A transfer costs a fixed setup latency
 * (descriptor fetch + engine scheduling, ~1 µs) plus size / bandwidth,
 * and the engine processes transfers one at a time (a channel), so
 * concurrent requests queue — which is why the paper reserves DMA for
 * high-throughput, latency-insensitive traffic like page-table batches.
 *
 * Kicking the engine from the host costs doorbell MMIO writes; the NIC
 * kicks it through local registers for near-zero cost. Completion can be
 * awaited synchronously or polled asynchronously (iPipe's asynchronous
 * DMA insight, 2-7x better throughput).
 */
// wave-domain: pcie
// wave-shared(the DMA engine is the seam device both shards program; transfer state is serialized by the simulator event loop today and becomes a cross-shard rendezvous under a parallel executor)
// wave-hot
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pcie/config.h"
#include "pcie/memory.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace wave::check {
class CoherenceChecker;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave::pcie {

/** Which side initiates (and therefore pays the doorbell for) a DMA. */
enum class DmaInitiator { kHost, kNic };

/** Completion handle for an asynchronous DMA transfer. */
class DmaCompletion {
  public:
    explicit DmaCompletion(sim::Simulator& sim) : done_signal_(sim) {}

    bool Done() const { return done_; }

    /** Suspends until the transfer completes. */
    sim::Task<>
    Wait()
    {
        while (!done_) {
            co_await done_signal_.Wait();
        }
    }

  private:
    friend class DmaEngine;

    void
    MarkDone()
    {
        done_ = true;
        done_signal_.NotifyAll();
    }

    /** Re-arms a drained completion for reuse by the engine's pool. */
    void
    Reset()
    {
        WAVE_ASSERT(done_ && done_signal_.WaiterCount() == 0,
                    "resetting a completion that is still in use");
        done_ = false;
    }

    sim::Signal done_signal_;
    bool done_ = false;
};

/** The SmartNIC's DMA engine: one serialized transfer channel. */
class DmaEngine {
  public:
    DmaEngine(sim::Simulator& sim, const PcieConfig& config)
        : sim_(sim), config_(config), channel_(sim, 1)
    {
    }

    /**
     * Starts an asynchronous copy of @p n bytes from @p src_offset in
     * @p src to @p dst_offset in @p dst.
     *
     * The caller pays only the doorbell cost before this returns; the
     * copy itself proceeds in the background. The returned completion
     * can be awaited or polled.
     */
    sim::Task<std::shared_ptr<DmaCompletion>> TransferAsync(
        DmaInitiator initiator, MemoryRegion& src, std::size_t src_offset,
        MemoryRegion& dst, std::size_t dst_offset, std::size_t n);

    /** Synchronous copy: returns once the data has landed. */
    sim::Task<> Transfer(DmaInitiator initiator, MemoryRegion& src,
                         std::size_t src_offset, MemoryRegion& dst,
                         std::size_t dst_offset, std::size_t n);

    /**
     * Buffer placement: Floem allocates queue memory on the
     * recipient's local NUMA node; a remote-node placement loses
     * 10-20% of effective bandwidth (§5.1). Default is local.
     */
    void SetNumaLocal(bool local) { numa_local_ = local; }
    bool NumaLocal() const { return numa_local_; }

    /** Pure transfer duration for @p n bytes (setup + wire time). */
    sim::DurationNs
    TransferTime(std::size_t n) const
    {
        const double bandwidth =
            config_.dma_bytes_per_ns *
            (numa_local_ ? 1.0 : config_.dma_remote_numa_factor);
        return config_.dma_setup_ns +
               sim::DurationNs::FromDouble(static_cast<double>(n) /
                                           bandwidth);
    }

    std::uint64_t TransfersStarted() const { return transfers_; }
    std::uint64_t BytesMoved() const { return bytes_moved_; }

    /**
     * Observer invoked whenever a transfer lands bytes in a destination
     * region. WaveRuntime wires this to the NIC DRAM's coherence
     * machinery so DMA writes into the MMIO window invalidate (or mark
     * stale) host-cached lines exactly like NIC-core stores do.
     */
    void
    SetWriteObserver(
        // wave-analyze: allow(W101 observer is wired once at runtime construction; invoking the stored callable does not allocate)
        std::function<void(MemoryRegion&, std::size_t, std::size_t)> cb)
    {
        write_observer_ = std::move(cb);
    }

    /** Attaches the wave::check coherence checker (may be nullptr). */
    void AttachChecker(check::CoherenceChecker* checker)
    {
        checker_ = checker;
    }

    /**
     * Attaches the fault injector; transfers then pay its extra
     * completion delay while a dma-delay window is active. The data
     * still lands atomically at (delayed) completion time, so delayed
     * completions naturally reorder against younger MMIO traffic —
     * exactly the hazard the checkers must tolerate or flag.
     */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }

  private:
    sim::Task<> RunTransfer(std::shared_ptr<DmaCompletion> completion,
                            MemoryRegion& src, std::size_t src_offset,
                            MemoryRegion& dst, std::size_t dst_offset,
                            std::size_t n);

    /**
     * Hands out a completion handle, reusing a pooled one whose caller
     * has dropped their reference (use_count == 1) and whose transfer
     * finished. The pool levels off at the maximum number of
     * concurrently outstanding transfers, so steady-state TransferAsync
     * does not allocate.
     */
    std::shared_ptr<DmaCompletion> AcquireCompletion();

    sim::Simulator& sim_;
    PcieConfig config_;
    sim::Resource channel_;
    std::vector<std::shared_ptr<DmaCompletion>> completion_pool_;

    /**
     * Copy staging buffer. The capacity-1 channel_ serializes the copy
     * section of RunTransfer, so one buffer (grown to the largest
     * transfer seen) serves every transfer without re-allocating.
     */
    std::vector<std::byte> scratch_;
    // wave-analyze: allow(W101 member storage for the setup-time observer; assigned once, never rebound per event)
    std::function<void(MemoryRegion&, std::size_t, std::size_t)>
        write_observer_;
    check::CoherenceChecker* checker_ = nullptr;
    sim::inject::FaultInjector* injector_ = nullptr;
    bool numa_local_ = true;
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_moved_ = 0;
};

}  // namespace wave::pcie
