/**
 * @file
 * MMIO access model over non-coherent PCIe (§5.2-5.3 of the paper).
 *
 * The SmartNIC exposes a window of its SoC DRAM to the host. The host
 * maps that window with a chosen page-table-entry type and pays the
 * corresponding costs:
 *
 *   - Uncacheable (UC): every 64-bit read is a 750 ns PCIe roundtrip;
 *     every 64-bit write is a 50 ns posted store.
 *   - Write-combining (WC): reads stay uncached, but stores land in a
 *     64-byte combining buffer for ~2 ns each; the buffer drains as one
 *     posted burst on sfence or when the store stream leaves the line.
 *   - Write-through (WT): stores go straight to memory (posted), but the
 *     first read of a line pulls the whole 64-byte line into the host
 *     cache for one roundtrip; later reads of that line are cache hits.
 *     Over non-coherent PCIe the cached copy can go STALE when the NIC
 *     writes — Wave's software-coherence protocol must clflush it. Over
 *     a coherent interconnect (config.coherent) hardware invalidates.
 *
 * The NIC side accesses the same bytes as local DRAM, either uncacheable
 * (the un-optimized baseline in Table 3) or write-back (the "SmartNIC WB
 * PTEs" optimization).
 *
 * All mappings move real bytes through the shared NicDram backing store
 * with correct posted-write visibility ordering, so protocol bugs (e.g.
 * reading an entry before its valid flag lands) surface in simulation
 * exactly as they would on hardware.
 */
// wave-domain: pcie
// wave-shared(MMIO mappings are the host shard's window into NIC DRAM and vice versa; cache/WC shadow state is touched from both sides by design)
// wave-hot
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "pcie/config.h"
#include "pcie/memory.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace wave::check {
class CoherenceChecker;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave::pcie {

/** Page-table-entry cache attribute for a mapping (§5.3.1). */
enum class PteType {
    kUncacheable,
    kWriteCombining,
    kWriteThrough,
    kWriteBack,
};

class HostMmioMapping;

/** The MMIO-exposed region of SmartNIC SoC DRAM. */
class NicDram {
  public:
    NicDram(sim::Simulator& sim, const PcieConfig& config, std::size_t size)
        : sim_(sim), config_(config), backing_(size)
    {
    }

    MemoryRegion& Backing() { return backing_; }
    const PcieConfig& Config() const { return config_; }
    sim::Simulator& Sim() { return sim_; }

    /** Registers a host mapping for coherence callbacks. */
    void RegisterHostMapping(HostMmioMapping* mapping);

    /** Called on every NIC-side store for coherent-mode invalidation. */
    void OnNicWrite(std::size_t offset, std::size_t n);

    /**
     * Attaches a wave::check coherence checker; all mappings over this
     * DRAM report their accesses to it. Pass nullptr to detach.
     */
    void AttachChecker(check::CoherenceChecker* checker)
    {
        checker_ = checker;
    }
    check::CoherenceChecker* Checker() const { return checker_; }

    /**
     * Attaches the fault injector; host mappings over this DRAM then
     * pay its extra MMIO delay on every PCIe roundtrip and posted-
     * visibility hop (latency-spike windows). Pass nullptr to detach.
     */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }
    sim::inject::FaultInjector* Injector() const { return injector_; }

  private:
    sim::Simulator& sim_;
    PcieConfig config_;
    MemoryRegion backing_;
    std::vector<HostMmioMapping*> host_mappings_;
    check::CoherenceChecker* checker_ = nullptr;
    sim::inject::FaultInjector* injector_ = nullptr;
};

/** Access statistics for assertions and bench reporting. */
struct MmioStats {
    std::uint64_t pcie_reads = 0;      ///< roundtrip line/word fetches
    std::uint64_t cache_hits = 0;      ///< WT reads served from host cache
    std::uint64_t prefetch_hits = 0;   ///< demand reads that met a prefetch
    std::uint64_t posted_writes = 0;   ///< individual posted stores
    std::uint64_t wc_flushes = 0;      ///< WC buffer drains
    std::uint64_t clflushes = 0;       ///< explicit line flushes
    std::uint64_t stale_reads = 0;     ///< hits on lines the NIC had dirtied
};

/**
 * The host CPU's view of the NIC DRAM window, with PTE-type semantics.
 *
 * One mapping models one logical region (e.g. one queue); a host core
 * performs at most one access at a time through it.
 */
class HostMmioMapping {
  public:
    HostMmioMapping(NicDram& dram, PteType type);

    /**
     * Demand read of [offset, offset+n). Applies UC or WT semantics.
     *
     * @param tolerate_stale annotates protocol reads that validate
     *        freshness another way (generation flags, conservative
     *        counters); the coherence checker counts — but does not
     *        report — stale cache hits on such reads.
     */
    sim::Task<> Read(std::size_t offset, void* dst, std::size_t n,
                     bool tolerate_stale = false);

    /** Store to [offset, offset+n). Applies UC, WT, or WC semantics. */
    sim::Task<> Write(std::size_t offset, const void* src, std::size_t n);

    /** Drains the write-combining buffer (no-op for other types). */
    sim::Task<> Sfence();

    /**
     * Starts asynchronous fills of the lines covering the range
     * (§5.4 "Prefetching MMIO Decisions"). Free for the caller; a later
     * demand read waits only for the remaining fill time.
     */
    void Prefetch(std::size_t offset, std::size_t n);

    /** Software coherence: drops cached copies of the covered lines. */
    sim::Task<> Clflush(std::size_t offset, std::size_t n);

    PteType Type() const { return type_; }
    const MmioStats& Stats() const { return stats_; }

  private:
    friend class NicDram;

    struct CacheLine {
        std::vector<std::byte> data;  ///< empty while fill is in flight
        sim::TimeNs fill_done{};    ///< when an in-flight fill lands
        bool nic_dirtied = false;     ///< NIC wrote since we cached it
    };

    static std::size_t LineOf(std::size_t offset)
    {
        return offset / PcieConfig::kLineSize;
    }
    static std::size_t WordsIn(std::size_t n)
    {
        return (n + PcieConfig::kWordSize - 1) / PcieConfig::kWordSize;
    }

    sim::Task<> ReadUncached(std::size_t offset, void* dst, std::size_t n);
    sim::Task<> ReadCachedWt(std::size_t offset, void* dst, std::size_t n,
                             bool tolerate_stale);

    /** Injected extra latency per PCIe hop (0 without an injector). */
    sim::DurationNs ExtraPcieDelay() const;

    /** Issues the posted stores for [offset, n) (visibility-delayed). */
    void PostStores(std::size_t offset, const void* src, std::size_t n);

    /**
     * Checks out a payload buffer for one posted burst. Buffers recycle
     * through posted_pool_ when the visibility event lands, so the
     * steady-state posted-write path never allocates.
     */
    std::vector<std::byte> AcquirePostedBuf(std::size_t n);
    void RecyclePostedBuf(std::vector<std::byte>&& buf);

    /** Hardware invalidation callback (coherent mode). */
    void InvalidateLines(std::size_t offset, std::size_t n);

    /** Marks overlapped cached lines stale (non-coherent NIC write). */
    void MarkNicDirtied(std::size_t offset, std::size_t n);

    NicDram& dram_;
    const PcieConfig& config_;
    PteType type_;
    MmioStats stats_;

    // WT line cache, keyed by line index.
    std::map<std::size_t, CacheLine> cache_;

    /**
     * Visibility time of the last posted burst. Injected latency spikes
     * vary the posted delay, so landings are clamped to never precede
     * an older burst — PCIe posted writes cannot reorder.
     */
    sim::TimeNs last_posted_visible_{};

    // Write-combining buffer: at most one line being combined. Each
    // buffered store spans at most one line, so its payload fits a
    // fixed-size slot — no per-store heap allocation.
    struct WcStore {
        std::size_t offset = 0;
        std::size_t len = 0;
        std::array<std::byte, PcieConfig::kLineSize> data{};
    };
    bool wc_active_ = false;
    std::size_t wc_line_ = 0;
    std::vector<WcStore> wc_stores_;

    /** Recycled posted-burst payload buffers (see AcquirePostedBuf). */
    std::vector<std::vector<std::byte>> posted_pool_;
};

/** A SmartNIC core's view of the NIC DRAM (its own local memory). */
class NicLocalMapping {
  public:
    NicLocalMapping(NicDram& dram, PteType type);

    /**
     * Local read; cost depends on UC vs WB mapping.
     *
     * @param tolerate_stale annotates optimistic polls that are safe
     *        against not-yet-drained host write-combining stores (the
     *        generation flag simply won't match yet); the coherence
     *        checker skips the unflushed-WC check on such reads.
     */
    sim::Task<> Read(std::size_t offset, void* dst, std::size_t n,
                     bool tolerate_stale = false);

    /** Local write; visible to the host's next PCIe fetch immediately. */
    sim::Task<> Write(std::size_t offset, const void* src, std::size_t n);

    PteType Type() const { return type_; }

  private:
    sim::DurationNs AccessCost(std::size_t n) const;

    NicDram& dram_;
    const PcieConfig& config_;
    PteType type_;
};

}  // namespace wave::pcie
