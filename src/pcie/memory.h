/**
 * @file
 * Raw byte-addressable memory region.
 *
 * Backing store for both host DRAM buffers and SmartNIC SoC DRAM. The
 * region itself has no timing; timing comes from the access paths laid
 * over it (MmioMapping, DmaEngine, or zero-cost local access).
 */
// wave-domain: pcie
// wave-shared(models the physical memories and BAR windows both shards address; every cross-shard byte flows through here by construction)
// wave-hot
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "sim/logging.h"

namespace wave::pcie {

/** A contiguous, byte-addressable memory region. */
class MemoryRegion {
  public:
    explicit MemoryRegion(std::size_t size) : data_(size) {}

    std::size_t Size() const { return data_.size(); }

    /** Raw copy out of the region (no simulated cost). */
    void
    ReadRaw(std::size_t offset, void* dst, std::size_t n) const
    {
        CheckRange(offset, n);
        std::memcpy(dst, data_.data() + offset, n);
    }

    /** Raw copy into the region (no simulated cost). */
    void
    WriteRaw(std::size_t offset, const void* src, std::size_t n)
    {
        CheckRange(offset, n);
        std::memcpy(data_.data() + offset, src, n);
    }

    const std::byte* Data() const { return data_.data(); }

  private:
    void
    CheckRange(std::size_t offset, std::size_t n) const
    {
        WAVE_ASSERT(offset + n <= data_.size(),
                    "access [%zu, %zu) outside region of %zu bytes", offset,
                    offset + n, data_.size());
    }

    std::vector<std::byte> data_;
};

}  // namespace wave::pcie
