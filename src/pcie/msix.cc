// wave-domain: pcie
// wave-shared(interrupt vectors are raised by the NIC shard and consumed by the host shard; the pending/masked state is the cross-shard handshake itself)
#include "pcie/msix.h"

#include "check/coherence.h"
#include "check/hb.h"
#include "check/hooks.h"
#include "sim/inject.h"

namespace wave::pcie {

// wave-lifetime(caller-awaits)
sim::Task<>
MsiXVector::Send(SendPath path)
{
    ++sends_;
    const sim::DurationNs send_cost = path == SendPath::kRegisterWrite
                                          ? config_.msix_send_ns
                                          : config_.msix_send_ioctl_ns;
    if (injector_ != nullptr && injector_->ShouldDropMsix()) {
        // Lost in flight: the sender still pays the register write, but
        // the pending bit never latches at the host. Recovery is the
        // receiver's problem (polling, watchdog).
        ++drops_;
        co_await sim_.Delay(send_cost);
        co_return;
    }
    // The end-to-end latency covers send initiation through handler
    // entry; the wire portion is what remains after subtracting the
    // sender and receiver CPU costs.
    sim::DurationNs wire = config_.msix_end_to_end_ns -
                           config_.msix_send_ns -
                           config_.msix_receive_ns;
    if (injector_ != nullptr) {
        wire += injector_->MsixExtraDelay();
    }
    // The send is the release half of the interrupt's HB edge; the
    // acquire fires at delivery below.
    WAVE_CHECK_HOOK({
        if (hb_ != nullptr) {
            hb_->OnRelease(hb_sender_, this, 0);
        }
    });
    sim_.Schedule(send_cost + wire, [this] {
        pending_ = true;
        WAVE_CHECK_HOOK({
            if (checker_ != nullptr) {
                checker_->OnOrderingPoint("msix-delivery");
            }
            if (hb_ != nullptr) {
                hb_->OnAcquire(hb_receiver_, this, 0);
            }
        });
        if (!masked_) {
            arrival_.NotifyAll();
            if (delivery_handler_) delivery_handler_();
        }
    });
    co_await sim_.Delay(send_cost);
}

// wave-lifetime(caller-awaits)
sim::Task<>
MsiXVector::WaitAndReceive()
{
    while (!pending_ || masked_) {
        co_await arrival_.Wait();
    }
    pending_ = false;
    co_await sim_.Delay(config_.msix_receive_ns);
}

bool
MsiXVector::ConsumePending()
{
    if (!pending_) return false;
    pending_ = false;
    return true;
}

}  // namespace wave::pcie
