/**
 * @file
 * Scheduling enclaves (§6 "Focus on Host Partitions and Agent
 * Scalability").
 *
 * Datacenter machines host multiple tenants that want different
 * policies; ghOSt's proven answer is *enclaves*: disjoint partitions
 * of host cores, each a self-contained scheduling domain with its own
 * kernel scheduling-class state, transport queues, agent, and policy.
 * Wave keeps the model — the §7.2 scheduling agent operates per CCX —
 * and adds the per-component watchdog (§3.3) and restart-based
 * recovery (§6): an enclave kills its wedged agent and starts a fresh
 * one that re-pulls thread state from the kernel, without touching
 * neighbouring enclaves.
 */
// wave-domain: host
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "wave/runtime.h"
#include "wave/watchdog.h"

namespace wave::ghost {

/** Configuration for one scheduling enclave. */
struct EnclaveConfig {
    /** Host cores this enclave owns (e.g. one CCX). */
    std::vector<int> cores;

    /** SmartNIC core its agent runs on (Wave deployment). */
    int nic_core = 0;

    /** Run the agent on the SmartNIC (true) or a host core (false). */
    bool offloaded = true;

    /** Host core for the on-host agent (offloaded == false). */
    int host_agent_core = 0;

    /** Makes a fresh policy instance (used at start and on restart). */
    std::function<std::shared_ptr<SchedPolicy>()> policy_factory;

    /** Agent loop settings (cores is filled in by the enclave). */
    AgentConfig agent;

    /** Kernel-side knobs for this partition. */
    GhostCosts costs;
    KernelOptions kernel_options;

    /** Watchdog threshold; 0 disables the watchdog. */
    sim::DurationNs watchdog_timeout_ns = 20'000'000;
    sim::DurationNs watchdog_interval_ns = 1'000'000;
};

/** A self-contained scheduling partition: kernel + queues + agent. */
class Enclave {
  public:
    Enclave(WaveRuntime& runtime, EnclaveConfig config);

    /** Adds a thread to this enclave's scheduling domain. */
    void
    AddThread(Tid tid, std::shared_ptr<ThreadBody> body)
    {
        kernel_->AddThread(tid, std::move(body));
    }

    /** Starts the kernel loops and the agent; arms the watchdog. */
    void Start();

    /**
     * Kills the current agent and starts a replacement with a fresh
     * policy. The kernel re-announces this enclave's runnable threads
     * so the new policy can rebuild its run queue — the host kernel is
     * the source of truth (§6).
     */
    void RestartAgent();

    /** Number of agent generations started (1 after Start()). */
    int Generation() const { return generation_; }

    bool AgentAlive() const;

    KernelSched& Kernel() { return *kernel_; }
    SchedTransport& Transport() { return *transport_; }
    GhostAgent& CurrentAgent() { return *agent_; }
    const EnclaveConfig& Config() const { return config_; }

  private:
    void StartAgentGeneration();
    sim::Task<> FeedWatchdogLoop();

    WaveRuntime& runtime_;
    EnclaveConfig config_;
    std::unique_ptr<SchedTransport> transport_;
    std::unique_ptr<KernelSched> kernel_;
    std::shared_ptr<GhostAgent> agent_;
    std::unique_ptr<AgentContext> host_agent_ctx_;
    AgentId agent_id_ = 0;
    std::unique_ptr<Watchdog> watchdog_;
    int generation_ = 0;
    std::uint64_t last_seen_decisions_ = 0;
};

}  // namespace wave::ghost
