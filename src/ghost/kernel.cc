// wave-domain: host
#include "ghost/kernel.h"

#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/inject.h"
#include "sim/trace.h"

#include <deque>
#include <optional>

namespace wave::ghost {

#ifdef WAVE_CHECK_ENABLED
namespace {

check::TaskShadow
ShadowOf(ThreadState state)
{
    switch (state) {
        case ThreadState::kRunnable: return check::TaskShadow::kRunnable;
        case ThreadState::kRunning: return check::TaskShadow::kRunning;
        case ThreadState::kBlocked: return check::TaskShadow::kBlocked;
        case ThreadState::kDead: return check::TaskShadow::kDead;
    }
    return check::TaskShadow::kUnknown;
}

}  // namespace
#endif

KernelSched::KernelSched(sim::Simulator& sim, machine::Machine& machine,
                         SchedTransport& transport, GhostCosts costs,
                         KernelOptions options)
    : sim_(sim),
      machine_(machine),
      transport_(transport),
      costs_(costs),
      options_(options)
{
}

void
KernelSched::AddThread(Tid tid, std::shared_ptr<ThreadBody> body)
{
    threads_.Add(tid, std::move(body));
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTaskState(this, tid, check::TaskShadow::kRunnable,
                                   "KernelSched::AddThread");
        }
    });
    // The creation message is sent from process context (not a specific
    // scheduled core); model it as a detached host-side send.
    sim_.Spawn(SendEvent(MsgType::kThreadCreated, tid, /*core=*/-1));
}

void
KernelSched::WakeThread(Tid tid)
{
    ThreadRecord* rec = threads_.Find(tid);
    WAVE_ASSERT(rec != nullptr, "waking unknown tid %d", tid);
    if (rec->state == ThreadState::kRunning) {
        rec->wake_pending = true;  // consumed when the thread blocks
        return;
    }
    if (rec->state != ThreadState::kBlocked) {
        return;  // already runnable; wakeup is a no-op
    }
    rec->state = ThreadState::kRunnable;
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTaskState(this, tid, check::TaskShadow::kRunnable,
                                   "KernelSched::WakeThread");
        }
    });
    sim_.Spawn(SendEvent(MsgType::kThreadWakeup, tid, rec->last_core));
}

void
KernelSched::ReannounceThread(Tid tid)
{
    ThreadRecord* rec = threads_.Find(tid);
    WAVE_ASSERT(rec != nullptr, "re-announcing unknown tid %d", tid);
    if (rec->state != ThreadState::kRunnable) return;
    sim_.Spawn(SendEvent(MsgType::kThreadWakeup, tid, rec->last_core));
}

void
KernelSched::ReannounceAll()
{
    for (auto& [tid, rec] : threads_.All()) {
        (void)rec;  // ReannounceThread re-checks runnability itself
        ReannounceThread(tid);
    }
}

void
KernelSched::Start(const std::vector<int>& cores)
{
    running_ = true;
    for (int core : cores) {
        sim_.Spawn(CoreLoop(core));
        if (options_.timer_ticks) {
            sim_.Spawn(TickLoop(core));
        }
    }
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the KernelSched is owned by the enclave/experiment for the whole simulator run, and the message fields are copied into the frame)
sim::Task<>
KernelSched::SendEvent(MsgType type, Tid tid, int core)
{
    GhostMessage message{};
    message.type = type;
    message.tid = tid;
    message.core = core;
    message.payload = sim_.Now().ns();
    ++stats_.messages_sent;
    co_await sim_.Delay(costs_.msg_prep_ns);
    co_await transport_.HostSendMessage(message);
}

// wave-lifetime(caller-awaits)
sim::Task<ThreadRecord*>
KernelSched::CommitDecision(int core, const PendingDecision& pd)
{
    co_await sim_.Delay(costs_.commit_ns);
    if (pd.decision.type == DecisionType::kIdle) {
        ++stats_.commits_ok;
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnCommitDecision(
                    this, pd.txn_id, /*tid=*/-1, /*run_decision=*/false,
                    /*committed=*/true, "KernelSched::CommitDecision[idle]");
            }
        });
        co_await transport_.HostSendOutcome(
            core, {pd.txn_id, api::TxnStatus::kCommitted});
        co_return nullptr;
    }
    if (injector_ != nullptr && injector_->ShouldFailCommit()) {
        // Injected commit-failure burst: reject the transaction without
        // touching thread state. The agent must requeue the thread and
        // recover, exactly as for an organic stale-state failure.
        ++stats_.commits_failed;
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnCommitDecision(
                    this, pd.txn_id, pd.decision.tid,
                    /*run_decision=*/true, /*committed=*/false,
                    "KernelSched::CommitDecision[injected]");
            }
        });
        co_await transport_.HostSendOutcome(
            core, {pd.txn_id, api::TxnStatus::kFailedRejected});
        co_return nullptr;
    }
    ThreadRecord* rec = threads_.Find(pd.decision.tid);
    if (rec == nullptr || rec->state != ThreadState::kRunnable) {
        // Atomic-commit failure: the thread exited, is already running
        // elsewhere, or blocked concurrently. Host state is untouched.
        ++stats_.commits_failed;
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnCommitDecision(
                    this, pd.txn_id, pd.decision.tid,
                    /*run_decision=*/true, /*committed=*/false,
                    "KernelSched::CommitDecision[failed]");
            }
        });
        WAVE_TRACE_EVENT(&sim_, "ghost",
                         "commit FAILED txn=%llu tid=%d core=%d",
                         static_cast<unsigned long long>(pd.txn_id),
                         pd.decision.tid, core);
        co_await transport_.HostSendOutcome(
            core, {pd.txn_id, api::TxnStatus::kFailedStale});
        co_return nullptr;
    }
    ++stats_.commits_ok;
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnCommitDecision(
                this, pd.txn_id, pd.decision.tid, /*run_decision=*/true,
                /*committed=*/true, "KernelSched::CommitDecision");
        }
    });
    WAVE_TRACE_EVENT(&sim_, "ghost", "commit txn=%llu tid=%d core=%d",
                     static_cast<unsigned long long>(pd.txn_id),
                     pd.decision.tid, core);
    rec->state = ThreadState::kRunning;
    rec->last_core = core;
    co_await transport_.HostSendOutcome(
        core, {pd.txn_id, api::TxnStatus::kCommitted});
    co_return rec;
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the KernelSched outlives the simulator run and Stop() parks the loop before teardown)
sim::Task<>
KernelSched::TickLoop(int core)
{
    CoreInterrupt& irq = transport_.InterruptFor(core);
    while (running_) {
        co_await sim_.Delay(costs_.tick_period_ns);
        irq.RaiseTick();
    }
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the KernelSched outlives the simulator run and Stop() parks the loop before teardown)
sim::Task<>
KernelSched::CoreLoop(int core)
{
    machine::Cpu& cpu = machine_.HostCpu(core);
    CoreInterrupt& irq = transport_.InterruptFor(core);

    ThreadRecord* current = nullptr;
    sim::DurationNs current_slice = 0;
    sim::TimeNs stopped_at{};
    bool measuring = false;
    bool just_prefetched = false;
    // Consumed-but-not-yet-wanted prestage decisions: a safety kick can
    // surface a prestage while a thread still runs; the kernel keeps
    // them locally for its next idle transitions instead of preempting.
    std::deque<PendingDecision> stashed;

    while (running_) {
        // --- 1. interrupt handling ---
        if (irq.ConsumeTick()) {
            ++stats_.ticks_handled;
            co_await cpu.Work(costs_.tick_ns);
        }
        if (irq.ConsumeKick()) {
            co_await cpu.Work(transport_.InterruptReceiveCost());
            // A kick means new decisions are (likely) in the queue; the
            // software-coherence flush happens inside the poll. Keep
            // draining: a prestage for later can sit *ahead of* the
            // preemption decision the kick was actually about.
            for (;;) {
                auto pd = co_await transport_.HostPollDecision(
                    core, /*flush_first=*/true);
                if (!pd) break;  // spurious/already-consumed kick
                if (current != nullptr && !pd->decision.preempt) {
                    // A prestage surfaced early: keep it for later and
                    // look for the decision that carried the kick.
                    stashed.push_back(*pd);
                    continue;
                }
                if (current != nullptr) {
                    // Real preemption: put the running thread back.
                    current->state = ThreadState::kRunnable;
                    WAVE_CHECK_HOOK({
                        if (protocol_ != nullptr) {
                            protocol_->OnTaskState(
                                this, current->tid,
                                check::TaskShadow::kRunnable,
                                "KernelSched::CoreLoop[preempt]");
                        }
                    });
                    ++stats_.preemptions;
                    WAVE_TRACE_EVENT(&sim_, "ghost",
                                     "preempt tid=%d core=%d",
                                     current->tid, core);
                    const Tid preempted = current->tid;
                    current = nullptr;
                    co_await SendEvent(MsgType::kThreadPreempted,
                                       preempted, core);
                }
                if (!stashed.empty()) {
                    // Enforce committed transactions in queue order:
                    // earlier prestages run before this preemption's
                    // pick, which waits its turn in the stash.
                    stashed.push_back(*pd);
                    pd = stashed.front();
                    stashed.pop_front();
                }
                ThreadRecord* next = co_await CommitDecision(core, *pd);
                if (next != nullptr) {
                    co_await cpu.Work(costs_.context_switch_ns);
                    current = next;
                    current_slice = pd->decision.slice_ns;
                }
                break;
            }
        }

        // --- 2. find work if idle ---
        if (current == nullptr) {
            std::optional<PendingDecision> pd;
            if (!stashed.empty()) {
                pd = stashed.front();
                stashed.pop_front();
            } else {
                pd = co_await transport_.HostPollDecision(
                    core, /*flush_first=*/!just_prefetched);
            }
            just_prefetched = false;
            if (!pd) {
                if (irq.Pending()) continue;  // raced with an interrupt
                if (options_.poll_idle) {
                    // Interrupts "disabled": spin on the queue instead.
                    ++stats_.idle_polls;
                    co_await cpu.Work(options_.poll_gap_ns);
                    continue;
                }
                ++stats_.idle_waits;
                co_await irq.WaitForInterrupt();
                continue;
            }
            if (measuring) ++stats_.prestage_hits;
            ThreadRecord* next = co_await CommitDecision(core, *pd);
            if (next == nullptr) continue;
            co_await cpu.Work(costs_.context_switch_ns);
            current = next;
            current_slice = pd->decision.slice_ns;
        }

        // --- 3. run the thread ---
        if (measuring) {
            stats_.ctx_switch_overhead.Record((sim_.Now() - stopped_at).ns());
            measuring = false;
        }
        RunContext ctx{sim_, cpu, irq, current_slice};
        const RunStop stop = co_await current->body->Run(ctx);

        if (stop == RunStop::kPreempted) {
            // An interrupt cut the thread short; the top of the loop
            // decides whether it carries a real preemption decision or
            // is just a tick (in which case we resume this thread).
            continue;
        }

        // --- 4. thread gave up the core: prefetch, update, notify ---
        stopped_at = sim_.Now();
        measuring = true;
        if (options_.prefetch_decisions) {
            co_await transport_.HostPrefetchDecision(core);
            just_prefetched = true;
        }
        const Tid tid = current->tid;
        MsgType event;
        switch (stop) {
          case RunStop::kBlocked:
            if (current->wake_pending) {
                // Wake raced with the block: skip the blocked state and
                // report a yield, which both frees the core and
                // re-enqueues the thread at the agent.
                current->wake_pending = false;
                current->state = ThreadState::kRunnable;
                event = MsgType::kThreadYield;
            } else {
                current->state = ThreadState::kBlocked;
                event = MsgType::kThreadBlocked;
            }
            break;
          case RunStop::kYielded:
            current->state = ThreadState::kRunnable;
            event = MsgType::kThreadYield;
            break;
          case RunStop::kExited:
          default:
            current->state = ThreadState::kDead;
            event = MsgType::kThreadDead;
            break;
        }
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnTaskState(this, tid,
                                       ShadowOf(current->state),
                                       "KernelSched::CoreLoop[stop]");
            }
        });
        current = nullptr;
        co_await SendEvent(event, tid, core);
    }
}

}  // namespace wave::ghost
