/**
 * @file
 * Threads as the kernel scheduling class sees them.
 *
 * A ghOSt-class thread has kernel-visible state (runnable / running /
 * blocked / dead) owned by the host kernel — the source of truth for
 * recovery (§6) — and a workload-defined body that executes when the
 * kernel context-switches to it. Bodies run until they block, yield,
 * exhaust a slice, or are preempted by an interrupt.
 */
// wave-domain: host
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "ghost/interrupt.h"
#include "ghost/messages.h"
#include "machine/cpu.h"
#include "sim/task.h"

namespace wave::ghost {

/** Kernel-visible thread state. */
enum class ThreadState {
    kRunnable,
    kRunning,
    kBlocked,
    kDead,
};

/** Why a thread's body returned control to the kernel. */
enum class RunStop : std::uint32_t {
    kBlocked,    ///< waiting on an event (e.g. next request)
    kYielded,    ///< voluntarily gave up the core
    kPreempted,  ///< interrupt arrived / slice expired
    kExited,     ///< thread is done forever
};

/** Execution context the kernel passes to a running thread body. */
struct RunContext {
    sim::Simulator& sim;
    machine::Cpu& cpu;
    CoreInterrupt& interrupt;

    /** Slice budget; 0 means run until the body stops on its own. */
    sim::DurationNs slice_ns;
};

/** Workload-defined thread behaviour. */
class ThreadBody {
  public:
    virtual ~ThreadBody() = default;

    /**
     * Runs the thread on a core until it stops. Implementations should
     * consume service time with ctx.interrupt.SleepInterruptible() so
     * preemption interrupts take effect at their arrival time, and must
     * respect ctx.slice_ns when it is non-zero.
     */
    virtual sim::Task<RunStop> Run(RunContext& ctx) = 0;
};

/** One thread's kernel record. */
struct ThreadRecord {
    Tid tid = kNoThread;
    ThreadState state = ThreadState::kRunnable;
    std::shared_ptr<ThreadBody> body;
    int last_core = -1;

    /**
     * A wakeup arrived while the thread was still running (e.g. its
     * next request was assigned before it finished blocking). The
     * kernel turns the subsequent block into an immediate re-enqueue,
     * like a real kernel's wake-while-running path.
     */
    bool wake_pending = false;
};

/** The kernel's thread table. */
class ThreadTable {
  public:
    /** Registers a new thread in the runnable state. */
    ThreadRecord&
    Add(Tid tid, std::shared_ptr<ThreadBody> body)
    {
        ThreadRecord rec;
        rec.tid = tid;
        rec.body = std::move(body);
        auto [it, inserted] = threads_.emplace(tid, std::move(rec));
        WAVE_ASSERT(inserted, "duplicate tid %d", tid);
        return it->second;
    }

    /** Looks up a thread; nullptr if it never existed or was removed. */
    ThreadRecord*
    Find(Tid tid)
    {
        auto it = threads_.find(tid);
        return it == threads_.end() ? nullptr : &it->second;
    }

    /** Removes a dead thread's record entirely. */
    void Remove(Tid tid) { threads_.erase(tid); }

    std::size_t Size() const { return threads_.size(); }

    std::map<Tid, ThreadRecord>& All() { return threads_; }

  private:
    std::map<Tid, ThreadRecord> threads_;
};

}  // namespace wave::ghost
