// wave-domain: host
#include "ghost/enclave.h"

#include "check/hooks.h"

namespace wave::ghost {

Enclave::Enclave(WaveRuntime& runtime, EnclaveConfig config)
    : runtime_(runtime), config_(std::move(config))
{
    WAVE_ASSERT(!config_.cores.empty(), "enclave with no cores");
    WAVE_ASSERT(config_.policy_factory != nullptr,
                "enclave needs a policy factory");
    config_.agent.cores = config_.cores;
    if (config_.offloaded) {
        // The Wave binding wires its queues/txn endpoints into the
        // runtime's checkers itself.
        transport_ = std::make_unique<WaveSchedTransport>(runtime_,
                                                          config_.cores);
    } else {
        auto shm = std::make_unique<ShmSchedTransport>(runtime_.Sim(),
                                                       config_.cores);
        WAVE_CHECK_HOOK(
            shm->AttachCheckers(runtime_.Hb(), runtime_.Protocol()));
        transport_ = std::move(shm);
    }
    kernel_ = std::make_unique<KernelSched>(
        runtime_.Sim(), runtime_.GetMachine(), *transport_, config_.costs,
        config_.kernel_options);
    WAVE_CHECK_HOOK(kernel_->AttachProtocol(runtime_.Protocol()));
}

void
Enclave::StartAgentGeneration()
{
    agent_ = std::make_shared<GhostAgent>(
        *transport_, config_.policy_factory(), config_.agent);
    if (config_.offloaded) {
        agent_id_ = runtime_.StartWaveAgent(agent_, config_.nic_core);
    } else {
        host_agent_ctx_ = std::make_unique<AgentContext>(
            runtime_.Sim(),
            runtime_.GetMachine().HostCpu(config_.host_agent_core));
        runtime_.Sim().Spawn(agent_->Run(*host_agent_ctx_));
    }
    ++generation_;
    last_seen_decisions_ = 0;  // the fresh agent's counters start over
}

void
Enclave::Start()
{
    StartAgentGeneration();
    kernel_->Start(config_.cores);
    if (config_.watchdog_timeout_ns > 0) {
        watchdog_ = std::make_unique<Watchdog>(
            runtime_.Sim(), config_.watchdog_timeout_ns,
            config_.watchdog_interval_ns, [this] { RestartAgent(); });
        WAVE_CHECK_HOOK(watchdog_->AttachProtocol(runtime_.Protocol()));
        runtime_.Sim().Spawn(FeedWatchdogLoop());
        watchdog_->Arm();
    }
}

bool
Enclave::AgentAlive() const
{
    if (!config_.offloaded) return agent_ != nullptr;
    return agent_ != nullptr && runtime_.AgentAlive(agent_id_);
}

void
Enclave::RestartAgent()
{
    if (config_.offloaded) {
        runtime_.KillWaveAgent(agent_id_);
    }
    StartAgentGeneration();
    if (watchdog_) watchdog_->Arm();

    // Re-pull from the source of truth: re-announce every runnable
    // thread so the fresh policy rebuilds its run queue (§6).
    for (auto& [tid, record] : kernel_->Threads().All()) {
        if (record.state == ThreadState::kRunnable) {
            kernel_->ReannounceThread(tid);
        }
    }
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the enclave owns agent, supervisor, and watchdog wiring and outlives the simulator run)
sim::Task<>
Enclave::FeedWatchdogLoop()
{
    for (;;) {
        co_await runtime_.Sim().Delay(config_.watchdog_interval_ns);
        if (agent_ == nullptr || watchdog_ == nullptr) continue;
        // Liveness = the agent keeps making passes through its loop; a
        // wedged agent (stuck in a blocking await, killed, crashed)
        // stops iterating and the watchdog fires.
        const std::uint64_t iterations = agent_->Stats().iterations;
        if (iterations > last_seen_decisions_) {
            last_seen_decisions_ = iterations;
            watchdog_->NoteDecision();
        }
    }
}

}  // namespace wave::ghost
