/**
 * @file
 * Per-core interrupt controller for the simulated host kernel.
 *
 * Each host core owns a CoreInterrupt. Interrupt sources (MSI-X
 * delivery from a SmartNIC agent, IPIs from an on-host agent, timer
 * ticks) raise it; the core's kernel loop observes pending interrupts
 * between and *during* thread execution — SleepInterruptible is the
 * primitive that lets a running thread's service time be cut short at
 * the exact arrival time of a preemption interrupt.
 *
 * Kicks (agent decisions) and timer ticks are latched separately
 * because the kernel reacts differently: a kick means "flush and read
 * the decision queue"; a tick is pure overhead unless the policy uses
 * it (Figure 5 measures exactly this overhead).
 */
// wave-domain: host
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace wave::ghost {

/** Latched interrupt lines for one host core. */
class CoreInterrupt {
  public:
    explicit CoreInterrupt(sim::Simulator& sim) : sim_(sim), signal_(sim)
    {
    }

    /** Latches a decision kick (MSI-X / IPI) and wakes sleepers. */
    void
    Raise()
    {
        kick_pending_ = true;
        signal_.NotifyAll();
    }

    /** Latches a timer tick and wakes sleepers. */
    void
    RaiseTick()
    {
        tick_pending_ = true;
        signal_.NotifyAll();
    }

    bool Pending() const { return kick_pending_ || tick_pending_; }
    bool KickPending() const { return kick_pending_; }
    bool TickPending() const { return tick_pending_; }

    /** Clears the kick latch; returns whether it was set. */
    bool
    ConsumeKick()
    {
        const bool was = kick_pending_;
        kick_pending_ = false;
        return was;
    }

    /** Clears the tick latch; returns whether it was set. */
    bool
    ConsumeTick()
    {
        const bool was = tick_pending_;
        tick_pending_ = false;
        return was;
    }

    /**
     * Sleeps for up to @p max_ns, waking early if any interrupt is
     * raised. Returns the time actually slept. Does NOT consume the
     * latches — the kernel loop decides how to handle them.
     */
    sim::Task<sim::DurationNs>
    SleepInterruptible(sim::DurationNs max_ns)
    {
        const sim::TimeNs start = sim_.Now();
        const sim::TimeNs deadline = start + max_ns;
        sim_.Schedule(max_ns, [this] { signal_.NotifyAll(); });
        while (!Pending() && sim_.Now() < deadline) {
            co_await signal_.Wait();
        }
        co_return sim_.Now() - start;
    }

    /** Sleeps until an interrupt is raised (idle core in halt). */
    sim::Task<>
    WaitForInterrupt()
    {
        while (!Pending()) {
            co_await signal_.Wait();
        }
    }

  private:
    sim::Simulator& sim_;
    sim::Signal signal_;
    bool kick_pending_ = false;
    bool tick_pending_ = false;
};

}  // namespace wave::ghost
