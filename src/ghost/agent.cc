// wave-domain: host
#include "ghost/agent.h"

#include <algorithm>

namespace wave::ghost {

GhostAgent::GhostAgent(SchedTransport& transport,
                       std::shared_ptr<SchedPolicy> policy,
                       AgentConfig config)
    : transport_(transport),
      policy_(std::move(policy)),
      config_(std::move(config))
{
    WAVE_ASSERT(!config_.cores.empty(), "agent with no cores to schedule");
    const int max_core =
        *std::max_element(config_.cores.begin(), config_.cores.end());
    cores_.resize(static_cast<std::size_t>(max_core) + 1);
    // Every managed core starts idle and waiting for its first decision.
    for (int core : config_.cores) {
        Model(core).needs_decision = true;
    }
}

// wave-lifetime(spawn-safe: the agent and its AgentContext are owned by the spawner (enclave, supervisor, or experiment frame), which runs the simulator to completion before releasing them)
sim::Task<>
GhostAgent::Run(AgentContext& ctx)
{
    while (!ctx.StopRequested()) {
        if (ctx.StallUntil() > ctx.Sim().Now()) {
            // Injected wedge: alive but not iterating. Sleep in short
            // slices so a concurrent kill still takes effect promptly.
            const sim::DurationNs remaining =
                ctx.StallUntil() - ctx.Sim().Now();
            co_await ctx.Sim().Delay(
                std::min<sim::DurationNs>(remaining, 100'000));
            continue;
        }
        ++stats_.iterations;
        const sim::TimeNs iter_start = ctx.Sim().Now();
        co_await HandleMessages(ctx);
        co_await HandleOutcomes(ctx);
        co_await IssueDecisions(ctx);
        if (config_.prestage) {
            co_await IssuePrestages(ctx);
        }
        co_await IssuePreemptions(ctx);
        if (config_.aux_stage) {
            co_await config_.aux_stage(ctx);
        }
        co_await ctx.Cpu().Work(config_.loop_overhead_ns);
        // Histogram recording adds no simulator events, so enabling or
        // windowing it never shifts a determinism fingerprint.
        const sim::TimeNs iter_end = ctx.Sim().Now();
        const bool windowed =
            config_.iter_window_end > config_.iter_window_begin;
        if (!windowed || (iter_start >= config_.iter_window_begin &&
                          iter_end <= config_.iter_window_end)) {
            iter_latency_.Record((iter_end - iter_start).ns());
        }
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
GhostAgent::HandleMessages(AgentContext& ctx)
{
    auto messages = co_await transport_.AgentPollMessages(config_.msg_batch);
    for (const GhostMessage& message : messages) {
        ++stats_.messages;
        co_await ctx.Cpu().Work(policy_->PerMessageComputeNs());

        // Update the core model before the policy consumes the event.
        const bool frees_core = message.type == MsgType::kThreadBlocked ||
                                message.type == MsgType::kThreadYield ||
                                message.type == MsgType::kThreadPreempted ||
                                message.type == MsgType::kThreadDead;
        if (frees_core && message.core >= 0 &&
            message.core < static_cast<int>(cores_.size())) {
            CoreModel& model = Model(message.core);
            if (message.type == MsgType::kThreadPreempted) {
                model.preempt_inflight = false;
            }
            if (model.running == message.tid) {
                model.running = kNoThread;
                if (!model.inflight.empty()) {
                    // A prestaged decision is already in the core's
                    // queue. If it was committed before the thread
                    // blocked (message.payload carries the block
                    // timestamp), the host saw it at block time; only
                    // a commit that raced past the block needs a
                    // safety kick.
                    const CoreModel::Inflight front =
                        model.inflight.front();
                    model.inflight.pop_front();
                    model.running = front.decision.tid;
                    model.running_since = ctx.Sim().Now();
                    if (config_.use_kicks &&
                        front.committed_at > sim::TimeNs{message.payload}) {
                        ++stats_.kicks;
                        co_await transport_.AgentKick(message.core);
                    }
                } else {
                    model.needs_decision = true;
                }
            }
        }
        policy_->OnMessage(message);
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
GhostAgent::HandleOutcomes(AgentContext& ctx)
{
    for (int core : config_.cores) {
        auto outcomes = co_await transport_.AgentPollOutcomes(core, 8);
        for (const api::TxnOutcome& outcome : outcomes) {
            CoreModel& model = Model(core);
            // Find the matching in-flight record. Outcomes arrive in
            // commit order, but adoption in HandleMessages may already
            // have popped the front, so search by id.
            GhostDecision decision{};
            bool found = false;
            for (auto it = model.inflight.begin();
                 it != model.inflight.end(); ++it) {
                if (it->txn_id == outcome.txn_id) {
                    decision = it->decision;
                    model.inflight.erase(it);
                    found = true;
                    break;
                }
            }
            bool reactive = false;
            if (!found) {
                const auto it = reactive_.find(outcome.txn_id);
                if (it != reactive_.end()) {
                    decision = it->second;
                    reactive_.erase(it);
                    reactive = true;
                }
            }
            if (outcome.status == api::TxnStatus::kCommitted) {
                if (found) {
                    model.running = decision.tid;
                    model.running_since = ctx.Sim().Now();
                }
                continue;  // reactive commits were adopted at issue time
            }
            ++stats_.failed_commits;
            if (!found && !reactive) {
                // No record at all (e.g. a duplicate outcome): repair
                // the model conservatively.
                if (model.running != kNoThread) {
                    model.running = kNoThread;
                }
                model.needs_decision = true;
                continue;
            }
            // kFailedStale means the thread stopped being runnable
            // concurrently (blocked/exited); its eventual wakeup message
            // re-announces it, so requeueing here would duplicate it.
            // kFailedRejected means the host refused the commit with the
            // thread still runnable — no wakeup will ever come, so the
            // agent must requeue or the thread is stranded.
            if (!reactive || outcome.status == api::TxnStatus::kFailedRejected) {
                policy_->OnDecisionFailed(decision);
            }
            if (model.running == decision.tid) {
                model.running = kNoThread;
            }
            model.needs_decision = true;
        }
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
GhostAgent::IssueDecisions(AgentContext& ctx)
{
    for (int core : config_.cores) {
        CoreModel& model = Model(core);
        if (!model.needs_decision) continue;
        auto decision = policy_->PickNext(core, ctx.Sim().Now());
        if (!decision) continue;  // nothing runnable; core stays idle
        co_await ctx.Cpu().Work(policy_->DecisionComputeNs());
        const api::TxnId id = transport_.AgentStageDecision(*decision);
        ++stats_.decisions;
        if (config_.use_kicks) ++stats_.kicks;
        // Reactive decision: the host core is idle-waiting, so kick —
        // unless the host polls for decisions (§4.3 RPC mode).
        co_await transport_.AgentCommit(core, /*kick=*/config_.use_kicks);
        model.needs_decision = false;
        model.running = decision->tid;
        model.running_since = ctx.Sim().Now();
        // Adopted immediately, but keep the txn record so a failed
        // commit can be matched back to its thread (see reactive_).
        reactive_[id] = *decision;
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
GhostAgent::IssuePrestages(AgentContext& ctx)
{
    for (int core : config_.cores) {
        CoreModel& model = Model(core);
        if (model.running == kNoThread) continue;   // reactive path owns it
        if (!model.inflight.empty()) continue;      // one prestage per core
        if (policy_->RunQueueDepth() < config_.prestage_min_depth) break;
        auto decision = policy_->PickNext(core, ctx.Sim().Now());
        if (!decision) break;
        co_await ctx.Cpu().Work(policy_->DecisionComputeNs());
        const api::TxnId id = transport_.AgentStageDecision(*decision);
        ++stats_.decisions;
        ++stats_.prestages;
        co_await transport_.AgentCommit(core, /*kick=*/false);
        model.inflight.push_back(CoreModel::Inflight{
            id, *decision, ctx.Sim().Now()});
    }
}

// wave-lifetime(caller-awaits)
sim::Task<>
GhostAgent::IssuePreemptions(AgentContext& ctx)
{
    for (int core : config_.cores) {
        CoreModel& model = Model(core);
        if (model.running == kNoThread || model.preempt_inflight) continue;
        const sim::DurationNs ran_for =
            ctx.Sim().Now() - model.running_since;
        if (!policy_->ShouldPreempt(core, model.running, ran_for)) {
            continue;
        }
        auto decision = policy_->PickNext(core, ctx.Sim().Now());
        if (!decision) continue;  // nothing to switch to: let it run
        decision->preempt = 1;
        co_await ctx.Cpu().Work(policy_->DecisionComputeNs());
        const api::TxnId id = transport_.AgentStageDecision(*decision);
        model.inflight.push_back(CoreModel::Inflight{
            id, *decision, ctx.Sim().Now()});
        model.preempt_inflight = true;
        ++stats_.decisions;
        ++stats_.preempt_decisions;
        ++stats_.kicks;
        co_await transport_.AgentCommit(core, /*kick=*/true);
    }
}

}  // namespace wave::ghost
