/**
 * @file
 * Host-kernel cost model for the ghOSt scheduling class.
 *
 * These are the CPU costs of the *mechanism* that stays on the host in
 * both deployments (§4.1): building and sending thread-event messages,
 * validating and committing transactions, and the context switch
 * itself. They are calibrated so the on-host ghOSt rows of Table 3
 * (4.4-5.0 µs baseline context-switch overhead, 2.4-3.3 µs with
 * prestaging) come out of the same machinery that produces the Wave
 * rows when the transport is swapped.
 */
// wave-domain: neutral
#pragma once

#include "sim/time.h"

namespace wave::ghost {

/** CPU costs of in-kernel scheduling mechanics. */
struct GhostCosts {
    /** Building a thread-event message (kernel bookkeeping, seqnums). */
    sim::DurationNs msg_prep_ns = 350;

    /** Validating a transaction against live thread state. */
    sim::DurationNs commit_ns = 400;

    /** The context switch proper: state save/restore, runqueue ops. */
    sim::DurationNs context_switch_ns = 1300;

    /** Handling a timer tick (Figure 5's per-millisecond overhead). */
    sim::DurationNs tick_ns = 12'600;

    /** Timer tick period when ticks are enabled. */
    sim::DurationNs tick_period_ns = 1'000'000;
};

}  // namespace wave::ghost
