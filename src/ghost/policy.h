/**
 * @file
 * Scheduling policy interface, implemented by the policies in
 * src/sched (FIFO, Shinjuku, multi-queue Shinjuku, the VM policy).
 *
 * Policies are pure decision logic: they consume thread-event messages,
 * maintain run queues, and pick threads for idle cores. The GhostAgent
 * drives them identically whether it runs on the SmartNIC or on a host
 * core — policy portability is a design goal of both ghOSt and Wave
 * ("Keep Agents Modular", §6).
 */
// wave-domain: neutral
#pragma once

#include <optional>
#include <string>

#include "ghost/messages.h"
#include "sim/time.h"

namespace wave::ghost {

/** Pure scheduling policy logic. */
class SchedPolicy {
  public:
    virtual ~SchedPolicy() = default;

    virtual std::string Name() const = 0;

    /** Consumes one thread-event message. */
    virtual void OnMessage(const GhostMessage& message) = 0;

    /**
     * Picks a thread for @p core, removing it from the run queue.
     * Returns nullopt when nothing is runnable.
     */
    virtual std::optional<GhostDecision> PickNext(int core,
                                                  sim::TimeNs now) = 0;

    /**
     * A committed decision failed its atomic commit (the thread died or
     * changed state concurrently). The policy may requeue or drop it.
     */
    virtual void OnDecisionFailed(const GhostDecision& decision) = 0;

    /**
     * Whether the thread on @p core, running for @p ran_for, should be
     * preempted (Shinjuku time slicing). Default: run to completion.
     */
    virtual bool
    ShouldPreempt(int core, Tid running, sim::DurationNs ran_for) const
    {
        (void)core;
        (void)running;
        (void)ran_for;
        return false;
    }

    /** Threads currently waiting in run queues. */
    virtual std::size_t RunQueueDepth() const = 0;

    /**
     * Policy compute per decision, at reference-core speed. FIFO-class
     * policies "require little compute" (§7.2.1); heavier policies
     * override this.
     */
    virtual sim::DurationNs DecisionComputeNs() const { return 150; }

    /** Policy compute per consumed message. */
    virtual sim::DurationNs PerMessageComputeNs() const { return 50; }
};

}  // namespace wave::ghost
