/**
 * @file
 * Watchdog-driven agent supervision and host fallback (§3.3).
 *
 * The paper's recovery story: every offloaded agent has an on-host
 * watchdog; when the agent stops making progress the watchdog kills it
 * and the subsystem "falls back to on-host system software" — for the
 * thread scheduler, scheduling through the kernel's own class (CFS).
 * Recovery is simple because the kernel never stopped being the source
 * of truth (§6): the fallback just re-pulls the runnable set.
 *
 * AgentSupervisor packages that loop for simulations and tests:
 *
 *   1. a feed task samples the supervised agent's iteration counter and
 *      feeds the Watchdog while the counter advances,
 *   2. on expiry it issues KILL_WAVE_AGENT, starts a caller-supplied
 *      fallback GhostAgent on a host core over the same transport, and
 *   3. calls KernelSched::ReannounceAll() so every runnable thread
 *      stranded in the dead agent's run queue reaches the fallback.
 */
// wave-domain: host
#pragma once

#include <functional>
#include <memory>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "machine/cpu.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "wave/watchdog.h"

namespace wave::ghost {

/** Supervision knobs (defaults: the paper's thread-scheduler values). */
struct SupervisorConfig {
    /** Liveness-staleness threshold before the kill (§3.3: 20 ms). */
    sim::DurationNs timeout = 20'000'000;

    /** Watchdog poll period. */
    sim::DurationNs check_interval = 1'000'000;

    /** How often the feed task samples the agent's iteration counter. */
    sim::DurationNs feed_interval = 500'000;
};

/** What the supervisor has done so far. */
struct SupervisorStats {
    std::uint64_t expiries = 0;
    bool fallback_active = false;
    sim::TimeNs fallback_at{};
};

/** Supervises one Wave agent; falls back to a host agent on expiry. */
class AgentSupervisor {
  public:
    AgentSupervisor(sim::Simulator& sim, WaveRuntime& runtime,
                    KernelSched& kernel, SupervisorConfig config = {});
    ~AgentSupervisor();

    /**
     * Starts supervising @p agent (already running as Wave agent
     * @p id). On watchdog expiry the supervisor kills it, runs
     * @p fallback_factory to build the host-side replacement agent
     * (same transport, typically a CFS-class policy), spawns it on
     * @p fallback_cpu, and replays the kernel's runnable set.
     */
    void Supervise(AgentId id, std::shared_ptr<GhostAgent> agent,
                   std::function<std::shared_ptr<GhostAgent>()>
                       fallback_factory,
                   machine::Cpu& fallback_cpu);

    const SupervisorStats& Stats() const { return stats_; }
    Watchdog& Dog() { return *dog_; }
    GhostAgent* FallbackAgent() { return fallback_.get(); }

  private:
    sim::Task<> FeedLoop();
    void OnExpire();

    sim::Simulator& sim_;
    WaveRuntime& runtime_;
    KernelSched& kernel_;
    SupervisorConfig config_;
    SupervisorStats stats_;

    AgentId agent_id_ = 0;
    std::shared_ptr<GhostAgent> agent_;
    std::function<std::shared_ptr<GhostAgent>()> fallback_factory_;
    machine::Cpu* fallback_cpu_ = nullptr;

    std::unique_ptr<Watchdog> dog_;
    std::shared_ptr<GhostAgent> fallback_;
    std::unique_ptr<AgentContext> fallback_ctx_;
};

}  // namespace wave::ghost
