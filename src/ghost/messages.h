/**
 * @file
 * ghOSt message and decision wire formats.
 *
 * The host kernel notifies the scheduling agent of thread lifecycle
 * events; the agent answers with scheduling decisions, committed as
 * Wave transactions. The formats mirror ghOSt's published message set
 * (THREAD_CREATED / BLOCKED / WAKEUP / YIELD / PREEMPT / DEAD).
 *
 * Sizes matter: messages travel host->NIC (cheap posted writes), while
 * decisions travel NIC->host, where the host pays per-word uncacheable
 * read costs unless write-through caching is enabled — which is why
 * decisions are kept to a single cache line (§5.3.2).
 */
// wave-domain: neutral
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace wave::ghost {

/** Thread identifier (host kernel TID). */
using Tid = std::int32_t;

constexpr Tid kNoThread = -1;

/** Thread lifecycle events sent from the host kernel to the agent. */
enum class MsgType : std::uint32_t {
    kThreadCreated = 1,  ///< new thread entered the ghOSt class
    kThreadBlocked = 2,  ///< thread blocked (e.g. futex, I/O)
    kThreadWakeup = 3,   ///< blocked thread became runnable
    kThreadYield = 4,    ///< thread voluntarily yielded
    kThreadPreempted = 5,///< kernel preempted it (on agent decision)
    kThreadDead = 6,     ///< thread exited
};

/** A thread-event message (host -> agent). */
struct GhostMessage {
    MsgType type;
    Tid tid;
    std::int32_t core;        ///< host core the event happened on
    std::uint32_t _pad = 0;
    std::uint64_t payload;    ///< event-specific (e.g. wake hint)
};

/** Agent decision kinds. */
enum class DecisionType : std::uint32_t {
    kRunThread = 1,  ///< context switch to `tid` on `core`
    kIdle = 2,       ///< leave the core idle
};

/** A scheduling decision (agent -> host, inside a Wave transaction). */
struct GhostDecision {
    DecisionType type;
    Tid tid;
    std::int32_t core;
    std::uint32_t slo_class = 0;  ///< multi-queue Shinjuku SLO tag
    sim::DurationNs slice_ns;     ///< 0 = run to completion

    /**
     * True when the agent intends to preempt whatever runs on the
     * core. Non-preempt decisions that reach a busy core are stashed
     * by the kernel for its next idle transition (they are prestages
     * that a safety kick surfaced early).
     */
    std::uint32_t preempt = 0;
    std::uint32_t _pad = 0;
};

/**
 * Wire sizing. ghOSt messages carry seqnums and barrier words beyond
 * the fields above; the payload sizes reflect the real system's message
 * footprint, which the agent must read per poll.
 */
struct GhostWire {
    /** Host->NIC message queue entry payload. */
    static constexpr std::size_t kMessagePayload = 120;

    /** Inner decision payload (fits one line with the txn header). */
    static constexpr std::size_t kDecisionPayload = 32;
};

}  // namespace wave::ghost
