/**
 * @file
 * The ghOSt kernel scheduling class (host side of Figure 2).
 *
 * The kernel owns thread state (the source of truth, §6), sends thread
 * lifecycle messages to the agent, enforces agent decisions with atomic
 * commits, and context-switches worker threads on its cores. It is
 * identical across deployments; only the SchedTransport differs between
 * on-host ghOSt and Wave offload.
 *
 * Per-core loop (matching the decision lifetime in Figure 2):
 *
 *   1. handle any pending interrupt (kick: flush + read decisions;
 *      tick: pay the tick cost),
 *   2. if idle, poll for a (possibly prestaged) decision; if none,
 *      halt until an interrupt,
 *   3. validate the decision transaction against live thread state —
 *      commit atomically or fail it cleanly — and report the outcome,
 *   4. context switch and run the thread until it stops,
 *   5. prefetch the next decision, then update state and send the
 *      thread-event message (the §5.4 overlap), and repeat.
 */
// wave-domain: host
#pragma once

#include <memory>
#include <vector>

#include "ghost/costs.h"
#include "ghost/interrupt.h"
#include "ghost/messages.h"
#include "ghost/thread.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "stats/histogram.h"

namespace wave::check {
class ProtocolChecker;
}

namespace wave::sim::inject {
class FaultInjector;
}

namespace wave::ghost {

/** Behaviour switches for the kernel loops. */
struct KernelOptions {
    /** Prefetch the next decision before sending messages (§5.4). */
    bool prefetch_decisions = true;

    /** Deliver 1 ms timer ticks to every core (Figure 5 baseline). */
    bool timer_ticks = false;

    /**
     * Idle cores spin-poll the decision queue instead of halting for
     * an MSI-X ("the host will instead poll the queue to sustain high
     * RPC throughput", §4.3; "disabling interrupts" under load, §5.1).
     * Each poll pays the flush + line fetch, but wakeups skip the
     * interrupt path entirely.
     */
    bool poll_idle = false;

    /** Gap between idle polls in poll_idle mode. */
    sim::DurationNs poll_gap_ns = 250;
};

/** Aggregate kernel-side statistics. */
struct KernelStats {
    stats::Histogram ctx_switch_overhead;  ///< block -> next-run latency
    std::uint64_t commits_ok = 0;
    std::uint64_t commits_failed = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t ticks_handled = 0;
    std::uint64_t prestage_hits = 0;   ///< decision ready at block time
    std::uint64_t idle_waits = 0;      ///< had to halt for an MSI-X/IPI
    std::uint64_t idle_polls = 0;      ///< empty polls in poll_idle mode
};

/** The host kernel's ghOSt scheduling class. */
class KernelSched {
  public:
    KernelSched(sim::Simulator& sim, machine::Machine& machine,
                SchedTransport& transport, GhostCosts costs = {},
                KernelOptions options = {});

    /**
     * Registers a new ghOSt thread (runnable) and notifies the agent.
     * Safe to call before or after Start().
     */
    void AddThread(Tid tid, std::shared_ptr<ThreadBody> body);

    /**
     * Wakes a blocked thread (e.g. a request arrived for a worker) and
     * notifies the agent. No-op unless the thread is blocked.
     */
    void WakeThread(Tid tid);

    /**
     * Re-announces a runnable thread to the agent (a wakeup message
     * without a state change). Used when a restarted agent re-pulls
     * scheduling state from the kernel — the source of truth (§6).
     */
    void ReannounceThread(Tid tid);

    /**
     * Re-announces every runnable thread. This is the recovery path of
     * §3.3/§6: after the watchdog kills a wedged agent and a fresh
     * agent (restart or on-host fallback) attaches, the kernel replays
     * its runnable set so no thread is stranded in the dead agent's
     * private run queue.
     */
    void ReannounceAll();

    /** Starts the per-core kernel loops on the given host cores. */
    void Start(const std::vector<int>& cores);

    /** Stops the loops (at their next decision boundary). */
    void Stop() { running_ = false; }

    ThreadTable& Threads() { return threads_; }
    KernelStats& Stats() { return stats_; }
    const GhostCosts& Costs() const { return costs_; }

    /**
     * Attaches the protocol verifier. The kernel reports every thread
     * state transition (it is the source of truth, §6) plus each
     * commit resolution, letting the checker catch commits that land
     * against a stale view or claim a running thread twice.
     */
    void AttachProtocol(check::ProtocolChecker* protocol)
    {
        protocol_ = protocol;
    }

    /**
     * Attaches the fault injector. During a commit-fail-burst window
     * the kernel rejects every run-decision commit with
     * TxnStatus::kFailedRejected — host state untouched, outcome
     * reported — exercising the agent's repair/requeue path without
     * inventing an illegal state transition.
     */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }

  private:
    sim::Task<> CoreLoop(int core);
    sim::Task<> TickLoop(int core);

    /** Sends a thread-event message, paying kernel prep costs. */
    sim::Task<> SendEvent(MsgType type, Tid tid, int core);

    /**
     * Validates + commits a decision; returns the thread to run, or
     * nullptr if the transaction failed / asked for idle.
     */
    sim::Task<ThreadRecord*> CommitDecision(int core,
                                            const PendingDecision& pd);

    sim::Simulator& sim_;
    machine::Machine& machine_;
    SchedTransport& transport_;
    GhostCosts costs_;
    KernelOptions options_;
    ThreadTable threads_;
    KernelStats stats_;
    bool running_ = false;
    check::ProtocolChecker* protocol_ = nullptr;
    sim::inject::FaultInjector* injector_ = nullptr;
};

}  // namespace wave::ghost
