/**
 * @file
 * The scheduling agent: a polling loop that drives a SchedPolicy over a
 * SchedTransport (§3.1 step 3-5 of the decision lifetime).
 *
 * The same GhostAgent runs on a SmartNIC core (WaveSchedTransport) or a
 * dedicated host core (ShmSchedTransport). Each iteration it:
 *
 *   1. drains thread-event messages and updates its core model,
 *   2. drains transaction outcomes (repairing its model and requeueing
 *      threads whose commits failed),
 *   3. issues *reactive* decisions (with a kick) for cores that went
 *      idle,
 *   4. *prestages* decisions (no kick) for busy cores when the run
 *      queue is deep enough (§5.4),
 *   5. issues preemption decisions (with a kick) when the policy's
 *      time slice expires (Shinjuku).
 */
// wave-domain: host
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ghost/policy.h"
#include "ghost/transport.h"
#include "stats/histogram.h"
#include "wave/runtime.h"

namespace wave::ghost {

/** Agent loop configuration. */
struct AgentConfig {
    /** Host cores this agent schedules. */
    std::vector<int> cores;

    /** Messages drained per iteration. */
    std::size_t msg_batch = 32;

    /** Enable prestaging (§5.4). */
    bool prestage = true;

    /**
     * Kick the host (MSI-X/IPI) when committing reactive decisions.
     * Disable when the host runs its idle loop in polling mode
     * (KernelOptions::poll_idle) — preemption decisions always kick.
     */
    bool use_kicks = true;

    /**
     * Minimum run-queue depth before prestaging. Prestaging with a
     * shallow queue risks parking the only runnable thread behind a
     * long-running core while another core idles; the paper prestages
     * eagerly when the queue is "sufficiently deep (e.g., linear in
     * the number of cores)".
     */
    std::size_t prestage_min_depth = 8;

    /** Per-iteration bookkeeping compute at reference speed. */
    sim::DurationNs loop_overhead_ns = 50;

    /**
     * Optional co-located stage run once per agent iteration on the
     * agent's CPU. The offloaded RPC stack plugs its packet-steering
     * stage in here (§7.3: co-locating the RPC steering policy with
     * the scheduler on the SmartNIC), and the offload datapath plugs
     * in a bounded pipeline slice (offload/pipeline.h).
     */
    std::function<sim::Task<>(AgentContext&)> aux_stage;

    /**
     * Window for the iteration-latency histogram. With the default
     * empty window every iteration is recorded; the contention sweeps
     * restrict it to their measure window so warmup start-up passes
     * do not dilute the tail.
     */
    sim::TimeNs iter_window_begin{};
    sim::TimeNs iter_window_end{};
};

/** Per-agent statistics. */
struct AgentStats {
    std::uint64_t iterations = 0;  ///< agent loop passes (liveness)
    std::uint64_t messages = 0;
    std::uint64_t decisions = 0;
    std::uint64_t prestages = 0;
    std::uint64_t preempt_decisions = 0;
    std::uint64_t failed_commits = 0;
    std::uint64_t kicks = 0;
};

/** The scheduling agent (runs as a Wave agent or host process). */
class GhostAgent : public Agent {
  public:
    GhostAgent(SchedTransport& transport,
               std::shared_ptr<SchedPolicy> policy, AgentConfig config);

    std::string Name() const override { return policy_->Name(); }

    sim::Task<> Run(AgentContext& ctx) override;

    const AgentStats& Stats() const { return stats_; }
    SchedPolicy& Policy() { return *policy_; }

    /**
     * Wall-to-wall duration of each agent loop pass (messages,
     * outcomes, decisions, aux stage, overhead) — the agent's
     * responsiveness metric under NIC-core contention. Restricted to
     * AgentConfig::iter_window_* when set.
     */
    const stats::Histogram& IterationLatency() const
    {
        return iter_latency_;
    }

  private:
    /** What the agent believes about one host core. */
    struct CoreModel {
        Tid running = kNoThread;
        sim::TimeNs running_since{};
        bool needs_decision = false;  ///< host is (or will be) idle
        bool preempt_inflight = false;

        struct Inflight {
            api::TxnId txn_id;
            GhostDecision decision;
            sim::TimeNs committed_at;
        };
        std::deque<Inflight> inflight;
    };

    sim::Task<> HandleMessages(AgentContext& ctx);
    sim::Task<> HandleOutcomes(AgentContext& ctx);
    sim::Task<> IssueDecisions(AgentContext& ctx);
    sim::Task<> IssuePrestages(AgentContext& ctx);
    sim::Task<> IssuePreemptions(AgentContext& ctx);

    CoreModel& Model(int core)
    {
        return cores_[static_cast<std::size_t>(core)];
    }

    SchedTransport& transport_;
    std::shared_ptr<SchedPolicy> policy_;
    AgentConfig config_;
    AgentStats stats_;
    stats::Histogram iter_latency_;
    std::vector<CoreModel> cores_;  ///< indexed by host core id

    /**
     * Reactive (immediately-adopted) commits in flight, by txn id. In
     * ghOSt the agent owns the txn structure, so it always knows which
     * thread a failed commit was for; without this record a rejection
     * whose thread is still runnable (host-side rejects, kFailedRejected)
     * would drop the thread from the run queue forever.
     */
    std::unordered_map<api::TxnId, GhostDecision> reactive_;
};

}  // namespace wave::ghost
