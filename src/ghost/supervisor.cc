// wave-domain: host
#include "ghost/supervisor.h"

#include "check/hooks.h"
#include "check/protocol.h"
#include "sim/trace.h"

namespace wave::ghost {

AgentSupervisor::AgentSupervisor(sim::Simulator& sim, WaveRuntime& runtime,
                                 KernelSched& kernel,
                                 SupervisorConfig config)
    : sim_(sim), runtime_(runtime), kernel_(kernel), config_(config)
{
}

AgentSupervisor::~AgentSupervisor() = default;

void
AgentSupervisor::Supervise(AgentId id, std::shared_ptr<GhostAgent> agent,
                           std::function<std::shared_ptr<GhostAgent>()>
                               fallback_factory,
                           machine::Cpu& fallback_cpu)
{
    agent_id_ = id;
    agent_ = std::move(agent);
    fallback_factory_ = std::move(fallback_factory);
    fallback_cpu_ = &fallback_cpu;

    dog_ = std::make_unique<Watchdog>(sim_, config_.timeout,
                                      config_.check_interval,
                                      [this] { OnExpire(); });
    WAVE_CHECK_HOOK(dog_->AttachProtocol(runtime_.Protocol()));
    dog_->Arm();
    sim_.Spawn(FeedLoop());
}

// wave-lifetime(spawn-safe: only `this` is borrowed; the supervisor is owned by the enclave, which outlives the simulator run)
sim::Task<>
AgentSupervisor::FeedLoop()
{
    // Liveness evidence is the agent's loop counter: a crashed agent's
    // Run() returned, a stalled agent is parked before the increment —
    // either way the counter freezes and the watchdog starves.
    std::uint64_t last_iterations = agent_->Stats().iterations;
    while (!dog_->Expired()) {
        co_await sim_.Delay(config_.feed_interval);
        const std::uint64_t now_iterations = agent_->Stats().iterations;
        if (dog_->Expired()) break;  // expiry raced with the sleep
        if (now_iterations != last_iterations) {
            last_iterations = now_iterations;
            dog_->NoteDecision();
        }
    }
}

void
AgentSupervisor::OnExpire()
{
    ++stats_.expiries;
    WAVE_TRACE_EVENT(&sim_, "supervisor",
                     "watchdog expiry: killing agent %zu, falling back",
                     agent_id_);
    runtime_.KillWaveAgent(agent_id_);
    // Host-side fallback over the same transport: scheduling continues
    // from the host core while the NIC agent is gone. The kernel is the
    // source of truth, so the fallback needs no handoff beyond a replay
    // of the runnable set.
    fallback_ = fallback_factory_();
    fallback_ctx_ = std::make_unique<AgentContext>(sim_, *fallback_cpu_);
    sim_.Spawn(fallback_->Run(*fallback_ctx_));
    kernel_.ReannounceAll();
    stats_.fallback_active = true;
    stats_.fallback_at = sim_.Now();
}

}  // namespace wave::ghost
