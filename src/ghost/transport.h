/**
 * @file
 * Scheduling transport: the apples-to-apples axis of §7.2.
 *
 * The ghOSt kernel class and the scheduling agent communicate through
 * this interface. Two bindings exist:
 *
 *   - WaveSchedTransport: the agent lives on the SmartNIC; messages,
 *     decisions, and outcomes cross PCIe through Wave MMIO queues, and
 *     kicks are MSI-X interrupts (the offloaded configuration).
 *   - ShmSchedTransport: the agent lives on a dedicated host core;
 *     everything moves through coherent shared memory and kicks are
 *     IPIs (the on-host ghOSt baseline).
 *
 * Every experiment's "On-Host vs Wave" comparison swaps this one object
 * and nothing else, exactly as the paper swaps deployments.
 */
// wave-domain: host
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "channel/bytes.h"
#include "ghost/interrupt.h"
#include "sim/sync.h"
#include "ghost/messages.h"
#include "sim/task.h"
#include "wave/api.h"
#include "wave/runtime.h"
#include "wave/shm_queue.h"
#include "wave/txn.h"

namespace wave::ghost {

/** A decision plus its transaction id, as seen by the host. */
struct PendingDecision {
    api::TxnId txn_id;
    GhostDecision decision;
};

/** Abstract host<->agent scheduling transport. */
class SchedTransport {
  public:
    virtual ~SchedTransport() = default;

    // --- Host (kernel) side ---

    /** Sends one thread-event message to the agent (SEND_MESSAGES). */
    virtual sim::Task<> HostSendMessage(const GhostMessage& message) = 0;

    /** Polls core @p core's decision queue (POLL_TXNS). */
    virtual sim::Task<std::optional<PendingDecision>> HostPollDecision(
        int core, bool flush_first) = 0;

    /** Prefetches core @p core's next decision slot (PREFETCH_TXNS). */
    virtual sim::Task<> HostPrefetchDecision(int core) = 0;

    /** Reports a commit outcome (SET_TXNS_OUTCOMES). */
    virtual sim::Task<> HostSendOutcome(int core,
                                        const api::TxnOutcome& outcome) = 0;

    /** The interrupt line the agent's kick raises on @p core. */
    virtual CoreInterrupt& InterruptFor(int core) = 0;

    /** Host-side cost of taking the agent's kick (MSI-X vs IPI). */
    virtual sim::DurationNs InterruptReceiveCost() const = 0;

    // --- Agent side ---

    /** Drains up to @p max thread-event messages (POLL_MESSAGES). */
    virtual sim::Task<std::vector<GhostMessage>> AgentPollMessages(
        std::size_t max) = 0;

    /** Stages a decision for its core's queue (TXN_CREATE). */
    virtual api::TxnId AgentStageDecision(const GhostDecision& d) = 0;

    /**
     * Publishes staged decisions for @p core (TXNS_COMMIT), optionally
     * kicking the host core.
     */
    virtual sim::Task<std::size_t> AgentCommit(int core, bool kick) = 0;

    /** Drains commit outcomes for @p core (POLL_TXNS_OUTCOMES). */
    virtual sim::Task<std::vector<api::TxnOutcome>> AgentPollOutcomes(
        int core, std::size_t max) = 0;

    /**
     * Kicks @p core without committing anything — used to close the
     * race where a prestaged decision lands concurrently with the host
     * going idle. Spurious kicks cost one interrupt receive.
     */
    virtual sim::Task<> AgentKick(int core) = 0;

    /** Number of host cores this transport serves. */
    virtual int CoreCount() const = 0;
};

/** Wave/PCIe binding: the agent runs on the SmartNIC (§3.1). */
class WaveSchedTransport : public SchedTransport {
  public:
    /**
     * @param runtime the machine's Wave runtime (queues, MSI-X, DRAM).
     * @param cores host cores to serve (per-core decision queues).
     */
    WaveSchedTransport(WaveRuntime& runtime, int cores);

    /** Serves an explicit core set (one enclave's partition, §6). */
    WaveSchedTransport(WaveRuntime& runtime, const std::vector<int>& cores);

    sim::Task<> HostSendMessage(const GhostMessage& message) override;
    sim::Task<std::optional<PendingDecision>> HostPollDecision(
        int core, bool flush_first) override;
    sim::Task<> HostPrefetchDecision(int core) override;
    sim::Task<> HostSendOutcome(int core,
                                const api::TxnOutcome& outcome) override;
    CoreInterrupt& InterruptFor(int core) override;
    sim::DurationNs InterruptReceiveCost() const override;
    sim::Task<std::vector<GhostMessage>> AgentPollMessages(
        std::size_t max) override;
    api::TxnId AgentStageDecision(const GhostDecision& d) override;
    sim::Task<std::size_t> AgentCommit(int core, bool kick) override;
    sim::Task<std::vector<api::TxnOutcome>> AgentPollOutcomes(
        int core, std::size_t max) override;
    sim::Task<> AgentKick(int core) override;
    int CoreCount() const override { return static_cast<int>(percore_.size()); }

  private:
    struct PerCore {
        NicToHostChannel decisions;
        HostToNicChannel outcomes;
        std::unique_ptr<pcie::MsiXVector> msix;
        std::unique_ptr<NicTxnEndpoint> nic_txn;
        std::unique_ptr<HostTxnEndpoint> host_txn;
        std::unique_ptr<CoreInterrupt> interrupt;
    };

    PerCore& For(int core);

    WaveRuntime& runtime_;
    HostToNicChannel messages_;
    /**
     * The message queue has one logical producer but many host-side
     * processes (core loops, wake paths) send through it; this lock
     * serializes them, like the kernel's per-queue spinlock.
     */
    sim::Resource send_lock_;
    std::map<int, std::unique_ptr<PerCore>> percore_;
};

/** On-host binding: the agent runs on a dedicated host core. */
class ShmSchedTransport : public SchedTransport {
  public:
    /** IPI costs modelled with the same latched-vector mechanism. */
    static pcie::PcieConfig IpiCosts();

    ShmSchedTransport(sim::Simulator& sim, int cores);

    /** Serves an explicit core set (one enclave's partition, §6). */
    ShmSchedTransport(sim::Simulator& sim, const std::vector<int>& cores);

    /**
     * Attaches the protocol/HB checkers to every queue and to the txn
     * lifecycle. The Wave binding wires itself from its runtime; the
     * shm baseline has no runtime, so the enclave passes the checkers
     * in explicitly. Either argument may be null.
     */
    void AttachCheckers(check::HbRaceDetector* hb,
                        check::ProtocolChecker* protocol);

    sim::Task<> HostSendMessage(const GhostMessage& message) override;
    sim::Task<std::optional<PendingDecision>> HostPollDecision(
        int core, bool flush_first) override;
    sim::Task<> HostPrefetchDecision(int core) override;
    sim::Task<> HostSendOutcome(int core,
                                const api::TxnOutcome& outcome) override;
    CoreInterrupt& InterruptFor(int core) override;
    sim::DurationNs InterruptReceiveCost() const override;
    sim::Task<std::vector<GhostMessage>> AgentPollMessages(
        std::size_t max) override;
    api::TxnId AgentStageDecision(const GhostDecision& d) override;
    sim::Task<std::size_t> AgentCommit(int core, bool kick) override;
    sim::Task<std::vector<api::TxnOutcome>> AgentPollOutcomes(
        int core, std::size_t max) override;
    sim::Task<> AgentKick(int core) override;
    int CoreCount() const override { return static_cast<int>(percore_.size()); }

  private:
    struct PerCore {
        std::unique_ptr<ShmQueue> decisions;
        std::unique_ptr<ShmQueue> outcomes;
        std::unique_ptr<pcie::MsiXVector> ipi;
        std::unique_ptr<CoreInterrupt> interrupt;
        std::vector<api::Bytes> staged;
    };

    PerCore& For(int core);

    sim::Simulator& sim_;
    ShmQueue messages_;
    std::map<int, std::unique_ptr<PerCore>> percore_;
    api::TxnId next_txn_id_ = 1;
    check::ProtocolChecker* protocol_ = nullptr;
};

}  // namespace wave::ghost
