// wave-domain: host
// wave-owns(host) — the shm transport's queues and the host halves of the wave transport live on the host shard; the NIC-side agent reaches them only through WaveRuntime's seam endpoints
#include "ghost/transport.h"

#include <cstring>

#include "channel/bytes.h"
#include "check/hb.h"
#include "check/hooks.h"
#include "check/protocol.h"

namespace wave::ghost {

namespace {

constexpr std::size_t kDecisionSlot =
    TxnWire::DecisionPayloadSize(GhostWire::kDecisionPayload);

api::Bytes
EncodeMessage(const GhostMessage& message)
{
    return channel::ToBytes(message, GhostWire::kMessagePayload);
}

GhostMessage
DecodeMessage(const api::Bytes& bytes)
{
    return channel::FromBytes<GhostMessage>(bytes);
}

}  // namespace

// --- WaveSchedTransport ---

namespace {

std::vector<int>
Iota(int n)
{
    std::vector<int> cores;
    for (int i = 0; i < n; ++i) cores.push_back(i);
    return cores;
}

}  // namespace

WaveSchedTransport::WaveSchedTransport(WaveRuntime& runtime, int cores)
    : WaveSchedTransport(runtime, Iota(cores))
{
}

WaveSchedTransport::WaveSchedTransport(WaveRuntime& runtime,
                                       const std::vector<int>& cores)
    : runtime_(runtime), send_lock_(runtime.Sim(), 1)
{
    messages_ = runtime.CreateHostToNicQueue(channel::QueueConfig{
        .capacity = 256,
        .payload_size = GhostWire::kMessagePayload,
        .sync_interval = 32});
    for (int core : cores) {
        auto pc = std::make_unique<PerCore>();
        pc->decisions = runtime.CreateNicToHostQueue(channel::QueueConfig{
            .capacity = 64, .payload_size = kDecisionSlot,
            .sync_interval = 8});
        pc->outcomes = runtime.CreateHostToNicQueue(channel::QueueConfig{
            .capacity = 64, .payload_size = TxnWire::kOutcomeSize,
            .sync_interval = 8});
        pc->msix = runtime.CreateMsiXVector();
        pc->nic_txn = std::make_unique<NicTxnEndpoint>(
            *pc->decisions.nic, *pc->outcomes.nic, pc->msix.get());
        pc->host_txn = std::make_unique<HostTxnEndpoint>(
            *pc->decisions.host, *pc->outcomes.host, pc->msix.get());
        pc->interrupt = std::make_unique<CoreInterrupt>(runtime.Sim());
        // MSI-X delivery raises the core's interrupt line; the kernel
        // loop pays the receive cost when it handles it.
        CoreInterrupt* line = pc->interrupt.get();
        pc->msix->SetDeliveryHandler([line] { line->Raise(); });
        // Fault-injection rigs attach their injector to the runtime
        // before building the transport; the txn endpoint carries the
        // double-commit-bug hook (MSI-X/DMA/MMIO hooks bind inside the
        // runtime's factories).
        pc->nic_txn->SetFaultInjector(runtime.Injector());
        WAVE_CHECK_HOOK({
            pc->nic_txn->AttachProtocol(runtime.Protocol());
            pc->host_txn->AttachProtocol(runtime.Protocol());
            // The kick's HB edge runs from the committing agent (the
            // decision producer) to the kicked core (the consumer).
            if (runtime.Hb() != nullptr) {
                pc->msix->AttachHb(runtime.Hb(),
                                   pc->decisions.nic->HbActor(),
                                   pc->decisions.host->HbActor());
            }
        });
        percore_.emplace(core, std::move(pc));
    }
}

WaveSchedTransport::PerCore&
WaveSchedTransport::For(int core)
{
    auto it = percore_.find(core);
    WAVE_ASSERT(it != percore_.end(),
                "core %d is not served by this transport", core);
    return *it->second;
}

// wave-lifetime(caller-awaits)
sim::Task<>
WaveSchedTransport::HostSendMessage(const GhostMessage& message)
{
    std::vector<api::Bytes> batch;
    batch.push_back(EncodeMessage(message));
    co_await send_lock_.Acquire();
    // Lock hand-off edge: each critical section acquires the previous
    // holder's release. The producer endpoint is bound as one actor (all
    // senders are serialized right here), so this edge documents the
    // serialization rather than splitting the senders into actors.
    WAVE_CHECK_HOOK({
        if (auto* hb = runtime_.Hb()) {
            hb->OnAcquire(messages_.host->HbActor(), &send_lock_, 0);
        }
    });
    const std::size_t sent = co_await messages_.host->Send(batch);
    WAVE_CHECK_HOOK({
        if (auto* hb = runtime_.Hb()) {
            hb->OnRelease(messages_.host->HbActor(), &send_lock_, 0);
        }
    });
    send_lock_.Release();
    WAVE_ASSERT(sent == 1, "ghOSt message queue overflow");
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<PendingDecision>>
WaveSchedTransport::HostPollDecision(int core, bool flush_first)
{
    auto txn = co_await For(core).host_txn->PollTxns(flush_first);
    if (!txn) co_return std::nullopt;
    PendingDecision out;
    out.txn_id = txn->id;
    out.decision = channel::FromBytes<GhostDecision>(txn->payload);
    co_return out;
}

// wave-lifetime(caller-awaits)
sim::Task<>
WaveSchedTransport::HostPrefetchDecision(int core)
{
    co_await For(core).host_txn->PrefetchTxns();
}

// wave-lifetime(caller-awaits)
sim::Task<>
WaveSchedTransport::HostSendOutcome(int core, const api::TxnOutcome& outcome)
{
    std::vector<api::TxnOutcome> batch;
    batch.push_back(outcome);
    co_await For(core).host_txn->SetTxnsOutcomes(batch);
}

CoreInterrupt&
WaveSchedTransport::InterruptFor(int core)
{
    return *For(core).interrupt;
}

sim::DurationNs
WaveSchedTransport::InterruptReceiveCost() const
{
    return runtime_.PcieCfg().msix_receive_ns;
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<GhostMessage>>
WaveSchedTransport::AgentPollMessages(std::size_t max)
{
    auto raw = co_await messages_.nic->PollBatch(max);
    std::vector<GhostMessage> out;
    out.reserve(raw.size());
    for (const auto& bytes : raw) {
        out.push_back(DecodeMessage(bytes));
    }
    co_return out;
}

api::TxnId
WaveSchedTransport::AgentStageDecision(const GhostDecision& d)
{
    return For(d.core).nic_txn->TxnCreate(
        channel::ToBytes(d, GhostWire::kDecisionPayload));
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
WaveSchedTransport::AgentCommit(int core, bool kick)
{
    co_return co_await For(core).nic_txn->TxnsCommit(kick);
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<api::TxnOutcome>>
WaveSchedTransport::AgentPollOutcomes(int core, std::size_t max)
{
    co_return co_await For(core).nic_txn->PollTxnsOutcomes(max);
}

// wave-lifetime(caller-awaits)
sim::Task<>
WaveSchedTransport::AgentKick(int core)
{
    co_await For(core).msix->Send();
}

// --- ShmSchedTransport ---

pcie::PcieConfig
ShmSchedTransport::IpiCosts()
{
    // Reuse the latched-vector mechanism with IPI-calibrated costs:
    // Table 3 row 3 measures 770 ns for an on-host agent to open a
    // decision and send the interrupt, and interrupt entry costs are
    // comparable to MSI-X receive (~350 ns).
    pcie::PcieConfig cfg;
    cfg.msix_send_ns = 650;
    cfg.msix_send_ioctl_ns = 650;
    cfg.msix_receive_ns = 350;
    cfg.msix_end_to_end_ns = 1250;
    return cfg;
}

ShmSchedTransport::ShmSchedTransport(sim::Simulator& sim, int cores)
    : ShmSchedTransport(sim, Iota(cores))
{
}

ShmSchedTransport::ShmSchedTransport(sim::Simulator& sim,
                                     const std::vector<int>& cores)
    : sim_(sim), messages_(sim, 4096)
{
    for (int core : cores) {
        auto pc = std::make_unique<PerCore>();
        pc->decisions = std::make_unique<ShmQueue>(sim, 256);
        pc->outcomes = std::make_unique<ShmQueue>(sim, 256);
        pc->ipi = std::make_unique<pcie::MsiXVector>(sim, IpiCosts());
        pc->interrupt = std::make_unique<CoreInterrupt>(sim);
        CoreInterrupt* line = pc->interrupt.get();
        pc->ipi->SetDeliveryHandler([line] { line->Raise(); });
        percore_.emplace(core, std::move(pc));
    }
}

void
ShmSchedTransport::AttachCheckers(check::HbRaceDetector* hb,
                                  check::ProtocolChecker* protocol)
{
    protocol_ = protocol;
    (void)hb;  // referenced only by the gated block below
    WAVE_CHECK_HOOK({
        // The message queue has many sending contexts (every core loop)
        // which the coherent deque serializes per push; they are bound
        // as one producer actor (documented over-approximation).
        messages_.BindCheckers(
            hb, protocol,
            // Both sides of the shm baseline live on the host.
            hb != nullptr  // wave-domain: host
                ? hb->RegisterActor("shm-msg-producers")
                : 0,
            hb != nullptr  // wave-domain: host
                ? hb->RegisterActor("shm-agent")
                : 0);
        for (auto& [core, pc] : percore_) {
            (void)core;
            const sim::ActorId agent =  // wave-domain: host
                hb != nullptr ? hb->RegisterActor("shm-agent") : 0;
            const sim::ActorId core_loop =  // wave-domain: host
                hb != nullptr ? hb->RegisterActor("shm-core-loop") : 0;
            pc->decisions->BindCheckers(hb, protocol, agent, core_loop);
            pc->outcomes->BindCheckers(hb, protocol, core_loop, agent);
            if (hb != nullptr) {
                pc->ipi->AttachHb(hb, agent, core_loop);
            }
        }
    });
}

ShmSchedTransport::PerCore&
ShmSchedTransport::For(int core)
{
    auto it = percore_.find(core);
    WAVE_ASSERT(it != percore_.end(),
                "core %d is not served by this transport", core);
    return *it->second;
}

// wave-lifetime(caller-awaits)
sim::Task<>
ShmSchedTransport::HostSendMessage(const GhostMessage& message)
{
    std::vector<api::Bytes> batch;
    batch.push_back(EncodeMessage(message));
    const std::size_t sent = co_await messages_.Send(batch);
    WAVE_ASSERT(sent == 1, "ghOSt message queue overflow");
}

// wave-lifetime(caller-awaits)
sim::Task<std::optional<PendingDecision>>
ShmSchedTransport::HostPollDecision(int core, bool /*flush_first*/)
{
    auto bytes = co_await For(core).decisions->Poll();
    if (!bytes) co_return std::nullopt;
    PendingDecision out;
    std::memcpy(&out.txn_id, bytes->data(), sizeof(out.txn_id));
    std::memcpy(&out.decision, bytes->data() + sizeof(api::TxnId),
                sizeof(out.decision));
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTxnDelivered(For(core).decisions.get(),
                                      out.txn_id, check::Domain::kHost,
                                      "ShmSchedTransport::HostPollDecision");
        }
    });
    co_return out;
}

// wave-lifetime(caller-awaits)
sim::Task<>
ShmSchedTransport::HostPrefetchDecision(int /*core*/)
{
    // Coherent shared memory: hardware prefetchers already help; the
    // explicit PCIe prefetch has no analogue here.
    co_return;
}

// wave-lifetime(caller-awaits)
sim::Task<>
ShmSchedTransport::HostSendOutcome(int core, const api::TxnOutcome& outcome)
{
    api::Bytes record(TxnWire::kOutcomeSize);
    std::memcpy(record.data(), &outcome.txn_id, sizeof(outcome.txn_id));
    std::memcpy(record.data() + sizeof(api::TxnId), &outcome.status,
                sizeof(outcome.status));
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTxnOutcome(For(core).decisions.get(),
                                    outcome.txn_id, check::Domain::kHost,
                                    "ShmSchedTransport::HostSendOutcome");
        }
    });
    std::vector<api::Bytes> batch;
    batch.push_back(std::move(record));
    co_await For(core).outcomes->Send(
        batch);
}

CoreInterrupt&
ShmSchedTransport::InterruptFor(int core)
{
    return *For(core).interrupt;
}

sim::DurationNs
ShmSchedTransport::InterruptReceiveCost() const
{
    return IpiCosts().msix_receive_ns;
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<GhostMessage>>
ShmSchedTransport::AgentPollMessages(std::size_t max)
{
    std::vector<GhostMessage> out;
    while (out.size() < max) {
        auto bytes = co_await messages_.Poll();
        if (!bytes) break;
        out.push_back(DecodeMessage(*bytes));
    }
    co_return out;
}

api::TxnId
ShmSchedTransport::AgentStageDecision(const GhostDecision& d)
{
    const api::TxnId id = next_txn_id_++;
    api::Bytes framed(kDecisionSlot);
    std::memcpy(framed.data(), &id, sizeof(id));
    std::memcpy(framed.data() + sizeof(api::TxnId), &d, sizeof(d));
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            protocol_->OnTxnCreated(For(d.core).decisions.get(), id,
                                    check::Domain::kHost,
                                    "ShmSchedTransport::AgentStageDecision");
        }
    });
    For(d.core).staged.push_back(
        std::move(framed));
    return id;
}

// wave-lifetime(caller-awaits)
sim::Task<std::size_t>
ShmSchedTransport::AgentCommit(int core, bool kick)
{
    PerCore& pc = For(core);
    const std::size_t sent = co_await pc.decisions->Send(pc.staged);
    WAVE_CHECK_HOOK({
        if (protocol_ != nullptr) {
            for (std::size_t i = 0; i < sent; ++i) {
                api::TxnId id = 0;
                std::memcpy(&id, pc.staged[i].data(), sizeof(id));
                protocol_->OnTxnPublished(pc.decisions.get(), id,
                                          check::Domain::kHost,
                                          "ShmSchedTransport::AgentCommit");
            }
        }
    });
    pc.staged.erase(pc.staged.begin(),
                    pc.staged.begin() + static_cast<std::ptrdiff_t>(sent));
    if (kick && sent > 0) {
        co_await pc.ipi->Send();
    }
    co_return sent;
}

// wave-lifetime(caller-awaits)
sim::Task<std::vector<api::TxnOutcome>>
ShmSchedTransport::AgentPollOutcomes(int core, std::size_t max)
{
    std::vector<api::TxnOutcome> out;
    PerCore& pc = For(core);
    while (out.size() < max) {
        auto bytes = co_await pc.outcomes->Poll();
        if (!bytes) break;
        api::TxnOutcome outcome;
        std::memcpy(&outcome.txn_id, bytes->data(),
                    sizeof(outcome.txn_id));
        std::memcpy(&outcome.status, bytes->data() + sizeof(api::TxnId),
                    sizeof(outcome.status));
        WAVE_CHECK_HOOK({
            if (protocol_ != nullptr) {
                protocol_->OnTxnOutcomeObserved(
                    pc.decisions.get(), outcome.txn_id,
                    check::Domain::kHost,
                    "ShmSchedTransport::AgentPollOutcomes");
            }
        });
        out.push_back(outcome);
    }
    co_return out;
}

// wave-lifetime(caller-awaits)
sim::Task<>
ShmSchedTransport::AgentKick(int core)
{
    co_await For(core).ipi->Send();
}

}  // namespace wave::ghost

