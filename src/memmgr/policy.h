/**
 * @file
 * Memory-management policy interface.
 *
 * A memory policy decides (a) when each page batch's access bits should
 * be scanned — scans cost a TLB flush, so frequency matters — and
 * (b) which batches belong in the fast tier at each migration epoch.
 * SOL (src/sol) implements this with Thompson sampling; ClockPolicy
 * below is the classic LRU-CLOCK approximation the paper cites as the
 * conventional alternative (§4.2). The SolAgent drives either through
 * this interface, so the two can be compared like-for-like.
 */
// wave-domain: neutral
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "memmgr/address_space.h"
#include "sim/time.h"

namespace wave::memmgr {

/** Decision logic for scan scheduling + tier classification. */
class MemPolicy {
  public:
    virtual ~MemPolicy() = default;

    virtual std::string Name() const = 0;

    /** True if the batch's next scan time has arrived. */
    virtual bool Due(std::size_t batch, sim::TimeNs now) const = 0;

    /**
     * Consumes one due batch's harvested access count; reschedules the
     * batch's next scan. Returns true if the batch was due and scanned.
     */
    virtual bool ScanBatch(std::size_t batch,
                           std::uint64_t accessed_pages,
                           sim::TimeNs now) = 0;

    /** Migration plan at an epoch boundary: (batch, new tier) pairs. */
    virtual std::vector<std::pair<std::size_t, Tier>> EpochPlan() = 0;

    virtual std::size_t NumBatches() const = 0;

    /** Migration epoch length. */
    virtual sim::DurationNs EpochNs() const = 0;

    /** Fastest possible scan period (paces the agent loop). */
    virtual sim::DurationNs MinScanPeriodNs() const = 0;

    /** Parallelizable compute per scanned batch (reference core). */
    virtual sim::DurationNs ScanComputePerBatchNs() const = 0;

    /** Serial merge compute per scanned batch. */
    virtual sim::DurationNs MergeComputePerBatchNs() const = 0;
};

}  // namespace wave::memmgr
