/**
 * @file
 * Slow-tier backing device (§4.2's "slow tier (remote DRAM,
 * non-volatile memory, or disk)").
 *
 * Pages demoted by the memory manager live here; touching them faults
 * and swaps the page back in. The device is a queueing system: a fixed
 * number of channels, per-operation latency, and finite bandwidth — so
 * fault storms (e.g. a mis-classified hot batch) show up as growing
 * fault latency rather than a constant penalty.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>

#include "memmgr/address_space.h"
#include "sim/inject.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "stats/histogram.h"

namespace wave::memmgr {

/** Swap device performance model (NVMe-class defaults). */
struct SwapConfig {
    /** Per-operation device latency. */
    sim::DurationNs op_latency_ns = 8'000;  // 8 us

    /** Sustained transfer bandwidth (bytes per ns; 3.2 GB/s). */
    double bytes_per_ns = 3.2;

    /** Parallel channels (queue pairs). */
    std::size_t channels = 8;
};

/** A queued slow-tier device. */
class SwapDevice {
  public:
    SwapDevice(sim::Simulator& sim, SwapConfig config = {})
        : sim_(sim), config_(config), channels_(sim, config.channels)
    {
    }

    /**
     * Faults @p pages pages in (or out): waits for a channel, then the
     * device latency plus transfer time. Returns when the data is
     * resident. Latency is recorded per operation.
     */
    sim::Task<>
    Transfer(std::size_t pages)
    {
        const sim::TimeNs start = sim_.Now();
        co_await channels_.Acquire();
        const auto bytes = static_cast<double>(pages * kPageSize);
        sim::DurationNs duration =
            config_.op_latency_ns +
            sim::DurationNs::FromDouble(bytes / config_.bytes_per_ns);
        if (injector_ != nullptr) {
            // Delay spike (e.g. device GC pause): queued behind the
            // channel, so a spike inflates every waiter's latency.
            duration += injector_->SwapExtraDelay();
        }
        co_await sim_.Delay(duration);
        channels_.Release();
        ++operations_;
        pages_moved_ += pages;
        latency_.Record((sim_.Now() - start).ns());
    }

    /** Convenience single-page fault-in. */
    sim::Task<> FaultIn() { co_await Transfer(1); }

    std::uint64_t Operations() const { return operations_; }
    std::uint64_t PagesMoved() const { return pages_moved_; }
    const stats::Histogram& Latency() const { return latency_; }

    /** Attaches the fault injector (swap-delay spike windows). */
    void SetFaultInjector(sim::inject::FaultInjector* injector)
    {
        injector_ = injector;
    }

  private:
    sim::Simulator& sim_;
    SwapConfig config_;
    sim::Resource channels_;
    sim::inject::FaultInjector* injector_ = nullptr;
    std::uint64_t operations_ = 0;
    std::uint64_t pages_moved_ = 0;
    stats::Histogram latency_;
};

}  // namespace wave::memmgr
