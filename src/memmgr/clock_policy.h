/**
 * @file
 * LRU-CLOCK memory policy — the conventional baseline (§4.2).
 *
 * "Policy algorithms, such as LRU, also require significant compute, so
 * policy designers resort to approximations like the LRU CLOCK
 * algorithm." This implementation applies CLOCK at batch granularity:
 * every batch is scanned at one fixed period (no per-batch adaptation),
 * and a batch whose access bit has been clear for `cold_sweeps`
 * consecutive scans is classified cold at the next epoch.
 *
 * Against SOL this trades per-scan compute (cheap: a bit test) for
 * scan volume (every batch, every period, each costing TLB-flush
 * amortization) — exactly the overhead SOL's Thompson-sampled scan
 * frequencies attack. bench_memmgr_policies quantifies the trade.
 */
// wave-domain: neutral
#pragma once

#include <vector>

#include "memmgr/policy.h"
#include "sim/logging.h"

namespace wave::memmgr {

/** CLOCK configuration. */
struct ClockConfig {
    /** Uniform scan period for every batch. */
    sim::DurationNs scan_period_ns = 1'200'000'000;  // 1.2 s

    /** Migration epoch (matched to SOL's for comparability). */
    sim::DurationNs epoch_ns = 38'400'000'000ull;  // 38.4 s

    /** Consecutive untouched scans before a batch is cold. */
    int cold_sweeps = 4;

    /** A single accessed page marks the whole batch referenced. */
    std::size_t pages_per_batch = 64;

    /** Per-batch scan compute: test-and-clear plus hand advance. */
    sim::DurationNs scan_compute_per_batch_ns = 220;

    /** Per-batch serial merge compute. */
    sim::DurationNs merge_compute_per_batch_ns = 120;
};

/** Batch-granular CLOCK policy. */
class ClockPolicy : public MemPolicy {
  public:
    ClockPolicy(const ClockConfig& config, std::size_t num_batches)
        : config_(config), batches_(num_batches)
    {
        WAVE_ASSERT(config.cold_sweeps > 0);
    }

    std::string Name() const override { return "lru-clock"; }

    bool
    Due(std::size_t batch, sim::TimeNs now) const override
    {
        return batches_[batch].next_scan <= now;
    }

    bool
    ScanBatch(std::size_t batch, std::uint64_t accessed_pages,
              sim::TimeNs now) override
    {
        BatchState& state = batches_[batch];
        if (state.next_scan > now) return false;
        if (accessed_pages > 0) {
            state.idle_sweeps = 0;
        } else {
            ++state.idle_sweeps;
        }
        state.next_scan = now + config_.scan_period_ns;
        return true;
    }

    std::vector<std::pair<std::size_t, Tier>>
    EpochPlan() override
    {
        std::vector<std::pair<std::size_t, Tier>> plan;
        for (std::size_t batch = 0; batch < batches_.size(); ++batch) {
            BatchState& state = batches_[batch];
            const Tier want = state.idle_sweeps >= config_.cold_sweeps
                                  ? Tier::kSlow
                                  : Tier::kFast;
            if (want != state.tier) {
                state.tier = want;
                plan.emplace_back(batch, want);
            }
        }
        return plan;
    }

    std::size_t NumBatches() const override { return batches_.size(); }
    sim::DurationNs EpochNs() const override { return config_.epoch_ns; }
    sim::DurationNs
    MinScanPeriodNs() const override
    {
        return config_.scan_period_ns;
    }
    sim::DurationNs
    ScanComputePerBatchNs() const override
    {
        return config_.scan_compute_per_batch_ns;
    }
    sim::DurationNs
    MergeComputePerBatchNs() const override
    {
        return config_.merge_compute_per_batch_ns;
    }

    /** Test introspection: consecutive untouched scans of a batch. */
    int IdleSweeps(std::size_t batch) const
    {
        return batches_[batch].idle_sweeps;
    }

  private:
    struct BatchState {
        sim::TimeNs next_scan{};
        int idle_sweeps = 0;
        Tier tier = Tier::kFast;
    };

    ClockConfig config_;
    std::vector<BatchState> batches_;
};

}  // namespace wave::memmgr
