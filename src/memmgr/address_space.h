/**
 * @file
 * Host address-space model for the memory-management experiments (§4.2).
 *
 * The host kernel owns page tables with per-page accessed/dirty bits
 * and a tier assignment (fast = local DRAM, slow = swap/remote). The
 * workload touches pages (setting access bits); the memory manager
 * harvests access bits — which requires a TLB flush, the §4.2 scan
 * cost — and migrates batches between tiers through the madvise path.
 * The kernel remains the source of truth: an agent can be restarted
 * and re-pull everything from here (§6).
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <vector>

#include "sim/logging.h"
#include "sim/time.h"

namespace wave::memmgr {

/** Memory tier a page lives in. */
enum class Tier : std::uint8_t {
    kFast = 0,  ///< local DRAM
    kSlow = 1,  ///< compressed/remote/disk
};

/** Kernel page-size constant (4 KiB, as in the paper). */
constexpr std::size_t kPageSize = 4096;

/** A process address space: page table + tier bookkeeping. */
class AddressSpace {
  public:
    explicit AddressSpace(std::size_t num_pages)
        : accessed_(num_pages, 0), tier_(num_pages, 0)
    {
    }

    std::size_t NumPages() const { return accessed_.size(); }

    /** Workload access: sets the page's accessed bit. */
    void
    Touch(std::size_t page)
    {
        accessed_[Check(page)] = 1;
        ++touches_;
        if (tier_[page] != 0) ++slow_tier_touches_;
    }

    /** True if the page's accessed bit is set. */
    bool Accessed(std::size_t page) const { return accessed_[Check(page)]; }

    /**
     * Harvests and clears accessed bits for [first, first+count).
     * Returns the number of pages that were accessed. The caller is
     * responsible for charging the TLB-flush cost this implies.
     */
    std::uint64_t
    HarvestAccessBits(std::size_t first, std::size_t count,
                      std::vector<std::uint8_t>* out = nullptr)
    {
        WAVE_ASSERT(first + count <= accessed_.size());
        std::uint64_t hot = 0;
        if (out) out->resize(count);
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint8_t bit = accessed_[first + i];
            hot += bit;
            if (out) (*out)[i] = bit;
            accessed_[first + i] = 0;
        }
        return hot;
    }

    Tier
    TierOf(std::size_t page) const
    {
        return static_cast<Tier>(tier_[Check(page)]);
    }

    /** Moves one page between tiers (bookkeeping only; costs charged
     *  by the migration path). */
    void
    SetTier(std::size_t page, Tier tier)
    {
        tier_[Check(page)] = static_cast<std::uint8_t>(tier);
    }

    /** Pages currently resident in the fast tier. */
    std::size_t
    FastTierPages() const
    {
        std::size_t fast = 0;
        for (std::uint8_t t : tier_) {
            fast += (t == 0);
        }
        return fast;
    }

    /** Fast-tier bytes (the RocksDB DRAM footprint metric, §7.4.2). */
    std::size_t FastTierBytes() const { return FastTierPages() * kPageSize; }

    std::uint64_t Touches() const { return touches_; }
    std::uint64_t SlowTierTouches() const { return slow_tier_touches_; }

  private:
    std::size_t
    Check(std::size_t page) const
    {
        WAVE_ASSERT(page < accessed_.size(), "page %zu out of range", page);
        return page;
    }

    std::vector<std::uint8_t> accessed_;
    std::vector<std::uint8_t> tier_;
    std::uint64_t touches_ = 0;
    std::uint64_t slow_tier_touches_ = 0;
};

/** Cost model for the in-kernel memory-management mechanism. */
struct MemCosts {
    /** TLB shootdown per access-bit scan of a batch. */
    sim::DurationNs tlb_flush_ns = 4'000;

    /** Kernel-side harvest cost per page (walk + clear). */
    sim::DurationNs harvest_per_page_ns = 4;

    /** madvise-path migration cost per page (unmap, copy, remap). */
    sim::DurationNs migrate_per_page_ns = 1'800;
};

}  // namespace wave::memmgr
