// wave-domain: harness
#include "fuzz/scenario.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/random.h"

namespace wave::fuzz {

namespace {

using sim::inject::FaultKind;
using sim::inject::FaultKindName;
using sim::inject::FaultSpec;

/** The scalar fields, in artifact order. Faults serialize separately. */
struct Field {
    const char* key;
    std::uint64_t Scenario::* member;
};

constexpr Field kFields[] = {
    {"seed", &Scenario::seed},
    {"worker_cores", &Scenario::worker_cores},
    {"num_workers", &Scenario::num_workers},
    {"nic_speed_permille", &Scenario::nic_speed_permille},
    {"policy", &Scenario::policy},
    {"opt_bits", &Scenario::opt_bits},
    {"prestage", &Scenario::prestage},
    {"prestage_min_depth", &Scenario::prestage_min_depth},
    {"poll_mode", &Scenario::poll_mode},
    {"slice_us", &Scenario::slice_us},
    {"upi_fabric", &Scenario::upi_fabric},
    {"mmio_read_ns", &Scenario::mmio_read_ns},
    {"posted_visibility_ns", &Scenario::posted_visibility_ns},
    {"msix_end_to_end_ns", &Scenario::msix_end_to_end_ns},
    {"dma_setup_ns", &Scenario::dma_setup_ns},
    {"offered_rps", &Scenario::offered_rps},
    {"get_permille", &Scenario::get_permille},
    {"get_service_ns", &Scenario::get_service_ns},
    {"range_service_ns", &Scenario::range_service_ns},
    {"warmup_ns", &Scenario::warmup_ns},
    {"measure_ns", &Scenario::measure_ns},
    {"drain_ns", &Scenario::drain_ns},
    {"watchdog_timeout_ns", &Scenario::watchdog_timeout_ns},
    {"watchdog_check_ns", &Scenario::watchdog_check_ns},
    {"require_progress", &Scenario::require_progress},
};

constexpr FaultKind kAllKinds[] = {
    FaultKind::kAgentStall,    FaultKind::kAgentCrash,
    FaultKind::kMsixDelay,     FaultKind::kMsixDrop,
    FaultKind::kDmaDelay,      FaultKind::kMmioDelay,
    FaultKind::kCommitFailBurst, FaultKind::kNicSlowdown,
    FaultKind::kSwapDelay,     FaultKind::kDoubleCommitBug,
};

bool
ParseKind(const std::string& name, FaultKind* out)
{
    for (FaultKind kind : kAllKinds) {
        if (name == FaultKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

/** Inclusive uniform draw, as a plain helper over the xoshiro stream. */
std::uint64_t
Draw(sim::Rng& rng, std::uint64_t lo, std::uint64_t hi)
{
    return rng.NextInRange(lo, hi);
}

}  // namespace

Scenario
GenerateScenario(std::uint64_t seed, const GenLimits& limits)
{
    Scenario s;
    s.seed = seed;

    // Topology + workload shape come from the "scenario" stream; the
    // fault schedule from the "fault" stream. Same seed, different
    // max_faults -> identical deployment, different fault list.
    sim::Rng scen(sim::StreamSeed(seed, "scenario"));
    sim::Rng fault(sim::StreamSeed(seed, "fault"));

    s.worker_cores = Draw(scen, 2, 6);
    s.num_workers = s.worker_cores * Draw(scen, 2, 6);
    s.nic_speed_permille = Draw(scen, 400, 1000);
    s.policy = Draw(scen, 0, 2);
    s.opt_bits = Draw(scen, 0, 7);
    s.prestage = Draw(scen, 0, 1);
    s.prestage_min_depth = Draw(scen, 2, 12);
    s.poll_mode = Draw(scen, 0, 4) == 0 ? 1 : 0;  // poll is the rarer mode
    s.slice_us = Draw(scen, 20, 60);
    s.upi_fabric = Draw(scen, 0, 9) == 0 ? 1 : 0;

    // Perturb a subset of the PCIe constants around their Table 2
    // values; zero means "leave the baseline alone".
    if (Draw(scen, 0, 1) != 0u) s.mmio_read_ns = Draw(scen, 400, 1500);
    if (Draw(scen, 0, 1) != 0u) s.posted_visibility_ns = Draw(scen, 200, 900);
    if (Draw(scen, 0, 1) != 0u) s.msix_end_to_end_ns = Draw(scen, 900, 3200);
    if (Draw(scen, 0, 1) != 0u) s.dma_setup_ns = Draw(scen, 500, 2500);

    s.get_permille = Draw(scen, 850, 1000);
    s.get_service_ns = Draw(scen, 4'000, 20'000);
    s.range_service_ns = Draw(scen, 50'000, 400'000);

    // Offered load sits well below saturation so "everything completes
    // during the drain" is a property of a correct model, not of luck:
    // capacity ~= cores / mean_service, and we draw 20-60% of it.
    const std::uint64_t mean_service_ns =
        (s.get_permille * s.get_service_ns +
         (1000 - s.get_permille) * s.range_service_ns) / 1000;
    const std::uint64_t capacity_rps =
        s.worker_cores * 1'000'000'000ull / std::max<std::uint64_t>(
            mean_service_ns, 1);
    const std::uint64_t util_permille = Draw(scen, 200, 600);
    s.offered_rps =
        std::max<std::uint64_t>(capacity_rps * util_permille / 1000, 5'000);

    s.warmup_ns = Draw(scen, 1, 4) * 1'000'000ull;
    s.measure_ns = Draw(scen, 8, 16) * 1'000'000ull;
    s.watchdog_timeout_ns = Draw(scen, 3, 8) * 1'000'000ull;
    s.watchdog_check_ns = 500'000;
    // The drain must cover a watchdog expiry plus fallback catch-up on
    // the backlog a wedged agent accumulated.
    s.drain_ns = 4 * s.watchdog_timeout_ns + 20'000'000ull;
    s.require_progress = 1;

    const std::uint64_t nfaults =
        limits.max_faults == 0 ? 0 : Draw(fault, 0, limits.max_faults);
    const std::uint64_t lo = s.warmup_ns;
    const std::uint64_t hi = s.warmup_ns + (s.measure_ns * 3) / 4;
    bool crashed = false;
    for (std::uint64_t i = 0; i < nfaults; ++i) {
        FaultSpec f;
        // Weighted kind draw: fabric windows are common, deployment
        // actions rarer, the planted bug only when explicitly enabled.
        const std::uint64_t roll = Draw(fault, 0, 99);
        if (limits.enable_bug_faults && roll < 25) {
            f.kind = FaultKind::kDoubleCommitBug;
        } else if (roll < 40) {
            f.kind = FaultKind::kMmioDelay;
        } else if (roll < 55) {
            f.kind = FaultKind::kMsixDelay;
        } else if (roll < 65) {
            f.kind = FaultKind::kDmaDelay;
        } else if (roll < 75) {
            f.kind = FaultKind::kCommitFailBurst;
        } else if (roll < 83) {
            f.kind = FaultKind::kNicSlowdown;
        } else if (roll < 91) {
            f.kind = FaultKind::kAgentStall;
        } else if (roll < 96 && !crashed) {
            f.kind = FaultKind::kAgentCrash;
        } else if (s.poll_mode != 0u) {
            // Dropped interrupts are only recoverable when idle cores
            // poll; with sleeping cores a lost kick can strand work,
            // which would be a (true) model property, not a bug.
            f.kind = FaultKind::kMsixDrop;
        } else {
            f.kind = FaultKind::kMsixDelay;
        }

        f.at = static_cast<sim::TimeNs>(Draw(fault, lo, hi));
        switch (f.kind) {
          case FaultKind::kAgentCrash:
            f.duration = 0;
            f.param = 0;
            crashed = true;
            break;
          case FaultKind::kAgentStall:
            // Either a transient hiccup (watchdog survives) or a wedge
            // (watchdog must fire and fall back).
            f.duration = Draw(fault, 0, 1) != 0u
                             ? Draw(fault, 1, s.watchdog_timeout_ns / 3)
                             : 3 * s.watchdog_timeout_ns;
            f.param = 0;
            break;
          case FaultKind::kNicSlowdown:
            f.duration = Draw(fault, 200'000, 3'000'000);
            f.param = Draw(fault, 250, 800);  // permille of base speed
            break;
          case FaultKind::kCommitFailBurst:
            f.duration = Draw(fault, 50'000, 1'000'000);
            f.param = 0;
            break;
          case FaultKind::kMsixDrop:
            f.duration = Draw(fault, 50'000, 500'000);
            f.param = 0;
            break;
          case FaultKind::kDoubleCommitBug:
            f.duration = Draw(fault, 200'000, 2'000'000);
            f.param = 0;
            break;
          default:  // window delay kinds
            f.duration = Draw(fault, 50'000, 2'000'000);
            f.param = Draw(fault, 1'000, 20'000);
            break;
        }
        s.faults.push_back(f);
    }
    std::sort(s.faults.begin(), s.faults.end(),
              [](const FaultSpec& a, const FaultSpec& b) {
                  return a.at < b.at;
              });
    return s;
}

std::string
ScenarioToString(const Scenario& s)
{
    std::ostringstream out;
    out << "# wave_fuzz replay artifact\n";
    for (const Field& f : kFields) {
        out << f.key << ' ' << s.*(f.member) << '\n';
    }
    for (const FaultSpec& f : s.faults) {
        out << "fault " << FaultKindName(f.kind) << " at=" << f.at.ns()
            << " dur=" << f.duration.ns() << " param=" << f.param
            << '\n';
    }
    return out.str();
}

bool
ScenarioFromString(const std::string& text, Scenario* out,
                   std::string* error)
{
    Scenario s;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    auto fail = [&](const std::string& what) {
        if (error != nullptr) {
            *error = "line " + std::to_string(lineno) + ": " + what;
        }
        return false;
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "fault") {
            std::string kind_name;
            ls >> kind_name;
            FaultSpec f;
            if (!ParseKind(kind_name, &f.kind)) {
                return fail("unknown fault kind '" + kind_name + "'");
            }
            std::string tok;
            while (ls >> tok) {
                const std::size_t eq = tok.find('=');
                if (eq == std::string::npos) {
                    return fail("malformed fault attribute '" + tok + "'");
                }
                const std::string attr = tok.substr(0, eq);
                std::uint64_t value = 0;
                try {
                    value = std::stoull(tok.substr(eq + 1));
                } catch (...) {
                    return fail("bad number in '" + tok + "'");
                }
                if (attr == "at") {
                    f.at = static_cast<sim::TimeNs>(value);
                } else if (attr == "dur") {
                    f.duration = static_cast<sim::DurationNs>(value);
                } else if (attr == "param") {
                    f.param = value;
                } else {
                    return fail("unknown fault attribute '" + attr + "'");
                }
            }
            s.faults.push_back(f);
            continue;
        }
        const Field* field = nullptr;
        for (const Field& candidate : kFields) {
            if (key == candidate.key) {
                field = &candidate;
                break;
            }
        }
        if (field == nullptr) return fail("unknown key '" + key + "'");
        std::uint64_t value = 0;
        if (!(ls >> value)) return fail("missing value for '" + key + "'");
        s.*(field->member) = value;
    }
    *out = std::move(s);
    return true;
}

bool
SaveScenario(const Scenario& s, const std::string& path)
{
    std::ofstream out(path);
    if (!out) return false;
    out << ScenarioToString(s);
    return static_cast<bool>(out);
}

bool
LoadScenario(const std::string& path, Scenario* out, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr) *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return ScenarioFromString(buf.str(), out, error);
}

}  // namespace wave::fuzz
