// wave-domain: harness
#include "fuzz/runner.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "check/coherence.h"
#include "check/hb.h"
#include "check/protocol.h"
#include "ghost/agent.h"
#include "ghost/costs.h"
#include "ghost/kernel.h"
#include "ghost/supervisor.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "pcie/config.h"
#include "sched/cfs_lite.h"
#include "sched/fifo.h"
#include "sched/shinjuku.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "workload/kv_service.h"
#include "workload/loadgen.h"

namespace wave::fuzz {

namespace {

using sim::inject::FaultKind;
using sim::inject::FaultSpec;

std::shared_ptr<ghost::SchedPolicy>
MakePolicy(const Scenario& s)
{
    const auto slice = static_cast<sim::DurationNs>(s.slice_us * 1000);
    switch (s.policy) {
      case 0: return std::make_shared<sched::FifoPolicy>();
      case 1: return std::make_shared<sched::ShinjukuPolicy>(slice);
      default:
        return std::make_shared<sched::MultiQueueShinjukuPolicy>(slice);
    }
}

pcie::PcieConfig
MakePcie(const Scenario& s)
{
    pcie::PcieConfig cfg = s.upi_fabric != 0u ? pcie::PcieConfig::Upi()
                                              : pcie::PcieConfig{};
    if (s.mmio_read_ns != 0u) {
        cfg.mmio_read_ns = static_cast<sim::DurationNs>(s.mmio_read_ns);
    }
    if (s.posted_visibility_ns != 0u) {
        cfg.posted_visibility_ns =
            static_cast<sim::DurationNs>(s.posted_visibility_ns);
    }
    if (s.msix_end_to_end_ns != 0u) {
        cfg.msix_end_to_end_ns =
            static_cast<sim::DurationNs>(s.msix_end_to_end_ns);
    }
    if (s.dma_setup_ns != 0u) {
        cfg.dma_setup_ns = static_cast<sim::DurationNs>(s.dma_setup_ns);
    }
    return cfg;
}

/** Appends up to @p cap diagnostics from @p items under @p oracle. */
template <typename Vec, typename DescribeFn>
void
Collect(RunResult& result, const char* oracle, const Vec& items,
        DescribeFn describe, std::size_t cap = 8)
{
    for (std::size_t i = 0; i < items.size() && i < cap; ++i) {
        result.failures.push_back({oracle, describe(items[i])});
    }
    if (items.size() > cap) {
        result.failures.push_back(
            {oracle, "(+" + std::to_string(items.size() - cap) +
                         " more suppressed)"});
    }
}

}  // namespace

std::string
RunResult::Describe() const
{
    std::ostringstream out;
    for (const OracleFailure& f : failures) {
        out << '[' << f.oracle << "] " << f.detail << '\n';
    }
    return out.str();
}

RunResult
RunScenario(const Scenario& s)
{
    sim::Simulator sim;

    machine::MachineConfig mc;
    // +1 host core: home for the watchdog-fallback agent (§3.3).
    mc.host_cores = static_cast<int>(s.worker_cores) + 1;
    mc.nic_speed = static_cast<double>(s.nic_speed_permille) / 1000.0;
    machine::Machine machine(sim, mc);

    api::OptimizationConfig opt;
    opt.nic_wb_ptes = (s.opt_bits & 1u) != 0u;
    opt.host_wc_wt_ptes = (s.opt_bits & 2u) != 0u;
    opt.prestage_prefetch = (s.opt_bits & 4u) != 0u;

    WaveRuntime runtime(sim, machine, MakePcie(s), opt);

    // The injector must be attached before the transport exists so the
    // MSI-X vectors and txn endpoints created inside bind to it.
    sim::inject::FaultInjector injector(sim);
    runtime.AttachInjector(&injector);

    const int worker_cores = static_cast<int>(s.worker_cores);
    std::vector<int> cores;
    for (int i = 0; i < worker_cores; ++i) cores.push_back(i);

    ghost::WaveSchedTransport transport(runtime, worker_cores);

    ghost::KernelOptions kernel_options;
    kernel_options.prefetch_decisions = opt.prestage_prefetch;
    kernel_options.poll_idle = s.poll_mode != 0u;
    ghost::KernelSched kernel(sim, machine, transport, ghost::GhostCosts{},
                              kernel_options);
    kernel.SetFaultInjector(&injector);

    auto policy = MakePolicy(s);
    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = cores;
    agent_cfg.prestage = s.prestage != 0u;
    agent_cfg.prestage_min_depth = s.prestage_min_depth;
    agent_cfg.use_kicks = s.poll_mode == 0u;
    auto agent =
        std::make_shared<ghost::GhostAgent>(transport, policy, agent_cfg);
    const AgentId agent_id =
        runtime.StartWaveAgent(agent, /*nic_core=*/0);

    ghost::SupervisorConfig sup_cfg;
    sup_cfg.timeout = static_cast<sim::DurationNs>(s.watchdog_timeout_ns);
    sup_cfg.check_interval =
        static_cast<sim::DurationNs>(s.watchdog_check_ns);
    sup_cfg.feed_interval =
        static_cast<sim::DurationNs>(s.watchdog_check_ns);
    ghost::AgentSupervisor supervisor(sim, runtime, kernel, sup_cfg);
    supervisor.Supervise(
        agent_id, agent,
        [&transport, &agent_cfg] {
            // Host fallback: kernel-side CFS-class scheduling over the
            // same state, as in §3.3 ("falls back to on-host system
            // software"). Prestaging is an offload optimization; the
            // fallback runs plain.
            ghost::AgentConfig fb_cfg = agent_cfg;
            fb_cfg.prestage = false;
            return std::make_shared<ghost::GhostAgent>(
                transport, std::make_shared<sched::CfsLitePolicy>(),
                fb_cfg);
        },
        machine.HostCpu(worker_cores));

    auto on_assign = [&policy, &s](ghost::Tid tid, std::uint32_t slo) {
        if (s.policy >= 2) {
            static_cast<sched::MultiQueueShinjukuPolicy*>(policy.get())
                ->SetThreadSlo(tid, slo);
        }
    };
    workload::KvService service(sim, kernel,
                                static_cast<int>(s.num_workers),
                                /*first_tid=*/1000, on_assign);
    const auto arrivals_end =
        static_cast<sim::TimeNs>(s.warmup_ns + s.measure_ns);
    service.SetMeasureWindow(static_cast<sim::TimeNs>(s.warmup_ns),
                             arrivals_end);

    kernel.Start(cores);

    workload::LoadGenConfig lg;
    lg.rate_rps = static_cast<double>(s.offered_rps);
    lg.get_fraction = static_cast<double>(s.get_permille) / 1000.0;
    lg.get_service_ns = static_cast<sim::DurationNs>(s.get_service_ns);
    lg.range_service_ns = static_cast<sim::DurationNs>(s.range_service_ns);
    lg.end_time = arrivals_end;
    // The arrival process draws from its own named stream so the same
    // workload replays regardless of what the fault stream consumed.
    lg.seed = sim::StreamSeed(s.seed, "workload");
    sim.Spawn(workload::RunLoadGenerator(sim, service, lg));

    const std::vector<FaultSpec>& schedule = s.faults;
    const double nic_base_speed = machine.NicDomain().Speed();
    injector.SetActionHandler([&](const FaultSpec& f, bool begin) {
        switch (f.kind) {
          case FaultKind::kAgentCrash:
            if (begin) runtime.KillWaveAgent(agent_id);
            break;
          case FaultKind::kAgentStall:
            if (begin) runtime.StallWaveAgent(agent_id, f.duration);
            break;
          case FaultKind::kNicSlowdown: {
            const double scale =
                static_cast<double>(std::max<std::uint64_t>(f.param, 1)) /
                1000.0;
            machine.NicDomain().SetSpeed(begin ? nic_base_speed * scale
                                               : nic_base_speed);
            break;
          }
          default:
            break;
        }
    });
    injector.Arm(schedule);

    sim.RunUntil(static_cast<sim::TimeNs>(s.warmup_ns + s.measure_ns +
                                          s.drain_ns));

    RunResult result;
    result.event_hash = sim.EventHash();
    result.completed = service.Completed();
    result.pending_at_end = service.PendingDepth();
    result.commits_failed = kernel.Stats().commits_failed;
    result.agent_decisions = agent->Stats().decisions;
    result.inject = injector.Stats();
    result.watchdog_expiries = supervisor.Stats().expiries;
    result.fallback_active = supervisor.Stats().fallback_active;
    result.fallback_at = supervisor.Stats().fallback_at.ns();

    if (runtime.Checker() != nullptr) {
        Collect(result, "coherence", runtime.Checker()->Violations(),
                [](const auto& v) { return v.Describe(); });
    }
    if (runtime.Protocol() != nullptr) {
        Collect(result, "protocol", runtime.Protocol()->Violations(),
                [](const auto& v) { return v.Describe(); });
    }
    if (runtime.Hb() != nullptr) {
        Collect(result, "hb-race", runtime.Hb()->Races(),
                [](const auto& r) { return r.Describe(); });
    }
    if (s.require_progress != 0u) {
        if (result.completed == 0) {
            result.failures.push_back(
                {"liveness", "no request ever completed"});
        }
        if (result.pending_at_end != 0) {
            result.failures.push_back(
                {"liveness",
                 std::to_string(result.pending_at_end) +
                     " requests still pending after the drain window" +
                     (result.fallback_active ? " (fallback was active)"
                                             : "")});
        }
    }
    return result;
}

RunResult
RunScenarioTwice(const Scenario& s)
{
    RunResult first = RunScenario(s);
    const RunResult second = RunScenario(s);
    if (first.event_hash != second.event_hash) {
        std::ostringstream detail;
        detail << "event fingerprint diverged across identical runs: "
               << std::hex << first.event_hash << " vs "
               << second.event_hash;
        first.failures.push_back({"determinism", detail.str()});
    }
    return first;
}

}  // namespace wave::fuzz
