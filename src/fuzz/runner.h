/**
 * @file
 * Executes one fuzz Scenario under the checker oracles.
 *
 * The runner builds the same deployment shape as the §7.2 experiment
 * harness — machine, Wave transport, ghOSt kernel, agent on a NIC core,
 * KV service, open-loop load generator — but adds:
 *
 *   - a sim::inject::FaultInjector armed with the scenario's schedule,
 *     wired into the PCIe fabric, kernel, and txn endpoints;
 *   - an AgentSupervisor (watchdog + host fallback) so agent crash and
 *     wedge faults exercise the §3.3 recovery path;
 *   - a drain phase after arrivals stop, long enough for the fallback
 *     to absorb any backlog.
 *
 * Oracles, evaluated after the run:
 *   1. coherence  — CoherenceChecker::Violations() must be empty,
 *   2. protocol   — ProtocolChecker::Violations() must be empty,
 *   3. hb-race    — HbRaceDetector::Races() must be empty,
 *   4. liveness   — with require_progress, every accepted request must
 *                   have completed and progress must resume after the
 *                   last fault (watchdog-fallback bounded recovery).
 * A fifth, determinism, is a two-run property: CheckDeterminism() runs
 * the scenario twice and compares event-stream fingerprints.
 */
// wave-domain: harness
#pragma once

#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "sim/inject.h"

namespace wave::fuzz {

/** One oracle complaint (oracle name + one-line diagnostic). */
struct OracleFailure {
    std::string oracle;
    std::string detail;
};

/** Everything a fuzz loop or test wants to know about one run. */
struct RunResult {
    std::uint64_t event_hash = 0;      ///< simulator event fingerprint
    std::uint64_t completed = 0;       ///< requests completed (total)
    std::uint64_t pending_at_end = 0;  ///< requests still queued at stop
    std::uint64_t commits_failed = 0;
    std::uint64_t agent_decisions = 0;
    sim::inject::InjectStats inject;   ///< per-kind fault hit counts
    std::uint64_t watchdog_expiries = 0;
    bool fallback_active = false;      ///< host fallback agent took over
    std::uint64_t fallback_at = 0;     ///< virtual time of the takeover
    std::vector<OracleFailure> failures;

    bool Ok() const { return failures.empty(); }

    /** All failures, one per line (test/CLI reporting). */
    std::string Describe() const;
};

/** Runs @p s to completion and evaluates the post-run oracles. */
RunResult RunScenario(const Scenario& s);

/**
 * Runs @p s twice and compares event fingerprints; on mismatch appends
 * a "determinism" failure to the (first run's) result. Returns that
 * first-run result either way.
 */
RunResult RunScenarioTwice(const Scenario& s);

}  // namespace wave::fuzz
