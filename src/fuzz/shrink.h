/**
 * @file
 * Automatic repro shrinking: reduce a failing Scenario to a minimal
 * replayable artifact.
 *
 * Three passes, each preserving "still fails at least one oracle":
 *
 *   1. ddmin over the fault schedule — drop subsets of faults at
 *      doubling granularity until no single fault can be removed;
 *   2. per-fault simplification — halve durations and parameters while
 *      the failure persists;
 *   3. deployment shrinking — halve worker pool, worker cores, measure
 *      window, and offered load.
 *
 * Every candidate evaluation is one full simulation, so the total is
 * bounded by ShrinkOptions::max_runs; the best (smallest) failing
 * scenario found within budget is returned.
 */
// wave-domain: harness
#pragma once

#include "fuzz/runner.h"
#include "fuzz/scenario.h"

namespace wave::fuzz {

struct ShrinkOptions {
    int max_runs = 200;  ///< simulation budget across all passes
};

struct ShrinkOutcome {
    Scenario scenario;   ///< smallest failing scenario found
    RunResult result;    ///< its run (failures preserved)
    int runs = 0;        ///< simulations spent
    bool failing = false;///< false if the input did not fail at all
};

/** Shrinks @p start (which should fail its oracles) within budget. */
ShrinkOutcome Shrink(const Scenario& start, ShrinkOptions opts = {});

}  // namespace wave::fuzz
