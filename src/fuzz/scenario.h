/**
 * @file
 * Fuzz scenarios: one fully-specified simulated deployment + workload +
 * fault schedule, generated from a seed and replayable from a small
 * text artifact.
 *
 * Every knob is an integer (fractions are permille) so the text
 * round-trip is exact: LoadScenario(SaveScenario(s)) reproduces the
 * same simulation bit for bit. The generator splits the base seed into
 * named RNG streams (sim::StreamSeed) — "scenario" for topology and
 * workload shape, "fault" for the fault schedule, "workload" for the
 * load generator's arrival process — so adding or removing faults never
 * perturbs the workload draws of the same seed.
 */
// wave-domain: harness
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/inject.h"
#include "sim/time.h"

namespace wave::fuzz {

/** One complete fuzz case. All fields integral; see file comment. */
struct Scenario {
    /** Base seed; the loadgen stream is derived from it by name. */
    std::uint64_t seed = 1;

    // --- Topology ---
    std::uint64_t worker_cores = 4;        ///< host cores running workers
    std::uint64_t num_workers = 16;        ///< worker thread pool size
    std::uint64_t nic_speed_permille = 610; ///< NIC clock vs. host clock
    std::uint64_t policy = 0;          ///< 0 fifo, 1 shinjuku, 2 mq-shinjuku
    std::uint64_t opt_bits = 7;        ///< bit0 nic_wb, bit1 wc/wt, bit2 prestage
    std::uint64_t prestage = 1;        ///< policy-level prestaging
    std::uint64_t prestage_min_depth = 8;
    std::uint64_t poll_mode = 0;       ///< host polls idle; agent skips kicks
    std::uint64_t slice_us = 30;       ///< Shinjuku preemption slice
    std::uint64_t upi_fabric = 0;      ///< 1 = PcieConfig::Upi() baseline

    // --- PCIe perturbations (0 = keep the fabric baseline's value) ---
    std::uint64_t mmio_read_ns = 0;
    std::uint64_t posted_visibility_ns = 0;
    std::uint64_t msix_end_to_end_ns = 0;
    std::uint64_t dma_setup_ns = 0;

    // --- Workload ---
    std::uint64_t offered_rps = 100'000;
    std::uint64_t get_permille = 1000;     ///< GET fraction of the KV mix
    std::uint64_t get_service_ns = 10'000;
    std::uint64_t range_service_ns = 200'000;
    std::uint64_t warmup_ns = 2'000'000;
    std::uint64_t measure_ns = 10'000'000;
    std::uint64_t drain_ns = 40'000'000;   ///< post-arrival settle window

    // --- Supervision / oracles ---
    std::uint64_t watchdog_timeout_ns = 5'000'000;
    std::uint64_t watchdog_check_ns = 500'000;
    std::uint64_t require_progress = 1;    ///< liveness oracle armed

    /** The fault schedule (empty = benign run). */
    std::vector<sim::inject::FaultSpec> faults;
};

/** Knobs for the scenario generator. */
struct GenLimits {
    std::size_t max_faults = 4;

    /**
     * Include deliberately-buggy fault kinds (kDoubleCommitBug) in the
     * draw. Off by default: the bug demo is opt-in so routine fuzzing
     * exercises the model, not the planted defect.
     */
    bool enable_bug_faults = false;
};

/**
 * Generates the scenario for @p seed. Deterministic: same (seed,
 * limits) always yields the same scenario. Offered load is drawn below
 * saturation so the liveness oracle (all requests complete during the
 * drain window) is a true statement about a correct model.
 */
Scenario GenerateScenario(std::uint64_t seed, const GenLimits& limits = {});

/** Renders the replay artifact (`key value` lines + `fault` lines). */
std::string ScenarioToString(const Scenario& s);

/**
 * Parses a replay artifact. Returns false (and fills @p error) on
 * malformed input; unknown keys are errors so artifact/version drift is
 * loud rather than silently ignored.
 */
bool ScenarioFromString(const std::string& text, Scenario* out,
                        std::string* error);

/** Writes the artifact to @p path. Returns false on I/O failure. */
bool SaveScenario(const Scenario& s, const std::string& path);

/** Reads an artifact from @p path. */
bool LoadScenario(const std::string& path, Scenario* out,
                  std::string* error);

}  // namespace wave::fuzz
