// wave-domain: harness
#include "fuzz/shrink.h"

#include <algorithm>
#include <vector>

namespace wave::fuzz {

namespace {

using sim::inject::FaultSpec;

/** Budgeted predicate: "does this scenario still fail?". */
class Prober {
  public:
    explicit Prober(int budget) : budget_(budget) {}

    bool
    Fails(const Scenario& s, RunResult* out)
    {
        if (runs_ >= budget_) return false;  // out of budget: give up
        ++runs_;
        RunResult r = RunScenario(s);
        const bool failing = !r.Ok();
        if (failing && out != nullptr) *out = std::move(r);
        return failing;
    }

    int Runs() const { return runs_; }
    bool Exhausted() const { return runs_ >= budget_; }

  private:
    int budget_;
    int runs_ = 0;
};

/**
 * Classic ddmin over the fault list: try dropping chunks (then
 * complements) at doubling granularity until 1-minimal — no single
 * remaining fault can be removed without losing the failure.
 */
void
DdminFaults(Scenario& best, RunResult& best_result, Prober& prober)
{
    std::size_t n = 2;
    while (best.faults.size() >= 2 && !prober.Exhausted()) {
        const std::size_t size = best.faults.size();
        n = std::min(n, size);
        const std::size_t chunk = (size + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0; start < size && !reduced;
             start += chunk) {
            // Candidate = everything except [start, start+chunk).
            Scenario candidate = best;
            candidate.faults.clear();
            for (std::size_t i = 0; i < size; ++i) {
                if (i >= start && i < start + chunk) continue;
                candidate.faults.push_back(best.faults[i]);
            }
            if (candidate.faults.size() == size) continue;
            RunResult r;
            if (prober.Fails(candidate, &r)) {
                best = std::move(candidate);
                best_result = std::move(r);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
            }
        }
        if (!reduced) {
            if (n >= size) break;  // 1-minimal
            n = std::min(size, n * 2);
        }
    }
    // A single remaining fault: check the empty schedule too (the
    // failure may be fault-independent, e.g. a model bug).
    if (best.faults.size() == 1 && !prober.Exhausted()) {
        Scenario candidate = best;
        candidate.faults.clear();
        RunResult r;
        if (prober.Fails(candidate, &r)) {
            best = std::move(candidate);
            best_result = std::move(r);
        }
    }
}

/** Halve durations/params per fault while the failure persists. */
void
SimplifyFaults(Scenario& best, RunResult& best_result, Prober& prober)
{
    for (std::size_t i = 0; i < best.faults.size(); ++i) {
        for (int round = 0; round < 4 && !prober.Exhausted(); ++round) {
            Scenario candidate = best;
            FaultSpec& f = candidate.faults[i];
            bool changed = false;
            if (f.duration > 1000) {
                f.duration /= 2;
                changed = true;
            }
            if (f.param > 1) {
                f.param /= 2;
                changed = true;
            }
            if (!changed) break;
            RunResult r;
            if (!prober.Fails(candidate, &r)) break;
            best = std::move(candidate);
            best_result = std::move(r);
        }
    }
}

/** Try one whole-deployment mutation; keep it if still failing. */
template <typename Mutate>
void
TryShrink(Scenario& best, RunResult& best_result, Prober& prober,
          Mutate mutate)
{
    if (prober.Exhausted()) return;
    Scenario candidate = best;
    if (!mutate(candidate)) return;  // mutation not applicable
    RunResult r;
    if (prober.Fails(candidate, &r)) {
        best = std::move(candidate);
        best_result = std::move(r);
    }
}

}  // namespace

ShrinkOutcome
Shrink(const Scenario& start, ShrinkOptions opts)
{
    ShrinkOutcome out;
    out.scenario = start;

    Prober prober(opts.max_runs);
    if (!prober.Fails(start, &out.result)) {
        out.runs = prober.Runs();
        out.failing = false;
        return out;
    }
    out.failing = true;

    DdminFaults(out.scenario, out.result, prober);
    SimplifyFaults(out.scenario, out.result, prober);

    // Deployment shrinking: repeat the halving ladder until no rung
    // holds, so e.g. num_workers can drop more than once.
    bool progressed = true;
    while (progressed && !prober.Exhausted()) {
        const std::string before = ScenarioToString(out.scenario);
        TryShrink(out.scenario, out.result, prober, [](Scenario& s) {
            if (s.num_workers <= 2) return false;
            s.num_workers = std::max<std::uint64_t>(2, s.num_workers / 2);
            return true;
        });
        TryShrink(out.scenario, out.result, prober, [](Scenario& s) {
            if (s.worker_cores <= 2) return false;
            s.worker_cores = std::max<std::uint64_t>(2, s.worker_cores / 2);
            s.num_workers = std::max(s.num_workers, s.worker_cores);
            return true;
        });
        TryShrink(out.scenario, out.result, prober, [](Scenario& s) {
            if (s.measure_ns <= 2'000'000) return false;
            s.measure_ns /= 2;
            return true;
        });
        TryShrink(out.scenario, out.result, prober, [](Scenario& s) {
            if (s.offered_rps <= 10'000) return false;
            s.offered_rps /= 2;
            return true;
        });
        progressed = ScenarioToString(out.scenario) != before;
    }

    out.runs = prober.Runs();
    return out;
}

}  // namespace wave::fuzz
