/**
 * @file
 * Small-buffer type-erased callable for the event loop hot path.
 *
 * Every scheduled event carries a closure. std::function heap-allocates
 * once its capture exceeds the implementation's tiny inline buffer, which
 * puts one malloc/free pair on the critical path of *every* simulated
 * event. InlineFn is the narrow replacement the simulator needs: move-only
 * `void()` with 48 bytes of inline storage — enough for every closure the
 * model schedules (the largest today is a this-pointer plus a copied
 * byte-span descriptor at 40 bytes) — so steady-state event dispatch
 * performs zero heap allocations. Oversized captures still work via a
 * heap fallback so the type never silently truncates; they just lose the
 * no-alloc guarantee, which wave_analyze's W101 and the AllocGuard tests
 * exist to catch.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wave::sim {

/** Move-only `void()` callable with 48 bytes of inline storage. */
class InlineFn {
  public:
    /** Inline capture budget; sized for the largest model closure. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    InlineFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F&& fn)  // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= kInlineAlign &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            // Oversized or throwing-move captures fall back to the heap;
            // rare and setup-time only (W101 flags hot-path offenders).
            // wave-analyze: allow(W101 heap fallback for oversized captures; hot closures fit inline)
            *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
            ops_ = &kHeapOps<Fn>;
        }
    }

    InlineFn(InlineFn&& other) noexcept { MoveFrom(other); }

    InlineFn&
    operator=(InlineFn&& other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { Reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void operator()() { ops_->invoke(storage_); }

  private:
    struct Ops {
        void (*invoke)(unsigned char* storage);
        /** Move-construct dst's payload from src's, destroying src's. */
        void (*relocate)(unsigned char* dst, unsigned char* src) noexcept;
        void (*destroy)(unsigned char* storage) noexcept;
    };

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](unsigned char* s) { (*reinterpret_cast<Fn*>(s))(); },
        [](unsigned char* dst, unsigned char* src) noexcept {
            ::new (static_cast<void*>(dst))
                Fn(std::move(*reinterpret_cast<Fn*>(src)));
            reinterpret_cast<Fn*>(src)->~Fn();
        },
        [](unsigned char* s) noexcept { reinterpret_cast<Fn*>(s)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](unsigned char* s) { (**reinterpret_cast<Fn**>(s))(); },
        [](unsigned char* dst, unsigned char* src) noexcept {
            *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](unsigned char* s) noexcept { delete *reinterpret_cast<Fn**>(s); },
    };

    void
    MoveFrom(InlineFn& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    void
    Reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace wave::sim
