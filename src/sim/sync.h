/**
 * @file
 * Synchronization primitives for simulation processes.
 *
 * These are simulation-domain primitives (not thread-safe; the simulator
 * is single-threaded). They follow the SimPy model: processes suspend on
 * awaitables and are resumed by events scheduled at the current simulated
 * time, so wakeups are ordered deterministically with everything else.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <algorithm>
#include <coroutine>
#include <optional>
#include <utility>
#include <vector>

#include "sim/fifo_ring.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace wave::sim {

/**
 * A condition-variable-like signal.
 *
 * Wait() suspends the caller until a subsequent NotifyOne()/NotifyAll().
 * Notifications are not sticky: a notify with no waiters is a no-op.
 * Waiters are resumed in FIFO order via scheduled events at Now().
 */
class Signal {
  public:
    explicit Signal(Simulator& sim) : sim_(sim) {}

    Signal(const Signal&) = delete;
    Signal& operator=(const Signal&) = delete;

    /** Awaitable: suspends until notified. */
    auto
    Wait()
    {
        struct Awaiter {
            Signal& signal;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                signal.waiters_.PushBack(h);
            }

            void await_resume() const {}
        };
        return Awaiter{*this};
    }

    /** Resumes the oldest waiter, if any. */
    void
    NotifyOne()
    {
        if (waiters_.Empty()) return;
        auto h = waiters_.PopFront();
        sim_.Schedule(0, [h] { h.resume(); });
    }

    /** Resumes every currently-registered waiter. */
    void
    NotifyAll()
    {
        while (!waiters_.Empty()) {
            NotifyOne();
        }
    }

    /** Number of processes currently blocked in Wait(). */
    std::size_t WaiterCount() const { return waiters_.Size(); }

  private:
    Simulator& sim_;
    FifoRing<std::coroutine_handle<>> waiters_;
};

/**
 * An unbounded FIFO channel between simulation processes.
 *
 * Push() never blocks; Receive() suspends until an item is available.
 * Multiple concurrent receivers are supported; items are handed out in
 * FIFO order across wakeups.
 */
template <typename T>
class Channel {
  public:
    explicit Channel(Simulator& sim) : sim_(sim), signal_(sim) {}

    /** Enqueues an item and wakes one waiting receiver. */
    void
    Push(T item)
    {
        items_.PushBack(std::move(item));
        signal_.NotifyOne();
    }

    /**
     * Bulk enqueue: moves every element of @p items into the channel
     * (clearing it) and wakes one waiting receiver per item, paying
     * the ring-growth and wakeup bookkeeping once for the whole batch.
     * This is the API W106 points hot loops at.
     */
    void
    PushBatch(std::vector<T>& items)
    {
        items_.Reserve(items_.Size() + items.size());
        const std::size_t wake =
            std::min(signal_.WaiterCount(), items.size());
        for (T& item : items) {
            items_.PushBack(std::move(item));
        }
        items.clear();
        for (std::size_t i = 0; i < wake; ++i) {
            signal_.NotifyOne();
        }
    }

    /** Pre-sizes the item ring so pushes up to @p n never allocate. */
    void Reserve(std::size_t n) { items_.Reserve(n); }

    /** Suspends until an item is available, then dequeues it. */
    Task<T>
    Receive()
    {
        while (items_.Empty()) {
            co_await signal_.Wait();
        }
        co_return items_.PopFront();
    }

    /** Non-blocking receive; empty optional if no item is queued. */
    std::optional<T>
    TryReceive()
    {
        if (items_.Empty()) return std::nullopt;
        return items_.PopFront();
    }

    /**
     * Bulk non-blocking receive: appends up to @p max queued items to
     * @p out and returns how many were moved. The one reserve() covers
     * the whole drain, so a polling loop dequeues allocation-free.
     */
    std::size_t
    TryReceiveBatch(std::vector<T>& out, std::size_t max)
    {
        const std::size_t n = std::min(max, items_.Size());
        out.reserve(out.size() + n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(items_.PopFront());
        }
        return n;
    }

    std::size_t Size() const { return items_.Size(); }
    bool Empty() const { return items_.Empty(); }

  private:
    Simulator& sim_;
    Signal signal_;
    FifoRing<T> items_;
};

/**
 * A counted resource (capacity-N semaphore).
 *
 * Models contended hardware such as a DMA engine with a fixed number of
 * in-flight transactions or a serialized link.
 */
class Resource {
  public:
    Resource(Simulator& sim, std::size_t capacity)
        : signal_(sim), capacity_(capacity)
    {
    }

    /** Suspends until a unit is available, then holds it. */
    Task<>
    Acquire()
    {
        while (in_use_ >= capacity_) {
            co_await signal_.Wait();
        }
        ++in_use_;
    }

    /** Returns a held unit and wakes one waiter. */
    void
    Release()
    {
        WAVE_ASSERT(in_use_ > 0, "Release without Acquire");
        --in_use_;
        signal_.NotifyOne();
    }

    std::size_t InUse() const { return in_use_; }
    std::size_t Capacity() const { return capacity_; }

  private:
    Signal signal_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
};

/**
 * Runs @p tasks concurrently and completes when all of them finish.
 *
 * The tasks are spawned as detached processes; the returned task suspends
 * until the last one completes.
 */
Task<> AwaitAll(Simulator& sim, std::vector<Task<>>&& tasks);

}  // namespace wave::sim
