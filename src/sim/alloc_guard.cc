// wave-domain: harness
// wave-shared(process-wide allocation counters behind global operator new/delete; harness observability only, never read by model code)
#include "sim/alloc_guard.h"

#include <cstdlib>
#include <new>

namespace wave::sim {

namespace {

// Plain counters, not atomics: the binaries that link this library are
// single-threaded by the same design rule (W103) that the guarded hot
// loops obey.
std::uint64_t g_allocations = 0;
std::uint64_t g_frees = 0;
std::uint64_t g_bytes = 0;

void*
CountedAlloc(std::size_t n)
{
    ++g_allocations;
    g_bytes += n;
    if (void* p = std::malloc(n != 0 ? n : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void
CountedFree(void* p) noexcept
{
    if (p != nullptr) {
        ++g_frees;
    }
    std::free(p);
}

}  // namespace

AllocCounters
AllocSnapshot()
{
    return AllocCounters{g_allocations, g_frees, g_bytes};
}

}  // namespace wave::sim

// Replacing the global allocation functions is sanctioned by the
// standard; these definitions win over the library defaults for every
// translation unit in the binary. Alignment beyond
// __STDCPP_DEFAULT_NEW_ALIGNMENT__ is not requested by any type in
// this tree, so the plain forms suffice; the aligned forms delegate to
// aligned_alloc to stay correct if that ever changes.

void*
operator new(std::size_t n)
{
    return wave::sim::CountedAlloc(n);
}

void*
operator new[](std::size_t n)
{
    return wave::sim::CountedAlloc(n);
}

void*
operator new(std::size_t n, std::align_val_t align)
{
    ++wave::sim::g_allocations;
    wave::sim::g_bytes += n;
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (n + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n, std::align_val_t align)
{
    return operator new(n, align);
}

void
operator delete(void* p) noexcept
{
    wave::sim::CountedFree(p);
}

void
operator delete[](void* p) noexcept
{
    wave::sim::CountedFree(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    wave::sim::CountedFree(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    wave::sim::CountedFree(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    wave::sim::CountedFree(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    wave::sim::CountedFree(p);
}
