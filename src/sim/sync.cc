// wave-domain: neutral
// wave-hot
#include "sim/sync.h"

#include <memory>
#include <vector>

namespace wave::sim {

namespace {

struct JoinState {
    explicit JoinState(Simulator& sim) : signal(sim) {}

    Signal signal;
    std::size_t remaining = 0;
};

Task<>
RunAndCount(std::shared_ptr<JoinState> state, Task<> task)
{
    co_await std::move(task);
    if (--state->remaining == 0) {
        state->signal.NotifyAll();
    }
}

}  // namespace

// wave-lifetime(caller-awaits)
Task<>
AwaitAll(Simulator& sim, std::vector<Task<>>&& tasks)
{
    // wave-analyze: allow(W101 one allocation per join group at fan-out setup, not per event; the group's tasks amortize it)
    auto state = std::make_shared<JoinState>(sim);
    state->remaining = tasks.size();
    for (auto& task : tasks) {
        sim.Spawn(RunAndCount(state, std::move(task)));
    }
    while (state->remaining > 0) {
        co_await state->signal.Wait();
    }
}

}  // namespace wave::sim
