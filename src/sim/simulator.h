/**
 * @file
 * The discrete-event simulation kernel.
 *
 * The Simulator owns a time-ordered event queue and the set of root
 * coroutine processes spawned into it. Components schedule callbacks at
 * future simulated times; processes suspend on awaitables (Delay, sync
 * primitives, hardware-model operations) whose resumptions are themselves
 * events. Events at equal timestamps run in FIFO schedule order, so runs
 * are fully deterministic for a fixed seed.
 *
 * Determinism auditing (wave::check): the simulator folds every executed
 * event into a rolling FNV-1a fingerprint — EventHash() — that two runs
 * of the same configuration must reproduce bit-for-bit. Events whose
 * same-timestamp order must not depend on insertion order can carry an
 * explicit tie-break key (ScheduleKeyed/ScheduleAtKeyed): keyed events
 * at one timestamp execute in key order regardless of how they were
 * inserted, and the fingerprint folds the key instead of the insertion
 * sequence number. EnableTieAudit() additionally counts unkeyed events
 * inserted at a timestamp that already has pending events — the
 * situations where execution order silently depends on schedule order.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <vector>

#include "check/fnv.h"
#include "sim/inline_fn.h"
#include "sim/task.h"
#include "sim/time.h"
#include "sim/timing_wheel.h"

namespace wave::sim {

/** Discrete-event simulator: event queue + process registry + clock. */
class Simulator {
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    TimeNs Now() const { return now_; }

    /**
     * Schedules @p fn to run @p delay nanoseconds from now.
     *
     * The closure is stored in an InlineFn: captures up to 48 bytes
     * ride inline with the event and the hot path never touches the
     * heap (std::function arguments still convert, via one move).
     */
    void Schedule(DurationNs delay, InlineFn fn);

    /** Schedules @p fn at absolute time @p when (must be >= Now()). */
    void ScheduleAt(TimeNs when, InlineFn fn);

    /**
     * Schedules @p fn with an explicit same-timestamp tie-break key.
     *
     * Keyed events at one timestamp execute in ascending key order (key
     * ties fall back to insertion order) no matter how the insertions
     * were interleaved, and the event-stream fingerprint folds the key
     * instead of the insertion sequence number — so a component whose
     * insertion order is not itself deterministic (e.g. iteration over
     * an unordered registry) stays run-to-run reproducible.
     */
    void ScheduleKeyed(DurationNs delay, std::uint64_t key,
                       InlineFn fn);

    /** Absolute-time variant of ScheduleKeyed(). */
    void ScheduleAtKeyed(TimeNs when, std::uint64_t key,
                         InlineFn fn);

    /**
     * Starts a detached coroutine process.
     *
     * The simulator takes ownership of the coroutine frame: the first
     * resume is scheduled as an event at the current time, and any frame
     * still suspended at simulator destruction is destroyed (tearing down
     * nested tasks), so infinite server loops do not leak.
     */
    void Spawn(Task<> task);

    /** Runs until the event queue is empty or Stop() is called. */
    void Run();

    /**
     * Runs all events up to and including time Now()+duration.
     *
     * If the window completes, the clock then advances to exactly
     * Now()+duration (even when no event landed on the boundary) and
     * that time is returned. If Stop() is called by an event inside the
     * window, the run returns immediately with the clock still at the
     * stopping event's timestamp — the clock never advances past an
     * event the caller asked to stop on — so the return value is the
     * stop time, not the window end. A later RunFor()/RunUntil()/Run()
     * clears the stop flag and resumes from that point.
     */
    TimeNs RunFor(DurationNs duration);

    /**
     * Runs all events up to and including @p when; the clock ends at
     * exactly @p when. Stop() semantics match RunFor(): stopping
     * mid-window leaves the clock at the stopping event's time.
     */
    void RunUntil(TimeNs when);

    /** Executes the single earliest event. Returns false if none. */
    bool Step();

    /**
     * Makes Run()/RunFor()/RunUntil() return after the current event,
     * leaving the clock at that event's timestamp (a stopped RunFor
     * does not advance to its window end). The flag clears on the next
     * Run()/RunFor()/RunUntil() entry.
     */
    void Stop() { stopped_ = true; }

    /** Number of events executed since construction (for tests/metrics). */
    std::uint64_t EventsExecuted() const { return events_executed_; }

    /**
     * Root coroutine frames currently owned (live or done-but-unreaped).
     * Tests use this to observe the incremental reap in Spawn().
     */
    std::size_t RootCount() const { return roots_.size(); }

    /**
     * Rolling FNV-1a fingerprint of the executed event stream.
     *
     * Folds (timestamp, tie-break identity) of every executed event;
     * two runs of the same configuration must end with equal hashes
     * (determinism_test asserts this). Keyed events fold their explicit
     * key, so the fingerprint is insensitive to insertion-order shuffles
     * of keyed same-timestamp events.
     */
    std::uint64_t EventHash() const { return event_hash_; }

    /**
     * Starts counting unkeyed same-timestamp insertions.
     *
     * While enabled, scheduling an *unkeyed* event at a timestamp that
     * already has pending events increments UnkeyedTieInsertions():
     * those are exactly the events whose mutual execution order depends
     * on schedule-call order rather than an explicit tie-break key.
     * Enable before the first Schedule() call; the audit only tracks
     * events inserted while it is on.
     */
    void EnableTieAudit() { tie_audit_ = true; }

    /** Unkeyed insertions that collided with a pending timestamp. */
    std::uint64_t UnkeyedTieInsertions() const
    {
        return unkeyed_tie_insertions_;
    }

    /** Awaitable: suspends the calling process for @p delay ns. */
    auto
    Delay(DurationNs delay)
    {
        struct Awaiter {
            Simulator& sim;
            DurationNs delay;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim.Schedule(delay, [h] { h.resume(); });
            }

            void await_resume() const {}
        };
        return Awaiter{*this, delay};
    }

    /**
     * Awaitable: reschedules the calling process at the current time,
     * letting all already-queued events at Now() run first.
     */
    auto Yield() { return Delay(0); }

  private:
    void Push(TimeNs when, std::uint64_t key, InlineFn fn);

    /** Destroys finished root frames; destroys all frames if @p all. */
    void SweepRoots(bool all);

    /** Destroys one root frame, surfacing any stored exception. */
    void DestroyRoot(std::coroutine_handle<Task<>::promise_type> root);

    /**
     * Pending events, yielded in ascending (when, key, seq) order.
     * Keyed events order by key at a timestamp; unkeyed events carry
     * the EventNode::kUnkeyed sentinel key and fall through to FIFO
     * insertion order. The wheel assigns the sequence numbers.
     */
    TimingWheel events_;
    std::vector<std::coroutine_handle<Task<>::promise_type>> roots_;
    std::size_t reap_cursor_ = 0;  ///< round-robin incremental reap
    TimeNs now_{};
    std::uint64_t events_executed_ = 0;
    std::uint64_t event_hash_ = check::kFnvOffsetBasis;
    std::uint64_t unkeyed_tie_insertions_ = 0;
    std::map<TimeNs, std::uint32_t> pending_at_;  ///< tie-audit only
    bool tie_audit_ = false;
    bool stopped_ = false;
};

}  // namespace wave::sim
