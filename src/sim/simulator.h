/**
 * @file
 * The discrete-event simulation kernel.
 *
 * The Simulator owns a time-ordered event queue and the set of root
 * coroutine processes spawned into it. Components schedule callbacks at
 * future simulated times; processes suspend on awaitables (Delay, sync
 * primitives, hardware-model operations) whose resumptions are themselves
 * events. Events at equal timestamps run in FIFO schedule order, so runs
 * are fully deterministic for a fixed seed.
 */
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace wave::sim {

/** Discrete-event simulator: event queue + process registry + clock. */
class Simulator {
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    TimeNs Now() const { return now_; }

    /** Schedules @p fn to run @p delay nanoseconds from now. */
    void Schedule(DurationNs delay, std::function<void()> fn);

    /** Schedules @p fn at absolute time @p when (must be >= Now()). */
    void ScheduleAt(TimeNs when, std::function<void()> fn);

    /**
     * Starts a detached coroutine process.
     *
     * The simulator takes ownership of the coroutine frame: the first
     * resume is scheduled as an event at the current time, and any frame
     * still suspended at simulator destruction is destroyed (tearing down
     * nested tasks), so infinite server loops do not leak.
     */
    void Spawn(Task<> task);

    /** Runs until the event queue is empty or Stop() is called. */
    void Run();

    /**
     * Runs all events up to and including time Now()+duration, then
     * advances the clock to exactly that time. Returns the new Now().
     */
    TimeNs RunFor(DurationNs duration);

    /** Runs all events up to and including @p when; clock ends at when. */
    void RunUntil(TimeNs when);

    /** Executes the single earliest event. Returns false if none. */
    bool Step();

    /** Makes Run()/RunFor()/RunUntil() return after the current event. */
    void Stop() { stopped_ = true; }

    /** Number of events executed since construction (for tests/metrics). */
    std::uint64_t EventsExecuted() const { return events_executed_; }

    /** Awaitable: suspends the calling process for @p delay ns. */
    auto
    Delay(DurationNs delay)
    {
        struct Awaiter {
            Simulator& sim;
            DurationNs delay;

            bool await_ready() const { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim.Schedule(delay, [h] { h.resume(); });
            }

            void await_resume() const {}
        };
        return Awaiter{*this, delay};
    }

    /**
     * Awaitable: reschedules the calling process at the current time,
     * letting all already-queued events at Now() run first.
     */
    auto Yield() { return Delay(0); }

  private:
    struct Event {
        TimeNs when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event& other) const
        {
            if (when != other.when) return when > other.when;
            return seq > other.seq;
        }
    };

    /** Destroys finished root frames; destroys all frames if @p all. */
    void SweepRoots(bool all);

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    std::vector<std::coroutine_handle<Task<>::promise_type>> roots_;
    TimeNs now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    bool stopped_ = false;
};

}  // namespace wave::sim
