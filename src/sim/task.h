/**
 * @file
 * Coroutine task type for simulation processes.
 *
 * A Task<T> is a lazily-started coroutine that produces a value of type T
 * (or nothing, for Task<void>). Simulation processes are written as
 * ordinary coroutines over Task:
 *
 *     sim::Task<> WorkerLoop(sim::Simulator& sim, ...) {
 *         for (;;) {
 *             co_await sim.Delay(10_us);     // simulated time passes
 *             co_await SubStep(sim, ...);    // tasks compose
 *         }
 *     }
 *
 * Ownership: a Task owns its coroutine frame. Awaiting a task transfers
 * control into it and resumes the awaiter when it finishes (symmetric
 * transfer, so arbitrarily deep task chains do not grow the stack).
 * Destroying a Task destroys the frame, recursively tearing down any
 * nested tasks it is suspended inside — this is how the Simulator cleans
 * up processes that never finish (e.g. infinite server loops) at teardown.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"
#include "sim/logging.h"

namespace wave::sim {

template <typename T>
class Task;

namespace detail {

/** Final awaiter: resume whoever co_awaited us, or just suspend. */
struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }

    /**
     * Coroutine frames recycle through the size-classed frame pool:
     * task-per-event models allocate frames at event rate, and the
     * pool makes that churn allocation-free after warmup.
     */
    static void* operator new(std::size_t bytes)
    {
        return AllocFrame(bytes);
    }

    static void operator delete(void* frame) noexcept
    {
        FreeFrame(frame);
    }
};

}  // namespace detail

/**
 * A lazily-started, single-owner coroutine returning T.
 *
 * @tparam T the result type; Task<> (void) for pure processes.
 */
template <typename T = void>
class [[nodiscard]] Task {
  public:
    struct promise_type : detail::PromiseBase {
        T value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) { value = std::move(v); }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(Task&& other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task&
    operator=(Task&& other) noexcept
    {
        if (this != &other) {
            Destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { Destroy(); }

    /** True if this task refers to a live coroutine frame. */
    bool Valid() const { return handle_ != nullptr; }

    /** True once the coroutine has run to completion. */
    bool Done() const { return handle_ && handle_.done(); }

    /**
     * Releases ownership of the coroutine frame to the caller.
     * Used by Simulator::Spawn, which manages root-process lifetimes.
     */
    std::coroutine_handle<promise_type>
    Release()
    {
        return std::exchange(handle_, nullptr);
    }

    /** Awaiting a task starts it and suspends until it completes. */
    auto
    operator co_await() &&
    {
        struct Awaiter {
            std::coroutine_handle<promise_type> handle;

            bool await_ready() const { return !handle || handle.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> awaiting)
            {
                handle.promise().continuation = awaiting;
                return handle;  // symmetric transfer into the task
            }

            T
            await_resume()
            {
                WAVE_ASSERT(handle != nullptr);
                if (handle.promise().exception) {
                    std::rethrow_exception(handle.promise().exception);
                }
                return std::move(handle.promise().value);
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    Destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/** Task<void> specialization: a process with no result. */
template <>
class [[nodiscard]] Task<void> {
  public:
    struct promise_type : detail::PromiseBase {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(Task&& other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task&
    operator=(Task&& other) noexcept
    {
        if (this != &other) {
            Destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { Destroy(); }

    bool Valid() const { return handle_ != nullptr; }
    bool Done() const { return handle_ && handle_.done(); }

    std::coroutine_handle<promise_type>
    Release()
    {
        return std::exchange(handle_, nullptr);
    }

    auto
    operator co_await() &&
    {
        struct Awaiter {
            std::coroutine_handle<promise_type> handle;

            bool await_ready() const { return !handle || handle.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> awaiting)
            {
                handle.promise().continuation = awaiting;
                return handle;
            }

            void
            await_resume()
            {
                WAVE_ASSERT(handle != nullptr);
                if (handle.promise().exception) {
                    std::rethrow_exception(handle.promise().exception);
                }
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    Destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

}  // namespace wave::sim
