// wave-domain: neutral
// wave-hot
// wave-shared(per-process frame-recycling free lists behind global operator new/delete; single-threaded by design today, and a sharded executor gives each shard its own arena before frames are shared)
#include "sim/frame_pool.h"

#include <new>

namespace wave::sim::detail {

namespace {

/** Size-class granularity; also the header-preserved alignment. */
constexpr std::size_t kGranularity = 64;

/** Largest pooled block (frame + header); bigger frames hit the heap. */
constexpr std::size_t kMaxPooledBytes = 2048;

constexpr std::size_t kNumClasses = kMaxPooledBytes / kGranularity;

/**
 * Every block starts with a 16-byte header holding its size class, so
 * the unsized operator delete can route the block back to the right
 * free list. 16 bytes keeps the frame at the default new alignment.
 */
constexpr std::size_t kHeaderBytes = 16;

struct FreeNode {
    FreeNode* next;
};

// Single-threaded by design (the simulator core never shares frames
// across threads); see the file comment.
FreeNode* g_free_lists[kNumClasses];
std::uint64_t g_reuses = 0;
std::uint64_t g_oversized = 0;

void*
Stamp(void* raw, std::size_t cls)
{
    *static_cast<std::size_t*>(raw) = cls;
    return static_cast<char*>(raw) + kHeaderBytes;
}

}  // namespace

void*
AllocFrame(std::size_t bytes)
{
    const std::size_t total = bytes + kHeaderBytes;
    if (total > kMaxPooledBytes) {
        ++g_oversized;
        return Stamp(::operator new(total), kNumClasses);
    }
    const std::size_t cls = (total + kGranularity - 1) / kGranularity - 1;
    if (FreeNode* node = g_free_lists[cls]) {
        g_free_lists[cls] = node->next;
        ++g_reuses;
        return Stamp(node, cls);
    }
    return Stamp(::operator new((cls + 1) * kGranularity), cls);
}

void
FreeFrame(void* frame) noexcept
{
    if (frame == nullptr) return;
    void* raw = static_cast<char*>(frame) - kHeaderBytes;
    const std::size_t cls = *static_cast<std::size_t*>(raw);
    if (cls >= kNumClasses) {
        ::operator delete(raw);
        return;
    }
    auto* node = static_cast<FreeNode*>(raw);
    node->next = g_free_lists[cls];
    g_free_lists[cls] = node;
}

std::uint64_t
FramePoolReuses()
{
    return g_reuses;
}

std::uint64_t
FramePoolOversized()
{
    return g_oversized;
}

}  // namespace wave::sim::detail
