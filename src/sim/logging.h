/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * Panic() is for internal invariant violations (simulator bugs): it prints
 * and aborts. Fatal() is for user/configuration errors: it prints and exits
 * with status 1. Warn()/Inform() report conditions without stopping.
 */
// wave-domain: neutral
#pragma once

#include <cstdarg>
#include <string>

namespace wave::sim {

/** Aborts with a formatted message. Use for internal invariant failures. */
[[noreturn]] void Panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exits(1) with a formatted message. Use for configuration errors. */
[[noreturn]] void Fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Prints a warning to stderr; execution continues. */
void Warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Prints an informational message to stderr; execution continues. */
void Inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation detail of WAVE_ASSERT; prints and aborts. */
[[noreturn]] void AssertFail(const char* condition, const char* file,
                             int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Panics if @p condition is false. Optional printf-style message.
 *
 * Kept as a macro so the failing expression text appears in the message.
 * The `"" __VA_ARGS__` splice passes an empty format string when no
 * message is given, which -Wformat-zero-length would flag at every
 * expansion site; the pragmas silence exactly that, keeping builds
 * clean under -Wall -Wextra with warnings-as-errors.
 */
#define WAVE_ASSERT(condition, ...)                                   \
    do {                                                              \
        if (!(condition)) {                                           \
            _Pragma("GCC diagnostic push")                            \
            _Pragma("GCC diagnostic ignored \"-Wformat-zero-length\"")\
            ::wave::sim::AssertFail(#condition, __FILE__, __LINE__,   \
                                    "" __VA_ARGS__);                  \
            _Pragma("GCC diagnostic pop")                             \
        }                                                             \
    } while (0)

}  // namespace wave::sim
