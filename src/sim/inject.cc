// wave-domain: neutral
#include "sim/inject.h"

#include "sim/logging.h"

namespace wave::sim::inject {

namespace {

/**
 * Tie-break key prefix for injector-scheduled action events. Keyed
 * scheduling folds the key (not the insertion sequence) into the event
 * fingerprint, so replaying the same schedule hashes identically no
 * matter what else was queued at the same instant.
 */
constexpr std::uint64_t kActionKeyPrefix = 0xFA17ull << 48;

bool
IsActionFault(FaultKind kind)
{
    return kind == FaultKind::kAgentStall ||
           kind == FaultKind::kAgentCrash ||
           kind == FaultKind::kNicSlowdown;
}

}  // namespace

const char*
FaultKindName(FaultKind kind)
{
    switch (kind) {
        case FaultKind::kAgentStall: return "agent-stall";
        case FaultKind::kAgentCrash: return "agent-crash";
        case FaultKind::kMsixDelay: return "msix-delay";
        case FaultKind::kMsixDrop: return "msix-drop";
        case FaultKind::kDmaDelay: return "dma-delay";
        case FaultKind::kMmioDelay: return "mmio-delay";
        case FaultKind::kCommitFailBurst: return "commit-fail-burst";
        case FaultKind::kNicSlowdown: return "nic-slowdown";
        case FaultKind::kSwapDelay: return "swap-delay";
        case FaultKind::kDoubleCommitBug: return "double-commit-bug";
    }
    return "unknown";
}

void
FaultInjector::Arm(std::vector<FaultSpec> schedule)
{
    schedule_ = std::move(schedule);
    fired_.assign(schedule_.size(), false);
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        const FaultSpec& spec = schedule_[i];
        if (!IsActionFault(spec.kind)) continue;
        WAVE_ASSERT(action_handler_ != nullptr,
                    "action fault %s scheduled with no handler",
                    FaultKindName(spec.kind));
        WAVE_ASSERT(spec.at >= sim_.Now(),
                    "fault window starts in the past");
        const std::uint64_t key = kActionKeyPrefix | (2 * i);
        sim_.ScheduleAtKeyed(spec.at, key, [this, i] {
            ++stats_.actions;
            action_handler_(schedule_[i], /*begin=*/true);
        });
        if (spec.kind == FaultKind::kNicSlowdown && spec.duration > 0) {
            sim_.ScheduleAtKeyed(spec.at + spec.duration, key | 1,
                                 [this, i] {
                                     action_handler_(schedule_[i],
                                                     /*begin=*/false);
                                 });
        }
    }
}

const FaultSpec*
FaultInjector::ActiveWindow(FaultKind kind) const
{
    const TimeNs now = sim_.Now();
    for (const FaultSpec& spec : schedule_) {
        if (spec.kind != kind) continue;
        if (now >= spec.at && now < spec.at + spec.duration) return &spec;
    }
    return nullptr;
}

DurationNs
FaultInjector::MsixExtraDelay()
{
    const FaultSpec* spec = ActiveWindow(FaultKind::kMsixDelay);
    if (spec == nullptr) return 0;
    ++stats_.msix_delays;
    return static_cast<DurationNs>(spec->param);
}

bool
FaultInjector::ShouldDropMsix()
{
    if (ActiveWindow(FaultKind::kMsixDrop) == nullptr) return false;
    ++stats_.msix_drops;
    return true;
}

DurationNs
FaultInjector::DmaExtraDelay()
{
    const FaultSpec* spec = ActiveWindow(FaultKind::kDmaDelay);
    if (spec == nullptr) return 0;
    ++stats_.dma_delays;
    return static_cast<DurationNs>(spec->param);
}

DurationNs
FaultInjector::MmioExtraDelay()
{
    const FaultSpec* spec = ActiveWindow(FaultKind::kMmioDelay);
    if (spec == nullptr) return 0;
    ++stats_.mmio_delays;
    return static_cast<DurationNs>(spec->param);
}

bool
FaultInjector::ShouldFailCommit()
{
    if (ActiveWindow(FaultKind::kCommitFailBurst) == nullptr) return false;
    ++stats_.commit_fails;
    return true;
}

DurationNs
FaultInjector::SwapExtraDelay()
{
    const FaultSpec* spec = ActiveWindow(FaultKind::kSwapDelay);
    if (spec == nullptr) return 0;
    ++stats_.swap_delays;
    return static_cast<DurationNs>(spec->param);
}

bool
FaultInjector::ShouldDoubleCommit()
{
    const FaultSpec* spec = ActiveWindow(FaultKind::kDoubleCommitBug);
    if (spec == nullptr) return false;
    const auto index = static_cast<std::size_t>(spec - schedule_.data());
    if (fired_[index]) return false;
    fired_[index] = true;
    ++stats_.double_commits;
    return true;
}

}  // namespace wave::sim::inject
