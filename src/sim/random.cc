// wave-domain: neutral
#include "sim/random.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace wave::sim {

namespace {

std::uint64_t
Rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64, used to expand the user seed into full engine state. */
std::uint64_t
SplitMix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

std::uint64_t
StreamSeed(std::uint64_t base_seed, const char* stream)
{
    // FNV-1a over the stream name, folded into the base seed, then one
    // splitmix64 finalization round so nearby base seeds and similar
    // names still land far apart in seed space.
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char* p = stream; *p != '\0'; ++p) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*p));
        h *= 0x100000001B3ull;
    }
    std::uint64_t x = base_seed ^ h;
    return SplitMix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = SplitMix64(s);
    }
}

std::uint64_t
Rng::Next()
{
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

double
Rng::NextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::NextBounded(std::uint64_t bound)
{
    WAVE_ASSERT(bound > 0);
    // Debiased modulo via rejection on the top of the range.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
        const std::uint64_t r = Next();
        if (r >= threshold) return r % bound;
    }
}

std::uint64_t
Rng::NextInRange(std::uint64_t lo, std::uint64_t hi)
{
    WAVE_ASSERT(lo <= hi);
    return lo + NextBounded(hi - lo + 1);
}

bool
Rng::NextBernoulli(double p)
{
    return NextDouble() < p;
}

double
Rng::NextExponential(double mean)
{
    // Inverse CDF; 1 - u avoids log(0).
    return -mean * std::log1p(-NextDouble());
}

double
Rng::NextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1;
    do {
        u1 = NextDouble();
    } while (u1 <= 0.0);
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(theta);
    has_cached_gaussian_ = true;
    return radius * std::cos(theta);
}

double
Rng::NextGamma(double shape)
{
    WAVE_ASSERT(shape > 0.0);
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
        const double u = std::max(NextDouble(), 1e-300);
        return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x;
        double v;
        do {
            x = NextGaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = NextDouble();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

double
Rng::NextBeta(double alpha, double beta)
{
    const double x = NextGamma(alpha);
    const double y = NextGamma(beta);
    return x / (x + y);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double theta)
{
    WAVE_ASSERT(n > 0);
    WAVE_ASSERT(theta >= 0.0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        sum += 1.0 / std::pow(static_cast<double>(rank + 1), theta);
        cdf_[rank] = sum;
    }
    for (auto& c : cdf_) {
        c /= sum;
    }
    cdf_.back() = 1.0;  // guard against rounding in the tail
}

std::size_t
ZipfDistribution::Sample(Rng& rng) const
{
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace wave::sim
