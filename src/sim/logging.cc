// wave-domain: neutral
#include "sim/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace wave::sim {

namespace {

void
VReport(const char* level, const char* fmt, va_list args)
{
    std::fprintf(stderr, "[%s] ", level);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

}  // namespace

void
AssertFail(const char* condition, const char* file, int line,
           const char* fmt, ...)
{
    std::fprintf(stderr, "[panic] assertion failed: %s (%s:%d) ", condition,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
Panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VReport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
Fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VReport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
Warn(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VReport("warn", fmt, args);
    va_end(args);
}

void
Inform(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VReport("info", fmt, args);
    va_end(args);
}

}  // namespace wave::sim
