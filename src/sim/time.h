/**
 * @file
 * Simulated-time definitions shared by every Wave module.
 *
 * All simulated durations and timestamps are expressed in integer
 * nanoseconds. Nanosecond granularity is fine enough for the PCIe
 * microbenchmarks reproduced from the paper (the smallest constant is a
 * 50 ns posted MMIO write) and a 64-bit count overflows only after ~584
 * simulated years.
 */
#pragma once

#include <cstdint>

namespace wave::sim {

/** A point in simulated time, in nanoseconds since simulation start. */
using TimeNs = std::uint64_t;

/** A duration in simulated nanoseconds. */
using DurationNs = std::uint64_t;

namespace time_literals {

constexpr TimeNs operator""_ns(unsigned long long v) { return v; }
constexpr TimeNs operator""_us(unsigned long long v) { return v * 1'000ull; }
constexpr TimeNs operator""_ms(unsigned long long v)
{
    return v * 1'000'000ull;
}
constexpr TimeNs operator""_s(unsigned long long v)
{
    return v * 1'000'000'000ull;
}

}  // namespace time_literals

/** Convenience multipliers for non-literal arithmetic. */
constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

/** Converts a nanosecond duration to fractional microseconds. */
constexpr double ToUs(DurationNs ns) { return static_cast<double>(ns) / 1e3; }

/** Converts a nanosecond duration to fractional milliseconds. */
constexpr double ToMs(DurationNs ns) { return static_cast<double>(ns) / 1e6; }

/** Converts a nanosecond duration to fractional seconds. */
constexpr double ToSec(DurationNs ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace wave::sim
