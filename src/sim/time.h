/**
 * @file
 * Strong-typed simulated-time definitions shared by every Wave module.
 *
 * All simulated durations and timestamps are expressed in integer
 * nanoseconds. Nanosecond granularity is fine enough for the PCIe
 * microbenchmarks reproduced from the paper (the smallest constant is a
 * 50 ns posted MMIO write) and a 64-bit count overflows only after ~584
 * simulated years.
 *
 * TimeNs (a point on the simulated clock) and DurationNs (a distance
 * between two points) are distinct wrapper types with only the
 * operators that are dimensionally meaningful:
 *
 *   point  - point     -> duration        point  + point     REJECTED
 *   point  +- duration -> point           point  * anything  REJECTED
 *   duration +- duration -> duration      ns + cycles        REJECTED
 *   duration * integer -> duration        (see machine/cycles.h)
 *   duration / integer -> duration
 *   duration / duration -> plain count    duration % duration -> duration
 *
 * The wrappers compile to the same uint64 arithmetic as the raw
 * aliases they replaced (all operations are constexpr, wrap modulo
 * 2^64, and hold exactly one uint64), so event streams are
 * bit-identical across the migration — determinism_test's fingerprint
 * goldens verify this.
 *
 * Bare integer literals convert implicitly to DurationNs (a naked
 * count of nanoseconds is a distance), but never to TimeNs: a point in
 * time must be constructed explicitly, so `Schedule(500, ...)` reads
 * naturally while `ScheduleAt(500, ...)` fails to compile until the
 * author writes `ScheduleAt(TimeNs{500}, ...)`.
 *
 * This header is the ONLY sanctioned double<->integer time bridge:
 * FromDouble()/ToDouble()/ToUs()/ToMs()/ToSec() centralise the
 * truncation and rounding rules. wave_analyze rule W008 rejects ad-hoc
 * static_casts between floating point and time outside this file.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <cstdint>
#include <type_traits>

namespace wave::sim {

/** A duration in simulated nanoseconds (strong type over uint64). */
class DurationNs {
  public:
    constexpr DurationNs() = default;

    /**
     * Implicit from any integer type: a bare integer count of
     * nanoseconds is a distance, so duration parameters accept
     * literals (`Delay(500)`) without ceremony. Floating-point values
     * are rejected — use FromDouble() to make the truncation visible.
     */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr DurationNs(T ns) : ns_(static_cast<std::uint64_t>(ns))
    {
    }

    /** Raw nanosecond count, for serialisation/hashing/printing. */
    constexpr std::uint64_t ns() const { return ns_; }

    /** Sanctioned double -> duration bridge (truncates toward zero). */
    static constexpr DurationNs
    FromDouble(double ns)
    {
        return DurationNs(static_cast<std::uint64_t>(ns));
    }

    /** Sanctioned duration -> double bridge (exact up to 2^53 ns). */
    constexpr double ToDouble() const { return static_cast<double>(ns_); }

    constexpr DurationNs&
    operator+=(DurationNs o)
    {
        ns_ += o.ns_;
        return *this;
    }

    constexpr DurationNs&
    operator-=(DurationNs o)
    {
        ns_ -= o.ns_;
        return *this;
    }

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr DurationNs&
    operator*=(T n)
    {
        ns_ *= static_cast<std::uint64_t>(n);
        return *this;
    }

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr DurationNs&
    operator/=(T n)
    {
        ns_ /= static_cast<std::uint64_t>(n);
        return *this;
    }

    friend constexpr bool
    operator==(DurationNs a, DurationNs b)
    {
        return a.ns_ == b.ns_;
    }

    friend constexpr bool
    operator!=(DurationNs a, DurationNs b)
    {
        return a.ns_ != b.ns_;
    }

    friend constexpr bool
    operator<(DurationNs a, DurationNs b)
    {
        return a.ns_ < b.ns_;
    }

    friend constexpr bool
    operator<=(DurationNs a, DurationNs b)
    {
        return a.ns_ <= b.ns_;
    }

    friend constexpr bool
    operator>(DurationNs a, DurationNs b)
    {
        return a.ns_ > b.ns_;
    }

    friend constexpr bool
    operator>=(DurationNs a, DurationNs b)
    {
        return a.ns_ >= b.ns_;
    }

  private:
    std::uint64_t ns_ = 0;
};

constexpr DurationNs
operator+(DurationNs a, DurationNs b)
{
    return DurationNs(a.ns() + b.ns());
}

constexpr DurationNs
operator-(DurationNs a, DurationNs b)
{
    return DurationNs(a.ns() - b.ns());
}

template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
constexpr DurationNs
operator*(DurationNs d, T n)
{
    return DurationNs(d.ns() * static_cast<std::uint64_t>(n));
}

template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
constexpr DurationNs
operator*(T n, DurationNs d)
{
    return DurationNs(static_cast<std::uint64_t>(n) * d.ns());
}

template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
constexpr DurationNs
operator/(DurationNs d, T n)
{
    return DurationNs(d.ns() / static_cast<std::uint64_t>(n));
}

/** Ratio of two durations is a plain count, not a duration. */
constexpr std::uint64_t
operator/(DurationNs a, DurationNs b)
{
    return a.ns() / b.ns();
}

constexpr DurationNs
operator%(DurationNs a, DurationNs b)
{
    return DurationNs(a.ns() % b.ns());
}

/**
 * A point in simulated time, in nanoseconds since simulation start.
 *
 * Construction from a raw integer is explicit (a naked number is not
 * obviously a point), and no operator adds two points: only
 * point+-duration and point-point are defined.
 */
class TimeNs {
  public:
    constexpr TimeNs() = default;

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr explicit TimeNs(T ns) : ns_(static_cast<std::uint64_t>(ns))
    {
    }

    /** A point at the given offset from the simulation origin. */
    constexpr explicit TimeNs(DurationNs since_origin)
        : ns_(since_origin.ns())
    {
    }

    /** Raw nanosecond count, for serialisation/hashing/printing. */
    constexpr std::uint64_t ns() const { return ns_; }

    /** Distance from the simulation origin (t=0) to this point. */
    constexpr DurationNs
    SinceOrigin() const
    {
        return DurationNs(ns_);
    }

    /** Sanctioned double -> point bridge (truncates toward zero). */
    static constexpr TimeNs
    FromDouble(double ns)
    {
        return TimeNs(static_cast<std::uint64_t>(ns));
    }

    /** Sanctioned point -> double bridge (exact up to 2^53 ns). */
    constexpr double ToDouble() const { return static_cast<double>(ns_); }

    constexpr TimeNs&
    operator+=(DurationNs d)
    {
        ns_ += d.ns();
        return *this;
    }

    constexpr TimeNs&
    operator-=(DurationNs d)
    {
        ns_ -= d.ns();
        return *this;
    }

    friend constexpr bool
    operator==(TimeNs a, TimeNs b)
    {
        return a.ns_ == b.ns_;
    }

    friend constexpr bool
    operator!=(TimeNs a, TimeNs b)
    {
        return a.ns_ != b.ns_;
    }

    friend constexpr bool
    operator<(TimeNs a, TimeNs b)
    {
        return a.ns_ < b.ns_;
    }

    friend constexpr bool
    operator<=(TimeNs a, TimeNs b)
    {
        return a.ns_ <= b.ns_;
    }

    friend constexpr bool
    operator>(TimeNs a, TimeNs b)
    {
        return a.ns_ > b.ns_;
    }

    friend constexpr bool
    operator>=(TimeNs a, TimeNs b)
    {
        return a.ns_ >= b.ns_;
    }

  private:
    std::uint64_t ns_ = 0;
};

constexpr TimeNs
operator+(TimeNs t, DurationNs d)
{
    return TimeNs(t.ns() + d.ns());
}

constexpr TimeNs
operator+(DurationNs d, TimeNs t)
{
    return TimeNs(d.ns() + t.ns());
}

constexpr TimeNs
operator-(TimeNs t, DurationNs d)
{
    return TimeNs(t.ns() - d.ns());
}

/** Distance between two points. Wraps modulo 2^64 like the raw math. */
constexpr DurationNs
operator-(TimeNs a, TimeNs b)
{
    return DurationNs(a.ns() - b.ns());
}

/** Phase of a point within a repeating period (tick alignment). */
constexpr DurationNs
operator%(TimeNs t, DurationNs period)
{
    return DurationNs(t.ns() % period.ns());
}

namespace time_literals {

constexpr DurationNs operator""_ns(unsigned long long v)
{
    return DurationNs(v);
}
constexpr DurationNs operator""_us(unsigned long long v)
{
    return DurationNs(v * 1'000ull);
}
constexpr DurationNs operator""_ms(unsigned long long v)
{
    return DurationNs(v * 1'000'000ull);
}
constexpr DurationNs operator""_s(unsigned long long v)
{
    return DurationNs(v * 1'000'000'000ull);
}

}  // namespace time_literals

/** Convenience multipliers for non-literal arithmetic. */
constexpr DurationNs kMicrosecond{1'000};
constexpr DurationNs kMillisecond{1'000'000};
constexpr DurationNs kSecond{1'000'000'000};

/** Converts a nanosecond duration to fractional microseconds. */
constexpr double ToUs(DurationNs d) { return d.ToDouble() / 1e3; }

/** Converts a nanosecond duration to fractional milliseconds. */
constexpr double ToMs(DurationNs d) { return d.ToDouble() / 1e6; }

/** Converts a nanosecond duration to fractional seconds. */
constexpr double ToSec(DurationNs d) { return d.ToDouble() / 1e9; }

/** Offset-from-origin views of a time point, for reporting. */
constexpr double ToUs(TimeNs t) { return t.ToDouble() / 1e3; }
constexpr double ToMs(TimeNs t) { return t.ToDouble() / 1e6; }
constexpr double ToSec(TimeNs t) { return t.ToDouble() / 1e9; }

}  // namespace wave::sim
