/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * A thin xoshiro256** engine plus the distributions the Wave experiments
 * need: uniform, exponential (open-loop Poisson arrivals), Zipf (skewed
 * key/page popularity), Bernoulli (request-mix selection), and Beta /
 * Gamma (SOL's Thompson sampling). Everything is seeded explicitly so
 * simulation runs are reproducible.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <vector>

namespace wave::sim {

/**
 * Derives an independent seed for a named RNG stream from a base seed.
 *
 * Simulations that need several sources of randomness (workload
 * arrivals, fault schedules, scenario shapes) must not share one Rng:
 * a consumer added to a shared stream shifts every later draw and
 * silently perturbs unrelated behaviour. Instead, each concern seeds
 * its own Rng from StreamSeed(base, "name") — adding or removing one
 * stream leaves every other stream's draws bit-identical.
 */
std::uint64_t StreamSeed(std::uint64_t base_seed, const char* stream);

/** xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t Next();

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t NextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

    /** True with probability @p p. */
    bool NextBernoulli(double p);

    /** Exponential variate with the given mean. */
    double NextExponential(double mean);

    /** Standard normal variate (Box-Muller with caching). */
    double NextGaussian();

    /** Gamma(shape, scale=1) variate (Marsaglia-Tsang). shape > 0. */
    double NextGamma(double shape);

    /** Beta(alpha, beta) variate via two Gammas. alpha, beta > 0. */
    double NextBeta(double alpha, double beta);

    // Engine interface so Rng works with <random> adaptors if needed.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }
    result_type operator()() { return Next(); }

  private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/**
 * Zipf distribution over {0, 1, ..., n-1} with exponent theta.
 *
 * Rank 0 is most popular. Uses a precomputed CDF with binary search,
 * which is exact and fast for the population sizes the experiments use
 * (up to a few million pages/keys).
 */
class ZipfDistribution {
  public:
    ZipfDistribution(std::size_t n, double theta);

    /** Samples a rank in [0, n). */
    std::size_t Sample(Rng& rng) const;

    std::size_t Size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

}  // namespace wave::sim
