/**
 * @file
 * Power-of-two ring buffer: the hot-path FIFO used by sync primitives.
 *
 * libstdc++'s std::deque allocates and frees 512-byte blocks as its
 * head and tail cross block boundaries, so even a steady-state
 * push/pop cycle — exactly the pattern of Signal waiter queues and
 * Channel item queues — keeps hitting the allocator. FifoRing stores
 * its elements in one contiguous power-of-two slab indexed by
 * monotonically increasing head/tail counters: steady-state push/pop
 * touches no allocator at all, and growth (doubling) only happens when
 * the live element count exceeds capacity, which Reserve() lets
 * callers pay once at setup time.
 *
 * Requirements on T: default-constructible and movable (slots are
 * default-constructed up front and assigned into). That covers the
 * coroutine handles, closures, and message payloads the simulator
 * queues; it is not a general-purpose container.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.h"

namespace wave::sim {

/** Contiguous grow-on-demand FIFO with allocation-free steady state. */
template <typename T>
class FifoRing {
  public:
    FifoRing() = default;

    explicit FifoRing(std::size_t initial_capacity)
    {
        Reserve(initial_capacity);
    }

    /** Ensures capacity for @p n elements without further allocation. */
    void
    Reserve(std::size_t n)
    {
        if (n > slots_.size()) Grow(RoundUpPow2(n));
    }

    bool Empty() const { return head_ == tail_; }
    std::size_t Size() const { return static_cast<std::size_t>(tail_ - head_); }
    std::size_t Capacity() const { return slots_.size(); }

    void
    PushBack(T item)
    {
        if (Size() == slots_.size()) {
            Grow(slots_.empty() ? kInitialCapacity : slots_.size() * 2);
        }
        slots_[tail_ & mask_] = std::move(item);
        ++tail_;
    }

    T&
    Front()
    {
        WAVE_ASSERT(!Empty(), "Front() on empty FifoRing");
        return slots_[head_ & mask_];
    }

    const T&
    Front() const
    {
        WAVE_ASSERT(!Empty(), "Front() on empty FifoRing");
        return slots_[head_ & mask_];
    }

    T
    PopFront()
    {
        WAVE_ASSERT(!Empty(), "PopFront() on empty FifoRing");
        T item = std::move(slots_[head_ & mask_]);
        ++head_;
        return item;
    }

  private:
    static constexpr std::size_t kInitialCapacity = 16;

    static std::size_t
    RoundUpPow2(std::size_t n)
    {
        std::size_t p = kInitialCapacity;
        while (p < n) p *= 2;
        return p;
    }

    void
    Grow(std::size_t new_capacity)
    {
        // wave-analyze: allow(W101 growth path: runs only when live count first exceeds capacity, never in steady state)
        std::vector<T> next(new_capacity);
        const std::size_t count = Size();
        for (std::size_t i = 0; i < count; ++i) {
            next[i] = std::move(slots_[(head_ + i) & mask_]);
        }
        slots_ = std::move(next);
        mask_ = new_capacity - 1;
        head_ = 0;
        tail_ = count;
    }

    std::vector<T> slots_;
    std::uint64_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

}  // namespace wave::sim
