/**
 * @file
 * Actor identity for the discrete-event simulation.
 *
 * The simulator multiplexes every modelled execution context — host
 * CPU loops, SmartNIC agent cores, the DMA engine, MSI-X delivery —
 * onto one event queue, so "who performed this access" is not
 * recoverable from the call stack. Components that participate in
 * cross-domain protocols register an actor per logical execution
 * context and stamp their accesses with it; the happens-before race
 * detector (check/hb.h) builds its vector clocks over these ids.
 *
 * Registration is structural, not ambient: each endpoint owns its
 * ActorId instead of reading a "current actor" variable, because a
 * coroutine suspension point would silently hand the ambient value to
 * an unrelated continuation.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <vector>

namespace wave::sim {

/** Identifier of one modelled execution context. 0 = no actor. */
using ActorId = std::uint32_t;

inline constexpr ActorId kNoActor = 0;

/** Allocates actor ids and remembers their diagnostic labels. */
class ActorRegistry {
  public:
    /**
     * Registers a new actor. @p label must outlive the registry
     * (call sites pass string literals).
     */
    ActorId
    Register(const char* label)
    {
        labels_.push_back(label);
        return static_cast<ActorId>(labels_.size());
    }

    /** Diagnostic label, or "?" for kNoActor / out-of-range ids. */
    const char*
    LabelOf(ActorId id) const
    {
        if (id == kNoActor || id > labels_.size()) return "?";
        return labels_[id - 1];
    }

    std::size_t Count() const { return labels_.size(); }

  private:
    std::vector<const char*> labels_;
};

}  // namespace wave::sim
