// wave-domain: neutral
#include "sim/timing_wheel.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/logging.h"

namespace wave::sim {

namespace {

/** Heap comparator: a pops after b — strict descending (when,key,seq). */
bool
HeapAfter(const EventNode* a, const EventNode* b)
{
    if (a->when.ns() != b->when.ns()) return a->when.ns() > b->when.ns();
    if (a->key != b->key) return a->key > b->key;
    return a->seq > b->seq;
}

}  // namespace

TimingWheel::TimingWheel() : near_(kNearSlots), far_(kFarSlots)
{
    heap_.reserve(kHeapReserve);
}

TimingWheel::~TimingWheel() { Clear(); }

// Push and pop run once per simulated event — the hottest code in the
// tree. Pool refills, rewinds, and teardown stay outside the region:
// they are rare by construction.
// wave-hot: begin
void
TimingWheel::Push(TimeNs when, std::uint64_t key, InlineFn fn)
{
    // wave-analyze: allow(W301 pool growth is amortized: Refill doubles the node pool outside the hot region, and alloc_test proves the steady state allocation-free)
    EventNode* node = AllocNode();
    node->when = when;
    node->key = key;
    node->seq = next_seq_++;
    node->fn = std::move(fn);
    ++size_;
    PushNode(node);
}

void
TimingWheel::PushNode(EventNode* node)
{
    const std::uint64_t page = PageOf(node->when);
    if (page == cur_page_) {
        InsertNear(node);
        return;
    }
    if (page < cur_page_) {
        // The cursor ran ahead of the clock across an idle gap (a
        // peek advanced it to the then-minimum page) and this event
        // lands inside the gap. Re-base the wheel, then file normally.
        RewindTo(page);
        InsertNear(node);
        return;
    }
    if (page - cur_page_ <= kFarSlots) {
        // Pages (cur_page_, cur_page_ + 4096] map to distinct ring
        // slots, so each slot holds one page; list order is free
        // (migration re-sorts per near slot).
        const std::uint64_t f = page & kFarMask;
        FarSlot& slot = far_[f];
        node->next = slot.head;
        slot.head = node;
        slot.page = page;
        far_bits_[f >> 6] |= 1ull << (f & 63);
        return;
    }
    HeapPush(node);
}

void
TimingWheel::InsertNear(EventNode* node)
{
    const std::uint64_t s = node->when.ns() & kSlotMask;
    NearSlot& slot = near_[s];
    near_bits_[s >> 6] |= 1ull << (s & 63);
    // A peek may have advanced the scan cursor past this slot (the
    // then-minimum sat later in the page); pull it back so the new
    // minimum is found.
    if (s < near_cursor_) near_cursor_ = s;
    if (slot.head == nullptr) {
        node->next = nullptr;
        slot.head = node;
        slot.tail = node;
        return;
    }
    // Tail append when the node orders after the current tail — always
    // true for a fresh unkeyed push (kUnkeyed is the maximum key and a
    // fresh seq exceeds every pooled node's), which is the hot case.
    EventNode* t = slot.tail;
    if (t->key < node->key || (t->key == node->key && t->seq < node->seq)) {
        node->next = nullptr;
        t->next = node;
        slot.tail = node;
        return;
    }
    // Keyed or migrated nodes: sorted insert on (key, seq), so keyed
    // events at one timestamp run in key order no matter how the
    // insertions were interleaved. Slot lists are short (events
    // sharing one nanosecond), so the scan is a few links.
    EventNode** link = &slot.head;
    while (*link != nullptr &&
           ((*link)->key < node->key ||
            ((*link)->key == node->key && (*link)->seq < node->seq))) {
        link = &(*link)->next;
    }
    node->next = *link;
    *link = node;
    if (node->next == nullptr) slot.tail = node;
}

EventNode*
TimingWheel::PeekMin()
{
    if (size_ == 0) return nullptr;
    for (;;) {
        const std::uint64_t s = FindNearFrom(near_cursor_);
        if (s < kNearSlots) {
            near_cursor_ = s;
            return near_[s].head;
        }
        // Near wheel drained; rotate to the next pending page.
        AdvancePage();
    }
}

EventNode*
TimingWheel::PopMin()
{
    EventNode* node = PeekMin();
    if (node == nullptr) return nullptr;
    NearSlot& slot = near_[near_cursor_];
    slot.head = node->next;
    if (slot.head == nullptr) {
        slot.tail = nullptr;
        near_bits_[near_cursor_ >> 6] &= ~(1ull << (near_cursor_ & 63));
    }
    --size_;
    return node;
}

void
TimingWheel::Recycle(EventNode* node)
{
    node->fn = InlineFn{};  // destroy any captured state now
    node->next = free_;
    free_ = node;
}

std::uint64_t
TimingWheel::FindNearFrom(std::uint64_t from) const
{
    std::uint64_t w = from >> 6;
    std::uint64_t bits = near_bits_[w] & (~0ull << (from & 63));
    for (;;) {
        if (bits != 0) {
            return (w << 6) +
                   static_cast<std::uint64_t>(std::countr_zero(bits));
        }
        if (++w >= kBitmapWords) return kNearSlots;
        bits = near_bits_[w];
    }
}

void
TimingWheel::AdvancePage()
{
    const std::uint64_t far_slot = FindMinFarSlot();
    const bool have_far = far_slot < kFarSlots;
    const bool have_heap = !heap_.empty();
    WAVE_ASSERT(have_far || have_heap,
                "advancing an empty wheel (size accounting broken)");
    const std::uint64_t far_page = have_far ? far_[far_slot].page : 0;
    const std::uint64_t heap_page =
        have_heap ? PageOf(heap_[0]->when) : 0;
    std::uint64_t next;
    if (have_far && (!have_heap || far_page <= heap_page)) {
        next = far_page;
    } else {
        next = heap_page;
    }
    cur_page_ = next;
    near_cursor_ = 0;
    // Drain BOTH tiers: the same page can sit in the ring (events
    // inserted while it was inside the horizon) and in the heap
    // (events inserted while it was beyond it).
    if (have_far && far_page == next) {
        FarSlot& fs = far_[far_slot];
        EventNode* n = fs.head;
        fs.head = nullptr;
        far_bits_[far_slot >> 6] &= ~(1ull << (far_slot & 63));
        while (n != nullptr) {
            EventNode* after = n->next;
            InsertNear(n);
            n = after;
        }
    }
    while (!heap_.empty() && PageOf(heap_[0]->when) == next) {
        InsertNear(HeapPop());
    }
}

std::uint64_t
TimingWheel::FindMinFarSlot() const
{
    // Circular scan from the slot after cur_page_'s: slots in that
    // order hold pages cur_page_+1 .. cur_page_+4096 ascending, so the
    // first populated slot holds the smallest pending far page.
    const std::uint64_t start = (cur_page_ + 1) & kFarMask;
    const std::uint64_t w0 = start >> 6;
    for (std::size_t n = 0; n <= kFarBitmapWords; ++n) {
        const std::uint64_t w = (w0 + n) & (kFarBitmapWords - 1);
        std::uint64_t bits = far_bits_[w];
        if (n == 0) {
            bits &= ~0ull << (start & 63);
        } else if (n == kFarBitmapWords) {
            // Wrapped back to the start word: only the bits below the
            // start position remain unexamined.
            bits &= (start & 63) != 0 ? ~(~0ull << (start & 63)) : 0;
        }
        if (bits != 0) {
            return (w << 6) +
                   static_cast<std::uint64_t>(std::countr_zero(bits));
        }
    }
    return kFarSlots;
}

void
TimingWheel::HeapPush(EventNode* node)
{
    // wave-analyze: allow(W101 heap_ reserves at construction and keeps its capacity; growth beyond kHeapReserve pending far-future timers is setup-scale, not per-event)
    heap_.push_back(node);
    std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
}

EventNode*
TimingWheel::HeapPop()
{
    std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
    EventNode* node = heap_.back();
    heap_.pop_back();
    return node;
}
// wave-hot: end

EventNode*
TimingWheel::AllocNode()
{
    if (free_ == nullptr) Refill();
    EventNode* node = free_;
    free_ = node->next;
    node->next = nullptr;
    return node;
}

void
TimingWheel::Refill()
{
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    EventNode* chunk = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
        chunk[i].next = free_;
        free_ = &chunk[i];
    }
}

void
TimingWheel::RewindTo(std::uint64_t page)
{
    // Collect every node parked in the near wheel (all of later page
    // cur_page_) and the whole far ring — rebasing shrinks the horizon
    // below some ring pages, which would break the one-page-per-slot
    // invariant if they stayed — then re-file them against the new
    // page. The overflow heap is position-independent and stays put.
    EventNode* collected = nullptr;
    for (std::uint64_t s = FindNearFrom(0); s < kNearSlots;
         s = FindNearFrom(s + 1)) {
        NearSlot& slot = near_[s];
        EventNode* n = slot.head;
        while (n != nullptr) {
            EventNode* after = n->next;
            n->next = collected;
            collected = n;
            n = after;
        }
        slot.head = nullptr;
        slot.tail = nullptr;
    }
    near_bits_.fill(0);
    for (std::uint64_t f = 0; f < kFarSlots; ++f) {
        EventNode* n = far_[f].head;
        while (n != nullptr) {
            EventNode* after = n->next;
            n->next = collected;
            collected = n;
            n = after;
        }
        far_[f].head = nullptr;
    }
    far_bits_.fill(0);
    cur_page_ = page;
    near_cursor_ = 0;
    while (collected != nullptr) {
        EventNode* after = collected->next;
        // Every collected node's page exceeds the new cur_page_, so
        // re-filing lands in the far ring or heap — never back here.
        PushNode(collected);
        collected = after;
    }
}

void
TimingWheel::Clear()
{
    while (EventNode* node = PopMin()) {
        Recycle(node);
    }
}

}  // namespace wave::sim
