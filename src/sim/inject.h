/**
 * @file
 * Deterministic fault injection for simulation runs (sim::inject).
 *
 * A FaultInjector holds a fixed schedule of fault windows, resolved
 * entirely at schedule-construction time (no RNG draws at query time).
 * Model components consult it at their natural hook points:
 *
 *   - pcie::MsiXVector      -> MsixExtraDelay() / ShouldDropMsix()
 *   - pcie::DmaEngine       -> DmaExtraDelay()
 *   - pcie::HostMmioMapping -> MmioExtraDelay() (PCIe latency spikes)
 *   - ghost::KernelSched    -> ShouldFailCommit() (commit-fail bursts)
 *   - wave::NicTxnEndpoint  -> ShouldDoubleCommit() (seeded-bug demo)
 *   - memmgr::SwapDevice    -> SwapExtraDelay() (device delay spikes)
 *
 * Point faults that act on the deployment rather than the fabric
 * (agent crash/stall, NIC clock slowdown) are delivered through an
 * action handler the harness registers; the injector schedules those
 * actions on the simulator with a distinctive tie-break key so an
 * armed-but-empty schedule leaves the event fingerprint untouched.
 *
 * Every query is a pure function of (schedule, Now()), so two runs of
 * the same scenario produce bit-identical event streams — the property
 * the determinism-fingerprint oracle relies on.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace wave::sim::inject {

/** What a fault does. See FaultSpec::param for the per-kind knob. */
enum class FaultKind : std::uint32_t {
    kAgentStall,      ///< action: wedge the agent loop for `duration`
    kAgentCrash,      ///< action: KILL_WAVE_AGENT at `at`
    kMsixDelay,       ///< window: +param ns on every MSI-X wire trip
    kMsixDrop,        ///< window: MSI-X sends are lost (pending never set)
    kDmaDelay,        ///< window: +param ns on every DMA transfer
    kMmioDelay,       ///< window: +param ns per MMIO roundtrip/visibility
    kCommitFailBurst, ///< window: host rejects run-decision commits
    kNicSlowdown,     ///< action window: NIC clock scaled by param/1000
    kSwapDelay,       ///< window: +param ns per swap-device operation
    kDoubleCommitBug, ///< window: agent re-publishes a committed txn id
};

const char* FaultKindName(FaultKind kind);

/** One scheduled fault: a window [at, at+duration) plus a knob. */
struct FaultSpec {
    FaultKind kind = FaultKind::kMsixDelay;
    TimeNs at{};              ///< window start (virtual time)
    DurationNs duration = 0; ///< window length; 0 = point fault
    std::uint64_t param = 0; ///< kind-specific (ns of delay, permille, ...)
};

/** Per-kind hit counters, for tests and fuzz reports. */
struct InjectStats {
    std::uint64_t msix_delays = 0;
    std::uint64_t msix_drops = 0;
    std::uint64_t dma_delays = 0;
    std::uint64_t mmio_delays = 0;
    std::uint64_t commit_fails = 0;
    std::uint64_t swap_delays = 0;
    std::uint64_t double_commits = 0;
    std::uint64_t actions = 0;
};

/** Deterministic, window-based fault injector. */
class FaultInjector {
  public:
    explicit FaultInjector(Simulator& sim) : sim_(sim) {}

    /**
     * Handler for action faults (kAgentStall / kAgentCrash /
     * kNicSlowdown). Called at the window start with begin=true and —
     * for kNicSlowdown — again at the window end with begin=false.
     * Must be registered before Arm() schedules any action fault.
     */
    using ActionHandler = std::function<void(const FaultSpec&, bool begin)>;
    void SetActionHandler(ActionHandler handler)
    {
        action_handler_ = std::move(handler);
    }

    /**
     * Installs the schedule and queues the action faults. Window faults
     * need no events: queries below scan the schedule at Now(). Arming
     * an empty schedule is a no-op by construction, which is what keeps
     * the no-fault fingerprint identical with and without an injector.
     */
    void Arm(std::vector<FaultSpec> schedule);

    // --- Window queries (pure; consume no randomness) ---

    /** Extra wire delay for an MSI-X sent now. */
    DurationNs MsixExtraDelay();

    /** True if an MSI-X sent now is lost on the wire. */
    bool ShouldDropMsix();

    /** Extra latency for a DMA transfer running now. */
    DurationNs DmaExtraDelay();

    /** Extra latency per MMIO roundtrip / posted-visibility hop now. */
    DurationNs MmioExtraDelay();

    /** True if the host must reject a run-decision commit now. */
    bool ShouldFailCommit();

    /** Extra latency per swap-device operation now. */
    DurationNs SwapExtraDelay();

    /**
     * True if the agent should re-publish the txn it just committed
     * (the deliberate protocol bug the fuzz rig must catch). Fires at
     * most once per overlapping window.
     */
    bool ShouldDoubleCommit();

    const InjectStats& Stats() const { return stats_; }
    const std::vector<FaultSpec>& Schedule() const { return schedule_; }

  private:
    /** First active window of @p kind at Now(), or nullptr. */
    const FaultSpec* ActiveWindow(FaultKind kind) const;

    Simulator& sim_;
    std::vector<FaultSpec> schedule_;
    std::vector<bool> fired_;  ///< one-shot latch per schedule entry
    ActionHandler action_handler_;
    InjectStats stats_;
};

}  // namespace wave::sim::inject
