/**
 * @file
 * Size-classed free-list pool for coroutine frames.
 *
 * Every co_await of a sub-task allocates a coroutine frame, so a busy
 * model (one that factors work into helper tasks, as this one does)
 * allocates frames at event rate. The pool intercepts the promise-level
 * operator new/delete: frames recycle through per-size-class free lists
 * after the first allocation, making steady-state frame churn
 * allocation-free. Like the simulator itself the pool is
 * single-threaded by design — wave_analyze's W103 enforces that no
 * locking creeps into this layer.
 *
 * Blocks are never returned to the OS; a long run reaches its
 * high-water mark of simultaneously-live frames per size class and
 * stays there. Pooled blocks remain reachable through the class free
 * lists, so leak checkers see "still reachable", not leaks.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <cstddef>
#include <cstdint>

namespace wave::sim::detail {

/** Allocates a coroutine frame of @p bytes from the pool. */
void* AllocFrame(std::size_t bytes);

/** Returns a frame to its size-class free list (null is a no-op). */
void FreeFrame(void* frame) noexcept;

/** Frames served from a free list (vs. fresh heap), for tests. */
std::uint64_t FramePoolReuses();

/** Frames that fell through to the heap because of their size. */
std::uint64_t FramePoolOversized();

}  // namespace wave::sim::detail
