// wave-domain: neutral
#include "sim/trace.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "sim/simulator.h"

namespace wave::sim {

namespace {

struct TraceState {
    std::set<std::string> enabled;
    bool all = false;
    bool env_parsed = false;
    std::uint64_t emitted = 0;
};

TraceState&
State()
{
    // wave-analyze: allow(W303 trace-config singleton: written at startup from WAVE_TRACE and Enable() calls, read-only while the simulation runs, never part of the fingerprinted model state)
    static TraceState state;
    return state;
}

}  // namespace

void
Trace::Enable(const std::string& category)
{
    if (category == "all") {
        State().all = true;
    } else {
        State().enabled.insert(category);
    }
}

void
Trace::Disable(const std::string& category)
{
    if (category == "all") {
        State().all = false;
    } else {
        State().enabled.erase(category);
    }
}

void
Trace::InitFromEnv()
{
    TraceState& state = State();
    if (state.env_parsed) return;
    state.env_parsed = true;
    const char* env = std::getenv("WAVE_TRACE");
    if (env == nullptr) return;
    std::string spec(env);
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos) comma = spec.size();
        const std::string category = spec.substr(start, comma - start);
        if (!category.empty()) Enable(category);
        start = comma + 1;
    }
}

bool
Trace::Enabled(const std::string& category)
{
    InitFromEnv();
    const TraceState& state = State();
    return state.all || State().enabled.count(category) > 0;
}

void
Trace::Reset()
{
    State().enabled.clear();
    State().all = false;
    State().env_parsed = true;  // do not re-import the environment
}

void
Trace::Emit(const Simulator* sim, const std::string& category,
            const char* fmt, ...)
{
    ++State().emitted;
    if (sim != nullptr) {
        std::fprintf(stderr, "%12llu: %s: ",
                     static_cast<unsigned long long>(sim->Now().ns()),
                     category.c_str());
    } else {
        std::fprintf(stderr, "           -: %s: ", category.c_str());
    }
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

std::uint64_t
Trace::EmittedCount()
{
    return State().emitted;
}

}  // namespace wave::sim
