/**
 * @file
 * Hierarchical timing wheel: the simulator's event queue.
 *
 * The discrete-event core executes pending events in ascending
 * (when, key, seq) order. A binary heap gives that order in O(log n)
 * per operation but with branchy comparisons and cache-hostile sift
 * paths; a calendar queue exploits the structure simulated workloads
 * actually have — most events land within a few microseconds of the
 * clock — to make both insert and pop O(1) in the common case.
 *
 * Three tiers, coarsening with distance from the clock:
 *
 *   near wheel   4096 one-nanosecond slots covering the current
 *                "page" (when >> 12). Each slot is an intrusive list
 *                of nodes sharing one timestamp, kept sorted by
 *                (key, seq); a fresh unkeyed insert always appends at
 *                the tail in O(1) because it carries the largest key
 *                (the kUnkeyed sentinel) and the largest seq yet
 *                issued. A 4096-bit occupancy bitmap finds the next
 *                populated slot with a couple of word scans.
 *
 *   far ring     4096 page-wide slots holding events whose page lies
 *                in (cur_page, cur_page + 4096] — up to ~16.8 ms
 *                ahead. Consecutive pages map to distinct slots, so
 *                each slot holds exactly one page's events as an
 *                unsorted list; order is imposed later, when the page
 *                is migrated into the near wheel by per-slot sorted
 *                insertion (total order on (key, seq) makes the
 *                result independent of list order).
 *
 *   overflow     a binary min-heap on (when, key, seq) for events
 *                beyond the far horizon. Rare by construction: only
 *                multi-millisecond timers land here.
 *
 * Nodes are pooled (free list over chunked arrays), so steady-state
 * push/pop performs zero heap allocations — alloc_test holds the
 * wheel to the same zero-alloc budget as the rest of the event loop.
 *
 * The pop order is bit-identical to the std::priority_queue this
 * replaced: determinism_test pins golden event-stream fingerprints
 * captured under the old queue and asserts the wheel reproduces them.
 */
// wave-domain: neutral
// wave-hot
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace wave::sim {

/** One pending event: pooled, intrusively linked into wheel slots. */
struct EventNode {
    TimeNs when{};
    std::uint64_t key = 0;  ///< explicit tie-break, or kUnkeyed
    std::uint64_t seq = 0;  ///< insertion sequence number
    EventNode* next = nullptr;
    InlineFn fn;

    /** Sentinel key for events scheduled without a tie-break. */
    static constexpr std::uint64_t kUnkeyed = ~0ULL;
};

/** Calendar event queue yielding (when, key, seq) ascending order. */
class TimingWheel {
  public:
    TimingWheel();
    ~TimingWheel();

    TimingWheel(const TimingWheel&) = delete;
    TimingWheel& operator=(const TimingWheel&) = delete;

    bool Empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t Size() const { return size_; }

    /**
     * Enqueues an event; assigns it the next insertion sequence
     * number (the unkeyed FIFO tie-break and fingerprint identity).
     */
    void Push(TimeNs when, std::uint64_t key, InlineFn fn);

    /**
     * The minimum pending event, or nullptr if empty. Idempotent, but
     * not const: peeking advances the wheel's page cursor to the
     * page of the minimum (migrating far/overflow events inward), a
     * rotation that never changes the pop order.
     */
    EventNode* PeekMin();

    /**
     * Unlinks and returns the minimum pending event, or nullptr.
     * The caller owns the node until it hands it back to Recycle().
     */
    EventNode* PopMin();

    /** Returns a popped node (destroying any closure) to the pool. */
    void Recycle(EventNode* node);

    /** Discards every pending event without running it. */
    void Clear();

  private:
    /** log2 of the near-wheel span: 4096 one-ns slots per page. */
    static constexpr int kNearBits = 12;
    static constexpr std::uint64_t kNearSlots = 1ull << kNearBits;
    static constexpr std::uint64_t kSlotMask = kNearSlots - 1;

    /** Far ring: one slot per page, covering 4096 pages (~16.8 ms). */
    static constexpr std::uint64_t kFarSlots = 4096;
    static constexpr std::uint64_t kFarMask = kFarSlots - 1;

    static constexpr std::size_t kBitmapWords = kNearSlots / 64;
    static constexpr std::size_t kFarBitmapWords = kFarSlots / 64;

    /** Pool growth quantum (cold path; free list covers steady state). */
    static constexpr std::size_t kChunkNodes = 256;

    /** Overflow-heap capacity pre-reserved at construction. */
    static constexpr std::size_t kHeapReserve = 1024;

    struct NearSlot {
        EventNode* head = nullptr;
        EventNode* tail = nullptr;
    };

    struct FarSlot {
        EventNode* head = nullptr;
        std::uint64_t page = 0;  ///< which page this slot currently holds
    };

    static std::uint64_t
    PageOf(TimeNs when)
    {
        return when.ns() >> kNearBits;
    }

    EventNode* AllocNode();
    void Refill();

    /** Files a filled node into the tier its page falls in. */
    void PushNode(EventNode* node);

    /** Sorted insert into the current page's slot for node->when. */
    void InsertNear(EventNode* node);

    /** First populated near slot at index >= @p from, or kNearSlots. */
    std::uint64_t FindNearFrom(std::uint64_t from) const;

    /**
     * Jumps to the smallest pending page beyond cur_page_, migrating
     * that page's events (far ring and/or overflow heap — the same
     * page can live in both) into the near wheel. Requires size_ > 0
     * with an empty near wheel.
     */
    void AdvancePage();

    /** Far-ring slot holding the smallest pending page, or kFarSlots. */
    std::uint64_t FindMinFarSlot() const;

    /**
     * Re-bases the wheel onto earlier @p page after the cursor ran
     * ahead of the clock into an idle gap and a new event landed in
     * it: every near-wheel and far-ring node is re-filed relative to
     * the new page. Rare and cold.
     */
    void RewindTo(std::uint64_t page);

    void HeapPush(EventNode* node);
    EventNode* HeapPop();

    std::vector<NearSlot> near_;
    std::vector<FarSlot> far_;
    std::array<std::uint64_t, kBitmapWords> near_bits_{};
    std::array<std::uint64_t, kFarBitmapWords> far_bits_{};
    std::vector<EventNode*> heap_;  ///< min-heap on (when, key, seq)
    std::uint64_t cur_page_ = 0;
    std::uint64_t near_cursor_ = 0;  ///< scan resumes at this slot
    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;
    EventNode* free_ = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> chunks_;
};

}  // namespace wave::sim
