/**
 * @file
 * Global heap-allocation counters for zero-allocation assertions.
 *
 * This is the dynamic twin of wave_analyze's W101 rule: the static
 * checker proves hot code *looks* allocation-free, AllocGuard proves a
 * running hot loop *is*. Linking the `wave_alloc_guard` library into a
 * binary replaces the global operator new/delete with counting
 * wrappers; an AllocGuard then measures the allocation delta across a
 * region:
 *
 *     // warm up pools/capacities first
 *     sim::AllocGuard guard;
 *     RunSteadyStateLoop();
 *     EXPECT_EQ(guard.Allocations(), 0u);
 *
 * Test- and bench-only: production targets must NOT link
 * wave_alloc_guard (the counters are not thread-safe — like the sim
 * core they guard, they assume a single-threaded process).
 */
// wave-domain: harness
#pragma once

#include <cstdint>

namespace wave::sim {

/** Cumulative process-wide heap counters (monotonic). */
struct AllocCounters {
    std::uint64_t allocations = 0;  ///< operator new calls
    std::uint64_t frees = 0;        ///< operator delete calls
    std::uint64_t bytes = 0;        ///< total bytes requested
};

/**
 * Current counter values. Returns all-zero (and stays zero) unless the
 * binary links wave_alloc_guard, whose operator new/delete definitions
 * feed the counters.
 */
AllocCounters AllocSnapshot();

/** Measures the allocation delta since its construction. */
class AllocGuard {
  public:
    AllocGuard() : start_(AllocSnapshot()) {}

    /** Heap allocations since construction. */
    std::uint64_t
    Allocations() const
    {
        return AllocSnapshot().allocations - start_.allocations;
    }

    /** Heap frees since construction. */
    std::uint64_t
    Frees() const
    {
        return AllocSnapshot().frees - start_.frees;
    }

    /** Heap bytes requested since construction. */
    std::uint64_t
    Bytes() const
    {
        return AllocSnapshot().bytes - start_.bytes;
    }

  private:
    AllocCounters start_;
};

}  // namespace wave::sim
