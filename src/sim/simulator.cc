// wave-domain: neutral
#include "sim/simulator.h"

#include <utility>

#include "sim/logging.h"

namespace wave::sim {

namespace {

/** Root frames are swept for completed processes this often. */
constexpr std::uint64_t kSweepInterval = 8192;

}  // namespace

Simulator::~Simulator()
{
    // Drop pending events first: their closures may capture coroutine
    // handles, but the frames they reference are owned by roots_ (directly
    // or through nested Task ownership) and are destroyed below. The
    // closures are never invoked after this point, so no dangling resume
    // can occur.
    events_.Clear();
    SweepRoots(/*all=*/true);
}

// The schedule/step core below runs once per simulated event — the
// hottest code in the tree. The destructor and SweepRoots stay outside
// the region: they run at teardown or every kSweepInterval events.
// wave-hot: begin
void
Simulator::Schedule(DurationNs delay, InlineFn fn)
{
    ScheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::ScheduleAt(TimeNs when, InlineFn fn)
{
    Push(when, EventNode::kUnkeyed, std::move(fn));
}

void
Simulator::ScheduleKeyed(DurationNs delay, std::uint64_t key,
                         InlineFn fn)
{
    ScheduleAtKeyed(now_ + delay, key, std::move(fn));
}

void
Simulator::ScheduleAtKeyed(TimeNs when, std::uint64_t key,
                           InlineFn fn)
{
    WAVE_ASSERT(key != EventNode::kUnkeyed,
                "the all-ones key is reserved for unkeyed events");
    Push(when, key, std::move(fn));
}

void
Simulator::Push(TimeNs when, std::uint64_t key, InlineFn fn)
{
    WAVE_ASSERT(when >= now_, "scheduling into the past");
    if (tie_audit_) {
        std::uint32_t& pending = pending_at_[when];
        if (pending > 0 && key == EventNode::kUnkeyed) {
            ++unkeyed_tie_insertions_;
        }
        ++pending;
    }
    events_.Push(when, key, std::move(fn));
}

void
Simulator::Spawn(Task<> task)
{
    auto handle = task.Release();
    WAVE_ASSERT(handle != nullptr, "spawning an empty task");
    // Reap completed processes incrementally: spawn-per-work-item
    // models (one process per async DMA transfer, say) then return dead
    // root frames to the frame pool at spawn rate — and release the
    // resources those frames hold — instead of waiting out the periodic
    // sweep. The two-unit budget counts *distinct slots examined*, not
    // loop iterations: erasing a done root shifts its successor into
    // the same slot, and that successor is examined for free (budgeting
    // the erase itself would let a run of adjacent done roots starve
    // the scan of credit and outlive several spawns). Reaping destroys
    // frames but schedules nothing, so it never perturbs the event
    // stream the determinism fingerprint hashes.
    for (int slots_examined = 0; slots_examined < 2 && !roots_.empty();
         ++slots_examined) {
        if (reap_cursor_ >= roots_.size()) reap_cursor_ = 0;
        while (reap_cursor_ < roots_.size() &&
               roots_[reap_cursor_].done()) {
            DestroyRoot(roots_[reap_cursor_]);
            roots_.erase(roots_.begin() +
                         static_cast<std::ptrdiff_t>(reap_cursor_));
        }
        if (reap_cursor_ < roots_.size()) ++reap_cursor_;
    }
    // wave-analyze: allow(W101 roots_ keeps its capacity across sweeps, so steady-state spawn/sweep cycles reuse freed slots)
    roots_.push_back(handle);
    Schedule(0, [handle] { handle.resume(); });
}

bool
Simulator::Step()
{
    EventNode* node = events_.PopMin();
    if (node == nullptr) return false;
    WAVE_ASSERT(node->when >= now_, "event queue went backwards");
    now_ = node->when;
    if (tie_audit_) {
        auto it = pending_at_.find(node->when);
        if (it != pending_at_.end() && --it->second == 0) {
            pending_at_.erase(it);
        }
    }
    // Fold the executed event into the determinism fingerprint. Keyed
    // events contribute their explicit key so the hash is insensitive
    // to insertion-order shuffles; unkeyed events contribute their
    // insertion sequence number, which identical runs reproduce.
    event_hash_ = check::FnvWord(event_hash_, node->when.ns());
    event_hash_ = check::FnvWord(
        event_hash_,
        node->key != EventNode::kUnkeyed ? node->key : node->seq);
    event_hash_ = check::FnvByte(
        event_hash_, node->key != EventNode::kUnkeyed ? 1 : 0);
    // Move the closure out and recycle the node BEFORE running it: the
    // closure may schedule new events, and the freed node is first in
    // line for reuse — a schedule-one-run-one steady state ping-pongs
    // on a single pooled node.
    InlineFn fn = std::move(node->fn);
    events_.Recycle(node);
    fn();
    if (++events_executed_ % kSweepInterval == 0) {
        SweepRoots(/*all=*/false);
    }
    return true;
}

void
Simulator::Run()
{
    stopped_ = false;
    while (!stopped_ && Step()) {
    }
}

TimeNs
Simulator::RunFor(DurationNs duration)
{
    RunUntil(now_ + duration);
    return now_;
}

void
Simulator::RunUntil(TimeNs when)
{
    stopped_ = false;
    for (;;) {
        if (stopped_) break;
        const EventNode* head = events_.PeekMin();
        if (head == nullptr || head->when > when) break;
        Step();
    }
    if (!stopped_ && when > now_) {
        now_ = when;
    }
}
// wave-hot: end

void
Simulator::DestroyRoot(std::coroutine_handle<Task<>::promise_type> root)
{
    if (root.done() && root.promise().exception) {
        // A detached process died with an exception nobody can
        // observe; surface it loudly instead of losing it.
        try {
            std::rethrow_exception(root.promise().exception);
        } catch (const std::exception& e) {
            Panic("root process threw: %s", e.what());
        } catch (...) {
            Panic("root process threw a non-std exception");
        }
    }
    root.destroy();
}

void
Simulator::SweepRoots(bool all)
{
    auto it = roots_.begin();
    while (it != roots_.end()) {
        if (all || it->done()) {
            DestroyRoot(*it);
            it = roots_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace wave::sim
