// wave-domain: neutral
#include "sim/simulator.h"

#include <utility>

#include "sim/logging.h"

namespace wave::sim {

namespace {

/** Root frames are swept for completed processes this often. */
constexpr std::uint64_t kSweepInterval = 8192;

}  // namespace

Simulator::~Simulator()
{
    // Drop pending events first: their closures may capture coroutine
    // handles, but the frames they reference are owned by roots_ (directly
    // or through nested Task ownership) and are destroyed below. The
    // closures are never invoked after this point, so no dangling resume
    // can occur.
    while (!events_.empty()) {
        events_.pop();
    }
    SweepRoots(/*all=*/true);
}

// The schedule/step core below runs once per simulated event — the
// hottest code in the tree. The destructor and SweepRoots stay outside
// the region: they run at teardown or every kSweepInterval events.
// wave-hot: begin
void
Simulator::Schedule(DurationNs delay, InlineFn fn)
{
    ScheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::ScheduleAt(TimeNs when, InlineFn fn)
{
    Push(when, Event::kUnkeyed, std::move(fn));
}

void
Simulator::ScheduleKeyed(DurationNs delay, std::uint64_t key,
                         InlineFn fn)
{
    ScheduleAtKeyed(now_ + delay, key, std::move(fn));
}

void
Simulator::ScheduleAtKeyed(TimeNs when, std::uint64_t key,
                           InlineFn fn)
{
    WAVE_ASSERT(key != Event::kUnkeyed,
                "the all-ones key is reserved for unkeyed events");
    Push(when, key, std::move(fn));
}

void
Simulator::Push(TimeNs when, std::uint64_t key, InlineFn fn)
{
    WAVE_ASSERT(when >= now_, "scheduling into the past");
    if (tie_audit_) {
        std::uint32_t& pending = pending_at_[when];
        if (pending > 0 && key == Event::kUnkeyed) {
            ++unkeyed_tie_insertions_;
        }
        ++pending;
    }
    events_.push(Event{when, key, next_seq_++, std::move(fn)});
}

void
Simulator::Spawn(Task<> task)
{
    auto handle = task.Release();
    WAVE_ASSERT(handle != nullptr, "spawning an empty task");
    // Reap up to two completed processes per spawn: spawn-per-work-item
    // models (one process per async DMA transfer, say) then return dead
    // root frames to the frame pool at spawn rate — and release the
    // resources those frames hold — instead of waiting out the periodic
    // sweep. Reaping destroys frames but schedules nothing, so it never
    // perturbs the event stream the determinism fingerprint hashes.
    for (int scanned = 0; scanned < 2 && !roots_.empty(); ++scanned) {
        if (reap_cursor_ >= roots_.size()) reap_cursor_ = 0;
        if (roots_[reap_cursor_].done()) {
            DestroyRoot(roots_[reap_cursor_]);
            roots_.erase(roots_.begin() +
                         static_cast<std::ptrdiff_t>(reap_cursor_));
        } else {
            ++reap_cursor_;
        }
    }
    // wave-analyze: allow(W101 roots_ keeps its capacity across sweeps, so steady-state spawn/sweep cycles reuse freed slots)
    roots_.push_back(handle);
    Schedule(0, [handle] { handle.resume(); });
}

bool
Simulator::Step()
{
    if (events_.empty()) return false;
    // Move the closure out before popping so it may schedule new events.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    WAVE_ASSERT(ev.when >= now_, "event queue went backwards");
    now_ = ev.when;
    if (tie_audit_) {
        auto it = pending_at_.find(ev.when);
        if (it != pending_at_.end() && --it->second == 0) {
            pending_at_.erase(it);
        }
    }
    // Fold the executed event into the determinism fingerprint. Keyed
    // events contribute their explicit key so the hash is insensitive
    // to insertion-order shuffles; unkeyed events contribute their
    // insertion sequence number, which identical runs reproduce.
    event_hash_ = check::FnvWord(event_hash_, ev.when.ns());
    event_hash_ = check::FnvWord(
        event_hash_, ev.key != Event::kUnkeyed ? ev.key : ev.seq);
    event_hash_ = check::FnvByte(
        event_hash_, ev.key != Event::kUnkeyed ? 1 : 0);
    ev.fn();
    if (++events_executed_ % kSweepInterval == 0) {
        SweepRoots(/*all=*/false);
    }
    return true;
}

void
Simulator::Run()
{
    stopped_ = false;
    while (!stopped_ && Step()) {
    }
}

TimeNs
Simulator::RunFor(DurationNs duration)
{
    RunUntil(now_ + duration);
    return now_;
}

void
Simulator::RunUntil(TimeNs when)
{
    stopped_ = false;
    while (!stopped_ && !events_.empty() && events_.top().when <= when) {
        Step();
    }
    if (!stopped_ && when > now_) {
        now_ = when;
    }
}
// wave-hot: end

void
Simulator::DestroyRoot(std::coroutine_handle<Task<>::promise_type> root)
{
    if (root.done() && root.promise().exception) {
        // A detached process died with an exception nobody can
        // observe; surface it loudly instead of losing it.
        try {
            std::rethrow_exception(root.promise().exception);
        } catch (const std::exception& e) {
            Panic("root process threw: %s", e.what());
        } catch (...) {
            Panic("root process threw a non-std exception");
        }
    }
    root.destroy();
}

void
Simulator::SweepRoots(bool all)
{
    auto it = roots_.begin();
    while (it != roots_.end()) {
        if (all || it->done()) {
            DestroyRoot(*it);
            it = roots_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace wave::sim
