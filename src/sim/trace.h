/**
 * @file
 * Category-based debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Components emit timestamped trace lines under named categories
 * ("queue", "ghost", "txn", ...). Categories are disabled by default
 * and enabled programmatically or through the WAVE_TRACE environment
 * variable (comma-separated list, or "all"):
 *
 *     WAVE_TRACE=ghost,txn ./build/examples/quickstart
 *
 * Tracing compiles in release builds but short-circuits on a single
 * branch when the category is off, so instrumented paths stay cheap.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace wave::sim {

class Simulator;

/** Global trace configuration and sink. */
class Trace {
  public:
    /** Enables one category ("all" enables everything). */
    static void Enable(const std::string& category);

    /** Disables one category. */
    static void Disable(const std::string& category);

    /** True if the category (or "all") is enabled. */
    static bool Enabled(const std::string& category);

    /** Parses WAVE_TRACE from the environment (called lazily). */
    static void InitFromEnv();

    /** Removes every enabled category (tests use this). */
    static void Reset();

    /**
     * Emits one line: "<time>: <category>: <message>". The simulator
     * pointer supplies the timestamp; pass nullptr outside a sim.
     */
    static void Emit(const Simulator* sim, const std::string& category,
                     const char* fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Number of lines emitted (tests assert on this). */
    static std::uint64_t EmittedCount();
};

/**
 * Trace macro: evaluates its arguments only when the category is on.
 *
 *     WAVE_TRACE_EVENT(&sim_, "ghost", "commit tid=%d core=%d", t, c);
 */
#define WAVE_TRACE_EVENT(sim_ptr, category, ...)                        \
    do {                                                                \
        if (::wave::sim::Trace::Enabled(category)) {                    \
            ::wave::sim::Trace::Emit(sim_ptr, category, __VA_ARGS__);   \
        }                                                               \
    } while (0)

}  // namespace wave::sim
