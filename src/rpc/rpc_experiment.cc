// wave-domain: host
#include "rpc/rpc_experiment.h"

#include <deque>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "rpc/rpc_stack.h"
#include "sched/shinjuku.h"
#include "stats/histogram.h"
#include "wave/runtime.h"
#include "workload/kv_service.h"
#include "workload/loadgen.h"

namespace wave::rpc {

namespace {

using workload::Request;
using workload::RequestKind;

/** Per-scenario transfer/steering costs (reference-core ns). */
struct ScenarioCosts {
    sim::DurationNs steer_ns;         ///< per-RPC steering decision
    sim::DurationNs slo_read_ns;      ///< extra to read the SLO (6b)
    sim::DurationNs worker_fetch_ns;  ///< worker pulls request payload
    bool rpc_on_nic;
};

ScenarioCosts
CostsFor(RpcScenario scenario, const pcie::PcieConfig& pcie)
{
    switch (scenario) {
      case RpcScenario::kOnHostAll:
        // Everything over coherent host shared memory.
        return {100, 50, 120, false};
      case RpcScenario::kOnHostScheduler:
        // The on-host scheduler reads full RPC headers (a 64-byte
        // header is eight uncacheable 64-bit MMIO loads) from SmartNIC
        // DRAM per steering decision, plus the in-payload SLO for the
        // multi-queue policy; workers fetch payloads via MMIO. This is
        // what sinks the scenario in Figure 6.
        return {8 * pcie.mmio_read_ns, 2 * pcie.mmio_read_ns,
                pcie.mmio_read_ns, true};
      case RpcScenario::kOffloadAll:
      default:
        // Steering reads local NIC DRAM; workers fetch via MMIO (one
        // write-through line per request).
        return {3 * pcie.nic_wb_access_ns, pcie.nic_wb_access_ns,
                pcie.mmio_read_ns, true};
    }
}

/**
 * State for the steering stage co-located with the scheduling agent.
 * Lives in RunRpcExperiment's frame, which runs the simulator to
 * completion before returning, so the stage coroutine below may
 * borrow it across suspensions.
 */
struct SteeringStage {
    std::shared_ptr<std::deque<Request>> queue;
    ScenarioCosts costs;
    bool multi_queue;
    workload::KvService* service;
    std::uint64_t steered;
};

// wave-lifetime(caller-awaits)
sim::Task<>
RunSteeringStage(SteeringStage& stage, AgentContext& ctx)
{
    // Steer up to a small batch of processed RPCs per iteration.
    for (int i = 0; i < 8 && !stage.queue->empty(); ++i) {
        Request request = std::move(stage.queue->front());
        stage.queue->pop_front();
        sim::DurationNs cost = stage.costs.steer_ns;
        if (stage.multi_queue) cost += stage.costs.slo_read_ns;
        co_await ctx.Cpu().Work(cost);
        ++stage.steered;
        // Worker-side payload fetch is part of its service time.
        request.service_ns += stage.costs.worker_fetch_ns;
        stage.service->Submit(std::move(request));
    }
}

// wave-lifetime(spawn-safe: sim, stack, and cfg are owned by the experiment frame, which runs the simulator to completion before returning; the queue handle is copied into the frame)
sim::Task<>
GenerateRpcLoad(sim::Simulator& sim, RpcStack& stack,
                std::shared_ptr<std::deque<Request>> queue,
                const RpcExperimentConfig& cfg)
{
    sim::Rng rng(cfg.seed);
    const double mean_gap_ns = 1e9 / cfg.offered_rps;
    std::uint64_t next_id = 1;
    const sim::TimeNs end{cfg.warmup_ns + cfg.measure_ns};
    while (sim.Now() < end) {
        co_await sim.Delay(sim::DurationNs::FromDouble(
            rng.NextExponential(mean_gap_ns)));
        if (sim.Now() >= end) break;
        Request request;
        request.id = next_id++;
        request.arrival = sim.Now();
        if (rng.NextBernoulli(cfg.get_fraction)) {
            request.kind = RequestKind::kGet;
            request.slo_class = 0;
            request.service_ns = cfg.get_service_ns;
        } else {
            request.kind = RequestKind::kRange;
            request.slo_class = 1;
            request.service_ns = cfg.range_service_ns;
        }
        stack.ProcessIncoming(std::move(request), [queue](Request r) {
            queue->push_back(std::move(r));
        });
    }
}

}  // namespace

RpcExperimentResult
RunRpcExperiment(const RpcExperimentConfig& cfg)
{
    sim::Simulator sim;

    machine::MachineConfig mc;
    // Enough host cores for workers + possible host agent + host RPC.
    mc.host_cores = cfg.rocksdb_cores + 1 +
                    (cfg.scenario == RpcScenario::kOnHostAll
                         ? cfg.rpc_cores
                         : 0);
    if (cfg.nic_speed > 0) mc.nic_speed = cfg.nic_speed;
    machine::Machine machine(sim, mc);

    WaveRuntime runtime(sim, machine, cfg.pcie,
                        api::OptimizationConfig::Full());

    const ScenarioCosts costs = CostsFor(cfg.scenario, cfg.pcie);

    // --- scheduling stack ---
    std::vector<int> worker_cores;
    for (int i = 0; i < cfg.rocksdb_cores; ++i) worker_cores.push_back(i);

    std::unique_ptr<ghost::SchedTransport> transport;
    const bool sched_on_nic = cfg.scenario == RpcScenario::kOffloadAll;
    if (sched_on_nic) {
        transport = std::make_unique<ghost::WaveSchedTransport>(
            runtime, cfg.rocksdb_cores);
    } else {
        transport = std::make_unique<ghost::ShmSchedTransport>(
            sim, cfg.rocksdb_cores);
    }
    ghost::KernelSched kernel(sim, machine, *transport);

    std::shared_ptr<ghost::SchedPolicy> policy;
    sched::MultiQueueShinjukuPolicy* mq_policy = nullptr;
    if (cfg.multi_queue) {
        auto mq =
            std::make_shared<sched::MultiQueueShinjukuPolicy>(cfg.slice_ns);
        mq_policy = mq.get();
        policy = mq;
    } else {
        policy = std::make_shared<sched::ShinjukuPolicy>(cfg.slice_ns);
    }

    // --- RPC stack ---
    std::vector<machine::Cpu*> rpc_cpus;
    for (int i = 0; i < cfg.rpc_cores; ++i) {
        if (costs.rpc_on_nic) {
            // NIC cores after the scheduler agent's core 0.
            rpc_cpus.push_back(&machine.NicCpu(1 + i));
        } else {
            rpc_cpus.push_back(&machine.HostCpu(cfg.rocksdb_cores + 1 + i));
        }
    }
    RpcStack stack(sim, rpc_cpus, RpcCosts{});
    stack.Start();

    // --- steering stage, co-located with the scheduling agent ---
    // Requests that finished protocol processing wait here for the
    // agent's steering pass.
    auto steering_queue = std::make_shared<std::deque<Request>>();
    SteeringStage steering{steering_queue, costs, cfg.multi_queue,
                           /*service=*/nullptr, /*steered=*/0};

    // KV service with per-request completion flowing back through the
    // RPC stack's response path.
    stats::Histogram latency[2];
    std::uint64_t completed_in_window = 0;
    const sim::TimeNs window_start{cfg.warmup_ns};
    const sim::TimeNs window_end{cfg.warmup_ns + cfg.measure_ns};

    auto on_assign = [&](ghost::Tid tid, std::uint32_t slo) {
        if (mq_policy != nullptr) {
            mq_policy->SetThreadSlo(tid, slo);
        }
    };
    workload::KvService service(sim, kernel, cfg.num_workers, 1000,
                                on_assign);
    service.SetCompletionHook([&](const Request& request) {
        stack.ProcessResponse(request, [&, arrival = request.arrival,
                                        kind = request.kind](Request) {
            if (arrival >= window_start && arrival < window_end) {
                ++completed_in_window;
                latency[static_cast<std::size_t>(kind)].Record(
                    (sim.Now() - arrival).ns());
            }
        });
    });

    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = worker_cores;
    agent_cfg.prestage = true;
    agent_cfg.prestage_min_depth = 4;
    // The adapter lambda is not itself a coroutine: it reads its
    // capture once, at call time, to construct the named coroutine's
    // task — the pattern W202 leaves open.
    steering.service = &service;
    agent_cfg.aux_stage = [&steering](AgentContext& ctx) {
        return RunSteeringStage(steering, ctx);
    };
    auto agent = std::make_shared<ghost::GhostAgent>(*transport, policy,
                                                     agent_cfg);

    std::unique_ptr<AgentContext> host_agent_ctx;
    if (sched_on_nic) {
        runtime.StartWaveAgent(agent, /*nic_core=*/0);
    } else {
        host_agent_ctx = std::make_unique<AgentContext>(
            sim, machine.HostCpu(cfg.rocksdb_cores));
        sim.Spawn(agent->Run(*host_agent_ctx));
    }

    kernel.Start(worker_cores);

    // --- load generation: arrivals land at the RPC stack ---
    sim.Spawn(GenerateRpcLoad(sim, stack, steering_queue, cfg));

    // Run past the window so in-flight responses can drain a little.
    sim.RunUntil(window_end + 2'000'000);

    RpcExperimentResult result;
    result.completed = completed_in_window;
    result.achieved_rps = static_cast<double>(completed_in_window) /
                          sim::ToSec(cfg.measure_ns);
    result.get_p50 = latency[0].Percentile(0.50);
    result.get_p99 = latency[0].Percentile(0.99);
    result.range_p99 = latency[1].Percentile(0.99);
    result.preemptions = kernel.Stats().preemptions;
    result.steered = steering.steered;
    result.event_hash = sim.EventHash();
    return result;
}

double
FindRpcSaturation(const RpcExperimentConfig& base, double start_rps,
                  double end_rps, double step_rps,
                  sim::DurationNs p99_slo_ns, double efficiency)
{
    double best = 0;
    for (double rps = start_rps; rps <= end_rps + 1; rps += step_rps) {
        RpcExperimentConfig cfg = base;
        cfg.offered_rps = rps;
        const RpcExperimentResult r = RunRpcExperiment(cfg);
        if (r.achieved_rps >= efficiency * rps &&
            r.get_p99 <= p99_slo_ns) {
            best = std::max(best, r.achieved_rps);
        } else if (best > 0) {
            break;
        }
    }
    return best;
}

}  // namespace wave::rpc
