/**
 * @file
 * Harness for the §7.3 RPC experiments (Figure 6 and the §7.3.3
 * coherent-interconnect study).
 *
 * One configuration builds the full pipeline:
 *
 *   load generator -> RPC stack (protocol processing) -> steering
 *   stage (co-located with the scheduling agent) -> KV service worker
 *   (ghOSt-scheduled) -> RPC stack (response) -> latency recorded.
 *
 * The three §7.3.1 scenarios differ in component placement:
 *
 *   - OnHost-All: RPC stack on 8 host cores, scheduler on 1 host core,
 *     RocksDB on 15; everything over coherent shared memory.
 *   - OnHost-Scheduler: RPC stack offloaded to SmartNIC cores, the
 *     scheduler still on host — every steering decision reads RPC
 *     headers (and the SLO, in 6b) across PCIe.
 *   - Offload-All: RPC stack + scheduler both on the SmartNIC; RocksDB
 *     gets all 16 host cores; workers fetch requests via MMIO.
 */
// wave-domain: host
#pragma once

#include "pcie/config.h"
#include "sim/time.h"
#include "workload/sched_experiment.h"

namespace wave::rpc {

/** Component placement per §7.3.1. */
enum class RpcScenario {
    kOnHostAll,
    kOnHostScheduler,
    kOffloadAll,
};

/** Full RPC experiment configuration. */
struct RpcExperimentConfig {
    RpcScenario scenario = RpcScenario::kOffloadAll;

    /** Single-queue (6a) vs SLO-aware multi-queue Shinjuku (6b). */
    bool multi_queue = false;

    /** RocksDB worker cores (15 or 16 per scenario). */
    int rocksdb_cores = 16;

    /** Cores running the RPC stack (host or NIC per scenario). */
    int rpc_cores = 8;

    int num_workers = 64;
    sim::DurationNs slice_ns = 30'000;

    /** Interconnect (swap for PcieConfig::Upi() in §7.3.3). */
    pcie::PcieConfig pcie = {};

    /** NIC-core speed override for the UPI frequency sweep (0=default). */
    double nic_speed = 0.0;

    double offered_rps = 150'000;
    double get_fraction = 0.995;
    sim::DurationNs get_service_ns = 10'000;
    sim::DurationNs range_service_ns = 10'000'000;

    sim::DurationNs warmup_ns = 100'000'000;
    sim::DurationNs measure_ns = 400'000'000;
    std::uint64_t seed = 42;
};

/** Results for one load point. */
struct RpcExperimentResult {
    double achieved_rps = 0;
    std::uint64_t completed = 0;
    sim::DurationNs get_p50 = 0;
    sim::DurationNs get_p99 = 0;
    sim::DurationNs range_p99 = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t steered = 0;
    /** Simulator event-stream fingerprint (determinism auditing). */
    std::uint64_t event_hash = 0;
};

/** Runs one load point. */
RpcExperimentResult RunRpcExperiment(const RpcExperimentConfig& cfg);

/**
 * Sweeps offered load and returns the saturation throughput: the
 * highest achieved rate whose achieved stays within @p efficiency of
 * offered and whose GET p99 stays below @p p99_slo_ns.
 */
double FindRpcSaturation(const RpcExperimentConfig& base, double start_rps,
                         double end_rps, double step_rps,
                         sim::DurationNs p99_slo_ns = 500'000,
                         double efficiency = 0.97);

}  // namespace wave::rpc
