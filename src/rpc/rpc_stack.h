/**
 * @file
 * The Stubby-style RPC stack (§4.3).
 *
 * Incoming packets go through TCP/protocol processing on the stack's
 * CPUs (host cores in the vanilla deployment, SmartNIC ARM cores when
 * offloaded), then a *steering policy* decides which host core/worker
 * handles the request. Responses pass back through the stack for
 * serialization and transmission.
 *
 * The steering decision is where scheduler-RPC synergy lives: when the
 * RPC stack and the thread scheduler are co-located (both on the NIC,
 * §7.3), the steering stage reads headers — and the SLO inside the
 * payload — from local DRAM; when they are split across PCIe, every
 * steering decision pays MMIO reads, which is what sinks the
 * OnHost-Scheduler scenario in Figure 6.
 */
// wave-domain: host
#pragma once

#include <functional>

#include "machine/cpu.h"
#include "sim/simulator.h"
#include "workload/request.h"
#include "workload/server_pool.h"

namespace wave::rpc {

/** Protocol-processing cost model. */
struct RpcCosts {
    /** TCP + RPC decode per incoming request (reference core). */
    sim::DurationNs request_process_ns = 1'800;

    /** Response serialization + TX per reply. */
    sim::DurationNs response_process_ns = 1'200;
};

/** The RPC data plane: ingress and egress protocol processing. */
class RpcStack {
  public:
    /**
     * @param cpus the cores running the stack (8 host cores in
     *        OnHost-All; SmartNIC cores when offloaded).
     */
    RpcStack(sim::Simulator& sim, std::vector<machine::Cpu*> cpus,
             RpcCosts costs = {});

    /** Starts the protocol-processing workers. */
    void Start() { pool_.Start(); }

    /**
     * An RPC arrived from the network: after protocol processing,
     * @p deliver runs with the decoded request (ready for steering).
     */
    void ProcessIncoming(workload::Request request,
                         std::function<void(workload::Request)> deliver);

    /** A response is ready: after processing, @p sent runs. */
    void ProcessResponse(workload::Request request,
                         std::function<void(workload::Request)> sent);

    std::uint64_t Processed() const { return pool_.Completed(); }
    std::size_t QueueDepth() const { return pool_.QueueDepth(); }

  private:
    workload::ServerPool pool_;
    RpcCosts costs_;
};

}  // namespace wave::rpc
