// wave-domain: host
#include "rpc/rpc_stack.h"

namespace wave::rpc {

RpcStack::RpcStack(sim::Simulator& sim, std::vector<machine::Cpu*> cpus,
                   RpcCosts costs)
    : pool_(sim, std::move(cpus)), costs_(costs)
{
}

void
RpcStack::ProcessIncoming(workload::Request request,
                          std::function<void(workload::Request)> deliver)
{
    workload::PoolJob job;
    job.cost_ns = costs_.request_process_ns;
    job.done = [request = std::move(request),
                deliver = std::move(deliver)]() mutable {
        deliver(std::move(request));
    };
    pool_.Submit(std::move(job));
}

void
RpcStack::ProcessResponse(workload::Request request,
                          std::function<void(workload::Request)> sent)
{
    workload::PoolJob job;
    job.cost_ns = costs_.response_process_ns;
    job.done = [request = std::move(request),
                sent = std::move(sent)]() mutable {
        sent(std::move(request));
    };
    pool_.Submit(std::move(job));
}

}  // namespace wave::rpc
