// wave-domain: neutral
#include "sched/vm_policy.h"

#include <deque>

#include "sim/logging.h"

namespace wave::sched {

void
VmPolicy::Enqueue(ghost::Tid tid)
{
    if (dead_.count(tid) > 0 || queued_.count(tid) > 0) return;
    auto it = core_of_.find(tid);
    WAVE_ASSERT(it != core_of_.end(), "vCPU %d was never pinned", tid);
    runnable_[it->second].push_back(tid);
    queued_.insert(tid);
}

void
VmPolicy::OnMessage(const ghost::GhostMessage& message)
{
    switch (message.type) {
      case ghost::MsgType::kThreadCreated:
      case ghost::MsgType::kThreadWakeup:
      case ghost::MsgType::kThreadYield:
      case ghost::MsgType::kThreadPreempted:
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadBlocked:
        break;
      case ghost::MsgType::kThreadDead:
        dead_.insert(message.tid);
        break;
    }
}

std::optional<ghost::GhostDecision>
VmPolicy::PickNext(int core, sim::TimeNs /*now*/)
{
    auto it = runnable_.find(core);
    if (it == runnable_.end()) return std::nullopt;
    auto& queue = it->second;
    while (!queue.empty()) {
        const ghost::Tid tid = queue.front();
        queue.pop_front();
        queued_.erase(tid);
        if (dead_.count(tid) > 0) continue;
        ghost::GhostDecision decision{};
        decision.type = ghost::DecisionType::kRunThread;
        decision.tid = tid;
        decision.core = core;
        decision.slice_ns = quantum_ns_;
        return decision;
    }
    return std::nullopt;
}

void
VmPolicy::OnDecisionFailed(const ghost::GhostDecision& decision)
{
    if (dead_.count(decision.tid) > 0 || queued_.count(decision.tid) > 0) {
        return;
    }
    runnable_[decision.core].push_front(decision.tid);
    queued_.insert(decision.tid);
}

bool
VmPolicy::ShouldPreempt(int core, ghost::Tid /*running*/,
                        sim::DurationNs ran_for) const
{
    if (ran_for <= quantum_ns_) return false;
    auto it = runnable_.find(core);
    return it != runnable_.end() && !it->second.empty();
}

std::size_t
VmPolicy::RunQueueDepth() const
{
    std::size_t depth = 0;
    for (const auto& [core, queue] : runnable_) {
        depth += queue.size();
    }
    return depth;
}

}  // namespace wave::sched
