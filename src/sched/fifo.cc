// wave-domain: neutral
#include "sched/fifo.h"

namespace wave::sched {

void
FifoPolicy::Enqueue(ghost::Tid tid, bool front)
{
    if (dead_.count(tid) > 0 || queued_.count(tid) > 0) return;
    if (front) {
        run_queue_.push_front(tid);
    } else {
        run_queue_.push_back(tid);
    }
    queued_.insert(tid);
}

void
FifoPolicy::OnMessage(const ghost::GhostMessage& message)
{
    switch (message.type) {
      case ghost::MsgType::kThreadCreated:
      case ghost::MsgType::kThreadWakeup:
      case ghost::MsgType::kThreadYield:
      case ghost::MsgType::kThreadPreempted:
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadBlocked:
        break;  // it will come back with a wakeup
      case ghost::MsgType::kThreadDead:
        dead_.insert(message.tid);
        break;
    }
}

std::optional<ghost::GhostDecision>
FifoPolicy::PickNext(int core, sim::TimeNs /*now*/)
{
    while (!run_queue_.empty()) {
        const ghost::Tid tid = run_queue_.front();
        run_queue_.pop_front();
        queued_.erase(tid);
        if (dead_.count(tid) > 0) continue;
        ghost::GhostDecision decision{};
        decision.type = ghost::DecisionType::kRunThread;
        decision.tid = tid;
        decision.core = core;
        decision.slice_ns = 0;  // run to completion
        return decision;
    }
    return std::nullopt;
}

void
FifoPolicy::OnDecisionFailed(const ghost::GhostDecision& decision)
{
    // Preserve FIFO order: the thread lost its turn through no fault of
    // its own, so it goes back to the front (unless it died).
    Enqueue(decision.tid, /*front=*/true);
}

}  // namespace wave::sched
