/**
 * @file
 * A CFS-style fair scheduling policy.
 *
 * The paper's baseline host scheduler is Linux CFS (§4.1); this policy
 * implements its core mechanism — pick the runnable thread with the
 * smallest virtual runtime, with a sched-latency-derived time slice —
 * over the same SchedPolicy interface as the ported policies, so the
 * fairness baseline can run on-host or offloaded like everything else.
 *
 * Deliberately "lite": no cgroup hierarchies, no load tracking (PELT),
 * no wake-affinity heuristics — the decision core only.
 */
// wave-domain: neutral
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "ghost/policy.h"

namespace wave::sched {

/** Weighted-fair virtual-runtime policy (CFS decision core). */
class CfsLitePolicy : public ghost::SchedPolicy {
  public:
    /**
     * @param sched_latency period across which every runnable thread
     *        should run once (Linux default: 6 ms, scaled by load).
     * @param min_granularity lower bound on any slice (Linux: 0.75 ms).
     */
    explicit CfsLitePolicy(sim::DurationNs sched_latency = 6'000'000,
                           sim::DurationNs min_granularity = 750'000)
        : sched_latency_(sched_latency),
          min_granularity_(min_granularity)
    {
    }

    std::string Name() const override { return "cfs-lite"; }

    /** Sets a thread's weight (nice 0 == 1024, like the kernel). */
    void
    SetWeight(ghost::Tid tid, std::uint32_t weight)
    {
        weight_[tid] = weight;
    }

    void OnMessage(const ghost::GhostMessage& message) override;
    std::optional<ghost::GhostDecision> PickNext(int core,
                                                 sim::TimeNs now) override;
    void OnDecisionFailed(const ghost::GhostDecision& decision) override;

    bool ShouldPreempt(int core, ghost::Tid running,
                       sim::DurationNs ran_for) const override;

    std::size_t RunQueueDepth() const override { return queue_.size(); }

    /** Virtual runtime accumulated by a thread (test introspection). */
    std::uint64_t
    Vruntime(ghost::Tid tid) const
    {
        auto it = vruntime_.find(tid);
        return it == vruntime_.end() ? 0 : it->second;
    }

    /** Fair slice for the current load. */
    sim::DurationNs CurrentSlice() const;

  private:
    static constexpr std::uint32_t kDefaultWeight = 1024;

    std::uint32_t
    WeightOf(ghost::Tid tid) const
    {
        auto it = weight_.find(tid);
        return it == weight_.end() ? kDefaultWeight : it->second;
    }

    void Enqueue(ghost::Tid tid);
    void ChargeRunning(ghost::Tid tid, sim::TimeNs now);

    sim::DurationNs sched_latency_;
    sim::DurationNs min_granularity_;

    /** Runnable threads ordered by (vruntime, tid). */
    std::set<std::pair<std::uint64_t, ghost::Tid>> queue_;
    std::unordered_map<ghost::Tid, std::uint64_t> vruntime_;
    std::unordered_map<ghost::Tid, std::uint32_t> weight_;
    std::unordered_map<ghost::Tid, sim::TimeNs> run_start_;
    std::unordered_set<ghost::Tid> queued_;
    std::unordered_set<ghost::Tid> dead_;
    std::uint64_t min_vruntime_ = 0;
};

}  // namespace wave::sched
