// wave-domain: neutral
#include "sched/shinjuku.h"

#include "sim/logging.h"

namespace wave::sched {

void
MultiQueueShinjukuPolicy::SetThreadSlo(ghost::Tid tid,
                                       std::uint32_t slo_class)
{
    WAVE_ASSERT(slo_class < queues_.size(), "slo class %u out of range",
                slo_class);
    slo_of_[tid] = slo_class;
}

std::uint32_t
MultiQueueShinjukuPolicy::ClassOf(ghost::Tid tid) const
{
    auto it = slo_of_.find(tid);
    // Untagged threads go to the most lenient class.
    return it == slo_of_.end()
               ? static_cast<std::uint32_t>(queues_.size() - 1)
               : it->second;
}

void
MultiQueueShinjukuPolicy::Enqueue(ghost::Tid tid, bool front)
{
    if (dead_.count(tid) > 0 || queued_.count(tid) > 0) return;
    auto& queue = queues_[ClassOf(tid)];
    if (front) {
        queue.push_front(tid);
    } else {
        queue.push_back(tid);
    }
    queued_.insert(tid);
}

void
MultiQueueShinjukuPolicy::OnMessage(const ghost::GhostMessage& message)
{
    switch (message.type) {
      case ghost::MsgType::kThreadCreated:
      case ghost::MsgType::kThreadWakeup:
      case ghost::MsgType::kThreadYield:
      case ghost::MsgType::kThreadPreempted:
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadBlocked:
        break;
      case ghost::MsgType::kThreadDead:
        dead_.insert(message.tid);
        slo_of_.erase(message.tid);
        break;
    }
}

std::optional<ghost::GhostDecision>
MultiQueueShinjukuPolicy::PickNext(int core, sim::TimeNs /*now*/)
{
    for (std::size_t cls = 0; cls < queues_.size(); ++cls) {
        auto& queue = queues_[cls];
        while (!queue.empty()) {
            const ghost::Tid tid = queue.front();
            queue.pop_front();
            queued_.erase(tid);
            if (dead_.count(tid) > 0) continue;
            ghost::GhostDecision decision{};
            decision.type = ghost::DecisionType::kRunThread;
            decision.tid = tid;
            decision.core = core;
            decision.slo_class = static_cast<std::uint32_t>(cls);
            decision.slice_ns = slice_ns_;
            return decision;
        }
    }
    return std::nullopt;
}

void
MultiQueueShinjukuPolicy::OnDecisionFailed(
    const ghost::GhostDecision& decision)
{
    Enqueue(decision.tid, /*front=*/true);
}

bool
MultiQueueShinjukuPolicy::ShouldPreempt(int /*core*/, ghost::Tid running,
                                        sim::DurationNs ran_for) const
{
    if (ran_for <= slice_ns_) return false;
    // Preempt when anything of equal-or-stricter class waits.
    const std::uint32_t running_class = ClassOf(running);
    for (std::size_t cls = 0; cls <= running_class; ++cls) {
        if (!queues_[cls].empty()) return true;
    }
    // A long-running strict thread can also be preempted by lenient
    // waiters once it exceeds its slice (round-robin fairness).
    return RunQueueDepth() > 0;
}

std::size_t
MultiQueueShinjukuPolicy::RunQueueDepth() const
{
    std::size_t depth = 0;
    for (const auto& queue : queues_) {
        depth += queue.size();
    }
    return depth;
}

}  // namespace wave::sched
