/**
 * @file
 * Virtual-machine scheduling policy (§7.2.4), inspired by Tableau.
 *
 * vCPU threads are pinned to logical cores (each core multiplexes one
 * vCPU from each of the co-located VMs). A vCPU runs for a quantum of
 * 5-10 ms with fair sharing between the VMs on the core; preemption is
 * agent-driven at millisecond granularity. Because the policy is a
 * single polling instance (on the SmartNIC or a host core), per-core
 * timer ticks can be disabled — idle cores reach deep C-states and the
 * busy cores turbo higher, which Figure 5 measures.
 */
// wave-domain: neutral
#pragma once

#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "ghost/policy.h"

namespace wave::sched {

/** Pinned, quantum-based fair VM scheduler. */
class VmPolicy : public ghost::SchedPolicy {
  public:
    explicit VmPolicy(sim::DurationNs quantum_ns = 5'000'000)
        : quantum_ns_(quantum_ns)
    {
    }

    std::string Name() const override { return "vm-tableau"; }

    /** Pins a vCPU thread to a logical core. */
    void
    PinVcpu(ghost::Tid tid, int core)
    {
        core_of_[tid] = core;
    }

    void OnMessage(const ghost::GhostMessage& message) override;
    std::optional<ghost::GhostDecision> PickNext(int core,
                                                 sim::TimeNs now) override;
    void OnDecisionFailed(const ghost::GhostDecision& decision) override;

    bool
    ShouldPreempt(int core, ghost::Tid running,
                  sim::DurationNs ran_for) const override;

    std::size_t RunQueueDepth() const override;

    /** VM decisions are ms-scale; policy compute is still cheap. */
    sim::DurationNs DecisionComputeNs() const override { return 400; }

  private:
    void Enqueue(ghost::Tid tid);

    sim::DurationNs quantum_ns_;
    std::map<ghost::Tid, int> core_of_;
    std::map<int, std::deque<ghost::Tid>> runnable_;  ///< per core
    std::unordered_set<ghost::Tid> queued_;
    std::unordered_set<ghost::Tid> dead_;
};

}  // namespace wave::sched
