// wave-domain: neutral
#include "sched/cfs_lite.h"

#include <algorithm>

namespace wave::sched {

void
CfsLitePolicy::Enqueue(ghost::Tid tid)
{
    if (dead_.count(tid) > 0 || queued_.count(tid) > 0) return;
    // New or returning threads start at min_vruntime so they neither
    // monopolize the CPU (vruntime 0) nor starve (huge vruntime).
    auto it = vruntime_.find(tid);
    if (it == vruntime_.end() || it->second < min_vruntime_) {
        vruntime_[tid] = min_vruntime_;
    }
    queue_.emplace(vruntime_[tid], tid);
    queued_.insert(tid);
}

void
CfsLitePolicy::ChargeRunning(ghost::Tid tid, sim::TimeNs now)
{
    auto started = run_start_.find(tid);
    if (started == run_start_.end()) return;
    const sim::DurationNs ran = now - started->second;
    run_start_.erase(started);
    // vruntime advances inversely to weight: heavier threads age slower.
    vruntime_[tid] +=
        (ran * kDefaultWeight / std::max<std::uint32_t>(WeightOf(tid), 1))
            .ns();
}

void
CfsLitePolicy::OnMessage(const ghost::GhostMessage& message)
{
    switch (message.type) {
      case ghost::MsgType::kThreadCreated:
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadWakeup:
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadYield:
      case ghost::MsgType::kThreadPreempted:
        ChargeRunning(message.tid, sim::TimeNs{message.payload});
        Enqueue(message.tid);
        break;
      case ghost::MsgType::kThreadBlocked:
        ChargeRunning(message.tid, sim::TimeNs{message.payload});
        break;
      case ghost::MsgType::kThreadDead:
        ChargeRunning(message.tid, sim::TimeNs{message.payload});
        dead_.insert(message.tid);
        break;
    }
}

sim::DurationNs
CfsLitePolicy::CurrentSlice() const
{
    const std::size_t nr = std::max<std::size_t>(queue_.size(), 1);
    return std::max(min_granularity_,
                    sched_latency_ / nr);
}

std::optional<ghost::GhostDecision>
CfsLitePolicy::PickNext(int core, sim::TimeNs now)
{
    while (!queue_.empty()) {
        const auto [vruntime, tid] = *queue_.begin();
        queue_.erase(queue_.begin());
        queued_.erase(tid);
        if (dead_.count(tid) > 0) continue;
        min_vruntime_ = std::max(min_vruntime_, vruntime);
        run_start_[tid] = now;
        ghost::GhostDecision decision{};
        decision.type = ghost::DecisionType::kRunThread;
        decision.tid = tid;
        decision.core = core;
        decision.slice_ns = CurrentSlice();
        return decision;
    }
    return std::nullopt;
}

void
CfsLitePolicy::OnDecisionFailed(const ghost::GhostDecision& decision)
{
    run_start_.erase(decision.tid);
    Enqueue(decision.tid);
}

bool
CfsLitePolicy::ShouldPreempt(int /*core*/, ghost::Tid /*running*/,
                             sim::DurationNs ran_for) const
{
    return !queue_.empty() && ran_for > CurrentSlice();
}

}  // namespace wave::sched
