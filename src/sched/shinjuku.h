/**
 * @file
 * Shinjuku policies: preemptive round-robin scheduling for µs-scale
 * tail latency (§7.2.3, §7.3).
 *
 * Single-queue Shinjuku maintains one FIFO run queue but preempts any
 * thread that exceeds its time slice (default 30 µs), so short requests
 * never wait behind long ones. Preemption rides the agent's kick
 * (MSI-X from the SmartNIC / IPI on host) — the experiment that shows
 * MSI-X is a workable substitute for IPIs.
 *
 * Multi-queue Shinjuku (§7.3.2) additionally separates threads by the
 * SLO class of the request they are handling (carried in the RPC
 * payload) and serves stricter classes first, which requires the
 * scheduler to *know* the SLO — only possible when the RPC stack shares
 * its insight, i.e. when both are co-located.
 */
// wave-domain: neutral
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sched/fifo.h"
#include "sim/time.h"

namespace wave::sched {

/** Single-queue Shinjuku: FIFO + time-slice preemption. */
class ShinjukuPolicy : public FifoPolicy {
  public:
    explicit ShinjukuPolicy(sim::DurationNs slice_ns = 30'000)
        : slice_ns_(slice_ns)
    {
    }

    std::string Name() const override { return "shinjuku"; }

    std::optional<ghost::GhostDecision>
    PickNext(int core, sim::TimeNs now) override
    {
        auto decision = FifoPolicy::PickNext(core, now);
        if (decision) {
            decision->slice_ns = slice_ns_;
        }
        return decision;
    }

    bool
    ShouldPreempt(int /*core*/, ghost::Tid /*running*/,
                  sim::DurationNs ran_for) const override
    {
        // Preempt only when someone is waiting; otherwise let it run.
        return ran_for > slice_ns_ && !run_queue_.empty();
    }

    sim::DurationNs SliceNs() const { return slice_ns_; }

  private:
    sim::DurationNs slice_ns_;
};

/** Multi-queue Shinjuku: per-SLO-class queues, strictest first. */
class MultiQueueShinjukuPolicy : public ghost::SchedPolicy {
  public:
    explicit MultiQueueShinjukuPolicy(sim::DurationNs slice_ns = 30'000,
                                      int num_classes = 2)
        : slice_ns_(slice_ns), queues_(static_cast<std::size_t>(num_classes))
    {
    }

    std::string Name() const override { return "multiqueue-shinjuku"; }

    /**
     * Tags a thread with the SLO class of the request it will serve
     * (class 0 is strictest). Called by the RPC stack when it steers a
     * request — the "network insight" the SmartNIC placement enables.
     */
    void SetThreadSlo(ghost::Tid tid, std::uint32_t slo_class);

    void OnMessage(const ghost::GhostMessage& message) override;
    std::optional<ghost::GhostDecision> PickNext(int core,
                                                 sim::TimeNs now) override;
    void OnDecisionFailed(const ghost::GhostDecision& decision) override;

    bool
    ShouldPreempt(int /*core*/, ghost::Tid running,
                  sim::DurationNs ran_for) const override;

    std::size_t RunQueueDepth() const override;

    /** Multi-queue bookkeeping costs a bit more per decision. */
    sim::DurationNs DecisionComputeNs() const override { return 220; }

  private:
    std::uint32_t ClassOf(ghost::Tid tid) const;
    void Enqueue(ghost::Tid tid, bool front = false);

    sim::DurationNs slice_ns_;
    std::vector<std::deque<ghost::Tid>> queues_;  ///< by SLO class
    std::map<ghost::Tid, std::uint32_t> slo_of_;
    std::unordered_set<ghost::Tid> queued_;
    std::unordered_set<ghost::Tid> dead_;
};

}  // namespace wave::sched
