/**
 * @file
 * Run-to-completion FIFO policy (§7.2.2).
 *
 * The simplest ghOSt policy the paper ports: runnable threads queue in
 * arrival order and run until they block. It needs little compute but
 * interacts with the workload on every request, which is exactly why
 * the paper uses it to stress Wave's API and PCIe queues.
 */
// wave-domain: neutral
#pragma once

#include <deque>
#include <unordered_set>

#include "ghost/policy.h"

namespace wave::sched {

/** FIFO run-to-completion scheduling policy. */
class FifoPolicy : public ghost::SchedPolicy {
  public:
    FifoPolicy() = default;

    std::string Name() const override { return "fifo"; }

    void OnMessage(const ghost::GhostMessage& message) override;

    std::optional<ghost::GhostDecision> PickNext(int core,
                                                 sim::TimeNs now) override;

    void OnDecisionFailed(const ghost::GhostDecision& decision) override;

    std::size_t RunQueueDepth() const override { return run_queue_.size(); }

  protected:
    /** Enqueues a thread unless it is already queued or dead. */
    void Enqueue(ghost::Tid tid, bool front = false);

    std::deque<ghost::Tid> run_queue_;
    std::unordered_set<ghost::Tid> queued_;
    std::unordered_set<ghost::Tid> dead_;
};

}  // namespace wave::sched
