/**
 * @file
 * Deterministic simulation fuzzer for the Wave model.
 *
 * Modes:
 *
 *   wave_fuzz --seed S --runs N        fuzz N seeded scenarios; on the
 *                                      first oracle failure, shrink it
 *                                      and write a replay artifact
 *   wave_fuzz --replay FILE            re-run a saved artifact
 *   wave_fuzz --replay FILE --shrink   shrink an artifact further
 *   wave_fuzz --print-seed S           dump the scenario for one seed
 *
 * Exit status: 0 = all runs clean, 1 = an oracle failed (artifact
 * written), 2 = usage or I/O error. Every run is deterministic: the
 * same seed (or artifact) reproduces the same event stream bit for
 * bit, which --check-determinism verifies by running each scenario
 * twice and comparing fingerprints.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"

namespace {

using wave::fuzz::GenLimits;
using wave::fuzz::RunResult;
using wave::fuzz::Scenario;
using wave::fuzz::ShrinkOptions;

struct Options {
    std::uint64_t seed = 1;
    int runs = 20;
    std::string out = "wave_fuzz_repro.txt";
    std::string replay;
    bool shrink = true;
    bool check_determinism = false;
    bool print_seed = false;
    bool verbose = false;
    GenLimits limits;
    ShrinkOptions shrink_opts;
};

void
Usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --seed S              first seed (default 1)\n"
        "  --runs N              scenarios to fuzz (default 20)\n"
        "  --out FILE            repro artifact path "
        "(default wave_fuzz_repro.txt)\n"
        "  --replay FILE         run a saved artifact instead of fuzzing\n"
        "  --shrink / --no-shrink  toggle repro shrinking (default on)\n"
        "  --shrink-budget N     max simulations while shrinking\n"
        "  --max-faults N        faults per generated scenario\n"
        "  --enable-bug-faults   include the planted double-commit bug\n"
        "  --check-determinism   run each scenario twice, compare "
        "fingerprints\n"
        "  --print-seed S        print the scenario for seed S and exit\n"
        "  --verbose             per-run reporting\n",
        argv0);
}

bool
ParseArgs(int argc, char** argv, Options* opts)
{
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* v = nullptr;
        if (std::strcmp(arg, "--seed") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->seed = std::strtoull(v, nullptr, 0);
        } else if (std::strcmp(arg, "--runs") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->runs = std::atoi(v);
        } else if (std::strcmp(arg, "--out") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->out = v;
        } else if (std::strcmp(arg, "--replay") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->replay = v;
        } else if (std::strcmp(arg, "--shrink") == 0) {
            opts->shrink = true;
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            opts->shrink = false;
        } else if (std::strcmp(arg, "--shrink-budget") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->shrink_opts.max_runs = std::atoi(v);
        } else if (std::strcmp(arg, "--max-faults") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->limits.max_faults =
                static_cast<std::size_t>(std::atoi(v));
        } else if (std::strcmp(arg, "--enable-bug-faults") == 0) {
            opts->limits.enable_bug_faults = true;
        } else if (std::strcmp(arg, "--check-determinism") == 0) {
            opts->check_determinism = true;
        } else if (std::strcmp(arg, "--print-seed") == 0) {
            if ((v = need_value(i)) == nullptr) return false;
            opts->seed = std::strtoull(v, nullptr, 0);
            opts->print_seed = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            opts->verbose = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg);
            Usage(argv[0]);
            return false;
        }
    }
    return true;
}

RunResult
Execute(const Options& opts, const Scenario& s)
{
    return opts.check_determinism ? wave::fuzz::RunScenarioTwice(s)
                                  : wave::fuzz::RunScenario(s);
}

void
ReportRun(const Scenario& s, const RunResult& r)
{
    std::printf("seed=%llu faults=%zu completed=%llu pending=%llu "
                "fingerprint=%016llx fallback=%d %s\n",
                static_cast<unsigned long long>(s.seed), s.faults.size(),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.pending_at_end),
                static_cast<unsigned long long>(r.event_hash),
                r.fallback_active ? 1 : 0, r.Ok() ? "OK" : "FAIL");
}

/** Shrinks (if enabled), writes the artifact, prints the verdict. */
int
HandleFailure(const Options& opts, const Scenario& failing,
              const RunResult& result)
{
    Scenario minimal = failing;
    RunResult minimal_result = result;
    if (opts.shrink) {
        const wave::fuzz::ShrinkOutcome out =
            wave::fuzz::Shrink(failing, opts.shrink_opts);
        if (out.failing) {
            minimal = out.scenario;
            minimal_result = out.result;
            std::printf("shrunk to %zu fault(s) in %d run(s)\n",
                        minimal.faults.size(), out.runs);
        }
    }
    if (!wave::fuzz::SaveScenario(minimal, opts.out)) {
        std::fprintf(stderr, "cannot write %s\n", opts.out.c_str());
        return 2;
    }
    std::printf("oracle failure (replay: wave_fuzz --replay %s):\n%s",
                opts.out.c_str(), minimal_result.Describe().c_str());
    return 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opts;
    if (!ParseArgs(argc, argv, &opts)) return 2;

    if (opts.print_seed) {
        const Scenario s = GenerateScenario(opts.seed, opts.limits);
        std::printf("%s", wave::fuzz::ScenarioToString(s).c_str());
        return 0;
    }

    if (!opts.replay.empty()) {
        Scenario s;
        std::string error;
        if (!wave::fuzz::LoadScenario(opts.replay, &s, &error)) {
            std::fprintf(stderr, "bad artifact: %s\n", error.c_str());
            return 2;
        }
        const RunResult r = Execute(opts, s);
        ReportRun(s, r);
        if (r.Ok()) return 0;
        if (opts.shrink) return HandleFailure(opts, s, r);
        std::printf("%s", r.Describe().c_str());
        return 1;
    }

    for (int i = 0; i < opts.runs; ++i) {
        const std::uint64_t seed =
            opts.seed + static_cast<std::uint64_t>(i);
        const Scenario s = GenerateScenario(seed, opts.limits);
        const RunResult r = Execute(opts, s);
        if (opts.verbose || !r.Ok()) ReportRun(s, r);
        if (!r.Ok()) return HandleFailure(opts, s, r);
    }
    std::printf("%d scenario(s) clean (seeds %llu..%llu)\n", opts.runs,
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(
                    opts.seed + static_cast<std::uint64_t>(opts.runs) -
                    1));
    return 0;
}
