/**
 * @file
 * wave_analyze driver: repo-specific static checks the C++ type system
 * cannot express, in the spirit of Linux's `sparse` address-space
 * checker. The rule catalog and rationale live in
 * docs/static-analysis.md; the implementation is split across
 * tools/analyze/:
 *
 *   source.{h,cc}      comment/string-aware line model + annotations
 *   coroutines.{h,cc}  Task-head parsing and lifetime contracts
 *   rules.h            the catalog (W001..W305) and Finding record
 *   file_rules.{h,cc}  per-file rules: W00x domains, W10x hot paths,
 *                      W20x concurrency readiness
 *   symbols.{h,cc}     pass 1: cross-TU symbol table + call/ref graph
 *   graph_rules.{h,cc} pass 2: W301 transitive-hot, W302 shard-closure
 *                      leak, W303 mutable-global census, W304
 *                      dead-annotation (lifetime leg), W305 seam bypass
 *   report.{h,cc}      suppression + text/JSON-v2/SARIF emitters
 *
 * The driver owns what needs both the findings and the suppression
 * results: the dead-allow and stale-baseline legs of W304.
 *
 * Usage:
 *   wave_analyze [--root DIR] [--baseline FILE] [--as-src]
 *                [--format=text|json|sarif] [FILE...]
 *   wave_analyze --list-rules
 *
 * With no FILE arguments, analyzes every .h/.cc under DIR/src (model
 * scope: full catalog, including the cross-TU W300 series) plus
 * DIR/tests and DIR/bench (harness scope: W202/W203/W205/W206). With
 * explicit FILEs (fixture snippets in tests), --as-src applies the
 * model-code rules regardless of the files' location — the cross-TU
 * pass then sees exactly the listed files as its tree.
 * --format=json emits the machine-readable wave-analyze-v2 report:
 * every finding with its suppression status, the per-file
 * shard-ownership map, the name-resolved call graph, and the
 * ownership closure. --format=sarif emits SARIF 2.1.0 (reported
 * findings only) for code-scanning upload.
 * Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage
 * or I/O error.
 */
// wave-domain: harness
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/coroutines.h"
#include "analyze/file_rules.h"
#include "analyze/graph_rules.h"
#include "analyze/report.h"
#include "analyze/rules.h"
#include "analyze/source.h"
#include "analyze/symbols.h"

namespace fs = std::filesystem;

using namespace wa;

int
main(int argc, char** argv)
{
    fs::path root = ".";
    fs::path baseline_path;
    bool as_src = false;
    enum class Format { kText, kJson, kSarif };
    Format format = Format::kText;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            ListRules();
            return 0;
        }
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--as-src") {
            as_src = true;
        } else if (arg == "--format=json") {
            format = Format::kJson;
        } else if (arg == "--format=sarif") {
            format = Format::kSarif;
        } else if (arg == "--format=text") {
            format = Format::kText;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wave_analyze: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    std::error_code ec;
    if (!fs::exists(root / "src", ec) && files.empty()) {
        std::fprintf(stderr, "wave_analyze: no src/ under %s\n",
                     root.string().c_str());
        return 2;
    }

    struct Job {
        fs::path full;
        std::string report;
        Scope scope;
    };
    std::vector<Job> jobs;
    if (files.empty()) {
        const auto walk = [&](const char* dir, Scope scope) {
            if (!fs::exists(root / dir, ec)) return;
            for (auto it = fs::recursive_directory_iterator(root / dir);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file()) continue;
                const std::string ext =
                    it->path().extension().string();
                if (ext != ".h" && ext != ".cc") continue;
                const std::string rel =
                    fs::relative(it->path(), root).generic_string();
                // Planted-violation corpora are analyzed explicitly
                // by analyze_test, never as part of the tree.
                if (rel.find("analyze_fixtures") != std::string::npos) {
                    continue;
                }
                jobs.push_back({it->path(), rel, scope});
            }
        };
        walk("src", Scope::kModel);
        walk("tests", Scope::kHarness);
        walk("bench", Scope::kHarness);
    } else {
        for (const std::string& f : files) {
            const fs::path p(f);
            const bool model =
                as_src ||
                p.generic_string().find("src/") != std::string::npos;
            jobs.push_back({p, p.generic_string(),
                            model ? Scope::kModel : Scope::kHarness});
        }
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) {
                  return a.report < b.report;
              });

    FileRules rules(root, /*werror_missing_domain=*/true);
    std::map<std::string, SourceFile> loaded;
    std::vector<const Job*> order;
    for (const Job& job : jobs) {
        auto f = LoadFile(job.full, job.report);
        if (!f) {
            std::fprintf(stderr, "wave_analyze: cannot read %s\n",
                         job.full.string().c_str());
            return 2;
        }
        f->coroutines = ParseCoroutines(*f);
        MergeContracts(*f, rules.registry);
        loaded.emplace(job.report, std::move(*f));
        order.push_back(&job);
    }
    // Second pass: contracts from every file (headers annotating the
    // public API, definitions elsewhere) are visible to every check.
    for (const Job* job : order) {
        rules.Analyze(loaded.at(job->report), job->scope);
    }

    // Cross-TU passes over the model files: symbol table first (every
    // file's symbols must exist before any site resolves), then
    // resolution, then the graph rules.
    std::map<std::string, const SourceFile*> model_files;
    for (const Job* job : order) {
        if (job->scope != Scope::kModel) continue;
        model_files.emplace(job->report, &loaded.at(job->report));
    }
    SymbolGraph graph;
    for (const auto& [path, f] : model_files) graph.AddFile(*f);
    for (const auto& [path, f] : model_files) graph.ResolveFile(*f);

    std::vector<Finding> findings = std::move(rules.findings);
    {
        GraphRules graph_rules(graph, model_files);
        for (Finding& fd : graph_rules.Run()) {
            findings.push_back(std::move(fd));
        }
    }
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         if (a.path != b.path) return a.path < b.path;
                         if (a.line != b.line) return a.line < b.line;
                         return a.rule < b.rule;
                     });

    const std::vector<BaselineEntry> baseline =
        baseline_path.empty() ? std::vector<BaselineEntry>{}
                              : LoadBaseline(baseline_path);
    std::vector<bool> baseline_used(baseline.size(), false);

    // Suppression pass. Which allow() sites actually suppressed
    // something feeds the W304 dead-allow leg below.
    std::vector<Status> status;
    status.reserve(findings.size());
    std::set<std::pair<std::string, int>> used_allows;
    for (const Finding& finding : findings) {
        const SourceFile& f = loaded.at(finding.path);
        Status s = Status::kReported;
        for (std::size_t b = 0; b < baseline.size(); ++b) {
            if (BaselineMatches(baseline[b].text, finding)) {
                baseline_used[b] = true;
                s = Status::kBaseline;
            }
        }
        int allow_line = 0;
        if (InlineSuppressed(f, finding, &allow_line)) {
            s = Status::kInline;
            used_allows.insert({finding.path, allow_line});
        }
        status.push_back(s);
    }

    // W304, dead-allow leg: an inline allow() that suppressed nothing
    // this run names a violation that no longer exists. Baseline
    // matching applies (a transition tree may park these); inline
    // self-suppression deliberately does not.
    for (const Job* job : order) {
        const SourceFile& f = loaded.at(job->report);
        for (const AllowSite& site : f.allows) {
            if (used_allows.count({f.path, site.line})) continue;
            std::string ids;
            for (const std::string& r : site.rules) {
                if (!ids.empty()) ids += " ";
                ids += r;
            }
            Finding fd{f.path, site.line, "W304",
                       "dead annotation: allow(" + ids +
                           ") suppressed nothing in this run — the "
                           "violation it justified no longer exists; "
                           "delete it (dead suppressions rot)"};
            Status s = Status::kReported;
            for (std::size_t b = 0; b < baseline.size(); ++b) {
                if (BaselineMatches(baseline[b].text, fd)) {
                    baseline_used[b] = true;
                    s = Status::kBaseline;
                }
            }
            findings.push_back(std::move(fd));
            status.push_back(s);
        }
    }

    // W304, stale-baseline leg: an entry that matched no finding.
    std::vector<std::string> stale;
    for (std::size_t b = 0; b < baseline.size(); ++b) {
        if (baseline_used[b]) continue;
        stale.push_back(baseline[b].text);
        findings.push_back(
            {baseline_path.generic_string(), baseline[b].line, "W304",
             "stale baseline entry `" + baseline[b].text +
                 "` matches no finding; delete it (dead suppressions "
                 "rot)"});
        status.push_back(Status::kReported);
    }

    int reported = 0;
    int suppressed = 0;
    for (const Status s : status) {
        if (s == Status::kReported) {
            ++reported;
        } else {
            ++suppressed;
        }
    }

    ReportInput out;
    out.findings = &findings;
    out.status = &status;
    out.reported = reported;
    out.suppressed = suppressed;
    out.stale = &stale;
    out.file_count = jobs.size();
    out.model_files = &model_files;
    out.graph = &graph;
    out.baseline_path = baseline_path;
    switch (format) {
        case Format::kText: EmitText(out); break;
        case Format::kJson: EmitJson(out); break;
        case Format::kSarif: EmitSarif(out); break;
    }
    return reported == 0 ? 0 : 1;
}
