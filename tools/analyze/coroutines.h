/**
 * @file
 * Task-coroutine signature parsing and the tree-wide lifetime-contract
 * registry behind the W201/W203 rules. Contracts are matched by
 * function name: an annotation on a header declaration covers
 * same-name out-of-line definitions tree-wide.
 */
// wave-domain: harness
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace wa {

/** Do explicit parameters include a reference/pointer/view type? */
bool ParamsHaveRefs(const std::string& params);

/**
 * Finds every Task-returning function head in @p f and records, for
 * definitions, whether the body is a coroutine. Text-level: the head
 * must start a line (after optional inline/static/virtual/...), which
 * matches this codebase's return-type-first style; `Task<>` locals,
 * parameters, and `co_await q.Receive()` expressions do not parse as
 * heads and are skipped.
 */
std::vector<Coroutine> ParseCoroutines(const SourceFile& f);

/** Tree-wide name-keyed merge of coroutine lifetime contracts. */
struct ContractEntry {
    bool spawn_safe = false;
    bool caller_awaits = false;
    bool ref_params = false;  ///< any same-name site takes refs/this
    bool annotated = false;   ///< any same-name site carries a contract
};

using ContractRegistry = std::map<std::string, ContractEntry>;

void MergeContracts(const SourceFile& f, ContractRegistry& registry);

/**
 * 1-based lines of @p f whose wave-lifetime annotation is attached to
 * no parsed Task head — the W304 dead-annotation input. An annotation
 * is attached when it falls in some head's contract window
 * [sig_line-2, head_end].
 */
std::vector<int> DeadLifetimeLines(const SourceFile& f);

}  // namespace wa
