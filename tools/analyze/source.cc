// wave-domain: harness
#include "analyze/source.h"

#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>

namespace wa {

const char*
DomainName(Domain d)
{
    switch (d) {
        case Domain::kHost: return "host";
        case Domain::kNic: return "nic";
        case Domain::kPcie: return "pcie";
        case Domain::kNeutral: return "neutral";
        case Domain::kHarness: return "harness";
        default: return "unknown";
    }
}

std::optional<Domain>
ParseDomain(const std::string& name)
{
    if (name == "host") return Domain::kHost;
    if (name == "nic") return Domain::kNic;
    if (name == "pcie") return Domain::kPcie;
    if (name == "neutral") return Domain::kNeutral;
    if (name == "harness") return Domain::kHarness;
    return std::nullopt;
}

bool
MayInclude(Domain from, Domain to)
{
    if (from == Domain::kHarness) return true;
    if (to == Domain::kNeutral) return true;
    if (to == Domain::kPcie) return from != Domain::kNeutral;
    return from == to;  // concrete domains only reach themselves
}

SplitLine
LineSplitter::Split(const std::string& line)
{
    SplitLine out;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        const char next = i + 1 < line.size() ? line[i + 1] : '\0';
        if (in_block_comment_) {
            if (c == '*' && next == '/') {
                in_block_comment_ = false;
                ++i;
            } else {
                out.comment += c;
            }
            continue;
        }
        if (in_string_) {
            if (c == '\\') {
                out.code += "  ";
                ++i;
            } else if (c == quote_) {
                in_string_ = false;
                out.code += c;
            } else {
                out.code += ' ';
            }
            continue;
        }
        if (c == '/' && next == '/') {
            out.comment += line.substr(i + 2);
            break;
        }
        if (c == '/' && next == '*') {
            in_block_comment_ = true;
            ++i;
            continue;
        }
        if (c == '"' || c == '\'') {
            in_string_ = true;
            quote_ = c;
            out.code += c;
            continue;
        }
        out.code += c;
    }
    // Strings do not span lines in this codebase (no raw strings).
    in_string_ = false;
    return out;
}

namespace {

/** Records one parsed line's annotations into the file state. */
struct AnnotationScanner {
    bool file_hot = false;
    int hot_depth = 0;
    int next_region = 0;
    int open_region = 0;

    void
    Scan(SourceFile& f, const std::string& comment)
    {
        static const std::regex kDomainRe(R"(wave-domain:\s*([a-z]+))");
        // Anchored to the whole comment: prose *mentioning* wave-hot
        // (docs, fixture headers) must not mark a file hot; only a
        // standalone annotation line does.
        static const std::regex kHotRe(
            R"(^\s*wave-hot(:\s*(begin|end))?\s*$)");
        static const std::regex kOwnsRe(
            R"(wave-owns\(\s*([A-Za-z-]*)\s*\))");
        static const std::regex kSharedRe(R"(wave-shared\(([^)]*)\))");
        static const std::regex kAllowRe(
            R"(wave-analyze:\s*allow\(\s*((?:W[0-9]{3}[\s,]+)*W[0-9]{3}))");
        static const std::regex kIdRe(R"(W[0-9]{3})");
        static const std::regex kLifetimeRe(R"(wave-lifetime\()");

        const int line_no = static_cast<int>(f.raw.size());
        if (f.domain == Domain::kUnknown) {
            std::smatch m;
            if (std::regex_search(comment, m, kDomainRe)) {
                if (auto d = ParseDomain(m[1].str())) {
                    f.domain = *d;
                    f.domain_line = line_no;
                }
            }
        }
        std::smatch om;
        if (f.owns.empty() && f.owns_line == 0 &&
            std::regex_search(comment, om, kOwnsRe)) {
            f.owns = om[1].str();
            f.owns_line = line_no;
        }
        if (!f.has_shared && std::regex_search(comment, om, kSharedRe)) {
            f.has_shared = true;
            f.shared_reason = om[1].str();
            f.shared_line = line_no;
        }
        std::smatch am;
        if (std::regex_search(comment, am, kAllowRe)) {
            AllowSite site;
            site.line = line_no;
            const std::string ids = am[1].str();
            auto begin =
                std::sregex_iterator(ids.begin(), ids.end(), kIdRe);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                site.rules.push_back(it->str());
            }
            f.allows.push_back(std::move(site));
        }
        if (std::regex_search(comment, kLifetimeRe)) {
            f.lifetime_lines.push_back(line_no);
        }
        std::smatch hm;
        if (std::regex_search(comment, hm, kHotRe)) {
            const std::string kind = hm[2].str();
            if (kind == "begin") {
                if (hot_depth == 0) open_region = ++next_region;
                ++hot_depth;
            } else if (kind == "end") {
                if (hot_depth > 0) --hot_depth;
            } else {
                file_hot = true;
            }
        }
        // The `begin` line is hot; the `end` line is not.
        f.hot.push_back(hot_depth > 0 ? open_region : 0);
    }
};

}  // namespace

SourceFile
ParseSource(const std::string& report_path, const std::string& content)
{
    SourceFile f;
    f.path = report_path;
    LineSplitter splitter;
    AnnotationScanner scanner;
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) {
        f.raw.push_back(line);
        f.lines.push_back(splitter.Split(line));
        scanner.Scan(f, f.lines.back().comment);
    }
    if (scanner.file_hot) {
        const int file_region = ++scanner.next_region;
        for (int& h : f.hot) {
            if (h == 0) h = file_region;
        }
    }
    return f;
}

std::optional<SourceFile>
LoadFile(const std::filesystem::path& fullpath,
         const std::string& report_path)
{
    std::ifstream in(fullpath);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return ParseSource(report_path, buf.str());
}

int
ParenBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '(') ++n;
        if (c == ')') --n;
    }
    return n;
}

int
BraceBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '{') ++n;
        if (c == '}') --n;
    }
    return n;
}

std::string
CallArgument(const std::string& code, std::size_t open_paren)
{
    int depth = 0;
    for (std::size_t i = open_paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
            --depth;
            if (depth == 0) {
                return code.substr(open_paren + 1, i - open_paren - 1);
            }
        }
    }
    return code.substr(open_paren + 1);
}

std::string
JoinedCallArgument(const SourceFile& f, std::size_t line,
                   std::size_t open_col)
{
    std::string out;
    int depth = 0;
    const std::size_t limit = std::min(f.lines.size(), line + 400);
    for (std::size_t i = line; i < limit; ++i) {
        const std::string& code = f.lines[i].code;
        const std::size_t start = i == line ? open_col : 0;
        for (std::size_t j = start; j < code.size(); ++j) {
            const char c = code[j];
            if (c == '(') {
                ++depth;
                if (depth == 1) continue;  // skip the opening paren
            }
            if (c == ')') {
                --depth;
                if (depth == 0) return out;
            }
            out += c;
        }
        out += '\n';
    }
    return out;
}

bool
PathHas(const std::string& path, const std::string& needle)
{
    return path.find(needle) != std::string::npos;
}

bool
PathEndsWith(const std::string& path, const std::string& tail)
{
    return path.size() >= tail.size() &&
           path.compare(path.size() - tail.size(), tail.size(), tail) ==
               0;
}

}  // namespace wa
