/**
 * @file
 * Pass 2 of the cross-TU analysis: the W30x rules that need the whole
 * tree at once — transitive-hot reachability (W301), shard-closure
 * leaks (W302), the mutable-global census (W303), dead wave-lifetime
 * annotations (the graph-visible leg of W304; dead allow() comments
 * and stale baseline entries are the driver's job because they need
 * the suppression results), and symbol-granularity seam bypasses
 * (W305).
 */
// wave-domain: harness
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/rules.h"
#include "analyze/source.h"
#include "analyze/symbols.h"

namespace wa {

/**
 * The shard a file's mutable state belongs to: the explicit
 * wave-owns(<shard>) argument when present, else derived from a
 * host/nic clock domain, else "" (neutral/pcie/unknown files own
 * nothing exclusively).
 */
std::string ShardOf(const SourceFile& f);

class GraphRules {
  public:
    GraphRules(const SymbolGraph& graph,
               const std::map<std::string, const SourceFile*>& files)
        : graph_(graph), files_(files)
    {
    }

    /** Runs W301/W302/W303/W305 plus the W304 lifetime leg. */
    std::vector<Finding> Run();

  private:
    void CheckTransitiveHot(std::vector<Finding>& out);
    void CheckShardClosure(std::vector<Finding>& out);
    void CheckMutableGlobals(std::vector<Finding>& out);
    void CheckDeadLifetimes(std::vector<Finding>& out);
    void CheckSeamBypass(std::vector<Finding>& out);

    const SourceFile* FileOf(const std::string& path) const;

    const SymbolGraph& graph_;
    const std::map<std::string, const SourceFile*>& files_;
};

}  // namespace wa
