/**
 * @file
 * Suppression machinery (inline allow() comments and the baseline
 * file) and the three report emitters: human text, the
 * wave-analyze-v2 JSON artifact (findings + call graph + ownership
 * closure), and SARIF 2.1.0 for code-scanning upload.
 */
// wave-domain: harness
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analyze/rules.h"
#include "analyze/source.h"
#include "analyze/symbols.h"

namespace wa {

/** Suppression status of one finding, for reporting. */
enum class Status { kReported, kInline, kBaseline };

/** One baseline line, with its position for stale-entry findings. */
struct BaselineEntry {
    std::string text;  ///< `path:RULE` (trailing-/ paths match by prefix)
    int line = 0;      ///< 1-based line in the baseline file
};

std::vector<BaselineEntry> LoadBaseline(
    const std::filesystem::path& path);

/** Does baseline entry @p entry suppress @p finding? */
bool BaselineMatches(const std::string& entry, const Finding& finding);

/**
 * Inline `wave-analyze: allow(...)` on the line or the previous one.
 * When it suppresses, @p allow_line receives the 1-based line of the
 * allow comment itself (for dead-allow accounting).
 */
bool InlineSuppressed(const SourceFile& f, const Finding& finding,
                      int* allow_line);

std::string JsonEscape(const std::string& s);

void ListRules();

/** Everything the emitters need, assembled by main(). */
struct ReportInput {
    const std::vector<Finding>* findings = nullptr;
    const std::vector<Status>* status = nullptr;  ///< parallel array
    int reported = 0;
    int suppressed = 0;
    const std::vector<std::string>* stale = nullptr;
    std::size_t file_count = 0;
    /** Model files in report-path order, for the v2 artifact. */
    const std::map<std::string, const SourceFile*>* model_files =
        nullptr;
    const SymbolGraph* graph = nullptr;
    std::filesystem::path baseline_path;
};

void EmitText(const ReportInput& in);
void EmitJson(const ReportInput& in);
void EmitSarif(const ReportInput& in);

}  // namespace wa
