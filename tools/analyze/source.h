/**
 * @file
 * Source model for wave_analyze: comment/string-aware line splitting,
 * the per-file annotation state (wave-domain, wave-hot regions,
 * wave-owns/wave-shared, inline allow() comments), and the small
 * text-parsing helpers every rule module shares.
 *
 * The analyzer is deliberately libclang-free (a token/declaration-
 * level checker in the sparse tradition); everything in this header
 * operates on a per-line split of the file into a *code* channel
 * (strings blanked, comments removed) and a *comment* channel.
 */
// wave-domain: harness
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace wa {

enum class Domain { kUnknown, kHost, kNic, kPcie, kNeutral, kHarness };

const char* DomainName(Domain d);
std::optional<Domain> ParseDomain(const std::string& name);

/** May a file in domain @p from include a file in domain @p to? */
bool MayInclude(Domain from, Domain to);

/** One source line split into code and comment text. */
struct SplitLine {
    std::string code;     ///< strings blanked, comments removed
    std::string comment;  ///< contents of // and /* */ comments
};

/**
 * Comment/string-aware line splitter. Block-comment state carries
 * across lines; string contents are blanked from the code channel so
 * a "//" inside a literal is not mistaken for a comment — and so an
 * allow() spelled inside a string literal never suppresses anything.
 */
class LineSplitter {
  public:
    SplitLine Split(const std::string& line);

  private:
    bool in_block_comment_ = false;
    bool in_string_ = false;
    char quote_ = '"';
};

/** Argument-lifetime contract of a Task coroutine (W201/W203). */
enum class Contract { kNone, kCallerAwaits, kSpawnSafe, kMalformed };

/** One parsed Task-returning function signature (and body facts). */
struct Coroutine {
    std::string name;       ///< last identifier component ("PollInto")
    std::string full_name;  ///< as written ("HostToNicChannel::PollInto")
    bool qualified = false;    ///< Cls::Name definition → implicit this
    bool ref_params = false;   ///< params include & / * / view types
    bool is_definition = false;
    bool is_coroutine = false;  ///< body contains co_await/return/yield
    int sig_line = 0;           ///< 1-based first line of the head
    int head_end = 0;           ///< 1-based line of the '{' or ';'
    Contract contract = Contract::kNone;
    std::string contract_text;  ///< raw annotation arg (for diagnostics)
};

/** One inline `wave-analyze: allow(...)` comment (for W304). */
struct AllowSite {
    int line = 0;               ///< 1-based line of the comment
    std::vector<std::string> rules;  ///< rule ids the allow lists
};

struct SourceFile {
    std::string path;          ///< reported path
    std::vector<std::string> raw;
    std::vector<SplitLine> lines;
    Domain domain = Domain::kUnknown;
    int domain_line = 0;
    /**
     * Per-line hot-region id, parallel to `lines`: 0 = not hot, >0 =
     * id of the `// wave-hot` region the line belongs to. A bare
     * file-scope `// wave-hot` puts every line in one region.
     */
    std::vector<int> hot;
    /** File-scope shard-ownership annotation (W204). */
    std::string owns;           ///< wave-owns(<shard>) argument, or ""
    int owns_line = 0;
    std::string shared_reason;  ///< wave-shared(<reason>) argument
    bool has_shared = false;
    int shared_line = 0;
    /** Task-returning functions parsed from this file (W201/W203). */
    std::vector<Coroutine> coroutines;
    /** Every inline allow() comment, for the W304 dead-allow check. */
    std::vector<AllowSite> allows;
    /** 1-based lines carrying a wave-lifetime(...) annotation. */
    std::vector<int> lifetime_lines;

    bool IsHot(int line_1based) const
    {
        return line_1based >= 1 &&
               line_1based <= static_cast<int>(hot.size()) &&
               hot[static_cast<std::size_t>(line_1based - 1)] > 0;
    }
};

/** Parses file content already in memory (unit tests, fixtures). */
SourceFile ParseSource(const std::string& report_path,
                       const std::string& content);

/** Loads and parses a file from disk; nullopt on I/O error. */
std::optional<SourceFile> LoadFile(const std::filesystem::path& fullpath,
                                   const std::string& report_path);

// --- shared text helpers ----------------------------------------------

/** Net '(' minus ')' on the code channel of a string. */
int ParenBalance(const std::string& s);

/** Net '{' minus '}' on the code channel of a string. */
int BraceBalance(const std::string& s);

/** Argument text of a call: from after '(' to its match (same line). */
std::string CallArgument(const std::string& code, std::size_t open_paren);

/**
 * Argument text of a call whose parentheses may span lines: joins the
 * code channel (newline-separated) from @p line at @p open_col to the
 * matching close paren. Bounded; returns what it has on imbalance.
 */
std::string JoinedCallArgument(const SourceFile& f, std::size_t line,
                               std::size_t open_col);

bool PathHas(const std::string& path, const std::string& needle);
bool PathEndsWith(const std::string& path, const std::string& tail);

}  // namespace wa
