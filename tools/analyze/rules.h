/**
 * @file
 * The wave_analyze rule catalog and the Finding record every rule
 * module produces. See docs/static-analysis.md for the full catalog
 * with rationale; tools/analyze/file_rules.h holds the per-file W00x/
 * W10x/W20x rules and tools/analyze/graph_rules.h the cross-TU W30x
 * rules.
 */
// wave-domain: harness
#pragma once

#include <string>

namespace wa {

struct Finding {
    std::string path;  ///< as reported (relative to root when possible)
    int line = 0;
    std::string rule;
    std::string message;
};

/** Which rule set a file gets. */
enum class Scope { kModel, kHarness };

struct Rule {
    const char* id;
    const char* name;
    const char* summary;
};

inline constexpr Rule kRules[] = {
    {"W001", "missing-domain",
     "every model source file carries a wave-domain annotation"},
    {"W002", "cross-domain-include",
     "includes respect the host/nic/pcie/neutral matrix"},
    {"W003", "cross-domain-symbol",
     "no naming symbols owned by the opposite domain"},
    {"W004", "actor-domain",
     "RegisterActor call sites declare the actor's domain"},
    {"W005", "hook-coverage",
     "checker calls gated by WAVE_CHECK_HOOK; endpoints instrumented"},
    {"W006", "stale-reason",
     "tolerate_stale != false carries a same-line justification"},
    {"W007", "wall-clock-rng",
     "no wall clock, std::rand, or unseeded RNG in model code"},
    {"W008", "time-narrowing",
     "double<->integer time conversion only through sim/time.h"},
    {"W101", "hot-alloc",
     "no heap allocation on wave-hot paths (new, make_unique/shared, "
     "unreserved push_back, std::string, std::function)"},
    {"W102", "hot-throw",
     "no throw/try/catch inside wave-hot regions"},
    {"W103", "hot-lock",
     "no mutexes or atomics in the single-threaded sim core hot set"},
    {"W104", "hot-by-value",
     "no pass-by-value of heavy types across wave-hot signatures"},
    {"W105", "hot-io",
     "no printf-family or iostream I/O on wave-hot paths"},
    {"W106", "hot-unbatched",
     "no per-element Channel ops inside wave-hot loops (bulk API)"},
    {"W201", "dangling-after-suspend",
     "Task coroutines taking refs/pointers/views (or implicit this) "
     "carry a wave-lifetime(caller-awaits|spawn-safe: ...) contract"},
    {"W202", "lambda-coroutine",
     "no capturing-lambda coroutines (captures live in the closure, "
     "which dies at the first suspension when temporary)"},
    {"W203", "spawn-dangling",
     "Spawn() only detaches spawn-safe tasks; never caller-awaits "
     "coroutines or lambdas bound to the spawner's stack"},
    {"W204", "shard-ownership",
     "pcie-seam and actor-registering files classify their mutable "
     "state with wave-owns(<shard>) or wave-shared(<reason>)"},
    {"W205", "unstable-iteration",
     "no iteration over pointer-keyed unordered containers in model "
     "code (address-dependent order breaks determinism fingerprints)"},
    {"W206", "suspend-under-guard",
     "no co_await while a scoped guard or borrowed view local is live"},
    {"W301", "transitive-hot",
     "no wave-hot call site reaches, through any call chain, a cold "
     "function that allocates, throws, locks, or does I/O"},
    {"W302", "shard-closure-leak",
     "no wave-owns(A) file references mutable state defined in a "
     "wave-owns(B) file except through the pcie seam or wave-shared"},
    {"W303", "mutable-global-census",
     "every namespace-scope mutable variable (and dynamically-"
     "initialized mutable local static) in model code carries a "
     "wave-shared justification — cross-shard nondeterminism hazard"},
    {"W304", "dead-annotation",
     "no wave-lifetime contract, inline allow(), or baseline entry "
     "that names nothing in the tree anymore"},
    {"W305", "seam-bypass",
     "no host<->nic call edges at symbol granularity; cross-domain "
     "calls route through the pcie seam"},
};

}  // namespace wa
