/**
 * @file
 * The per-file rule families: W00x clock-domain structure, W10x
 * hot-path performance, W20x concurrency readiness. Each rule sees one
 * SourceFile at a time (plus the tree-wide coroutine-contract
 * registry); the cross-TU W30x rules live in graph_rules.h.
 */
// wave-domain: harness
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analyze/coroutines.h"
#include "analyze/rules.h"
#include "analyze/source.h"

namespace wa {

class FileRules {
  public:
    FileRules(std::filesystem::path root, bool werror_missing_domain)
        : root_(std::move(root)),
          werror_missing_domain_(werror_missing_domain)
    {
    }

    std::vector<Finding> findings;
    ContractRegistry registry;

    /** Analyzes one file under the given rule scope. */
    void Analyze(const SourceFile& f, Scope scope);

    /** Domain of an include target, loading and caching the file. */
    Domain DomainOfInclude(const std::string& include_path);

  private:
    void Add(const std::string& path, int line, const char* rule,
             std::string message);

    void CheckIncludes(const SourceFile& f);
    void CheckSymbols(const SourceFile& f);
    void CheckActors(const SourceFile& f, bool in_check);
    void CheckHooks(const SourceFile& f, bool in_check);
    void CheckStaleReasons(const SourceFile& f);
    void CheckWallClock(const SourceFile& f);
    void CheckTimeNarrowing(const SourceFile& f);
    void CheckEndpointCoverage(const SourceFile& f);
    void CheckHotPaths(const SourceFile& f);
    void CheckCoroutineContracts(const SourceFile& f);
    void CheckLambdaCoroutines(const SourceFile& f);
    void CheckSpawnSites(const SourceFile& f);
    void AnalyzeSpawnArgument(const SourceFile& f, int line_no,
                              const std::string& arg);
    void CheckShardOwnership(const SourceFile& f, bool in_check);
    void CheckUnstableIteration(const SourceFile& f);
    void CheckSuspendUnderGuard(const SourceFile& f);

    static bool RegionReserves(const SourceFile& f, int region,
                               std::size_t upto);

    std::filesystem::path root_;
    bool werror_missing_domain_;
    std::map<std::string, Domain> include_domains_;
};

}  // namespace wa
