// wave-domain: harness
#include "analyze/graph_rules.h"

#include <algorithm>

#include "analyze/coroutines.h"
#include <deque>
#include <set>

namespace wa {

std::string
ShardOf(const SourceFile& f)
{
    if (!f.owns.empty()) return f.owns;
    if (f.domain == Domain::kHost) return "host";
    if (f.domain == Domain::kNic) return "nic";
    return "";
}

const SourceFile*
GraphRules::FileOf(const std::string& path) const
{
    const auto it = files_.find(path);
    return it == files_.end() ? nullptr : it->second;
}

std::vector<Finding>
GraphRules::Run()
{
    std::vector<Finding> out;
    CheckTransitiveHot(out);
    CheckShardClosure(out);
    CheckMutableGlobals(out);
    CheckDeadLifetimes(out);
    CheckSeamBypass(out);
    return out;
}

void
GraphRules::CheckTransitiveHot(std::vector<Finding>& out)
{
    const auto& symbols = graph_.symbols();
    const auto& calls = graph_.calls();

    // caller symbol -> outgoing edge indices, in insertion (and
    // therefore deterministic sorted-file) order.
    std::map<int, std::vector<std::size_t>> adj;
    for (std::size_t i = 0; i < calls.size(); ++i) {
        adj[calls[i].caller].push_back(i);
    }

    std::set<std::string> reported;
    for (const CallEdge& site : calls) {
        if (!site.hot || site.hook_gated) continue;

        // BFS from the callee; the shortest explain path to each
        // faulty sink is reconstructed through `parent`.
        std::map<int, int> parent;  // symbol -> predecessor symbol
        parent[site.callee] = -1;
        std::deque<int> queue{site.callee};
        while (!queue.empty()) {
            const int at = queue.front();
            queue.pop_front();
            const Symbol& sym =
                symbols[static_cast<std::size_t>(at)];
            // Abort paths ([[noreturn]] anywhere in the overload set)
            // are not steady-state cost: neither their facts nor
            // anything behind them counts.
            if (graph_.IsNoReturn(sym)) continue;
            if (!sym.facts.empty()) {
                const FactSite& fact = sym.facts.front();
                std::string path_str = sym.full;
                for (int p = parent[at]; p != -1; p = parent[p]) {
                    path_str =
                        symbols[static_cast<std::size_t>(p)].full +
                        " -> " + path_str;
                }
                const std::string key = site.file + ":" +
                                        std::to_string(site.line) +
                                        ":" + sym.full;
                if (reported.insert(key).second) {
                    out.push_back(
                        {site.file, site.line, "W301",
                         "wave-hot call site reaches `" + sym.full +
                             "`, which " + FactName(fact.fact) +
                             " (`" + fact.detail + "`, " + sym.file +
                             ":" + std::to_string(fact.line) +
                             "); call path: " + path_str});
                }
                // Keep walking: other sinks behind this one still
                // deserve their own explain paths.
            }
            const auto it = adj.find(at);
            if (it == adj.end()) continue;
            for (std::size_t e : it->second) {
                const CallEdge& next = calls[e];
                if (next.hook_gated) continue;
                if (parent.count(next.callee)) continue;
                parent[next.callee] = at;
                queue.push_back(next.callee);
            }
        }
    }
}

void
GraphRules::CheckShardClosure(std::vector<Finding>& out)
{
    const auto& symbols = graph_.symbols();
    std::set<std::string> reported;
    for (const RefEdge& ref : graph_.refs()) {
        const Symbol& g = symbols[static_cast<std::size_t>(ref.global)];
        const SourceFile* def_file = FileOf(g.file);
        const SourceFile* use_file = FileOf(ref.file);
        if (def_file == nullptr || use_file == nullptr) continue;
        if (def_file->has_shared) continue;
        if (def_file->domain == Domain::kPcie ||
            use_file->domain == Domain::kPcie) {
            continue;  // the seam is the sanctioned crossing point
        }
        const std::string def_shard = ShardOf(*def_file);
        const std::string use_shard = ShardOf(*use_file);
        if (def_shard.empty() || use_shard.empty()) continue;
        if (def_shard == use_shard) continue;
        const std::string key =
            ref.file + ":" + std::to_string(ref.line) + ":" + g.full;
        if (!reported.insert(key).second) continue;
        out.push_back(
            {ref.file, ref.line, "W302",
             "shard-closure leak: references mutable state `" + g.full +
                 "` owned by shard `" + def_shard + "` (" + g.file +
                 ":" + std::to_string(g.line) +
                 ") from a shard-`" + use_shard +
                 "` file; route through the pcie seam or mark the "
                 "definition wave-shared(<reason>)"});
    }
}

void
GraphRules::CheckMutableGlobals(std::vector<Finding>& out)
{
    for (const Symbol& s : graph_.symbols()) {
        if (s.kind == SymKind::kFunction || s.is_const) continue;
        const SourceFile* f = FileOf(s.file);
        if (f == nullptr) continue;
        // Checker shadow state is observer-side by construction; its
        // census lives with the W005 hook-coverage rules.
        if (PathHas(s.file, "check/")) continue;
        if (f->has_shared) continue;
        const char* what = s.kind == SymKind::kGlobal
                               ? "namespace-scope mutable variable"
                               : "mutable function-local static";
        out.push_back(
            {s.file, s.line, "W303",
             std::string(what) + " `" + s.full +
                 "` is a cross-shard nondeterminism hazard: mark the "
                 "file wave-shared(<reason>) or justify inline with "
                 "allow(W303 <reason>)"});
    }
}

void
GraphRules::CheckDeadLifetimes(std::vector<Finding>& out)
{
    for (const auto& [path, file] : files_) {
        for (int line : DeadLifetimeLines(*file)) {
            out.push_back(
                {path, line, "W304",
                 "dead annotation: this wave-lifetime contract is "
                 "attached to no Task-returning function head — the "
                 "function it named moved or no longer exists"});
        }
    }
}

void
GraphRules::CheckSeamBypass(std::vector<Finding>& out)
{
    const auto& symbols = graph_.symbols();
    std::set<std::string> reported;
    for (const CallEdge& e : graph_.calls()) {
        if (e.hook_gated) continue;
        const Symbol& callee =
            symbols[static_cast<std::size_t>(e.callee)];
        const SourceFile* caller_file = FileOf(e.file);
        const SourceFile* callee_file = FileOf(callee.file);
        if (caller_file == nullptr || callee_file == nullptr) continue;
        const Domain from = caller_file->domain;
        const Domain to = callee_file->domain;
        const bool bypass =
            (from == Domain::kHost && to == Domain::kNic) ||
            (from == Domain::kNic && to == Domain::kHost);
        if (!bypass) continue;
        const std::string key =
            e.file + ":" + std::to_string(e.line) + ":" + callee.full;
        if (!reported.insert(key).second) continue;
        out.push_back(
            {e.file, e.line, "W305",
             "seam bypass: " + std::string(DomainName(from)) +
                 "-domain code calls `" + callee.full +
                 "` defined in " + DomainName(to) + "-domain file " +
                 callee.file +
                 "; cross-domain calls route through the pcie seam"});
    }
}

}  // namespace wa
