// wave-domain: harness
#include "analyze/file_rules.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace wa {

namespace {

namespace fs = std::filesystem;

/**
 * Namespaces owned wholly by one concrete domain. Mixed-domain
 * namespaces (ghost: host kernel + neutral policy ABI) are enforced at
 * include granularity by W002 instead.
 */
const std::map<std::string, Domain> kOwnedNamespaces = {
    {"sol", Domain::kNic},
    {"workload", Domain::kHost},
    {"rpc", Domain::kHost},
};

/**
 * Queue/txn endpoint files that must contain checker instrumentation:
 * the cross-domain data path is exactly where the dynamic checkers
 * watch for coherence and ordering bugs, so a hook-free endpoint file
 * means a blind spot. Matched as path suffixes.
 */
const char* const kEndpointFiles[] = {
    "channel/mmio_queue.cc", "channel/dma_queue.cc",
    "pcie/mmio.cc",          "pcie/dma.cc",
    "pcie/msix.cc",          "wave/txn.cc",
    "wave/shm_queue.h",
};

/**
 * wave::check entry points callable from model code. Mirrors the
 * public API of coherence.h, protocol.h, and hb.h plus attach/bind
 * helpers; extend when adding checker API. (Folded in from the retired
 * tools/lint_hooks.sh.)
 */
const char* const kCheckerCallRe =
    R"((->|\.)\s*()"
    "OnWrite|OnRead|OnCacheFill|OnCacheDrop|OnWcBuffered|"
    "OnWcDrained|OnDmaWrite|OnOrderingPoint|OnShmAccess|"
    "OnTxnCreated|OnTxnPublished|OnTxnDelivered|OnTxnOutcome|"
    "OnTxnOutcomeObserved|OnStreamSend|OnStreamRecv|"
    "OnTaskState|OnCommitDecision|OnWatchdogArmed|"
    "OnWatchdogExpired|OnWatchdogFed|"
    "OnAccess|OnRelease|OnAcquire|RegisterActor|AllowUnordered|"
    "AttachChecker|AttachCheckers|AttachProtocol|AttachHb|"
    "BindCheckers"
    R"()\s*\()";

const char* const kWallClockRe =
    R"(\bstd::chrono\b|\bgettimeofday\b|\bclock_gettime\b)"
    R"(|\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\))"
    R"(|\brandom_device\b|\bstd::mt19937|\bsteady_clock\b)"
    R"(|\bsystem_clock\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))";

/** Time-flavoured tokens: identifiers/calls that denote nanoseconds. */
const char* const kTimeTokenRe =
    R"((^|[^A-Za-z0-9_])ns([^A-Za-z0-9_]|$)|_ns\b|[A-Za-z0-9_]*Ns\b)"
    R"(|\.ns\(\)|\bNow\(\))";

/** Float-flavoured tokens inside a to-integer cast argument. */
const char* const kFloatTokenRe =
    R"(ToDouble\s*\(\)|\bghz\s*\(\)|[0-9]\.[0-9]|1e[0-9]|\bdouble\b)";

/**
 * Does a parenthesized argument read as a *parameter list* rather
 * than constructor arguments? Declarations carry `type name` pairs
 * ("std::size_t n", "const Bytes& b"); value expressions do not put
 * two identifiers back to back. A nameless pure declaration
 * ("Bytes Make(std::size_t);") is indistinguishable from a value at
 * text level and is accepted as a value — the inline allow() escape
 * hatch covers that corner.
 */
bool
LooksLikeParamList(const std::string& arg)
{
    if (arg.find_first_not_of(" \t\n") == std::string::npos) {
        return true;  // `()` — nothing sized about it either way
    }
    static const std::regex kParamPairRe(
        R"([A-Za-z_][\w:<>]*(\s*[&*])?\s+[A-Za-z_]\w*\s*(,|$))");
    return std::regex_search(arg, kParamPairRe);
}

}  // namespace

void
FileRules::Add(const std::string& path, int line, const char* rule,
               std::string message)
{
    findings.push_back({path, line, rule, std::move(message)});
}

Domain
FileRules::DomainOfInclude(const std::string& include_path)
{
    auto it = include_domains_.find(include_path);
    if (it != include_domains_.end()) return it->second;
    Domain d = Domain::kUnknown;
    const fs::path full = root_ / "src" / include_path;
    if (auto f = LoadFile(full, include_path)) d = f->domain;
    include_domains_[include_path] = d;
    return d;
}

void
FileRules::Analyze(const SourceFile& f, Scope scope)
{
    const bool in_check = PathHas(f.path, "check/");

    if (scope == Scope::kHarness) {
        // Harness trees get the concurrency-readiness subset: the
        // coroutine-lifetime and determinism bug classes corrupt
        // test processes exactly like model ones. The annotation
        // sweeps (W201/W204) and domain rules stay model-only.
        CheckLambdaCoroutines(f);
        CheckSpawnSites(f);
        CheckUnstableIteration(f);
        CheckSuspendUnderGuard(f);
        return;
    }

    const bool time_bridge = PathEndsWith(f.path, "sim/time.h") ||
                             PathEndsWith(f.path, "machine/cycles.h");

    if (f.domain == Domain::kUnknown && werror_missing_domain_) {
        Add(f.path, 1, "W001",
            "no `// wave-domain: host|nic|pcie|neutral|harness` "
            "annotation");
    }

    CheckIncludes(f);
    CheckSymbols(f);
    CheckActors(f, in_check);
    CheckHooks(f, in_check);
    CheckStaleReasons(f);
    CheckWallClock(f);
    if (!time_bridge) CheckTimeNarrowing(f);
    CheckEndpointCoverage(f);
    CheckHotPaths(f);
    if (f.domain != Domain::kHarness) {
        CheckCoroutineContracts(f);
        CheckShardOwnership(f, in_check);
    }
    CheckLambdaCoroutines(f);
    CheckSpawnSites(f);
    CheckUnstableIteration(f);
    CheckSuspendUnderGuard(f);
}

void
FileRules::CheckIncludes(const SourceFile& f)
{
    static const std::regex kIncludeRe(
        R"re(^\s*#\s*include\s+"([^"]+)")re");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(f.raw[i], m, kIncludeRe)) continue;
        const std::string target = m[1].str();
        if (target.find('/') == std::string::npos) continue;
        const Domain to = DomainOfInclude(target);
        if (to == Domain::kUnknown) continue;
        if (f.domain == Domain::kUnknown) continue;
        if (!MayInclude(f.domain, to)) {
            Add(f.path, static_cast<int>(i + 1), "W002",
                std::string(DomainName(f.domain)) +
                    "-domain file includes " + DomainName(to) +
                    "-domain header \"" + target +
                    "\" (cross-domain access must go through the "
                    "pcie seam)");
        }
    }
}

void
FileRules::CheckSymbols(const SourceFile& f)
{
    if (f.domain == Domain::kPcie || f.domain == Domain::kHarness ||
        f.domain == Domain::kUnknown) {
        return;  // the seam may name both sides
    }
    static const std::regex kQualifiedRe(
        R"((?:wave::)?\b(sol|workload|rpc)::)");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          kQualifiedRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string ns = (*it)[1].str();
            // A module may of course name itself.
            if (PathHas(f.path, ns + "/")) continue;
            const Domain owner = kOwnedNamespaces.at(ns);
            if (owner == f.domain) continue;
            Add(f.path, static_cast<int>(i + 1), "W003",
                std::string(DomainName(f.domain)) +
                    "-domain file names " + DomainName(owner) +
                    "-owned symbol `" + ns +
                    "::...` (route through the pcie seam instead)");
        }
    }
}

void
FileRules::CheckActors(const SourceFile& f, bool in_check)
{
    if (in_check) return;  // the checker framework itself
    static const std::regex kRegisterRe(
        R"((->|\.)\s*RegisterActor\s*\()");
    static const std::regex kDomainNoteRe(
        R"(wave-domain:\s*(host|nic))");
    static const std::regex kLabelRe(
        R"(RegisterActor\s*\(\s*"(host|nic)[-_])");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        if (!std::regex_search(f.lines[i].code, kRegisterRe)) {
            continue;
        }
        const bool labeled = std::regex_search(f.raw[i], kLabelRe);
        const bool noted =
            std::regex_search(f.lines[i].comment, kDomainNoteRe) ||
            (i > 0 && std::regex_search(f.lines[i - 1].comment,
                                        kDomainNoteRe));
        if (!labeled && !noted) {
            Add(f.path, static_cast<int>(i + 1), "W004",
                "RegisterActor without a domain: start the label "
                "with \"host-\"/\"nic-\" or add a `// wave-domain: "
                "host|nic` comment on this or the previous line");
        }
    }
}

void
FileRules::CheckHooks(const SourceFile& f, bool in_check)
{
    if (in_check) return;
    static const std::regex kCallRe(kCheckerCallRe);
    int hook_balance = 0;     // open parens of WAVE_CHECK_HOOK(...)
    std::vector<bool> gated;  // #if nesting: WAVE_CHECK_ENABLED?
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& raw = f.raw[i];
        const std::string& code = f.lines[i].code;
        static const std::regex kIfRe(R"(^\s*#\s*if)");
        static const std::regex kElRe(R"(^\s*#\s*el)");
        static const std::regex kEndifRe(R"(^\s*#\s*endif)");
        if (std::regex_search(raw, kIfRe)) {
            gated.push_back(raw.find("WAVE_CHECK_ENABLED") !=
                            std::string::npos);
        } else if (std::regex_search(raw, kElRe)) {
            if (!gated.empty()) {
                gated.back() = raw.find("WAVE_CHECK_ENABLED") !=
                               std::string::npos;
            }
        } else if (std::regex_search(raw, kEndifRe)) {
            if (!gated.empty()) gated.pop_back();
        }
        const bool in_gate = std::any_of(gated.begin(), gated.end(),
                                         [](bool g) { return g; });

        bool in_hook = hook_balance > 0;
        const auto hook_pos = code.find("WAVE_CHECK_HOOK");
        if (hook_pos != std::string::npos) {
            in_hook = true;
            hook_balance += ParenBalance(code.substr(hook_pos));
        } else if (hook_balance > 0) {
            hook_balance += ParenBalance(code);
        }
        if (hook_balance < 0) hook_balance = 0;

        if (!in_hook && !in_gate && std::regex_search(code, kCallRe)) {
            Add(f.path, static_cast<int>(i + 1), "W005",
                "checker call outside WAVE_CHECK_HOOK(...) or an "
                "#ifdef WAVE_CHECK_ENABLED block");
        }
    }
}

void
FileRules::CheckStaleReasons(const SourceFile& f)
{
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& raw = f.raw[i];
        static const std::regex kStaleRe(
            R"(/\*\s*tolerate_stale\s*=\s*\*/\s*([A-Za-z_][A-Za-z0-9_:\.]*|true|false))");
        std::smatch m;
        if (!std::regex_search(raw, m, kStaleRe)) continue;
        if (m[1].str() == "false") continue;
        // The /*tolerate_stale=*/ argument annotation itself lands
        // in the comment channel; it is not a justification.
        static const std::regex kSelfRe(R"(\s*tolerate_stale\s*=\s*)");
        const std::string note =
            std::regex_replace(f.lines[i].comment, kSelfRe, "");
        if (note.empty()) {
            Add(f.path, static_cast<int>(i + 1), "W006",
                "tolerate_stale without a same-line justification "
                "comment");
        }
    }
}

void
FileRules::CheckWallClock(const SourceFile& f)
{
    static const std::regex kBanRe(kWallClockRe);
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        std::smatch m;
        if (std::regex_search(f.lines[i].code, m, kBanRe)) {
            Add(f.path, static_cast<int>(i + 1), "W007",
                "determinism-hostile construct `" + m[0].str() +
                    "` in model code (use sim::Rng / sim::Simulator "
                    "time instead)");
        }
    }
}

void
FileRules::CheckTimeNarrowing(const SourceFile& f)
{
    static const std::regex kToDoubleRe(
        R"(static_cast<\s*double\s*>\s*\()");
    static const std::regex kToIntRe(
        R"(static_cast<\s*(?:std::)?u?int(?:64|32)_t\s*>\s*\()");
    static const std::regex kTimeTok(kTimeTokenRe);
    static const std::regex kFloatTok(kFloatTokenRe);
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        std::smatch m;
        if (std::regex_search(code, m, kToDoubleRe)) {
            const auto open =
                static_cast<std::size_t>(m.position(0)) + m.length(0) -
                1;
            const std::string arg = CallArgument(code, open);
            if (std::regex_search(arg, kTimeTok)) {
                Add(f.path, static_cast<int>(i + 1), "W008",
                    "ad-hoc time->double cast; use "
                    "DurationNs/TimeNs ToDouble(), ToUs(), ToMs() "
                    "(sim/time.h is the only sanctioned bridge)");
            }
        }
        if (std::regex_search(code, m, kToIntRe)) {
            const auto open =
                static_cast<std::size_t>(m.position(0)) + m.length(0) -
                1;
            const std::string arg = CallArgument(code, open);
            if (std::regex_search(arg, kFloatTok) &&
                std::regex_search(code, kTimeTok)) {
                Add(f.path, static_cast<int>(i + 1), "W008",
                    "ad-hoc double->integer time cast; use "
                    "DurationNs::FromDouble()/TimeNs::FromDouble() "
                    "(sim/time.h is the only sanctioned bridge)");
            }
        }
    }
}

bool
FileRules::RegionReserves(const SourceFile& f, int region,
                          std::size_t upto)
{
    static const std::regex kReserveRe(
        R"((\.|->)\s*([Rr]eserve|resize)\s*\()");
    for (std::size_t j = 0; j < upto; ++j) {
        if (f.hot[j] != region) continue;
        if (std::regex_search(f.lines[j].code, kReserveRe)) {
            return true;
        }
    }
    return false;
}

/**
 * W101-W106: the per-event performance rules. Text-level like the
 * rest of the tool; each pattern names the construct so a reader
 * can judge the finding without opening the file.
 */
void
FileRules::CheckHotPaths(const SourceFile& f)
{
    static const std::regex kNewRe(R"(\bnew\s+[A-Za-z_:])");
    static const std::regex kMakeRe(
        R"(\bstd::make_(unique|shared)\s*<)");
    static const std::regex kGrowRe(
        R"((\.|->)\s*(push_back|emplace_back)\s*\()");
    static const std::regex kStringRe(
        R"(\bstd::string\s+[A-Za-z_]\w*\s*[;({=])"
        R"(|\bstd::string\s*[({])"
        R"(|\bstd::(to_string|ostringstream|stringstream)\b)");
    static const std::regex kFunctionRe(R"(\bstd::function\s*<)");
    // Any identifier can name a sized-buffer local (snake_case,
    // camelCase, DmaScratch-style mixed case alike); one-line function
    // declarations returning a buffer type are told apart by their
    // argument text (a parameter list, not constructor arguments) —
    // see LooksLikeParamList.
    static const std::regex kSizedBufRe(
        R"(\b(Bytes|std::vector\s*<[^;=(){}]*>)\s+[A-Za-z_]\w*\s*\()");
    static const std::regex kThrowRe(R"(\b(throw|try|catch)\b)");
    static const std::regex kLockRe(
        R"(\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex)"
        R"(|lock_guard|scoped_lock|unique_lock|condition_variable)"
        R"(|atomic)\b|\bmemory_order_seq_cst\b)");
    static const std::regex kHeavyParamRe(
        R"(\b(std::string|std::vector\s*<[^;=(){}]*>)"
        R"(|std::deque\s*<[^;=(){}]*>|std::map\s*<[^;=(){}]*>)"
        R"(|Bytes|[A-Za-z_]*Config|[A-Za-z_]*Stats))"
        R"(\s+[A-Za-z_]\w*\s*[,)])");
    static const std::regex kIoRe(
        R"(\b(printf|fprintf|sprintf|snprintf|puts|fputs|putchar)"
        R"(|fwrite|fflush)\s*\()"
        R"(|\bstd::(cout|cerr|clog|ostream|ofstream|ifstream)"
        R"(|fstream|getline)\b)");
    static const std::regex kLoopRe(R"(\b(for|while)\s*\()");
    static const std::regex kChanOpRe(
        R"((\.|->)\s*(Push|Receive|TryReceive)\s*\()");

    int depth = 0;           // brace depth across the file
    std::vector<int> loops;  // brace depth at each open hot loop
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        const int line_no = static_cast<int>(i + 1);
        const bool hot = f.hot[i] > 0;

        if (hot && std::regex_search(code, kLoopRe)) {
            loops.push_back(depth);
        }

        if (hot) {
            std::smatch m;
            if (std::regex_search(code, m, kNewRe)) {
                Add(f.path, line_no, "W101",
                    "`new` on a hot path; use a pool or inline "
                    "storage (per-event allocation breaks the "
                    "wimpy-core budget)");
            }
            if (std::regex_search(code, m, kMakeRe)) {
                Add(f.path, line_no, "W101",
                    "make_" + m[1].str() +
                        " on a hot path; allocate at setup time or "
                        "pool the object");
            }
            if (std::regex_search(code, m, kGrowRe) &&
                !RegionReserves(f, f.hot[i], i)) {
                Add(f.path, line_no, "W101",
                    m[2].str() +
                        " without an earlier reserve() in the same "
                        "hot region (amortized reallocation is still "
                        "a per-event allocation)");
            }
            if (std::regex_search(code, m, kStringRe)) {
                Add(f.path, line_no, "W101",
                    "std::string construction on a hot path "
                    "(string building belongs in cold "
                    "reporting code)");
            }
            if (std::regex_search(code, m, kFunctionRe)) {
                Add(f.path, line_no, "W101",
                    "std::function on a hot path; its capture "
                    "heap-allocates (use sim::InlineFn or a "
                    "template parameter)");
            }
            if (std::regex_search(code, m, kSizedBufRe)) {
                const auto open = static_cast<std::size_t>(
                    m.position(0) + m.length(0) - 1);
                if (!LooksLikeParamList(CallArgument(code, open))) {
                    Add(f.path, line_no, "W101",
                        "sized " + m[1].str() +
                            " local on a hot path; reuse a pooled "
                            "scratch buffer instead");
                }
            }
            if (std::regex_search(code, m, kThrowRe)) {
                Add(f.path, line_no, "W102",
                    "`" + m[1].str() +
                        "` inside a hot region (exception machinery "
                        "is for cold recovery paths only)");
            }
            if (std::regex_search(code, m, kLockRe)) {
                Add(f.path, line_no, "W103",
                    "`" + m[0].str() +
                        "` on a hot path: the sim core is "
                        "single-threaded by design and needs no "
                        "synchronization");
            }
            if (std::regex_search(code, m, kHeavyParamRe)) {
                Add(f.path, line_no, "W104",
                    "heavy type `" + m[1].str() +
                        "` passed by value across a hot signature; "
                        "take const& or a span");
            }
            if (std::regex_search(code, m, kIoRe)) {
                Add(f.path, line_no, "W105",
                    "I/O call `" + m[0].str() +
                        "` on a hot path (format and print from "
                        "cold reporting code)");
            }
            if (!loops.empty() && std::regex_search(code, m, kChanOpRe)) {
                Add(f.path, line_no, "W106",
                    "per-element Channel " + m[2].str() +
                        "() inside a hot loop; use "
                        "PushBatch()/TryReceiveBatch() to pay the "
                        "notify/schedule cost once");
            }
        }

        depth += BraceBalance(code);
        while (!loops.empty() && depth <= loops.back()) {
            loops.pop_back();
        }
    }
}

void
FileRules::CheckEndpointCoverage(const SourceFile& f)
{
    for (const char* endpoint : kEndpointFiles) {
        if (!PathEndsWith(f.path, endpoint)) continue;
        for (const auto& line : f.lines) {
            if (line.code.find("WAVE_CHECK_HOOK") !=
                std::string::npos) {
                return;
            }
        }
        Add(f.path, 1, "W005",
            "queue/txn endpoint file carries no WAVE_CHECK_HOOK "
            "instrumentation (checker blind spot)");
    }
}

// --- W200 series: concurrency readiness -------------------------------

/**
 * W201: every Task coroutine definition whose frame holds borrowed
 * state (reference/pointer/view parameters, or the implicit `this`
 * of an out-of-line member) must state its argument-lifetime
 * contract. A contract on a same-name declaration elsewhere in the
 * analyzed set (the header) also satisfies the definition, so the
 * public API carries the annotation once. Matching is name-
 * granular: overloads share a contract.
 */
void
FileRules::CheckCoroutineContracts(const SourceFile& f)
{
    for (const Coroutine& c : f.coroutines) {
        if (c.contract == Contract::kMalformed) {
            Add(f.path, c.sig_line, "W201",
                "malformed wave-lifetime annotation `" +
                    c.contract_text +
                    "`; use wave-lifetime(caller-awaits) or "
                    "wave-lifetime(spawn-safe: <why the referents "
                    "outlive the frame>)");
            continue;
        }
        if (!c.is_definition || !c.is_coroutine) continue;
        if (!c.ref_params && !c.qualified) continue;
        if (c.contract != Contract::kNone) continue;
        const auto it = registry.find(c.name);
        if (it != registry.end() && it->second.annotated) continue;
        const char* what =
            c.ref_params
                ? (c.qualified ? "reference/pointer parameters and the "
                                 "implicit `this`"
                               : "reference/pointer/view parameters")
                : "the implicit `this` of an out-of-line member";
        Add(f.path, c.sig_line, "W201",
            "coroutine `" + c.full_name + "` holds " + what +
                " across its initial suspension but states no "
                "lifetime contract; annotate the declaration or "
                "definition with wave-lifetime(caller-awaits) or "
                "wave-lifetime(spawn-safe: <reason>)");
    }
}

/**
 * W202: a lambda with a non-empty capture list whose explicit
 * return type is a Task. Inside the coroutine the captures are
 * reached through the closure object; when the closure is a
 * temporary (the overwhelmingly common case for lambda arguments)
 * every capture dangles from the first suspension on. A capturing
 * lambda may *construct and return* a named coroutine's task (no
 * explicit -> Task return type needed, captures are read before
 * any suspension); it must not *be* the coroutine.
 */
void
FileRules::CheckLambdaCoroutines(const SourceFile& f)
{
    static const std::regex kCaptureCoroRe(
        R"(\[\s*[^\]\s][^\]]*\]\s*(\([^)]*\))?\s*->\s*)"
        R"((?:[A-Za-z_]\w*::)*Task\s*<)");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        if (std::regex_search(f.lines[i].code, kCaptureCoroRe)) {
            Add(f.path, static_cast<int>(i + 1), "W202",
                "capturing-lambda coroutine: the frame references "
                "the closure object, which dies at the first "
                "suspension when the lambda is a temporary; move "
                "the body into a named coroutine taking the state "
                "explicitly (a capture-free lambda may still "
                "construct and return its task)");
        }
    }
}

/**
 * W203: Spawn() detaches a frame from the spawning stack, so the
 * task must not borrow that stack. Three textual triggers:
 * immediately-invoked lambdas binding reference parameters to the
 * spawner's locals, named coroutines under a caller-awaits
 * contract (detaching violates it), and named reference-taking
 * coroutines with no contract at all.
 */
void
FileRules::CheckSpawnSites(const SourceFile& f)
{
    static const std::regex kSpawnRe(R"(\bSpawn\s*\()");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        std::smatch m;
        if (!std::regex_search(code, m, kSpawnRe)) continue;
        const auto open =
            static_cast<std::size_t>(m.position(0)) + m.length(0) - 1;
        const std::string arg = JoinedCallArgument(f, i, open);
        const int line_no = static_cast<int>(i + 1);
        AnalyzeSpawnArgument(f, line_no, arg);
    }
}

void
FileRules::AnalyzeSpawnArgument(const SourceFile& f, int line_no,
                                const std::string& arg)
{
    std::size_t p = 0;
    const auto skip_ws = [&] {
        while (p < arg.size() &&
               std::isspace(static_cast<unsigned char>(arg[p]))) {
            ++p;
        }
    };
    skip_ws();
    if (p < arg.size() && arg[p] == '[') {
        // Lambda: [captures](params) -> ret {body} (invoke-args)
        std::size_t q = p;
        int depth = 0;
        for (; q < arg.size(); ++q) {
            if (arg[q] == '[') ++depth;
            if (arg[q] == ']' && --depth == 0) break;
        }
        if (q >= arg.size()) return;
        p = q + 1;
        skip_ws();
        std::string params;
        if (p < arg.size() && arg[p] == '(') {
            const std::size_t params_open = p;
            depth = 0;
            for (; p < arg.size(); ++p) {
                if (arg[p] == '(') ++depth;
                if (arg[p] == ')' && --depth == 0) break;
            }
            if (p >= arg.size()) return;
            params = arg.substr(params_open + 1, p - params_open - 1);
            ++p;
        }
        // Skip to the body and over it.
        while (p < arg.size() && arg[p] != '{') ++p;
        if (p >= arg.size()) return;
        depth = 0;
        for (; p < arg.size(); ++p) {
            if (arg[p] == '{') ++depth;
            if (arg[p] == '}' && --depth == 0) break;
        }
        if (p >= arg.size()) return;
        ++p;
        skip_ws();
        // Immediate invocation?
        if (p < arg.size() && arg[p] == '(') {
            const std::string invoke = CallArgument(arg, p);
            const bool has_args =
                invoke.find_first_not_of(" \t\n") != std::string::npos;
            if (has_args && ParamsHaveRefs(params)) {
                Add(f.path, line_no, "W203",
                    "spawned task binds reference parameters to "
                    "the Spawn caller's stack frame; the frame "
                    "outlives this scope unless the referents are "
                    "kept alive past Run() — pass owned state or "
                    "use a named spawn-safe coroutine");
            }
        }
        return;
    }
    // std::move(var) or a plain variable/member: ownership already
    // settled elsewhere.
    static const std::regex kVarRe(
        R"(^(?:std::move\s*\(\s*)?[A-Za-z_][\w:.\->]*\s*\)?\s*$)");
    const std::string tail = arg.substr(p);
    if (std::regex_match(tail, kVarRe)) return;
    // Named call: take the identifier directly before the first
    // '(' (the last path component of the callee).
    static const std::regex kCalleeRe(R"(([A-Za-z_]\w*)\s*\()");
    std::smatch cm;
    if (!std::regex_search(tail, cm, kCalleeRe)) return;
    const std::string callee = cm[1].str();
    const auto it = registry.find(callee);
    if (it == registry.end()) return;  // unknown: out of scope
    const ContractEntry& e = it->second;
    if (e.spawn_safe) return;
    if (e.caller_awaits) {
        Add(f.path, line_no, "W203",
            "Spawn() detaches `" + callee +
                "`, which is annotated wave-lifetime("
                "caller-awaits); detaching violates its contract — "
                "await it instead, or give it a spawn-safe "
                "contract explaining why its referents outlive "
                "the frame");
        return;
    }
    if (e.ref_params) {
        Add(f.path, line_no, "W203",
            "Spawn() detaches `" + callee +
                "`, a coroutine holding references with no "
                "wave-lifetime(spawn-safe: ...) contract; state "
                "why every referent outlives the frame, or pass "
                "owned state");
    }
}

/**
 * W204: the shard-ownership map. Files whose mutable state is
 * reachable from more than one clock domain — the pcie seam, and
 * any file registering sim actors — must classify that state with
 * wave-owns(<shard>) or wave-shared(<reason>), and the
 * classification must not contradict the file's domain or the
 * domains of the actors it registers. Concrete host/nic files
 * without actor registrations derive their ownership from the
 * domain annotation and need nothing extra.
 */
void
FileRules::CheckShardOwnership(const SourceFile& f, bool in_check)
{
    if (in_check) return;  // checker shadow state is harness-read
    static const std::regex kRegisterRe(
        R"((->|\.)\s*RegisterActor\s*\()");
    static const std::regex kLabelDomRe(
        R"(RegisterActor\s*\(\s*"(host|nic)[-_])");
    bool registers = false;
    std::vector<std::pair<int, std::string>> label_domains;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        if (!std::regex_search(f.lines[i].code, kRegisterRe)) {
            continue;
        }
        registers = true;
        std::smatch m;
        // Labels live in string literals: match on the raw line.
        if (std::regex_search(f.raw[i], m, kLabelDomRe)) {
            label_domains.emplace_back(static_cast<int>(i + 1),
                                       m[1].str());
        }
    }

    const bool has_owns = f.owns_line != 0;
    if (has_owns && f.owns != "host" && f.owns != "nic") {
        Add(f.path, f.owns_line, "W204",
            "wave-owns(" + f.owns +
                ") names no shard; the shards are `host` and "
                "`nic` (seam state that belongs to neither side "
                "is wave-shared(<reason>))");
        return;
    }
    if (has_owns && f.has_shared) {
        Add(f.path, f.shared_line, "W204",
            "file is annotated both wave-owns(" + f.owns +
                ") and wave-shared(...); pick one classification");
        return;
    }
    if (f.has_shared) {
        std::string reason = f.shared_reason;
        reason.erase(0, reason.find_first_not_of(" \t"));
        if (reason.empty()) {
            Add(f.path, f.shared_line, "W204",
                "wave-shared() without a reason; say why "
                "cross-shard access to this state is safe (what "
                "serializes it, what staleness it tolerates)");
        }
    }
    if (has_owns) {
        if ((f.domain == Domain::kHost && f.owns == "nic") ||
            (f.domain == Domain::kNic && f.owns == "host")) {
            Add(f.path, f.owns_line, "W204",
                "wave-owns(" + f.owns + ") contradicts the file's " +
                    DomainName(f.domain) + " wave-domain");
        }
        for (const auto& [line, dom] : label_domains) {
            if (dom != f.owns) {
                Add(f.path, line, "W204",
                    "file claims wave-owns(" + f.owns +
                        ") but registers a " + dom +
                        "-domain actor here; actors of another "
                        "shard reaching this state make it "
                        "wave-shared(<reason>)");
            }
        }
    }
    const bool required = f.domain == Domain::kPcie || registers;
    if (required && !has_owns && !f.has_shared) {
        Add(f.path, 1, "W204",
            std::string(f.domain == Domain::kPcie
                            ? "pcie-seam file"
                            : "file registering sim actors") +
                " carries no shard-ownership classification; add "
                "`// wave-owns(host|nic)` or `// wave-shared("
                "<reason>)` so the parallel executor knows which "
                "shard may touch this state");
    }
}

/**
 * W205: range-for (or .begin() iteration) over a container
 * declared as a pointer-keyed unordered_map/unordered_set in the
 * same file. Hash order of pointers is address order: it varies
 * run to run and shard to shard, so anything downstream of the
 * iteration (event scheduling, stats, reports) loses fingerprint
 * stability. Keyed lookups stay fine.
 */
void
FileRules::CheckUnstableIteration(const SourceFile& f)
{
    static const std::regex kUnorderedRe(
        R"(\bunordered_(map|set)\s*<)");
    // Names of variables declared with a pointer-keyed type.
    std::set<std::string> ptr_keyed;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        std::smatch m;
        if (!std::regex_search(code, m, kUnorderedRe)) continue;
        // Join a short window so multi-line declarations parse.
        std::string decl = code;
        for (std::size_t j = i + 1;
             j < std::min(f.lines.size(), i + 4); ++j) {
            decl += ' ';
            decl += f.lines[j].code;
        }
        const auto angle =
            decl.find('<', static_cast<std::size_t>(m.position(0)));
        if (angle == std::string::npos) continue;
        int depth = 0;
        std::size_t q = angle;
        std::size_t key_end = std::string::npos;
        for (; q < decl.size(); ++q) {
            if (decl[q] == '<') ++depth;
            if (decl[q] == '>' && --depth == 0) break;
            if (decl[q] == ',' && depth == 1 &&
                key_end == std::string::npos) {
                key_end = q;
            }
        }
        if (q >= decl.size()) continue;
        const std::size_t kend =
            key_end == std::string::npos ? q : key_end;
        const std::string key =
            decl.substr(angle + 1, kend - angle - 1);
        if (key.find('*') == std::string::npos) continue;
        // Variable name after the closing '>'.
        static const std::regex kVarNameRe(
            R"(^\s*([A-Za-z_]\w*)\s*[;={(])");
        const std::string after = decl.substr(q + 1);
        std::smatch vm;
        if (std::regex_search(after, vm, kVarNameRe)) {
            ptr_keyed.insert(vm[1].str());
        }
    }
    if (ptr_keyed.empty()) return;
    static const std::regex kRangeForRe(
        R"(\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)\s*\))");
    static const std::regex kBeginRe(
        R"(\b([A-Za-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\()");
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        std::smatch m;
        std::string name;
        if (std::regex_search(code, m, kRangeForRe)) {
            name = m[1].str();
        } else if (std::regex_search(code, m, kBeginRe)) {
            name = m[1].str();
        } else {
            continue;
        }
        if (ptr_keyed.count(name) == 0) continue;
        Add(f.path, static_cast<int>(i + 1), "W205",
            "iteration over pointer-keyed unordered container `" +
                name +
                "`; hash order is address order and differs run "
                "to run — key by a stable id, use a sorted "
                "container, or snapshot-and-sort before "
                "iterating");
    }
}

/**
 * W206: a co_await inside the lexical scope of a live scoped
 * guard (types named *Guard, the lock_guard family) or a borrowed
 * view local (string_view, span). Suspension runs arbitrary other
 * events before resuming: a guard spans foreign event execution it
 * was never meant to cover, and a borrowed view's backing store may
 * be mutated or freed by the time the frame resumes.
 */
void
FileRules::CheckSuspendUnderGuard(const SourceFile& f)
{
    static const std::regex kGuardDeclRe(
        R"(\b((?:std::)?(?:lock_guard|scoped_lock|unique_lock)"
        R"(|shared_lock)\s*(?:<[^;>]*>)?|[A-Za-z_]\w*Guard))"
        R"(\s+[A-Za-z_]\w*\s*[({;=])");
    static const std::regex kViewDeclRe(
        R"(\b(std::string_view|std::span\s*<[^;>]*>))"
        R"(\s+[A-Za-z_]\w*\s*[=({])");
    static const std::regex kCoAwaitRe(R"(\bco_await\b)");
    struct Live {
        int depth;
        int line;
        std::string what;
    };
    std::vector<Live> live;
    int depth = 0;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        const int line_no = static_cast<int>(i + 1);
        std::smatch m;
        if (std::regex_search(code, m, kGuardDeclRe) ||
            std::regex_search(code, m, kViewDeclRe)) {
            live.push_back({depth, line_no, m[1].str()});
        }
        if (!live.empty() && std::regex_search(code, kCoAwaitRe)) {
            const Live& g = live.back();
            Add(f.path, line_no, "W206",
                "co_await while `" + g.what + "` (declared line " +
                    std::to_string(g.line) +
                    ") is live; the suspension runs other events "
                    "under the guard / behind the borrowed view — "
                    "release it before suspending or copy what "
                    "you need");
        }
        depth += BraceBalance(code);
        while (!live.empty() && depth < live.back().depth) {
            live.pop_back();
        }
    }
}

}  // namespace wa
