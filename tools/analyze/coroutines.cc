// wave-domain: harness
#include "analyze/coroutines.h"

#include <algorithm>
#include <cctype>
#include <regex>

namespace wa {

bool
ParamsHaveRefs(const std::string& params)
{
    static const std::regex kRefRe(
        R"([&*]|\bstring_view\b|\bspan\s*<)");
    return std::regex_search(params, kRefRe);
}

namespace {

/**
 * Parses the wave-lifetime contract from the comment channel of lines
 * [from, to] (1-based, inclusive, clamped). First annotation wins.
 */
Contract
ContractIn(const SourceFile& f, int from, int to, std::string* text)
{
    static const std::regex kLifetimeRe(R"(wave-lifetime\(([^)]*)\))");
    const int lo = std::max(from, 1);
    const int hi = std::min(to, static_cast<int>(f.lines.size()));
    for (int i = lo; i <= hi; ++i) {
        const std::string& comment =
            f.lines[static_cast<std::size_t>(i - 1)].comment;
        std::smatch m;
        if (!std::regex_search(comment, m, kLifetimeRe)) continue;
        std::string arg = m[1].str();
        *text = arg;
        if (arg == "caller-awaits") return Contract::kCallerAwaits;
        const std::string kPrefix = "spawn-safe:";
        if (arg.compare(0, kPrefix.size(), kPrefix) == 0) {
            std::string reason = arg.substr(kPrefix.size());
            reason.erase(0, reason.find_first_not_of(" \t"));
            if (!reason.empty()) return Contract::kSpawnSafe;
        }
        return Contract::kMalformed;
    }
    return Contract::kNone;
}

}  // namespace

std::vector<Coroutine>
ParseCoroutines(const SourceFile& f)
{
    std::vector<Coroutine> out;
    static const std::regex kHeadStartRe(
        R"(^\s*(?:(?:inline|static|virtual|constexpr|friend|explicit)\s+)"
        R"(|\[\[nodiscard\]\]\s*)*((?:[A-Za-z_]\w*::)*)Task\s*<)");
    const std::size_t n = f.lines.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::smatch m;
        if (!std::regex_search(f.lines[i].code, m, kHeadStartRe)) {
            continue;
        }
        // Join a bounded window of code lines and parse by hand from
        // the '<' of Task<...>.
        std::string head;
        std::vector<std::size_t> line_of;  // head index -> file line
        const std::size_t window = std::min(n, i + 16);
        for (std::size_t j = i; j < window; ++j) {
            for (char c : f.lines[j].code) {
                head += c;
                line_of.push_back(j);
            }
            head += '\n';
            line_of.push_back(j);
        }
        const std::size_t angle_open = static_cast<std::size_t>(
            m.position(0) + m.length(0) - 1);
        // Match the template argument list.
        int angles = 0;
        std::size_t p = angle_open;
        for (; p < head.size(); ++p) {
            if (head[p] == '<') ++angles;
            if (head[p] == '>' && --angles == 0) break;
            if (head[p] == ';' || head[p] == '{') break;  // not a head
        }
        if (p >= head.size() || head[p] != '>') continue;
        ++p;
        while (p < head.size() &&
               std::isspace(static_cast<unsigned char>(head[p]))) {
            ++p;
        }
        // Function name (possibly Class::qualified).
        const std::size_t name_start = p;
        while (p < head.size() &&
               (std::isalnum(static_cast<unsigned char>(head[p])) ||
                head[p] == '_' || head[p] == ':')) {
            ++p;
        }
        if (p == name_start) continue;
        const std::string full_name =
            head.substr(name_start, p - name_start);
        while (p < head.size() &&
               std::isspace(static_cast<unsigned char>(head[p]))) {
            ++p;
        }
        if (p >= head.size() || head[p] != '(') continue;
        // Parameter list.
        int parens = 0;
        const std::size_t params_open = p;
        for (; p < head.size(); ++p) {
            if (head[p] == '(') ++parens;
            if (head[p] == ')' && --parens == 0) break;
        }
        if (p >= head.size()) continue;
        const std::string params =
            head.substr(params_open + 1, p - params_open - 1);
        ++p;
        // Skip trailing qualifiers to the head terminator.
        std::size_t term = std::string::npos;
        char term_char = '\0';
        for (; p < head.size(); ++p) {
            const char c = head[p];
            if (c == '{' || c == ';' || c == '=') {
                term = p;
                term_char = c;
                break;
            }
            if (std::isspace(static_cast<unsigned char>(c)) ||
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_') {
                continue;  // const / noexcept / override / final
            }
            break;  // anything else: not a function head
        }
        if (term == std::string::npos) continue;

        Coroutine c;
        c.full_name = full_name;
        const auto colon = full_name.rfind("::");
        c.name = colon == std::string::npos ? full_name
                                            : full_name.substr(colon + 2);
        c.qualified = colon != std::string::npos;
        c.ref_params = ParamsHaveRefs(params);
        c.sig_line = static_cast<int>(i + 1);
        c.head_end = static_cast<int>(line_of[term] + 1);
        c.is_definition = term_char == '{';
        c.contract =
            ContractIn(f, c.sig_line - 2, c.head_end, &c.contract_text);

        if (c.is_definition) {
            // Scan the body for co_await/co_return/co_yield.
            static const std::regex kCoRe(
                R"(\bco_(await|return|yield)\b)");
            int depth = 0;
            bool entered = false;
            for (std::size_t j = line_of[term];
                 j < n && !(entered && depth == 0); ++j) {
                const std::string& code = f.lines[j].code;
                if (!entered || depth > 0) {
                    if (std::regex_search(code, kCoRe)) {
                        c.is_coroutine = true;
                    }
                }
                depth += BraceBalance(code);
                if (depth > 0) entered = true;
                if (entered && depth <= 0) break;
            }
        }
        out.push_back(std::move(c));
        // Resume scanning after the head (bodies cannot start heads at
        // line scope in this codebase).
        i = static_cast<std::size_t>(c.head_end) - 1;
    }
    return out;
}

void
MergeContracts(const SourceFile& f, ContractRegistry& registry)
{
    for (const Coroutine& c : f.coroutines) {
        ContractEntry& e = registry[c.name];
        e.spawn_safe |= c.contract == Contract::kSpawnSafe;
        e.caller_awaits |= c.contract == Contract::kCallerAwaits;
        e.ref_params |= c.ref_params || c.qualified;
        e.annotated |= c.contract == Contract::kCallerAwaits ||
                       c.contract == Contract::kSpawnSafe;
    }
}

std::vector<int>
DeadLifetimeLines(const SourceFile& f)
{
    std::vector<int> dead;
    for (int line : f.lifetime_lines) {
        bool covered = false;
        for (const Coroutine& c : f.coroutines) {
            if (line >= c.sig_line - 2 && line <= c.head_end) {
                covered = true;
                break;
            }
        }
        if (!covered) dead.push_back(line);
    }
    return dead;
}

}  // namespace wa
