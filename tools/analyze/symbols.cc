// wave-domain: harness
#include "analyze/symbols.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace wa {

const char*
FactName(Fact fact)
{
    switch (fact) {
        case Fact::kAlloc: return "allocates";
        case Fact::kThrow: return "throws";
        case Fact::kLock: return "locks";
        case Fact::kIo: return "does I/O";
    }
    return "?";
}

namespace {

/** Names that look like calls but never are. */
bool
IsCallKeyword(const std::string& name)
{
    static const std::set<std::string> kKeywords = {
        "if",           "for",         "while",      "switch",
        "return",       "sizeof",      "alignof",    "alignas",
        "decltype",     "static_cast", "const_cast", "dynamic_cast",
        "reinterpret_cast",            "new",        "delete",
        "co_await",     "co_return",   "co_yield",   "catch",
        "throw",        "static_assert",             "noexcept",
        "assert",       "defined",     "typeid",     "requires",
        "explicit",     "operator",    "int",        "bool",
        "char",         "double",      "float",      "long",
        "short",        "unsigned",    "signed",     "void",
        "auto",
    };
    return kKeywords.count(name) != 0;
}

/** Leading keywords that rule a line out as a declaration head. */
bool
StartsWithNonDecl(const std::string& code)
{
    static const std::regex kNonDeclRe(
        R"(^\s*(using|typedef|friend|template|return|case|default\b)"
        R"(|public|private|protected|goto|else|do\b)\b)");
    return std::regex_search(code, kNonDeclRe);
}

struct Frame {
    enum Kind { kNamespace, kClass, kFunction, kBlock };
    Kind kind;
    std::string name;  ///< namespace chain component or class name
    int open_depth;    ///< brace depth before this frame's '{'
    int symbol = -1;   ///< function frames: index into symbols_
};

/** Cold-line fact patterns (the W301 sink markers). */
struct FactPattern {
    Fact fact;
    const std::regex re;
};

const std::vector<FactPattern>&
FactPatterns()
{
    static const std::vector<FactPattern> kPatterns = [] {
        std::vector<FactPattern> v;
        v.push_back({Fact::kAlloc,
                     std::regex(R"(\bnew\s+[A-Za-z_:])")});
        v.push_back({Fact::kAlloc,
                     std::regex(R"(\bstd::make_(unique|shared)\s*<)")});
        v.push_back({Fact::kAlloc,
                     std::regex(R"((\.|->)\s*(push_back|emplace_back)"
                                R"(|resize|reserve)\s*\()")});
        v.push_back({Fact::kAlloc,
                     std::regex(R"(\bstd::string\s+[A-Za-z_]\w*\s*[;({=])"
                                R"(|\bstd::(to_string|ostringstream)"
                                R"(|stringstream)\b)")});
        v.push_back({Fact::kAlloc,
                     std::regex(R"(\bstd::function\s*<)")});
        v.push_back({Fact::kThrow, std::regex(R"(\bthrow\b)")});
        v.push_back({Fact::kLock,
                     std::regex(R"(\bstd::(mutex|lock_guard|scoped_lock)"
                                R"(|unique_lock|condition_variable)\b)")});
        v.push_back({Fact::kIo,
                     std::regex(R"(\b(printf|fprintf|sprintf|snprintf)"
                                R"(|puts|fputs|putchar|fwrite|fflush)\s*\()"
                                R"(|\bstd::(cout|cerr|clog|ofstream)"
                                R"(|ifstream|fstream)\b)")});
        return v;
    }();
    return kPatterns;
}

/** A parsed candidate head: name + where its parens/terminator sit. */
struct Head {
    std::string written;   ///< callee as written ("TimingWheel::Push")
    bool is_definition = false;
    bool is_static = false;
    int body_open_line = 0;  ///< 1-based line of the '{'
    int end_line = 0;        ///< 1-based line of the terminator
};

/**
 * Tries to parse a function head whose *name* sits on line @p i —
 * either name-first style (return type on the previous line, the
 * codebase norm at namespace scope) or type-and-name on one line
 * (in-class one-liner members). Returns nullopt when line @p i does
 * not start a head.
 */
std::optional<Head>
ParseHead(const SourceFile& f, std::size_t i)
{
    const std::size_t n = f.lines.size();
    std::string head;
    std::vector<std::size_t> line_of;
    const std::size_t window = std::min(n, i + 16);
    for (std::size_t j = i; j < window; ++j) {
        for (char c : f.lines[j].code) {
            head += c;
            line_of.push_back(j);
        }
        head += '\n';
        line_of.push_back(j);
    }

    // First '(' in the window that still belongs to this line's
    // declarator: the name and its '(' share a line in this codebase.
    const std::string& first = f.lines[i].code;
    const auto paren = first.find('(');
    if (paren == std::string::npos) return std::nullopt;
    // Scan the qualified identifier ending just before the '('.
    std::size_t e = paren;
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(first[e - 1]))) {
        --e;
    }
    std::size_t s = e;
    while (s > 0 && (std::isalnum(static_cast<unsigned char>(
                         first[s - 1])) ||
                     first[s - 1] == '_' || first[s - 1] == ':')) {
        --s;
    }
    if (s == e) return std::nullopt;
    std::string written = first.substr(s, e - s);
    while (!written.empty() && written.front() == ':') {
        written.erase(written.begin());
    }
    if (written.empty()) return std::nullopt;
    const auto last_sep = written.rfind("::");
    const std::string last = last_sep == std::string::npos
                                 ? written
                                 : written.substr(last_sep + 2);
    if (last.empty() || IsCallKeyword(last) || IsCallKeyword(written)) {
        return std::nullopt;
    }
    if (std::isdigit(static_cast<unsigned char>(last[0]))) {
        return std::nullopt;
    }

    // Walk the joined head from that '(': match the parameter list,
    // then scan to the terminator. A ':' after the params is a ctor
    // initializer list — keep scanning to its '{'.
    std::size_t p = 0;
    {
        // Index of the '(' within the joined head.
        std::size_t count = 0;
        for (std::size_t j = 0; j < head.size(); ++j) {
            if (line_of[j] == i) {
                if (count == paren) {
                    p = j;
                    break;
                }
                ++count;
            } else if (line_of[j] > i) {
                return std::nullopt;
            }
        }
    }
    int parens = 0;
    for (; p < head.size(); ++p) {
        if (head[p] == '(') ++parens;
        if (head[p] == ')' && --parens == 0) break;
        if (head[p] == ';' && parens == 0) return std::nullopt;
    }
    if (p >= head.size()) return std::nullopt;
    ++p;
    bool in_init_list = false;
    std::size_t term = std::string::npos;
    char term_char = '\0';
    int depth = 0;
    for (; p < head.size(); ++p) {
        const char c = head[p];
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (depth > 0) continue;
        if (c == '{') {
            term = p;
            term_char = '{';
            break;
        }
        if (in_init_list) continue;
        if (c == ';' || c == '=') {
            term = p;
            term_char = c;
            break;
        }
        if (c == ':') {
            if (p + 1 < head.size() && head[p + 1] == ':') {
                ++p;  // `::` inside a trailing type — not an init list
                continue;
            }
            in_init_list = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) ||
            std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '&' || c == '-' || c == '>' || c == '[' || c == ']') {
            continue;  // const / noexcept / override / -> ret / [[..]]
        }
        return std::nullopt;
    }
    if (term == std::string::npos) return std::nullopt;

    Head h;
    h.written = written;
    h.is_definition = term_char == '{';
    static const std::regex kStaticRe(R"(^\s*static\b)");
    h.is_static = std::regex_search(first, kStaticRe) ||
                  (i > 0 && std::regex_search(f.lines[i - 1].code,
                                              kStaticRe));
    h.body_open_line = static_cast<int>(line_of[term] + 1);
    h.end_line = h.body_open_line;
    return h;
}

/** Joined scope qualification of the enclosing frames. */
std::string
ScopeOf(const std::vector<Frame>& frames)
{
    std::string out;
    for (const Frame& fr : frames) {
        if (fr.kind != Frame::kNamespace && fr.kind != Frame::kClass) {
            continue;
        }
        if (fr.name.empty() || fr.name == "(anon)") continue;
        if (!out.empty()) out += "::";
        out += fr.name;
    }
    return out;
}

bool
InAnonNamespace(const std::vector<Frame>& frames)
{
    for (const Frame& fr : frames) {
        if (fr.kind == Frame::kNamespace && fr.name == "(anon)") {
            return true;
        }
    }
    return false;
}

}  // namespace

void
SymbolGraph::AddFile(const SourceFile& f)
{
    static const std::regex kNamespaceRe(
        R"(^\s*(?:inline\s+)?namespace(\s+([\w:]+))?\s*\{)");
    static const std::regex kClassRe(
        R"(^\s*(?:template\s*<[^;{}]*>\s*)?(class|struct|union)\s+)"
        R"((?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*))");
    static const std::regex kEnumRe(R"(^\s*enum\b)");
    static const std::regex kGlobalVarRe(
        R"(^\s*((?:static|inline|extern|thread_local|constexpr)"
        R"(|constinit|const|mutable)\s+)*)"
        R"([\w:]+(\s*<[^;{}()]*>)?(\s*[&*]|\s)\s*)"
        R"(((?:\w+::)*[A-Za-z_]\w*)(\s*\[[^\]]*\])?\s*(=|;|\{))");
    static const std::regex kConstRe(
        R"(\b(const|constexpr|constinit)\b)");
    static const std::regex kExternRe(R"(^\s*extern\b)");
    // Forward declarations (`class ProtocolChecker;`) and friends are
    // not variables, however var-shaped the line is.
    static const std::regex kTypeDeclRe(
        R"(^\s*(class|struct|union|enum)\b)");
    static const std::regex kLocalStaticRe(
        R"(^\s*static\s+[\w:]+(\s*<[^;{}()]*>)?\s+)"
        R"(([A-Za-z_]\w*)\s*(=|;|\{|\())");

    std::vector<Frame> frames;
    int depth = 0;
    // A class/namespace head seen without its '{' yet.
    std::optional<Frame> pending;

    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& code = f.lines[i].code;
        const std::string& raw = f.raw[i];
        const int line_no = static_cast<int>(i + 1);
        const bool preprocessor =
            raw.find_first_not_of(" \t") != std::string::npos &&
            raw[raw.find_first_not_of(" \t")] == '#';
        if (preprocessor) continue;

        // [[noreturn]] names: the attribute marks abort paths W301
        // must not traverse. The name usually follows on the same
        // line (`[[noreturn]] void Panic(...)`).
        if (code.find("[[noreturn]]") != std::string::npos) {
            static const std::regex kNoReturnNameRe(
                R"(([A-Za-z_]\w*)\s*\()");
            std::smatch nm;
            std::string after =
                code.substr(code.find("[[noreturn]]") + 12);
            if (!std::regex_search(after, nm, kNoReturnNameRe) &&
                i + 1 < f.lines.size()) {
                after = f.lines[i + 1].code;
                std::regex_search(after, nm, kNoReturnNameRe);
            }
            if (!nm.empty()) noreturn_names_.insert(nm[1].str());
        }

        Frame* fn = nullptr;
        for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
            if (it->kind == Frame::kFunction) {
                fn = &*it;
                break;
            }
        }

        if (fn != nullptr) {
            // Body line of the innermost open function.
            Symbol& sym = symbols_[static_cast<std::size_t>(fn->symbol)];
            sym.body_end = line_no;
            const bool hot = f.IsHot(line_no);
            sym.hot |= hot;
            if (!hot) {
                for (const FactPattern& pat : FactPatterns()) {
                    std::smatch m;
                    if (std::regex_search(code, m, pat.re)) {
                        sym.facts.push_back(
                            {pat.fact, line_no, m[0].str()});
                    }
                }
            }
            // Mutable local statics: cross-shard nondeterminism
            // hazard regardless of the enclosing function (W303).
            std::smatch lm;
            if (std::regex_search(code, lm, kLocalStaticRe) &&
                !std::regex_search(code, kConstRe)) {
                Symbol s;
                s.name = lm[2].str();
                s.qual = sym.full;
                s.full = sym.full + "::" + s.name;
                s.kind = SymKind::kLocalStatic;
                s.file = f.path;
                s.line = line_no;
                s.file_local = true;
                by_name_[s.name].push_back(
                    static_cast<int>(symbols_.size()));
                symbols_.push_back(std::move(s));
            }
        } else if (!StartsWithNonDecl(code)) {
            std::smatch m;
            if (pending) {
                if (code.find('{') != std::string::npos) {
                    pending->open_depth = depth;
                    frames.push_back(*pending);
                    pending.reset();
                }
            } else if (std::regex_search(code, m, kEnumRe)) {
                if (code.find('{') != std::string::npos) {
                    frames.push_back(
                        {Frame::kBlock, "", depth, -1});
                } else if (code.find(';') == std::string::npos) {
                    pending = Frame{Frame::kBlock, "", depth, -1};
                }
            } else if (std::regex_search(code, m, kNamespaceRe)) {
                const std::string name =
                    m[2].matched ? m[2].str() : "(anon)";
                frames.push_back(
                    {Frame::kNamespace, name, depth, -1});
            } else if (std::regex_search(code, m, kClassRe) &&
                       code.find(';') == std::string::npos) {
                Frame fr{Frame::kClass, m[2].str(), depth, -1};
                if (code.find('{') != std::string::npos) {
                    frames.push_back(fr);
                } else {
                    pending = fr;
                }
            } else if (auto h = ParseHead(f, i)) {
                if (h->is_definition) {
                    Symbol s;
                    const auto sep = h->written.rfind("::");
                    s.name = sep == std::string::npos
                                 ? h->written
                                 : h->written.substr(sep + 2);
                    std::string scope = ScopeOf(frames);
                    if (sep != std::string::npos) {
                        const std::string prefix =
                            h->written.substr(0, sep);
                        scope = scope.empty() ? prefix
                                              : scope + "::" + prefix;
                    }
                    s.qual = scope;
                    s.full =
                        scope.empty() ? s.name : scope + "::" + s.name;
                    s.kind = SymKind::kFunction;
                    s.file = f.path;
                    s.line = line_no;
                    s.file_local =
                        InAnonNamespace(frames) || h->is_static;
                    s.member =
                        sep != std::string::npos ||
                        (!frames.empty() &&
                         frames.back().kind == Frame::kClass);
                    s.body_begin = h->body_open_line;
                    s.body_end = h->body_open_line;
                    s.hot = f.IsHot(line_no);
                    const int idx = static_cast<int>(symbols_.size());
                    by_name_[s.name].push_back(idx);
                    symbols_.push_back(std::move(s));

                    // Account the braces of the consumed head lines
                    // up to (not including) the body '{' line, then
                    // open the function frame there.
                    for (std::size_t j = i;
                         j + 1 < static_cast<std::size_t>(
                                     h->body_open_line);
                         ++j) {
                        depth += BraceBalance(f.lines[j].code);
                    }
                    frames.push_back(
                        {Frame::kFunction, "", depth, idx});
                    i = static_cast<std::size_t>(h->body_open_line) - 1;
                    // One-line bodies fall through to the generic
                    // depth bookkeeping below, which pops the frame
                    // on this same line.
                } else {
                    // Declaration: skip past its terminator so the
                    // parameter list is not mistaken for globals.
                    i = static_cast<std::size_t>(h->end_line) - 1;
                    depth += BraceBalance(f.lines[i].code);
                    while (!frames.empty() &&
                           depth <= frames.back().open_depth) {
                        frames.pop_back();
                    }
                    continue;
                }
            } else if (std::regex_search(code, m, kGlobalVarRe) &&
                       (frames.empty() ||
                        frames.back().kind == Frame::kNamespace) &&
                       !std::regex_search(code, kExternRe) &&
                       !std::regex_search(code, kTypeDeclRe)) {
                Symbol s;
                s.name = m[4].str();
                s.qual = ScopeOf(frames);
                s.full = s.qual.empty() ? s.name
                                        : s.qual + "::" + s.name;
                s.kind = SymKind::kGlobal;
                s.file = f.path;
                s.line = line_no;
                s.file_local = InAnonNamespace(frames) ||
                               code.find("static") != std::string::npos;
                s.is_const = std::regex_search(code, kConstRe);
                by_name_[s.name].push_back(
                    static_cast<int>(symbols_.size()));
                symbols_.push_back(std::move(s));
            }
        }

        depth += BraceBalance(f.lines[i].code);
        while (!frames.empty() && depth <= frames.back().open_depth) {
            frames.pop_back();
        }
    }
}

std::vector<int>
SymbolGraph::Lookup(const std::string& name) const
{
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return {};
    return it->second;
}

int
SymbolGraph::Resolve(const std::string& text, const std::string& file,
                     bool member_call) const
{
    const auto sep = text.rfind("::");
    const std::string name =
        sep == std::string::npos ? text : text.substr(sep + 2);
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return -1;

    std::vector<int> candidates;
    for (int idx : it->second) {
        const Symbol& s = symbols_[static_cast<std::size_t>(idx)];
        if (s.kind != SymKind::kFunction) continue;
        if (member_call && !s.member) continue;
        if (sep != std::string::npos) {
            // Qualified: the written path must be a suffix of the
            // symbol's full name ("TimingWheel::Push" matches
            // "wave::sim::TimingWheel::Push").
            if (!PathEndsWith(s.full, text)) continue;
            const std::size_t at = s.full.size() - text.size();
            if (at != 0 && s.full.compare(at - 2, 2, "::") != 0) {
                continue;
            }
        }
        candidates.push_back(idx);
    }
    if (candidates.empty()) return -1;

    // Same file wins — including file-local symbols.
    std::vector<int> same_file;
    for (int idx : candidates) {
        if (symbols_[static_cast<std::size_t>(idx)].file == file) {
            same_file.push_back(idx);
        }
    }
    if (same_file.size() == 1) return same_file[0];
    if (!same_file.empty()) return same_file[0];  // overloads: any

    // Cross-file: file-local symbols are invisible; the name must be
    // unique (overloads of one function collapse to one defining
    // file) or it resolves nowhere.
    std::vector<int> visible;
    std::set<std::string> files;
    for (int idx : candidates) {
        const Symbol& s = symbols_[static_cast<std::size_t>(idx)];
        if (s.file_local) continue;
        visible.push_back(idx);
        files.insert(s.file + "|" + s.full);
    }
    if (visible.empty()) return -1;
    if (files.size() == 1) return visible[0];
    return -1;
}

int
SymbolGraph::EnclosingFunction(const std::string& file, int line) const
{
    int best = -1;
    int best_span = 0;
    for (std::size_t i = 0; i < symbols_.size(); ++i) {
        const Symbol& s = symbols_[i];
        if (s.kind != SymKind::kFunction || s.file != file) continue;
        if (line < s.body_begin || line > s.body_end) continue;
        const int span = s.body_end - s.body_begin;
        if (best == -1 || span < best_span) {
            best = static_cast<int>(i);
            best_span = span;
        }
    }
    return best;
}

void
SymbolGraph::ResolveFile(const SourceFile& f)
{
    static const std::regex kCallRe(
        R"(((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\()");
    static const std::regex kIdentRe(
        R"(((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*))");

    int hook_balance = 0;
    std::vector<bool> gated;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
        const std::string& raw = f.raw[i];
        const int line_no = static_cast<int>(i + 1);
        std::string code = f.lines[i].code;

        static const std::regex kIfRe(R"(^\s*#\s*if)");
        static const std::regex kElRe(R"(^\s*#\s*el)");
        static const std::regex kEndifRe(R"(^\s*#\s*endif)");
        if (std::regex_search(raw, kIfRe)) {
            gated.push_back(raw.find("WAVE_CHECK_ENABLED") !=
                            std::string::npos);
        } else if (std::regex_search(raw, kElRe)) {
            if (!gated.empty()) {
                gated.back() = raw.find("WAVE_CHECK_ENABLED") !=
                               std::string::npos;
            }
        } else if (std::regex_search(raw, kEndifRe)) {
            if (!gated.empty()) gated.pop_back();
        }
        const bool in_gate = std::any_of(gated.begin(), gated.end(),
                                         [](bool g) { return g; });
        bool in_hook = hook_balance > 0;
        const auto hook_pos = code.find("WAVE_CHECK_HOOK");
        if (hook_pos != std::string::npos) {
            in_hook = true;
            hook_balance += ParenBalance(code.substr(hook_pos));
        } else if (hook_balance > 0) {
            hook_balance += ParenBalance(code);
        }
        if (hook_balance < 0) hook_balance = 0;

        const int enclosing = EnclosingFunction(f.path, line_no);
        if (enclosing < 0) continue;
        const Symbol& fn = symbols_[static_cast<std::size_t>(enclosing)];
        if (line_no == fn.body_begin) {
            // The head may share the '{' line (one-line members):
            // only the text after the '{' is body.
            const auto brace = code.find('{');
            if (brace == std::string::npos) continue;
            code = code.substr(brace + 1);
        }

        // Call edges.
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            kCallRe);
             it != std::sregex_iterator(); ++it) {
            const std::string written = (*it)[1].str();
            const auto sep = written.rfind("::");
            const std::string last = sep == std::string::npos
                                         ? written
                                         : written.substr(sep + 2);
            if (IsCallKeyword(last) || IsCallKeyword(written)) continue;
            // Member call? Look at what precedes the match.
            std::size_t at = static_cast<std::size_t>(it->position(0));
            bool member_call = false;
            while (at > 0 && std::isspace(static_cast<unsigned char>(
                                 code[at - 1]))) {
                --at;
            }
            if (at > 0 && (code[at - 1] == '.' ||
                           (at > 1 && code[at - 2] == '-' &&
                            code[at - 1] == '>'))) {
                member_call = true;
            }
            const int callee =
                Resolve(written, f.path, member_call);
            if (callee < 0 || callee == enclosing) continue;
            CallEdge e;
            e.caller = enclosing;
            e.callee = callee;
            e.file = f.path;
            e.line = line_no;
            e.hot = f.IsHot(line_no);
            e.hook_gated = in_hook || in_gate;
            calls_.push_back(e);
        }

        // Reference edges to namespace-scope mutable state defined in
        // *other* files. Declarations that shadow a global (`int
        // counter = 0;`) are skipped: a type name directly precedes
        // the identifier there.
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            kIdentRe);
             it != std::sregex_iterator(); ++it) {
            const std::string written = (*it)[1].str();
            const auto sep = written.rfind("::");
            const std::string last = sep == std::string::npos
                                         ? written
                                         : written.substr(sep + 2);
            const std::size_t at =
                static_cast<std::size_t>(it->position(0));
            const std::size_t end = at + written.size();
            if (end < code.size() &&
                (code[end] == '(' || code[end] == ':')) {
                continue;  // calls handled above; longer qualification
            }
            if (at > 0 &&
                (code[at - 1] == '.' || code[at - 1] == ':' ||
                 (at > 1 && code[at - 2] == '-' &&
                  code[at - 1] == '>'))) {
                continue;  // member access / already-consumed prefix
            }
            const auto cands = by_name_.find(last);
            if (cands == by_name_.end()) continue;
            // Shadowing declaration? An identifier (the type) with
            // only whitespace between it and this one — unless the
            // preceding word is a statement keyword, not a type.
            if (at > 0) {
                std::size_t b = at;
                while (b > 0 && std::isspace(static_cast<unsigned char>(
                                    code[b - 1]))) {
                    --b;
                }
                if (b > 0 && b != at &&
                    (std::isalnum(
                         static_cast<unsigned char>(code[b - 1])) ||
                     code[b - 1] == '_' || code[b - 1] == '>')) {
                    std::size_t w = b;
                    while (w > 0 &&
                           (std::isalnum(static_cast<unsigned char>(
                                code[w - 1])) ||
                            code[w - 1] == '_')) {
                        --w;
                    }
                    static const std::set<std::string> kStmtKeywords =
                        {"return", "co_return", "co_yield",
                         "co_await", "throw",     "case",
                         "delete",  "typeid",     "sizeof"};
                    if (!kStmtKeywords.count(
                            code.substr(w, b - w))) {
                        continue;
                    }
                }
            }
            for (int idx : cands->second) {
                const Symbol& s =
                    symbols_[static_cast<std::size_t>(idx)];
                if (s.kind != SymKind::kGlobal) continue;
                if (s.is_const || s.file == f.path) continue;
                if (s.file_local) continue;
                if (sep != std::string::npos &&
                    !PathEndsWith(s.full, written)) {
                    continue;
                }
                refs_.push_back({enclosing, idx, f.path, line_no});
            }
        }
    }
}

}  // namespace wa
