// wave-domain: harness
#include "analyze/report.h"

#include <cstdio>
#include <fstream>
#include <regex>
#include <set>

#include "analyze/graph_rules.h"

namespace wa {

std::vector<BaselineEntry>
LoadBaseline(const std::filesystem::path& path)
{
    std::vector<BaselineEntry> entries;
    std::ifstream in(path);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r')) {
            line.pop_back();
        }
        if (!line.empty()) entries.push_back({line, line_no});
    }
    return entries;
}

bool
BaselineMatches(const std::string& entry, const Finding& finding)
{
    const auto colon = entry.rfind(':');
    if (colon == std::string::npos) return false;
    const std::string epath = entry.substr(0, colon);
    const std::string erule = entry.substr(colon + 1);
    if (erule != finding.rule) return false;
    if (!epath.empty() && epath.back() == '/') {
        return finding.path.compare(0, epath.size(), epath) == 0;
    }
    return finding.path == epath;
}

/**
 * One allow() may list several rule ids before the justification:
 * `allow(W101 W105 formatting happens once at shutdown)`. The allow
 * must sit in a comment: the splitter blanks string literals out of
 * the comment channel, so quoting the incantation never suppresses.
 */
bool
InlineSuppressed(const SourceFile& f, const Finding& finding,
                 int* allow_line)
{
    static const std::regex kAllowRe(
        R"(wave-analyze:\s*allow\(\s*((?:W[0-9]{3}[\s,]+)*W[0-9]{3}))");
    static const std::regex kIdRe(R"(W[0-9]{3})");
    const auto check = [&](int line_no) {
        if (line_no < 1 ||
            line_no > static_cast<int>(f.lines.size())) {
            return false;
        }
        const std::string& comment =
            f.lines[static_cast<std::size_t>(line_no - 1)].comment;
        std::smatch m;
        if (!std::regex_search(comment, m, kAllowRe)) return false;
        const std::string ids = m[1].str();
        auto begin =
            std::sregex_iterator(ids.begin(), ids.end(), kIdRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            if (it->str() == finding.rule) {
                if (allow_line != nullptr) *allow_line = line_no;
                return true;
            }
        }
        return false;
    };
    return check(finding.line) || check(finding.line - 1);
}

void
ListRules()
{
    std::printf("wave_analyze rule catalog:\n");
    for (const Rule& r : kRules) {
        std::printf("  %s %-22s %s\n", r.id, r.name, r.summary);
    }
}

std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void
EmitText(const ReportInput& in)
{
    for (std::size_t i = 0; i < in.findings->size(); ++i) {
        if ((*in.status)[i] != Status::kReported) continue;
        const Finding& fd = (*in.findings)[i];
        std::printf("%s:%d: %s: %s\n", fd.path.c_str(), fd.line,
                    fd.rule.c_str(), fd.message.c_str());
    }
    if (in.reported == 0) {
        std::printf("wave_analyze: OK (%zu files, %d suppressed)\n",
                    in.file_count, in.suppressed);
        return;
    }
    std::printf(
        "wave_analyze: %d finding%s (%d suppressed, %zu stale "
        "baseline entr%s)\n",
        in.reported, in.reported == 1 ? "" : "s", in.suppressed,
        in.stale->size(), in.stale->size() == 1 ? "y" : "ies");
}

namespace {

const char*
KindName(SymKind kind)
{
    switch (kind) {
        case SymKind::kFunction: return "function";
        case SymKind::kGlobal: return "global";
        case SymKind::kLocalStatic: return "local-static";
    }
    return "?";
}

const char*
FactTag(Fact fact)
{
    switch (fact) {
        case Fact::kAlloc: return "alloc";
        case Fact::kThrow: return "throw";
        case Fact::kLock: return "lock";
        case Fact::kIo: return "io";
    }
    return "?";
}

/** Shard of a file for closure reporting: owns/derived/shared. */
std::string
ClosureShard(const SourceFile& f)
{
    if (f.has_shared) return "shared";
    const std::string shard = ShardOf(f);
    return shard.empty() ? "neutral" : shard;
}

}  // namespace

void
EmitJson(const ReportInput& in)
{
    std::printf("{\n  \"schema\": \"wave-analyze-v2\",\n");
    std::printf("  \"files\": %zu,\n", in.file_count);
    std::printf("  \"reported\": %d,\n", in.reported);
    std::printf("  \"suppressed\": %d,\n", in.suppressed);
    std::printf("  \"findings\": [");
    for (std::size_t i = 0; i < in.findings->size(); ++i) {
        const Finding& fd = (*in.findings)[i];
        const Status st = (*in.status)[i];
        const char* sup = st == Status::kReported
                              ? "null"
                              : (st == Status::kInline ? "\"inline\""
                                                       : "\"baseline\"");
        std::printf(
            "%s\n    {\"rule\": \"%s\", \"path\": \"%s\", "
            "\"line\": %d, \"message\": \"%s\", "
            "\"suppressed\": %s, \"suppression\": %s}",
            i == 0 ? "" : ",", fd.rule.c_str(),
            JsonEscape(fd.path).c_str(), fd.line,
            JsonEscape(fd.message).c_str(),
            st == Status::kReported ? "false" : "true", sup);
    }
    std::printf("\n  ],\n");

    // The shard-ownership map: explicit annotations, with ownership
    // derived from the domain where unambiguous. This is the artifact
    // the parallel-executor work consumes.
    std::printf("  \"ownership\": [");
    bool first = true;
    for (const auto& [path, f] : *in.model_files) {
        std::string owns = f->owns_line != 0 ? f->owns : "";
        std::string shared = f->has_shared ? f->shared_reason : "";
        bool derived = false;
        if (owns.empty() && !f->has_shared) {
            if (f->domain == Domain::kHost) {
                owns = "host";
                derived = true;
            } else if (f->domain == Domain::kNic) {
                owns = "nic";
                derived = true;
            }
        }
        const std::string owns_json =
            owns.empty() ? std::string("null")
                         : "\"" + JsonEscape(owns) + "\"";
        const std::string shared_json =
            f->has_shared ? "\"" + JsonEscape(shared) + "\""
                          : std::string("null");
        std::printf(
            "%s\n    {\"path\": \"%s\", \"domain\": \"%s\", "
            "\"owns\": %s, \"shared\": %s, \"derived\": %s}",
            first ? "" : ",", JsonEscape(path).c_str(),
            DomainName(f->domain), owns_json.c_str(),
            shared_json.c_str(), derived ? "true" : "false");
        first = false;
    }
    std::printf("\n  ],\n");

    // The name-resolved cross-TU graph (pass 1 output, verified by
    // pass 2). Symbol ids index into "symbols".
    const SymbolGraph& g = *in.graph;
    std::printf("  \"call_graph\": {\n    \"symbols\": [");
    const auto& symbols = g.symbols();
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        const Symbol& s = symbols[i];
        std::printf(
            "%s\n      {\"id\": %zu, \"name\": \"%s\", "
            "\"kind\": \"%s\", \"file\": \"%s\", \"line\": %d, "
            "\"file_local\": %s, \"hot\": %s, \"const\": %s, "
            "\"facts\": [",
            i == 0 ? "" : ",", i, JsonEscape(s.full).c_str(),
            KindName(s.kind), JsonEscape(s.file).c_str(), s.line,
            s.file_local ? "true" : "false", s.hot ? "true" : "false",
            s.is_const ? "true" : "false");
        for (std::size_t k = 0; k < s.facts.size(); ++k) {
            const FactSite& fact = s.facts[k];
            std::printf(
                "%s{\"fact\": \"%s\", \"line\": %d, "
                "\"detail\": \"%s\"}",
                k == 0 ? "" : ", ", FactTag(fact.fact), fact.line,
                JsonEscape(fact.detail).c_str());
        }
        std::printf("]}");
    }
    std::printf("\n    ],\n    \"calls\": [");
    const auto& calls = g.calls();
    for (std::size_t i = 0; i < calls.size(); ++i) {
        const CallEdge& e = calls[i];
        std::printf(
            "%s\n      {\"caller\": %d, \"callee\": %d, "
            "\"file\": \"%s\", \"line\": %d, \"hot\": %s, "
            "\"hook_gated\": %s}",
            i == 0 ? "" : ",", e.caller, e.callee,
            JsonEscape(e.file).c_str(), e.line,
            e.hot ? "true" : "false", e.hook_gated ? "true" : "false");
    }
    std::printf("\n    ],\n    \"refs\": [");
    const auto& refs = g.refs();
    for (std::size_t i = 0; i < refs.size(); ++i) {
        const RefEdge& r = refs[i];
        std::printf(
            "%s\n      {\"referrer\": %d, \"global\": %d, "
            "\"file\": \"%s\", \"line\": %d}",
            i == 0 ? "" : ",", r.referrer, r.global,
            JsonEscape(r.file).c_str(), r.line);
    }
    std::printf("\n    ]\n  },\n");

    // The ownership closure: which shard each model file belongs to,
    // and every cross-shard mutable-state reference with whether the
    // crossing is sanctioned (seam or wave-shared definition).
    std::printf("  \"ownership_closure\": {\n    \"shards\": {");
    std::map<std::string, std::vector<std::string>> shards;
    for (const auto& [path, f] : *in.model_files) {
        shards[ClosureShard(*f)].push_back(path);
    }
    bool first_shard = true;
    for (const auto& [shard, paths] : shards) {
        std::printf("%s\n      \"%s\": [", first_shard ? "" : ",",
                    JsonEscape(shard).c_str());
        for (std::size_t i = 0; i < paths.size(); ++i) {
            std::printf("%s\"%s\"", i == 0 ? "" : ", ",
                        JsonEscape(paths[i]).c_str());
        }
        std::printf("]");
        first_shard = false;
    }
    std::printf("\n    },\n    \"cross_shard_refs\": [");
    bool first_ref = true;
    for (const RefEdge& r : refs) {
        const Symbol& sym =
            symbols[static_cast<std::size_t>(r.global)];
        const auto def_it = in.model_files->find(sym.file);
        const auto use_it = in.model_files->find(r.file);
        if (def_it == in.model_files->end() ||
            use_it == in.model_files->end()) {
            continue;
        }
        const std::string def_shard = ShardOf(*def_it->second);
        const std::string use_shard = ShardOf(*use_it->second);
        if (def_shard == use_shard) continue;
        const bool sanctioned =
            def_it->second->has_shared ||
            def_it->second->domain == Domain::kPcie ||
            use_it->second->domain == Domain::kPcie ||
            def_shard.empty() || use_shard.empty();
        std::printf(
            "%s\n      {\"symbol\": \"%s\", \"from\": \"%s\", "
            "\"to\": \"%s\", \"file\": \"%s\", \"line\": %d, "
            "\"sanctioned\": %s}",
            first_ref ? "" : ",", JsonEscape(sym.full).c_str(),
            JsonEscape(use_shard.empty() ? "neutral" : use_shard)
                .c_str(),
            JsonEscape(def_shard.empty() ? "neutral" : def_shard)
                .c_str(),
            JsonEscape(r.file).c_str(), r.line,
            sanctioned ? "true" : "false");
        first_ref = false;
    }
    std::printf("\n    ]\n  },\n");

    std::printf("  \"stale_baseline\": [");
    for (std::size_t i = 0; i < in.stale->size(); ++i) {
        std::printf("%s\n    \"%s\"", i == 0 ? "" : ",",
                    JsonEscape((*in.stale)[i]).c_str());
    }
    std::printf("\n  ]\n}\n");
}

void
EmitSarif(const ReportInput& in)
{
    std::printf(
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"wave_analyze\",\n"
        "          \"rules\": [");
    constexpr std::size_t kRuleCount =
        sizeof(kRules) / sizeof(kRules[0]);
    for (std::size_t i = 0; i < kRuleCount; ++i) {
        const Rule& r = kRules[i];
        std::printf(
            "%s\n            {\"id\": \"%s\", \"name\": \"%s\", "
            "\"shortDescription\": {\"text\": \"%s\"}}",
            i == 0 ? "" : ",", r.id, JsonEscape(r.name).c_str(),
            JsonEscape(r.summary).c_str());
    }
    std::printf(
        "\n          ]\n"
        "        }\n"
        "      },\n"
        "      \"results\": [");
    bool first = true;
    for (std::size_t i = 0; i < in.findings->size(); ++i) {
        if ((*in.status)[i] != Status::kReported) continue;
        const Finding& fd = (*in.findings)[i];
        std::printf(
            "%s\n        {\"ruleId\": \"%s\", \"level\": \"error\", "
            "\"message\": {\"text\": \"%s\"}, \"locations\": "
            "[{\"physicalLocation\": {\"artifactLocation\": "
            "{\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}]}",
            first ? "" : ",", fd.rule.c_str(),
            JsonEscape(fd.message).c_str(),
            JsonEscape(fd.path).c_str(), fd.line > 0 ? fd.line : 1);
        first = false;
    }
    std::printf(
        "\n      ]\n"
        "    }\n"
        "  ]\n"
        "}\n");
}

}  // namespace wa
