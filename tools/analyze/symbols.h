/**
 * @file
 * Pass 1 of the cross-TU analysis: a tree-wide symbol table and
 * name-resolved call/reference graph, built from the same text-level
 * view the per-file rules use (no libclang).
 *
 * What goes in the table:
 *  - free functions and out-of-line member definitions, exploiting the
 *    codebase's return-type-first style (the function name starts a
 *    line at namespace scope) plus one-line in-class member bodies;
 *  - namespace-scope variable definitions, with const/constexpr-ness
 *    recorded (the W303 mutable-global census input);
 *  - mutable function-local statics.
 *
 * What comes out besides symbols:
 *  - call edges: every resolvable `Name(`, `ns::Name(`, `Cls::Name(`
 *    or `obj.Name(` site inside a function body, attributed to the
 *    enclosing function (lambda bodies attribute to the enclosing
 *    function too);
 *  - reference edges: identifier uses of namespace-scope variables
 *    from other files (the W302 shard-closure input);
 *  - per-function facts: allocation/throw/lock/IO constructs on the
 *    function's *cold* lines (hot lines are the per-file W10x rules'
 *    jurisdiction), the W301 transitive-hot sink markers.
 *
 * Name resolution is deliberately conservative: same file wins, then
 * an exact qualified match, then a unique name tree-wide; ambiguous
 * names resolve nowhere rather than wrongly. Known approximations are
 * documented in docs/static-analysis.md §3d.
 */
// wave-domain: harness
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace wa {

enum class SymKind { kFunction, kGlobal, kLocalStatic };

/** What a reachable function does that a hot path must not. */
enum class Fact { kAlloc, kThrow, kLock, kIo };

const char* FactName(Fact fact);

struct FactSite {
    Fact fact;
    int line = 0;          ///< 1-based line in the defining file
    std::string detail;    ///< matched construct, for messages
};

struct Symbol {
    std::string name;   ///< last component ("Refill")
    std::string qual;   ///< scope as written ("wave::sim::TimingWheel")
    std::string full;   ///< qual + "::" + name (display form)
    SymKind kind = SymKind::kFunction;
    std::string file;   ///< report path of the defining file
    int line = 0;       ///< 1-based definition line
    bool file_local = false;  ///< anonymous namespace / static linkage
    bool member = false;      ///< class member function
    bool is_const = false;    ///< globals: const/constexpr/constinit
    bool hot = false;         ///< any body line inside a wave-hot region
    int body_begin = 0;       ///< 1-based first body line (functions)
    int body_end = 0;         ///< 1-based last body line (functions)
    std::vector<FactSite> facts;  ///< cold-line W301 sink facts
};

/** One resolved call edge, attributed to the enclosing function. */
struct CallEdge {
    int caller = -1;     ///< symbol index, -1 for file-scope initializers
    int callee = 0;      ///< symbol index
    std::string file;    ///< call-site file
    int line = 0;        ///< 1-based call-site line
    bool hot = false;    ///< call site is inside a wave-hot region
    bool hook_gated = false;  ///< inside WAVE_CHECK_HOOK(...) — opt-in
};

/** One use of a namespace-scope variable from a function body. */
struct RefEdge {
    int referrer = -1;   ///< enclosing function symbol index, or -1
    int global = 0;      ///< symbol index of the variable
    std::string file;    ///< referencing file
    int line = 0;        ///< 1-based reference line
};

class SymbolGraph {
  public:
    /** Adds one file's symbols (pass 1a). Call for every model file. */
    void AddFile(const SourceFile& f);

    /**
     * Resolves call/reference sites against the completed table
     * (pass 1b). Call after every AddFile, once per file.
     */
    void ResolveFile(const SourceFile& f);

    const std::vector<Symbol>& symbols() const { return symbols_; }
    const std::vector<CallEdge>& calls() const { return calls_; }
    const std::vector<RefEdge>& refs() const { return refs_; }

    /** Indices of symbols named @p name (any qualification). */
    std::vector<int> Lookup(const std::string& name) const;

    /**
     * Conservative resolution of a callee written @p text (possibly
     * qualified) at a site in @p file: same file wins, then exact
     * qualified suffix, then unique tree-wide; -1 when ambiguous or
     * unknown. File-local symbols never resolve from other files.
     */
    int Resolve(const std::string& text, const std::string& file,
                bool member_call) const;

    /** Function symbol whose body spans @p line of @p file, or -1. */
    int EnclosingFunction(const std::string& file, int line) const;

    /**
     * Is @p s an abort-path function? True when any declaration or
     * definition of the name carries [[noreturn]] — the attribute
     * usually sits on the header declaration while the symbol table
     * holds the .cc definition, so this is name-keyed. W301 does not
     * traverse into abort paths: they are not steady-state cost.
     */
    bool IsNoReturn(const Symbol& s) const
    {
        return noreturn_names_.count(s.name) != 0;
    }

  private:
    std::vector<Symbol> symbols_;
    std::vector<CallEdge> calls_;
    std::vector<RefEdge> refs_;
    std::map<std::string, std::vector<int>> by_name_;
    std::set<std::string> noreturn_names_;
};

}  // namespace wa
