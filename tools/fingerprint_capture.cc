/**
 * @file
 * Prints the simulator event-stream fingerprint for a range of seeded
 * fuzz scenarios. Used to confirm that refactors keep the executed
 * event stream bit-identical: capture before, capture after, diff.
 */
#include <cstdio>
#include <cstdlib>

#include "fuzz/runner.h"
#include "fuzz/scenario.h"

int main(int argc, char** argv)
{
    const unsigned long long first = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    const unsigned long long count = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
    for (unsigned long long seed = first; seed < first + count; ++seed) {
        const wave::fuzz::Scenario s = wave::fuzz::GenerateScenario(seed);
        const wave::fuzz::RunResult r = wave::fuzz::RunScenario(s);
        std::printf("seed=%llu event_hash=%016llx completed=%llu\n", seed,
                    static_cast<unsigned long long>(r.event_hash),
                    static_cast<unsigned long long>(r.completed));
    }
    return 0;
}
