#!/usr/bin/env python3
"""Perf gate: compare a wave-bench-v1 report against a baseline.

Usage:
    bench_gate.py <fresh.json> <baseline.json> [--max-regression 0.25]

Two classes of metric, told apart by name:

* Absolute-budget metrics (``allocs_per_event``): fail if the fresh
  value exceeds the budget, regardless of runner speed. These encode
  correctness-like properties (the W101 "allocation-free steady state"
  claim) that a fast runner cannot hide.
* Throughput metrics (``*_per_sec``): higher is better; fail when the
  fresh value drops more than --max-regression below baseline. The
  default 25% is deliberately generous — CI runners vary — while still
  catching an accidental O(n) in the event loop.

Everything else (latency samples, ratios, wall_ns_per_sim_sec) is
reported but not gated: those either vary too much across runners or
are gated elsewhere (figure-shape assertions live in the test suite).

Exit codes: 0 pass, 1 gate failure, 2 usage/schema error, 3 missing
input (a BENCH_*.json file that was never produced, or a baseline
metric absent from the fresh report — rebuild the benches with the
`bench_json` target before gating).
"""

import json
import sys

# allocs_per_event must stay ~zero; tolerate counter noise from the
# harness itself (one stray allocation in a million events).
ALLOC_BUDGET = 0.001


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        print(f"bench_gate: missing input {path} — run the bench_json "
              f"build target to (re)generate BENCH_*.json reports",
              file=sys.stderr)
        sys.exit(3)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "wave-bench-v1":
        print(f"bench_gate: {path}: unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    metrics = {}
    for m in doc.get("metrics", []):
        if "name" not in m or "value" not in m:
            print(f"bench_gate: {path}: malformed metric entry {m!r} "
                  f"(need name and value)", file=sys.stderr)
            sys.exit(2)
        try:
            metrics[m["name"]] = float(m["value"])
        except (TypeError, ValueError):
            print(f"bench_gate: {path}: non-numeric value in {m!r}",
                  file=sys.stderr)
            sys.exit(2)
    return metrics


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regression = 0.25
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regression":
            max_regression = float(next(it, "0.25"))
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    fresh, baseline = load(args[0]), load(args[1])
    failures = []
    missing = [n for n in sorted(baseline) if n not in fresh]
    if missing:
        print(f"bench_gate: baseline metrics missing from fresh "
              f"report: {', '.join(missing)}", file=sys.stderr)
        print(f"bench_gate: metric names are stable identifiers — "
              f"rebuild the benches (bench_json target), or update "
              f"{args[1]} if a metric was deliberately renamed",
              file=sys.stderr)
        return 3

    for name, base in sorted(baseline.items()):
        now = fresh[name]
        if name == "allocs_per_event":
            verdict = "FAIL" if now > ALLOC_BUDGET else "ok"
            print(f"  {verdict:4} {name}: {now:g} "
                  f"(budget {ALLOC_BUDGET:g}, absolute)")
            if now > ALLOC_BUDGET:
                failures.append(
                    f"{name}: {now:g} exceeds the {ALLOC_BUDGET:g} "
                    f"budget — a per-event heap allocation is back on "
                    f"the hot path (see docs/static-analysis.md W101)")
        elif name.endswith("_per_sec"):
            drop = 1.0 - now / base if base > 0 else 0.0
            verdict = "FAIL" if drop > max_regression else "ok"
            print(f"  {verdict:4} {name}: {now:.4g} vs baseline "
                  f"{base:.4g} ({-drop:+.1%})")
            if drop > max_regression:
                failures.append(
                    f"{name}: {now:.4g} is {drop:.1%} below baseline "
                    f"{base:.4g} (limit {max_regression:.0%})")
        else:
            print(f"  info {name}: {now:.4g} vs baseline {base:.4g}")

    if failures:
        print("bench_gate: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
