/**
 * @file
 * wave_analyze: repo-specific static checks the C++ type system cannot
 * express, in the spirit of Linux's `sparse` address-space checker.
 *
 * The simulation stitches two clock domains (host x86, NIC ARM)
 * together through the PCIe model only. The strong time types
 * (sim/time.h, machine/cycles.h) make unit mixing a compile error;
 * this tool enforces the *structural* rules on top: which files may
 * know about which domain, where checker instrumentation must sit,
 * and which determinism-hostile constructs are banned from model code.
 *
 * Every model source file carries a comment annotation
 *
 *     // wave-domain: host|nic|pcie|neutral|harness
 *
 * and the analyzer walks a token/declaration-level view of the tree
 * (plain text with comments and strings stripped — no libclang):
 *
 *   W001 missing-domain        src file lacks a wave-domain annotation
 *   W002 cross-domain-include  include edge violates the domain matrix
 *   W003 cross-domain-symbol   names a symbol owned by the other domain
 *   W004 actor-domain          RegisterActor call without a domain
 *   W005 hook-coverage         checker call outside WAVE_CHECK_HOOK, or
 *                              a queue/txn endpoint file with no hooks
 *   W006 stale-reason          tolerate_stale=true without justification
 *   W007 wall-clock-rng        wall clock / unseeded RNG in model code
 *   W008 time-narrowing        double<->integer time cast outside the
 *                              sanctioned bridges (sim/time.h, cycles.h)
 *
 * A second annotation marks the per-event hot set — the code whose
 * cost is multiplied by every simulated event, and which the Wave
 * paper's wimpy-core budget argument says must stay allocation- and
 * syscall-free:
 *
 *     // wave-hot              whole file is hot
 *     // wave-hot: begin       start of a hot region
 *     // wave-hot: end         end of a hot region
 *
 * The W100-series performance rules fire only on hot lines:
 *
 *   W101 hot-alloc             heap allocation on a hot path: `new`,
 *                              make_unique/make_shared, push_back or
 *                              emplace_back without an earlier reserve
 *                              in the same hot region, std::string
 *                              construction, std::function, or a
 *                              sized Bytes/std::vector local
 *   W102 hot-throw             throw/try/catch inside a hot region
 *   W103 hot-lock              std::mutex/lock_guard/atomic (the sim
 *                              core is single-threaded by design)
 *   W104 hot-by-value          heavy type (std::string, std::vector,
 *                              Bytes, config/stats structs) passed by
 *                              value across a hot signature
 *   W105 hot-io                printf-family or iostream I/O on a
 *                              hot path
 *   W106 hot-unbatched         per-element Channel Push/Receive or
 *                              TryReceive inside a hot loop that
 *                              could use the bulk batch API
 *
 * The W200 series ("concurrency readiness") proves the two properties
 * a sharded or conservatively-parallel event executor needs: coroutine
 * frames never outlive the state they reference, and every piece of
 * state reachable from actors in more than one clock domain/shard is
 * explicitly classified. Two annotation families drive it:
 *
 *     // wave-lifetime(caller-awaits)
 *     // wave-lifetime(spawn-safe: <why the referents outlive the frame>)
 *
 * on a coroutine's declaration or definition head states the frame's
 * argument-lifetime contract: `caller-awaits` promises every call site
 * co_awaits the returned task inside the same full expression (so the
 * arguments outlive the frame by construction); `spawn-safe` permits
 * detaching the task via Simulator::Spawn and must say why the
 * referenced state survives until the frame completes. Contracts are
 * matched by function name: an annotation on a header declaration
 * covers same-name out-of-line definitions tree-wide.
 *
 *     // wave-owns(host|nic)
 *     // wave-shared(<why cross-shard access is safe>)
 *
 * at file scope classifies the file's mutable state for the shard map:
 * `wave-owns` pins it to one shard; `wave-shared` marks genuinely
 * cross-shard state and documents the synchronization story. Files in
 * a concrete host/nic domain are derived to be owned by that shard;
 * the annotation is mandatory exactly where ownership is ambiguous
 * (the pcie seam, and any file registering sim actors).
 *
 *   W201 dangling-after-suspend  Task coroutine definition whose
 *                              parameters include references, pointers,
 *                              string_view, or span (or an out-of-line
 *                              member's implicit `this`) with no
 *                              wave-lifetime contract — the lazily
 *                              started frame holds those referents
 *                              across its initial suspension
 *   W202 lambda-coroutine      capturing-lambda coroutine: the frame
 *                              references the closure object, which
 *                              dies at the first suspension when the
 *                              lambda is a temporary
 *   W203 spawn-dangling        Spawn() of a task holding references to
 *                              the spawner's stack (immediately-invoked
 *                              lambda with reference parameters), of a
 *                              caller-awaits coroutine (detaching
 *                              violates its contract), or of a
 *                              reference-taking coroutine with no
 *                              spawn-safe contract
 *   W204 shard-ownership       pcie-seam or actor-registering file
 *                              with no wave-owns/wave-shared
 *                              classification, or a classification
 *                              contradicted by the file's domain or
 *                              actor labels
 *   W205 unstable-iteration    iteration over a pointer-keyed
 *                              unordered_map/unordered_set: address-
 *                              dependent order breaks fingerprint
 *                              determinism across runs and shards
 *   W206 suspend-under-guard   co_await while a scoped guard
 *                              (*Guard, lock_guard family) or borrowed
 *                              view local (string_view, span) is live —
 *                              the guard spans foreign event execution
 *
 * Domain include matrix (row may include column):
 *
 *              host   nic   pcie  neutral
 *   host        yes    no    yes    yes      host code never sees NIC
 *   nic          no   yes    yes    yes      state except through the
 *   pcie         no    no    yes    yes      pcie/channel/wave seam.
 *   neutral      no    no     no    yes
 *   harness     yes   yes    yes    yes      tests/bench/tools/fuzz
 *
 * Scope: files under src/ get the full catalog ("model" scope). Files
 * under tests/ and bench/ get the harness subset — the W200 rules
 * whose bug classes corrupt test processes just as surely as model
 * ones (W202/W203/W205/W206) — so harness coroutine idioms are vetted
 * too. Planted-violation fixtures (tests/analyze_fixtures/) are
 * excluded from tree walks and analyzed explicitly by analyze_test.
 *
 * Suppression: append `// wave-analyze: allow(W00X reason)` on the
 * offending line (or the line directly above); one allow() may list
 * several rule ids (`allow(W101 W105 reason)`). Alternatively add
 * `path:W00X` to the baseline file passed with --baseline; a baseline
 * path ending in '/' suppresses by directory prefix (the scoped
 * allowlist for harness-only patterns). Inline suppressions are for
 * deliberate, justified exceptions; the baseline exists to land the
 * checker on a tree with pre-existing debt and then burn it down.
 * A baseline entry that matches no finding is itself an error (dead
 * suppressions rot silently otherwise).
 *
 * Usage:
 *   wave_analyze [--root DIR] [--baseline FILE] [--as-src]
 *                [--format=text|json] [FILE...]
 *   wave_analyze --list-rules
 *
 * With no FILE arguments, analyzes every .h/.cc under DIR/src (model
 * scope) plus DIR/tests and DIR/bench (harness scope). With explicit
 * FILEs (fixture snippets in tests), --as-src applies the model-code
 * rules regardless of the file's location. --format=json emits a
 * machine-readable report (schema wave-analyze-v1) with every finding,
 * its suppression status, and the per-file shard-ownership map.
 * Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage
 * or I/O error.
 */
// wave-domain: harness
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

enum class Domain { kUnknown, kHost, kNic, kPcie, kNeutral, kHarness };

const char*
DomainName(Domain d)
{
    switch (d) {
        case Domain::kHost: return "host";
        case Domain::kNic: return "nic";
        case Domain::kPcie: return "pcie";
        case Domain::kNeutral: return "neutral";
        case Domain::kHarness: return "harness";
        default: return "unknown";
    }
}

std::optional<Domain>
ParseDomain(const std::string& name)
{
    if (name == "host") return Domain::kHost;
    if (name == "nic") return Domain::kNic;
    if (name == "pcie") return Domain::kPcie;
    if (name == "neutral") return Domain::kNeutral;
    if (name == "harness") return Domain::kHarness;
    return std::nullopt;
}

/** May a file in domain @p from include a file in domain @p to? */
bool
MayInclude(Domain from, Domain to)
{
    if (from == Domain::kHarness) return true;
    if (to == Domain::kNeutral) return true;
    if (to == Domain::kPcie) return from != Domain::kNeutral;
    return from == to;  // concrete domains only reach themselves
}

struct Finding {
    std::string path;  // as reported (relative to root when possible)
    int line = 0;
    std::string rule;
    std::string message;
};

/** One source line split into code and comment text. */
struct SplitLine {
    std::string code;     // strings blanked, comments removed
    std::string comment;  // contents of // and /* */ comments
};

/**
 * Comment/string-aware line splitter. Block-comment state carries
 * across lines; string contents are blanked from the code channel so
 * a "//" inside a literal is not mistaken for a comment — and so an
 * allow() spelled inside a string literal never suppresses anything.
 */
class LineSplitter {
  public:
    SplitLine
    Split(const std::string& line)
    {
        SplitLine out;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            if (in_block_comment_) {
                if (c == '*' && next == '/') {
                    in_block_comment_ = false;
                    ++i;
                } else {
                    out.comment += c;
                }
                continue;
            }
            if (in_string_) {
                if (c == '\\') {
                    out.code += "  ";
                    ++i;
                } else if (c == quote_) {
                    in_string_ = false;
                    out.code += c;
                } else {
                    out.code += ' ';
                }
                continue;
            }
            if (c == '/' && next == '/') {
                out.comment += line.substr(i + 2);
                break;
            }
            if (c == '/' && next == '*') {
                in_block_comment_ = true;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                in_string_ = true;
                quote_ = c;
                out.code += c;
                continue;
            }
            out.code += c;
        }
        // Strings do not span lines in this codebase (no raw strings).
        in_string_ = false;
        return out;
    }

  private:
    bool in_block_comment_ = false;
    bool in_string_ = false;
    char quote_ = '"';
};

/** Argument-lifetime contract of a Task coroutine (W201/W203). */
enum class Contract { kNone, kCallerAwaits, kSpawnSafe, kMalformed };

/** One parsed Task-returning function signature (and body facts). */
struct Coroutine {
    std::string name;       ///< last identifier component ("PollInto")
    std::string full_name;  ///< as written ("HostToNicChannel::PollInto")
    bool qualified = false;    ///< Cls::Name definition → implicit this
    bool ref_params = false;   ///< params include & / * / view types
    bool is_definition = false;
    bool is_coroutine = false;  ///< body contains co_await/return/yield
    int sig_line = 0;           ///< 1-based first line of the head
    int head_end = 0;           ///< 1-based line of the '{' or ';'
    Contract contract = Contract::kNone;
    std::string contract_text;  ///< raw annotation arg (for diagnostics)
};

struct SourceFile {
    std::string path;          // reported path
    std::vector<std::string> raw;
    std::vector<SplitLine> lines;
    Domain domain = Domain::kUnknown;
    int domain_line = 0;
    /**
     * Per-line hot-region id, parallel to `lines`: 0 = not hot, >0 =
     * id of the `// wave-hot` region the line belongs to. A bare
     * file-scope `// wave-hot` puts every line in one region.
     */
    std::vector<int> hot;
    /** File-scope shard-ownership annotation (W204). */
    std::string owns;           ///< wave-owns(<shard>) argument, or ""
    int owns_line = 0;
    std::string shared_reason;  ///< wave-shared(<reason>) argument
    bool has_shared = false;
    int shared_line = 0;
    /** Task-returning functions parsed from this file (W201/W203). */
    std::vector<Coroutine> coroutines;
};

std::optional<SourceFile>
LoadFile(const fs::path& fullpath, const std::string& report_path)
{
    std::ifstream in(fullpath);
    if (!in) return std::nullopt;
    SourceFile f;
    f.path = report_path;
    std::string line;
    LineSplitter splitter;
    static const std::regex kDomainRe(
        R"(wave-domain:\s*([a-z]+))");
    // Anchored to the whole comment: prose *mentioning* wave-hot (docs,
    // fixture headers) must not mark a file hot; only a standalone
    // annotation line does.
    static const std::regex kHotRe(
        R"(^\s*wave-hot(:\s*(begin|end))?\s*$)");
    static const std::regex kOwnsRe(
        R"(wave-owns\(\s*([A-Za-z-]*)\s*\))");
    static const std::regex kSharedRe(R"(wave-shared\(([^)]*)\))");
    bool file_hot = false;
    int hot_depth = 0;
    int next_region = 0;
    int open_region = 0;
    while (std::getline(in, line)) {
        f.raw.push_back(line);
        f.lines.push_back(splitter.Split(line));
        const std::string& comment = f.lines.back().comment;
        if (f.domain == Domain::kUnknown) {
            std::smatch m;
            if (std::regex_search(comment, m, kDomainRe)) {
                if (auto d = ParseDomain(m[1].str())) {
                    f.domain = *d;
                    f.domain_line = static_cast<int>(f.raw.size());
                }
            }
        }
        std::smatch om;
        if (f.owns.empty() && f.owns_line == 0 &&
            std::regex_search(comment, om, kOwnsRe)) {
            f.owns = om[1].str();
            f.owns_line = static_cast<int>(f.raw.size());
        }
        if (!f.has_shared && std::regex_search(comment, om, kSharedRe)) {
            f.has_shared = true;
            f.shared_reason = om[1].str();
            f.shared_line = static_cast<int>(f.raw.size());
        }
        std::smatch hm;
        if (std::regex_search(comment, hm, kHotRe)) {
            const std::string kind = hm[2].str();
            if (kind == "begin") {
                if (hot_depth == 0) open_region = ++next_region;
                ++hot_depth;
            } else if (kind == "end") {
                if (hot_depth > 0) --hot_depth;
            } else {
                file_hot = true;
            }
        }
        // The `begin` line is hot; the `end` line is not.
        f.hot.push_back(hot_depth > 0 ? open_region : 0);
    }
    if (file_hot) {
        const int file_region = ++next_region;
        for (int& h : f.hot) {
            if (h == 0) h = file_region;
        }
    }
    return f;
}

/** Net '(' minus ')' on the code channel of a string. */
int
ParenBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '(') ++n;
        if (c == ')') --n;
    }
    return n;
}

/** Net '{' minus '}' on the code channel of a string. */
int
BraceBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '{') ++n;
        if (c == '}') --n;
    }
    return n;
}

/** Argument text of a call: from after '(' to its match (same line). */
std::string
CallArgument(const std::string& code, std::size_t open_paren)
{
    int depth = 0;
    for (std::size_t i = open_paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
            --depth;
            if (depth == 0) {
                return code.substr(open_paren + 1, i - open_paren - 1);
            }
        }
    }
    return code.substr(open_paren + 1);
}

/**
 * Argument text of a call whose parentheses may span lines: joins the
 * code channel (newline-separated) from @p open at (line, col) to the
 * matching close paren. Bounded; returns what it has on imbalance.
 */
std::string
JoinedCallArgument(const SourceFile& f, std::size_t line,
                   std::size_t open_col)
{
    std::string out;
    int depth = 0;
    const std::size_t limit = std::min(f.lines.size(), line + 400);
    for (std::size_t i = line; i < limit; ++i) {
        const std::string& code = f.lines[i].code;
        const std::size_t start = i == line ? open_col : 0;
        for (std::size_t j = start; j < code.size(); ++j) {
            const char c = code[j];
            if (c == '(') {
                ++depth;
                if (depth == 1) continue;  // skip the opening paren
            }
            if (c == ')') {
                --depth;
                if (depth == 0) return out;
            }
            out += c;
        }
        out += '\n';
    }
    return out;
}

// --- coroutine signature parsing ---------------------------------------

/** Do explicit parameters include a reference/pointer/view type? */
bool
ParamsHaveRefs(const std::string& params)
{
    static const std::regex kRefRe(
        R"([&*]|\bstring_view\b|\bspan\s*<)");
    return std::regex_search(params, kRefRe);
}

/**
 * Parses the wave-lifetime contract from the comment channel of lines
 * [from, to] (1-based, inclusive, clamped). First annotation wins.
 */
Contract
ContractIn(const SourceFile& f, int from, int to, std::string* text)
{
    static const std::regex kLifetimeRe(R"(wave-lifetime\(([^)]*)\))");
    const int lo = std::max(from, 1);
    const int hi = std::min(to, static_cast<int>(f.lines.size()));
    for (int i = lo; i <= hi; ++i) {
        const std::string& comment =
            f.lines[static_cast<std::size_t>(i - 1)].comment;
        std::smatch m;
        if (!std::regex_search(comment, m, kLifetimeRe)) continue;
        std::string arg = m[1].str();
        *text = arg;
        if (arg == "caller-awaits") return Contract::kCallerAwaits;
        const std::string kPrefix = "spawn-safe:";
        if (arg.compare(0, kPrefix.size(), kPrefix) == 0) {
            std::string reason = arg.substr(kPrefix.size());
            reason.erase(0, reason.find_first_not_of(" \t"));
            if (!reason.empty()) return Contract::kSpawnSafe;
        }
        return Contract::kMalformed;
    }
    return Contract::kNone;
}

/**
 * Finds every Task-returning function head in @p f and records, for
 * definitions, whether the body is a coroutine. Text-level: the head
 * must start a line (after optional inline/static/virtual/...), which
 * matches this codebase's return-type-first style; `Task<>` locals,
 * parameters, and `co_await q.Receive()` expressions do not parse as
 * heads and are skipped.
 */
std::vector<Coroutine>
ParseCoroutines(const SourceFile& f)
{
    std::vector<Coroutine> out;
    static const std::regex kHeadStartRe(
        R"(^\s*(?:(?:inline|static|virtual|constexpr|friend|explicit)\s+)"
        R"(|\[\[nodiscard\]\]\s*)*((?:[A-Za-z_]\w*::)*)Task\s*<)");
    const std::size_t n = f.lines.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::smatch m;
        if (!std::regex_search(f.lines[i].code, m, kHeadStartRe)) {
            continue;
        }
        // Join a bounded window of code lines and parse by hand from
        // the '<' of Task<...>.
        std::string head;
        std::vector<std::size_t> line_of;  // head index -> file line
        const std::size_t window = std::min(n, i + 16);
        for (std::size_t j = i; j < window; ++j) {
            for (char c : f.lines[j].code) {
                head += c;
                line_of.push_back(j);
            }
            head += '\n';
            line_of.push_back(j);
        }
        const std::size_t angle_open = static_cast<std::size_t>(
            m.position(0) + m.length(0) - 1);
        // Match the template argument list.
        int angles = 0;
        std::size_t p = angle_open;
        for (; p < head.size(); ++p) {
            if (head[p] == '<') ++angles;
            if (head[p] == '>' && --angles == 0) break;
            if (head[p] == ';' || head[p] == '{') break;  // not a head
        }
        if (p >= head.size() || head[p] != '>') continue;
        ++p;
        while (p < head.size() && std::isspace(
                   static_cast<unsigned char>(head[p]))) {
            ++p;
        }
        // Function name (possibly Class::qualified).
        const std::size_t name_start = p;
        while (p < head.size() &&
               (std::isalnum(static_cast<unsigned char>(head[p])) ||
                head[p] == '_' || head[p] == ':')) {
            ++p;
        }
        if (p == name_start) continue;
        const std::string full_name =
            head.substr(name_start, p - name_start);
        while (p < head.size() && std::isspace(
                   static_cast<unsigned char>(head[p]))) {
            ++p;
        }
        if (p >= head.size() || head[p] != '(') continue;
        // Parameter list.
        int parens = 0;
        const std::size_t params_open = p;
        for (; p < head.size(); ++p) {
            if (head[p] == '(') ++parens;
            if (head[p] == ')' && --parens == 0) break;
        }
        if (p >= head.size()) continue;
        const std::string params =
            head.substr(params_open + 1, p - params_open - 1);
        ++p;
        // Skip trailing qualifiers to the head terminator.
        std::size_t term = std::string::npos;
        char term_char = '\0';
        for (; p < head.size(); ++p) {
            const char c = head[p];
            if (c == '{' || c == ';' || c == '=') {
                term = p;
                term_char = c;
                break;
            }
            if (std::isspace(static_cast<unsigned char>(c)) ||
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_') {
                continue;  // const / noexcept / override / final
            }
            break;  // anything else: not a function head
        }
        if (term == std::string::npos) continue;

        Coroutine c;
        c.full_name = full_name;
        const auto colon = full_name.rfind("::");
        c.name = colon == std::string::npos
                     ? full_name
                     : full_name.substr(colon + 2);
        c.qualified = colon != std::string::npos;
        c.ref_params = ParamsHaveRefs(params);
        c.sig_line = static_cast<int>(i + 1);
        c.head_end = static_cast<int>(line_of[term] + 1);
        c.is_definition = term_char == '{';
        c.contract =
            ContractIn(f, c.sig_line - 2, c.head_end, &c.contract_text);

        if (c.is_definition) {
            // Scan the body for co_await/co_return/co_yield.
            static const std::regex kCoRe(
                R"(\bco_(await|return|yield)\b)");
            int depth = 0;
            bool entered = false;
            for (std::size_t j = line_of[term];
                 j < n && !(entered && depth == 0); ++j) {
                const std::string& code = f.lines[j].code;
                if (!entered || depth > 0) {
                    if (std::regex_search(code, kCoRe)) {
                        c.is_coroutine = true;
                    }
                }
                depth += BraceBalance(code);
                if (depth > 0) entered = true;
                if (entered && depth <= 0) break;
            }
        }
        out.push_back(std::move(c));
        // Resume scanning after the head (bodies cannot start heads at
        // line scope in this codebase).
        i = static_cast<std::size_t>(c.head_end) - 1;
    }
    return out;
}

/** Tree-wide name-keyed merge of coroutine lifetime contracts. */
struct ContractEntry {
    bool spawn_safe = false;
    bool caller_awaits = false;
    bool ref_params = false;   ///< any same-name site takes refs/this
    bool annotated = false;    ///< any same-name site carries a contract
};

using ContractRegistry = std::map<std::string, ContractEntry>;

void
MergeContracts(const SourceFile& f, ContractRegistry& registry)
{
    for (const Coroutine& c : f.coroutines) {
        ContractEntry& e = registry[c.name];
        e.spawn_safe |= c.contract == Contract::kSpawnSafe;
        e.caller_awaits |= c.contract == Contract::kCallerAwaits;
        e.ref_params |= c.ref_params || c.qualified;
        e.annotated |= c.contract == Contract::kCallerAwaits ||
                       c.contract == Contract::kSpawnSafe;
    }
}

// --- rule catalog ------------------------------------------------------

struct Rule {
    const char* id;
    const char* name;
    const char* summary;
};

constexpr Rule kRules[] = {
    {"W001", "missing-domain",
     "every model source file carries a wave-domain annotation"},
    {"W002", "cross-domain-include",
     "includes respect the host/nic/pcie/neutral matrix"},
    {"W003", "cross-domain-symbol",
     "no naming symbols owned by the opposite domain"},
    {"W004", "actor-domain",
     "RegisterActor call sites declare the actor's domain"},
    {"W005", "hook-coverage",
     "checker calls gated by WAVE_CHECK_HOOK; endpoints instrumented"},
    {"W006", "stale-reason",
     "tolerate_stale != false carries a same-line justification"},
    {"W007", "wall-clock-rng",
     "no wall clock, std::rand, or unseeded RNG in model code"},
    {"W008", "time-narrowing",
     "double<->integer time conversion only through sim/time.h"},
    {"W101", "hot-alloc",
     "no heap allocation on wave-hot paths (new, make_unique/shared, "
     "unreserved push_back, std::string, std::function)"},
    {"W102", "hot-throw",
     "no throw/try/catch inside wave-hot regions"},
    {"W103", "hot-lock",
     "no mutexes or atomics in the single-threaded sim core hot set"},
    {"W104", "hot-by-value",
     "no pass-by-value of heavy types across wave-hot signatures"},
    {"W105", "hot-io",
     "no printf-family or iostream I/O on wave-hot paths"},
    {"W106", "hot-unbatched",
     "no per-element Channel ops inside wave-hot loops (bulk API)"},
    {"W201", "dangling-after-suspend",
     "Task coroutines taking refs/pointers/views (or implicit this) "
     "carry a wave-lifetime(caller-awaits|spawn-safe: ...) contract"},
    {"W202", "lambda-coroutine",
     "no capturing-lambda coroutines (captures live in the closure, "
     "which dies at the first suspension when temporary)"},
    {"W203", "spawn-dangling",
     "Spawn() only detaches spawn-safe tasks; never caller-awaits "
     "coroutines or lambdas bound to the spawner's stack"},
    {"W204", "shard-ownership",
     "pcie-seam and actor-registering files classify their mutable "
     "state with wave-owns(<shard>) or wave-shared(<reason>)"},
    {"W205", "unstable-iteration",
     "no iteration over pointer-keyed unordered containers in model "
     "code (address-dependent order breaks determinism fingerprints)"},
    {"W206", "suspend-under-guard",
     "no co_await while a scoped guard or borrowed view local is live"},
};

/**
 * Namespaces owned wholly by one concrete domain. Mixed-domain
 * namespaces (ghost: host kernel + neutral policy ABI) are enforced at
 * include granularity by W002 instead.
 */
const std::map<std::string, Domain> kOwnedNamespaces = {
    {"sol", Domain::kNic},
    {"workload", Domain::kHost},
    {"rpc", Domain::kHost},
};

/**
 * Queue/txn endpoint files that must contain checker instrumentation:
 * the cross-domain data path is exactly where the dynamic checkers
 * watch for coherence and ordering bugs, so a hook-free endpoint file
 * means a blind spot. Matched as path suffixes.
 */
const char* const kEndpointFiles[] = {
    "channel/mmio_queue.cc", "channel/dma_queue.cc",
    "pcie/mmio.cc",          "pcie/dma.cc",
    "pcie/msix.cc",          "wave/txn.cc",
    "wave/shm_queue.h",
};

/**
 * wave::check entry points callable from model code. Mirrors the
 * public API of coherence.h, protocol.h, and hb.h plus attach/bind
 * helpers; extend when adding checker API. (Folded in from the retired
 * tools/lint_hooks.sh.)
 */
const char* const kCheckerCallRe =
    R"((->|\.)\s*()"
    "OnWrite|OnRead|OnCacheFill|OnCacheDrop|OnWcBuffered|"
    "OnWcDrained|OnDmaWrite|OnOrderingPoint|OnShmAccess|"
    "OnTxnCreated|OnTxnPublished|OnTxnDelivered|OnTxnOutcome|"
    "OnTxnOutcomeObserved|OnStreamSend|OnStreamRecv|"
    "OnTaskState|OnCommitDecision|OnWatchdogArmed|"
    "OnWatchdogExpired|OnWatchdogFed|"
    "OnAccess|OnRelease|OnAcquire|RegisterActor|AllowUnordered|"
    "AttachChecker|AttachCheckers|AttachProtocol|AttachHb|"
    "BindCheckers"
    R"()\s*\()";

const char* const kWallClockRe =
    R"(\bstd::chrono\b|\bgettimeofday\b|\bclock_gettime\b)"
    R"(|\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\))"
    R"(|\brandom_device\b|\bstd::mt19937|\bsteady_clock\b)"
    R"(|\bsystem_clock\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))";

/** Time-flavoured tokens: identifiers/calls that denote nanoseconds. */
const char* const kTimeTokenRe =
    R"((^|[^A-Za-z0-9_])ns([^A-Za-z0-9_]|$)|_ns\b|[A-Za-z0-9_]*Ns\b)"
    R"(|\.ns\(\)|\bNow\(\))";

/** Float-flavoured tokens inside a to-integer cast argument. */
const char* const kFloatTokenRe =
    R"(ToDouble\s*\(\)|\bghz\s*\(\)|[0-9]\.[0-9]|1e[0-9]|\bdouble\b)";

// --- analyzer ----------------------------------------------------------

/** Which rule set a file gets. */
enum class Scope { kModel, kHarness };

class Analyzer {
  public:
    Analyzer(fs::path root, bool werror_missing_domain)
        : root_(std::move(root)),
          werror_missing_domain_(werror_missing_domain)
    {
    }

    std::vector<Finding> findings;
    ContractRegistry registry;

    /** Analyzes one file under the given rule scope. */
    void
    Analyze(const SourceFile& f, Scope scope)
    {
        const bool in_check = PathHas(f.path, "check/");

        if (scope == Scope::kHarness) {
            // Harness trees get the concurrency-readiness subset: the
            // coroutine-lifetime and determinism bug classes corrupt
            // test processes exactly like model ones. The annotation
            // sweeps (W201/W204) and domain rules stay model-only.
            CheckLambdaCoroutines(f);
            CheckSpawnSites(f);
            CheckUnstableIteration(f);
            CheckSuspendUnderGuard(f);
            return;
        }

        const bool time_bridge = PathEndsWith(f.path, "sim/time.h") ||
                                 PathEndsWith(f.path, "machine/cycles.h");

        if (f.domain == Domain::kUnknown && werror_missing_domain_) {
            Add(f.path, 1, "W001",
                "no `// wave-domain: host|nic|pcie|neutral|harness` "
                "annotation");
        }

        CheckIncludes(f);
        CheckSymbols(f);
        CheckActors(f, in_check);
        CheckHooks(f, in_check);
        CheckStaleReasons(f);
        CheckWallClock(f);
        if (!time_bridge) CheckTimeNarrowing(f);
        CheckEndpointCoverage(f);
        CheckHotPaths(f);
        if (f.domain != Domain::kHarness) {
            CheckCoroutineContracts(f);
            CheckShardOwnership(f, in_check);
        }
        CheckLambdaCoroutines(f);
        CheckSpawnSites(f);
        CheckUnstableIteration(f);
        CheckSuspendUnderGuard(f);
    }

    /** Domain of an include target, loading and caching the file. */
    Domain
    DomainOfInclude(const std::string& include_path)
    {
        auto it = include_domains_.find(include_path);
        if (it != include_domains_.end()) return it->second;
        Domain d = Domain::kUnknown;
        const fs::path full = root_ / "src" / include_path;
        if (auto f = LoadFile(full, include_path)) d = f->domain;
        include_domains_[include_path] = d;
        return d;
    }

  private:
    static bool
    PathHas(const std::string& path, const std::string& needle)
    {
        return path.find(needle) != std::string::npos;
    }

    static bool
    PathEndsWith(const std::string& path, const std::string& tail)
    {
        return path.size() >= tail.size() &&
               path.compare(path.size() - tail.size(), tail.size(),
                            tail) == 0;
    }

    void
    Add(const std::string& path, int line, const char* rule,
        std::string message)
    {
        findings.push_back({path, line, rule, std::move(message)});
    }

    void
    CheckIncludes(const SourceFile& f)
    {
        static const std::regex kIncludeRe(
            R"re(^\s*#\s*include\s+"([^"]+)")re");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(f.raw[i], m, kIncludeRe)) continue;
            const std::string target = m[1].str();
            if (target.find('/') == std::string::npos) continue;
            const Domain to = DomainOfInclude(target);
            if (to == Domain::kUnknown) continue;
            if (f.domain == Domain::kUnknown) continue;
            if (!MayInclude(f.domain, to)) {
                Add(f.path, static_cast<int>(i + 1), "W002",
                    std::string(DomainName(f.domain)) +
                        "-domain file includes " + DomainName(to) +
                        "-domain header \"" + target +
                        "\" (cross-domain access must go through the "
                        "pcie seam)");
            }
        }
    }

    void
    CheckSymbols(const SourceFile& f)
    {
        if (f.domain == Domain::kPcie || f.domain == Domain::kHarness ||
            f.domain == Domain::kUnknown) {
            return;  // the seam may name both sides
        }
        static const std::regex kQualifiedRe(
            R"((?:wave::)?\b(sol|workload|rpc)::)");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            auto begin = std::sregex_iterator(code.begin(), code.end(),
                                              kQualifiedRe);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                const std::string ns = (*it)[1].str();
                // A module may of course name itself.
                if (PathHas(f.path, ns + "/")) continue;
                const Domain owner = kOwnedNamespaces.at(ns);
                if (owner == f.domain) continue;
                Add(f.path, static_cast<int>(i + 1), "W003",
                    std::string(DomainName(f.domain)) +
                        "-domain file names " + DomainName(owner) +
                        "-owned symbol `" + ns +
                        "::...` (route through the pcie seam instead)");
            }
        }
    }

    void
    CheckActors(const SourceFile& f, bool in_check)
    {
        if (in_check) return;  // the checker framework itself
        static const std::regex kRegisterRe(
            R"((->|\.)\s*RegisterActor\s*\()");
        static const std::regex kDomainNoteRe(
            R"(wave-domain:\s*(host|nic))");
        static const std::regex kLabelRe(
            R"(RegisterActor\s*\(\s*"(host|nic)[-_])");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            if (!std::regex_search(f.lines[i].code, kRegisterRe)) {
                continue;
            }
            const bool labeled =
                std::regex_search(f.raw[i], kLabelRe);
            const bool noted =
                std::regex_search(f.lines[i].comment, kDomainNoteRe) ||
                (i > 0 && std::regex_search(f.lines[i - 1].comment,
                                            kDomainNoteRe));
            if (!labeled && !noted) {
                Add(f.path, static_cast<int>(i + 1), "W004",
                    "RegisterActor without a domain: start the label "
                    "with \"host-\"/\"nic-\" or add a `// wave-domain: "
                    "host|nic` comment on this or the previous line");
            }
        }
    }

    void
    CheckHooks(const SourceFile& f, bool in_check)
    {
        if (in_check) return;
        static const std::regex kCallRe(kCheckerCallRe);
        int hook_balance = 0;       // open parens of WAVE_CHECK_HOOK(...)
        std::vector<bool> gated;    // #if nesting: WAVE_CHECK_ENABLED?
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& raw = f.raw[i];
            const std::string& code = f.lines[i].code;
            static const std::regex kIfRe(R"(^\s*#\s*if)");
            static const std::regex kElRe(R"(^\s*#\s*el)");
            static const std::regex kEndifRe(R"(^\s*#\s*endif)");
            if (std::regex_search(raw, kIfRe)) {
                gated.push_back(raw.find("WAVE_CHECK_ENABLED") !=
                                std::string::npos);
            } else if (std::regex_search(raw, kElRe)) {
                if (!gated.empty()) {
                    gated.back() = raw.find("WAVE_CHECK_ENABLED") !=
                                   std::string::npos;
                }
            } else if (std::regex_search(raw, kEndifRe)) {
                if (!gated.empty()) gated.pop_back();
            }
            const bool in_gate =
                std::any_of(gated.begin(), gated.end(),
                            [](bool g) { return g; });

            bool in_hook = hook_balance > 0;
            const auto hook_pos = code.find("WAVE_CHECK_HOOK");
            if (hook_pos != std::string::npos) {
                in_hook = true;
                hook_balance += ParenBalance(code.substr(hook_pos));
            } else if (hook_balance > 0) {
                hook_balance += ParenBalance(code);
            }
            if (hook_balance < 0) hook_balance = 0;

            if (!in_hook && !in_gate &&
                std::regex_search(code, kCallRe)) {
                Add(f.path, static_cast<int>(i + 1), "W005",
                    "checker call outside WAVE_CHECK_HOOK(...) or an "
                    "#ifdef WAVE_CHECK_ENABLED block");
            }
        }
    }

    void
    CheckStaleReasons(const SourceFile& f)
    {
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& raw = f.raw[i];
            static const std::regex kStaleRe(
                R"(/\*\s*tolerate_stale\s*=\s*\*/\s*([A-Za-z_][A-Za-z0-9_:\.]*|true|false))");
            std::smatch m;
            if (!std::regex_search(raw, m, kStaleRe)) continue;
            if (m[1].str() == "false") continue;
            // The /*tolerate_stale=*/ argument annotation itself lands
            // in the comment channel; it is not a justification.
            static const std::regex kSelfRe(
                R"(\s*tolerate_stale\s*=\s*)");
            const std::string note = std::regex_replace(
                f.lines[i].comment, kSelfRe, "");
            if (note.empty()) {
                Add(f.path, static_cast<int>(i + 1), "W006",
                    "tolerate_stale without a same-line justification "
                    "comment");
            }
        }
    }

    void
    CheckWallClock(const SourceFile& f)
    {
        static const std::regex kBanRe(kWallClockRe);
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            std::smatch m;
            if (std::regex_search(f.lines[i].code, m, kBanRe)) {
                Add(f.path, static_cast<int>(i + 1), "W007",
                    "determinism-hostile construct `" + m[0].str() +
                    "` in model code (use sim::Rng / sim::Simulator "
                    "time instead)");
            }
        }
    }

    void
    CheckTimeNarrowing(const SourceFile& f)
    {
        static const std::regex kToDoubleRe(
            R"(static_cast<\s*double\s*>\s*\()");
        static const std::regex kToIntRe(
            R"(static_cast<\s*(?:std::)?u?int(?:64|32)_t\s*>\s*\()");
        static const std::regex kTimeTok(kTimeTokenRe);
        static const std::regex kFloatTok(kFloatTokenRe);
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            std::smatch m;
            if (std::regex_search(code, m, kToDoubleRe)) {
                const auto open =
                    static_cast<std::size_t>(m.position(0)) +
                    m.length(0) - 1;
                const std::string arg = CallArgument(code, open);
                if (std::regex_search(arg, kTimeTok)) {
                    Add(f.path, static_cast<int>(i + 1), "W008",
                        "ad-hoc time->double cast; use "
                        "DurationNs/TimeNs ToDouble(), ToUs(), ToMs() "
                        "(sim/time.h is the only sanctioned bridge)");
                }
            }
            if (std::regex_search(code, m, kToIntRe)) {
                const auto open =
                    static_cast<std::size_t>(m.position(0)) +
                    m.length(0) - 1;
                const std::string arg = CallArgument(code, open);
                if (std::regex_search(arg, kFloatTok) &&
                    std::regex_search(code, kTimeTok)) {
                    Add(f.path, static_cast<int>(i + 1), "W008",
                        "ad-hoc double->integer time cast; use "
                        "DurationNs::FromDouble()/TimeNs::FromDouble() "
                        "(sim/time.h is the only sanctioned bridge)");
                }
            }
        }
    }

    /** Does any earlier line of hot region @p region pre-reserve? */
    static bool
    RegionReserves(const SourceFile& f, int region, std::size_t upto)
    {
        static const std::regex kReserveRe(
            R"((\.|->)\s*([Rr]eserve|resize)\s*\()");
        for (std::size_t j = 0; j < upto; ++j) {
            if (f.hot[j] != region) continue;
            if (std::regex_search(f.lines[j].code, kReserveRe)) {
                return true;
            }
        }
        return false;
    }

    /**
     * W101-W106: the per-event performance rules. Text-level like the
     * rest of the tool; each pattern names the construct so a reader
     * can judge the finding without opening the file.
     */
    void
    CheckHotPaths(const SourceFile& f)
    {
        static const std::regex kNewRe(R"(\bnew\s+[A-Za-z_:])");
        static const std::regex kMakeRe(
            R"(\bstd::make_(unique|shared)\s*<)");
        static const std::regex kGrowRe(
            R"((\.|->)\s*(push_back|emplace_back)\s*\()");
        static const std::regex kStringRe(
            R"(\bstd::string\s+[A-Za-z_]\w*\s*[;({=])"
            R"(|\bstd::string\s*[({])"
            R"(|\bstd::(to_string|ostringstream|stringstream)\b)");
        static const std::regex kFunctionRe(R"(\bstd::function\s*<)");
        // The identifier must be snake_case: sized-buffer *locals* are
        // lowercase in this tree, while PascalCase names after a vector
        // type are function declarations returning one (caller-owned by
        // contract, not a per-event allocation at this line).
        static const std::regex kSizedBufRe(
            R"(\b(Bytes|std::vector\s*<[^;=(){}]*>)\s+[a-z_]\w*\s*\()");
        static const std::regex kThrowRe(R"(\b(throw|try|catch)\b)");
        static const std::regex kLockRe(
            R"(\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex)"
            R"(|lock_guard|scoped_lock|unique_lock|condition_variable)"
            R"(|atomic)\b|\bmemory_order_seq_cst\b)");
        static const std::regex kHeavyParamRe(
            R"(\b(std::string|std::vector\s*<[^;=(){}]*>)"
            R"(|std::deque\s*<[^;=(){}]*>|std::map\s*<[^;=(){}]*>)"
            R"(|Bytes|[A-Za-z_]*Config|[A-Za-z_]*Stats))"
            R"(\s+[A-Za-z_]\w*\s*[,)])");
        static const std::regex kIoRe(
            R"(\b(printf|fprintf|sprintf|snprintf|puts|fputs|putchar)"
            R"(|fwrite|fflush)\s*\()"
            R"(|\bstd::(cout|cerr|clog|ostream|ofstream|ifstream)"
            R"(|fstream|getline)\b)");
        static const std::regex kLoopRe(R"(\b(for|while)\s*\()");
        static const std::regex kChanOpRe(
            R"((\.|->)\s*(Push|Receive|TryReceive)\s*\()");

        int depth = 0;              // brace depth across the file
        std::vector<int> loops;     // brace depth at each open hot loop
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            const int line_no = static_cast<int>(i + 1);
            const bool hot = f.hot[i] > 0;

            if (hot && std::regex_search(code, kLoopRe)) {
                loops.push_back(depth);
            }

            if (hot) {
                std::smatch m;
                if (std::regex_search(code, m, kNewRe)) {
                    Add(f.path, line_no, "W101",
                        "`new` on a hot path; use a pool or inline "
                        "storage (per-event allocation breaks the "
                        "wimpy-core budget)");
                }
                if (std::regex_search(code, m, kMakeRe)) {
                    Add(f.path, line_no, "W101",
                        "make_" + m[1].str() +
                        " on a hot path; allocate at setup time or "
                        "pool the object");
                }
                if (std::regex_search(code, m, kGrowRe) &&
                    !RegionReserves(f, f.hot[i], i)) {
                    Add(f.path, line_no, "W101",
                        m[2].str() +
                        " without an earlier reserve() in the same "
                        "hot region (amortized reallocation is still "
                        "a per-event allocation)");
                }
                if (std::regex_search(code, m, kStringRe)) {
                    Add(f.path, line_no, "W101",
                        "std::string construction on a hot path "
                        "(string building belongs in cold "
                        "reporting code)");
                }
                if (std::regex_search(code, m, kFunctionRe)) {
                    Add(f.path, line_no, "W101",
                        "std::function on a hot path; its capture "
                        "heap-allocates (use sim::InlineFn or a "
                        "template parameter)");
                }
                if (std::regex_search(code, m, kSizedBufRe)) {
                    Add(f.path, line_no, "W101",
                        "sized " + m[1].str() +
                        " local on a hot path; reuse a pooled "
                        "scratch buffer instead");
                }
                if (std::regex_search(code, m, kThrowRe)) {
                    Add(f.path, line_no, "W102",
                        "`" + m[1].str() +
                        "` inside a hot region (exception machinery "
                        "is for cold recovery paths only)");
                }
                if (std::regex_search(code, m, kLockRe)) {
                    Add(f.path, line_no, "W103",
                        "`" + m[0].str() +
                        "` on a hot path: the sim core is "
                        "single-threaded by design and needs no "
                        "synchronization");
                }
                if (std::regex_search(code, m, kHeavyParamRe)) {
                    Add(f.path, line_no, "W104",
                        "heavy type `" + m[1].str() +
                        "` passed by value across a hot signature; "
                        "take const& or a span");
                }
                if (std::regex_search(code, m, kIoRe)) {
                    Add(f.path, line_no, "W105",
                        "I/O call `" + m[0].str() +
                        "` on a hot path (format and print from "
                        "cold reporting code)");
                }
                if (!loops.empty() &&
                    std::regex_search(code, m, kChanOpRe)) {
                    Add(f.path, line_no, "W106",
                        "per-element Channel " + m[2].str() +
                        "() inside a hot loop; use "
                        "PushBatch()/TryReceiveBatch() to pay the "
                        "notify/schedule cost once");
                }
            }

            depth += BraceBalance(code);
            while (!loops.empty() && depth <= loops.back()) {
                loops.pop_back();
            }
        }
    }

    void
    CheckEndpointCoverage(const SourceFile& f)
    {
        for (const char* endpoint : kEndpointFiles) {
            if (!PathEndsWith(f.path, endpoint)) continue;
            for (const auto& line : f.lines) {
                if (line.code.find("WAVE_CHECK_HOOK") !=
                    std::string::npos) {
                    return;
                }
            }
            Add(f.path, 1, "W005",
                "queue/txn endpoint file carries no WAVE_CHECK_HOOK "
                "instrumentation (checker blind spot)");
        }
    }

    // --- W200 series: concurrency readiness ---------------------------

    /**
     * W201: every Task coroutine definition whose frame holds borrowed
     * state (reference/pointer/view parameters, or the implicit `this`
     * of an out-of-line member) must state its argument-lifetime
     * contract. A contract on a same-name declaration elsewhere in the
     * analyzed set (the header) also satisfies the definition, so the
     * public API carries the annotation once. Matching is name-
     * granular: overloads share a contract.
     */
    void
    CheckCoroutineContracts(const SourceFile& f)
    {
        for (const Coroutine& c : f.coroutines) {
            if (c.contract == Contract::kMalformed) {
                Add(f.path, c.sig_line, "W201",
                    "malformed wave-lifetime annotation `" +
                        c.contract_text +
                        "`; use wave-lifetime(caller-awaits) or "
                        "wave-lifetime(spawn-safe: <why the referents "
                        "outlive the frame>)");
                continue;
            }
            if (!c.is_definition || !c.is_coroutine) continue;
            if (!c.ref_params && !c.qualified) continue;
            if (c.contract != Contract::kNone) continue;
            const auto it = registry.find(c.name);
            if (it != registry.end() && it->second.annotated) continue;
            const char* what =
                c.ref_params
                    ? (c.qualified
                           ? "reference/pointer parameters and the "
                             "implicit `this`"
                           : "reference/pointer/view parameters")
                    : "the implicit `this` of an out-of-line member";
            Add(f.path, c.sig_line, "W201",
                "coroutine `" + c.full_name + "` holds " + what +
                    " across its initial suspension but states no "
                    "lifetime contract; annotate the declaration or "
                    "definition with wave-lifetime(caller-awaits) or "
                    "wave-lifetime(spawn-safe: <reason>)");
        }
    }

    /**
     * W202: a lambda with a non-empty capture list whose explicit
     * return type is a Task. Inside the coroutine the captures are
     * reached through the closure object; when the closure is a
     * temporary (the overwhelmingly common case for lambda arguments)
     * every capture dangles from the first suspension on. A capturing
     * lambda may *construct and return* a named coroutine's task (no
     * explicit -> Task return type needed, captures are read before
     * any suspension); it must not *be* the coroutine.
     */
    void
    CheckLambdaCoroutines(const SourceFile& f)
    {
        static const std::regex kCaptureCoroRe(
            R"(\[\s*[^\]\s][^\]]*\]\s*(\([^)]*\))?\s*->\s*)"
            R"((?:[A-Za-z_]\w*::)*Task\s*<)");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            if (std::regex_search(f.lines[i].code, kCaptureCoroRe)) {
                Add(f.path, static_cast<int>(i + 1), "W202",
                    "capturing-lambda coroutine: the frame references "
                    "the closure object, which dies at the first "
                    "suspension when the lambda is a temporary; move "
                    "the body into a named coroutine taking the state "
                    "explicitly (a capture-free lambda may still "
                    "construct and return its task)");
            }
        }
    }

    /**
     * W203: Spawn() detaches a frame from the spawning stack, so the
     * task must not borrow that stack. Three textual triggers:
     * immediately-invoked lambdas binding reference parameters to the
     * spawner's locals, named coroutines under a caller-awaits
     * contract (detaching violates it), and named reference-taking
     * coroutines with no contract at all.
     */
    void
    CheckSpawnSites(const SourceFile& f)
    {
        static const std::regex kSpawnRe(R"(\bSpawn\s*\()");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            std::smatch m;
            if (!std::regex_search(code, m, kSpawnRe)) continue;
            const auto open =
                static_cast<std::size_t>(m.position(0)) + m.length(0) -
                1;
            const std::string arg = JoinedCallArgument(f, i, open);
            const int line_no = static_cast<int>(i + 1);
            AnalyzeSpawnArgument(f, line_no, arg);
        }
    }

    void
    AnalyzeSpawnArgument(const SourceFile& f, int line_no,
                         const std::string& arg)
    {
        std::size_t p = 0;
        const auto skip_ws = [&] {
            while (p < arg.size() && std::isspace(
                       static_cast<unsigned char>(arg[p]))) {
                ++p;
            }
        };
        skip_ws();
        if (p < arg.size() && arg[p] == '[') {
            // Lambda: [captures](params) -> ret {body} (invoke-args)
            std::size_t q = p;
            int depth = 0;
            for (; q < arg.size(); ++q) {
                if (arg[q] == '[') ++depth;
                if (arg[q] == ']' && --depth == 0) break;
            }
            if (q >= arg.size()) return;
            p = q + 1;
            skip_ws();
            std::string params;
            if (p < arg.size() && arg[p] == '(') {
                const std::size_t params_open = p;
                depth = 0;
                for (; p < arg.size(); ++p) {
                    if (arg[p] == '(') ++depth;
                    if (arg[p] == ')' && --depth == 0) break;
                }
                if (p >= arg.size()) return;
                params = arg.substr(params_open + 1,
                                    p - params_open - 1);
                ++p;
            }
            // Skip to the body and over it.
            while (p < arg.size() && arg[p] != '{') ++p;
            if (p >= arg.size()) return;
            depth = 0;
            for (; p < arg.size(); ++p) {
                if (arg[p] == '{') ++depth;
                if (arg[p] == '}' && --depth == 0) break;
            }
            if (p >= arg.size()) return;
            ++p;
            skip_ws();
            // Immediate invocation?
            if (p < arg.size() && arg[p] == '(') {
                const std::string invoke =
                    CallArgument(arg, p);
                const bool has_args =
                    invoke.find_first_not_of(" \t\n") !=
                    std::string::npos;
                if (has_args && ParamsHaveRefs(params)) {
                    Add(f.path, line_no, "W203",
                        "spawned task binds reference parameters to "
                        "the Spawn caller's stack frame; the frame "
                        "outlives this scope unless the referents are "
                        "kept alive past Run() — pass owned state or "
                        "use a named spawn-safe coroutine");
                }
            }
            return;
        }
        // std::move(var) or a plain variable/member: ownership already
        // settled elsewhere.
        static const std::regex kVarRe(
            R"(^(?:std::move\s*\(\s*)?[A-Za-z_][\w:.\->]*\s*\)?\s*$)");
        const std::string tail = arg.substr(p);
        if (std::regex_match(tail, kVarRe)) return;
        // Named call: take the identifier directly before the first
        // '(' (the last path component of the callee).
        static const std::regex kCalleeRe(R"(([A-Za-z_]\w*)\s*\()");
        std::smatch cm;
        if (!std::regex_search(tail, cm, kCalleeRe)) return;
        const std::string callee = cm[1].str();
        const auto it = registry.find(callee);
        if (it == registry.end()) return;  // unknown: out of scope
        const ContractEntry& e = it->second;
        if (e.spawn_safe) return;
        if (e.caller_awaits) {
            Add(f.path, line_no, "W203",
                "Spawn() detaches `" + callee +
                    "`, which is annotated wave-lifetime("
                    "caller-awaits); detaching violates its contract — "
                    "await it instead, or give it a spawn-safe "
                    "contract explaining why its referents outlive "
                    "the frame");
            return;
        }
        if (e.ref_params) {
            Add(f.path, line_no, "W203",
                "Spawn() detaches `" + callee +
                    "`, a coroutine holding references with no "
                    "wave-lifetime(spawn-safe: ...) contract; state "
                    "why every referent outlives the frame, or pass "
                    "owned state");
        }
    }

    /**
     * W204: the shard-ownership map. Files whose mutable state is
     * reachable from more than one clock domain — the pcie seam, and
     * any file registering sim actors — must classify that state with
     * wave-owns(<shard>) or wave-shared(<reason>), and the
     * classification must not contradict the file's domain or the
     * domains of the actors it registers. Concrete host/nic files
     * without actor registrations derive their ownership from the
     * domain annotation and need nothing extra.
     */
    void
    CheckShardOwnership(const SourceFile& f, bool in_check)
    {
        if (in_check) return;  // checker shadow state is harness-read
        static const std::regex kRegisterRe(
            R"((->|\.)\s*RegisterActor\s*\()");
        static const std::regex kLabelDomRe(
            R"(RegisterActor\s*\(\s*"(host|nic)[-_])");
        bool registers = false;
        std::vector<std::pair<int, std::string>> label_domains;
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            if (!std::regex_search(f.lines[i].code, kRegisterRe)) {
                continue;
            }
            registers = true;
            std::smatch m;
            // Labels live in string literals: match on the raw line.
            if (std::regex_search(f.raw[i], m, kLabelDomRe)) {
                label_domains.emplace_back(static_cast<int>(i + 1),
                                           m[1].str());
            }
        }

        const bool has_owns = f.owns_line != 0;
        if (has_owns && f.owns != "host" && f.owns != "nic") {
            Add(f.path, f.owns_line, "W204",
                "wave-owns(" + f.owns +
                    ") names no shard; the shards are `host` and "
                    "`nic` (seam state that belongs to neither side "
                    "is wave-shared(<reason>))");
            return;
        }
        if (has_owns && f.has_shared) {
            Add(f.path, f.shared_line, "W204",
                "file is annotated both wave-owns(" + f.owns +
                    ") and wave-shared(...); pick one classification");
            return;
        }
        if (f.has_shared) {
            std::string reason = f.shared_reason;
            reason.erase(0, reason.find_first_not_of(" \t"));
            if (reason.empty()) {
                Add(f.path, f.shared_line, "W204",
                    "wave-shared() without a reason; say why "
                    "cross-shard access to this state is safe (what "
                    "serializes it, what staleness it tolerates)");
            }
        }
        if (has_owns) {
            if ((f.domain == Domain::kHost && f.owns == "nic") ||
                (f.domain == Domain::kNic && f.owns == "host")) {
                Add(f.path, f.owns_line, "W204",
                    "wave-owns(" + f.owns + ") contradicts the file's " +
                        DomainName(f.domain) + " wave-domain");
            }
            for (const auto& [line, dom] : label_domains) {
                if (dom != f.owns) {
                    Add(f.path, line, "W204",
                        "file claims wave-owns(" + f.owns +
                            ") but registers a " + dom +
                            "-domain actor here; actors of another "
                            "shard reaching this state make it "
                            "wave-shared(<reason>)");
                }
            }
        }
        const bool required = f.domain == Domain::kPcie || registers;
        if (required && !has_owns && !f.has_shared) {
            Add(f.path, 1, "W204",
                std::string(f.domain == Domain::kPcie
                                ? "pcie-seam file"
                                : "file registering sim actors") +
                    " carries no shard-ownership classification; add "
                    "`// wave-owns(host|nic)` or `// wave-shared("
                    "<reason>)` so the parallel executor knows which "
                    "shard may touch this state");
        }
    }

    /**
     * W205: range-for (or .begin() iteration) over a container
     * declared as a pointer-keyed unordered_map/unordered_set in the
     * same file. Hash order of pointers is address order: it varies
     * run to run and shard to shard, so anything downstream of the
     * iteration (event scheduling, stats, reports) loses fingerprint
     * stability. Keyed lookups stay fine.
     */
    void
    CheckUnstableIteration(const SourceFile& f)
    {
        static const std::regex kUnorderedRe(
            R"(\bunordered_(map|set)\s*<)");
        // Names of variables declared with a pointer-keyed type.
        std::set<std::string> ptr_keyed;
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            std::smatch m;
            if (!std::regex_search(code, m, kUnorderedRe)) continue;
            // Join a short window so multi-line declarations parse.
            std::string decl = code;
            for (std::size_t j = i + 1;
                 j < std::min(f.lines.size(), i + 4); ++j) {
                decl += ' ';
                decl += f.lines[j].code;
            }
            const auto angle =
                decl.find('<', static_cast<std::size_t>(
                                   m.position(0)));
            if (angle == std::string::npos) continue;
            int depth = 0;
            std::size_t q = angle;
            std::size_t key_end = std::string::npos;
            for (; q < decl.size(); ++q) {
                if (decl[q] == '<') ++depth;
                if (decl[q] == '>' && --depth == 0) break;
                if (decl[q] == ',' && depth == 1 &&
                    key_end == std::string::npos) {
                    key_end = q;
                }
            }
            if (q >= decl.size()) continue;
            const std::size_t kend =
                key_end == std::string::npos ? q : key_end;
            const std::string key =
                decl.substr(angle + 1, kend - angle - 1);
            if (key.find('*') == std::string::npos) continue;
            // Variable name after the closing '>'.
            static const std::regex kVarNameRe(
                R"(^\s*([A-Za-z_]\w*)\s*[;={(])");
            const std::string after = decl.substr(q + 1);
            std::smatch vm;
            if (std::regex_search(after, vm, kVarNameRe)) {
                ptr_keyed.insert(vm[1].str());
            }
        }
        if (ptr_keyed.empty()) return;
        static const std::regex kRangeForRe(
            R"(\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)\s*\))");
        static const std::regex kBeginRe(
            R"(\b([A-Za-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\()");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            std::smatch m;
            std::string name;
            if (std::regex_search(code, m, kRangeForRe)) {
                name = m[1].str();
            } else if (std::regex_search(code, m, kBeginRe)) {
                name = m[1].str();
            } else {
                continue;
            }
            if (ptr_keyed.count(name) == 0) continue;
            Add(f.path, static_cast<int>(i + 1), "W205",
                "iteration over pointer-keyed unordered container `" +
                    name +
                    "`; hash order is address order and differs run "
                    "to run — key by a stable id, use a sorted "
                    "container, or snapshot-and-sort before "
                    "iterating");
        }
    }

    /**
     * W206: a co_await inside the lexical scope of a live scoped
     * guard (types named *Guard, the lock_guard family) or a borrowed
     * view local (string_view, span). Suspension runs arbitrary other
     * events before resuming: a guard spans foreign execution it was
     * never meant to cover, and a borrowed view's backing store may be
     * mutated or freed by the time the frame resumes.
     */
    void
    CheckSuspendUnderGuard(const SourceFile& f)
    {
        static const std::regex kGuardDeclRe(
            R"(\b((?:std::)?(?:lock_guard|scoped_lock|unique_lock)"
            R"(|shared_lock)\s*(?:<[^;>]*>)?|[A-Za-z_]\w*Guard))"
            R"(\s+[A-Za-z_]\w*\s*[({;=])");
        static const std::regex kViewDeclRe(
            R"(\b(std::string_view|std::span\s*<[^;>]*>))"
            R"(\s+[A-Za-z_]\w*\s*[=({])");
        static const std::regex kCoAwaitRe(R"(\bco_await\b)");
        struct Live {
            int depth;
            int line;
            std::string what;
        };
        std::vector<Live> live;
        int depth = 0;
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            const int line_no = static_cast<int>(i + 1);
            std::smatch m;
            if (std::regex_search(code, m, kGuardDeclRe) ||
                std::regex_search(code, m, kViewDeclRe)) {
                live.push_back({depth, line_no, m[1].str()});
            }
            if (!live.empty() &&
                std::regex_search(code, kCoAwaitRe)) {
                const Live& g = live.back();
                Add(f.path, line_no, "W206",
                    "co_await while `" + g.what + "` (declared line " +
                        std::to_string(g.line) +
                        ") is live; the suspension runs other events "
                        "under the guard / behind the borrowed view — "
                        "release it before suspending or copy what "
                        "you need");
            }
            depth += BraceBalance(code);
            while (!live.empty() && depth < live.back().depth) {
                live.pop_back();
            }
        }
    }

    fs::path root_;
    bool werror_missing_domain_;
    std::map<std::string, Domain> include_domains_;
};

// --- suppression -------------------------------------------------------

/**
 * Inline `wave-analyze: allow(...)` on the line or the previous one.
 * One allow() may list several rule ids before the justification:
 * `allow(W101 W105 formatting happens once at shutdown)`. The allow
 * must sit in a comment: the splitter blanks string literals out of
 * the comment channel, so quoting the incantation never suppresses.
 */
bool
InlineSuppressed(const SourceFile& f, const Finding& finding)
{
    static const std::regex kAllowRe(
        R"(wave-analyze:\s*allow\(\s*((?:W[0-9]{3}[\s,]+)*W[0-9]{3}))");
    static const std::regex kIdRe(R"(W[0-9]{3})");
    const auto check = [&](int line_no) {
        if (line_no < 1 ||
            line_no > static_cast<int>(f.lines.size())) {
            return false;
        }
        const std::string& comment =
            f.lines[static_cast<std::size_t>(line_no - 1)].comment;
        std::smatch m;
        if (!std::regex_search(comment, m, kAllowRe)) return false;
        const std::string ids = m[1].str();
        auto begin =
            std::sregex_iterator(ids.begin(), ids.end(), kIdRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            if (it->str() == finding.rule) return true;
        }
        return false;
    };
    return check(finding.line) || check(finding.line - 1);
}

/**
 * Baseline file: `path:W00X` per line; '#' comments and blanks ok.
 * A path ending in '/' matches by directory prefix — the scoped
 * allowlist form for harness-only patterns (e.g. `tests/:W203`).
 */
std::vector<std::string>
LoadBaseline(const fs::path& path)
{
    std::vector<std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r')) {
            line.pop_back();
        }
        if (!line.empty()) entries.push_back(line);
    }
    return entries;
}

/** Does baseline entry @p entry suppress @p finding? */
bool
BaselineMatches(const std::string& entry, const Finding& finding)
{
    const auto colon = entry.rfind(':');
    if (colon == std::string::npos) return false;
    const std::string epath = entry.substr(0, colon);
    const std::string erule = entry.substr(colon + 1);
    if (erule != finding.rule) return false;
    if (!epath.empty() && epath.back() == '/') {
        return finding.path.compare(0, epath.size(), epath) == 0;
    }
    return finding.path == epath;
}

void
ListRules()
{
    std::printf("wave_analyze rule catalog:\n");
    for (const Rule& r : kRules) {
        std::printf("  %s %-22s %s\n", r.id, r.name, r.summary);
    }
}

// --- output ------------------------------------------------------------

std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/** Suppression status of one finding, for reporting. */
enum class Status { kReported, kInline, kBaseline };

}  // namespace

int
main(int argc, char** argv)
{
    fs::path root = ".";
    fs::path baseline_path;
    bool as_src = false;
    bool json = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            ListRules();
            return 0;
        }
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--as-src") {
            as_src = true;
        } else if (arg == "--format=json") {
            json = true;
        } else if (arg == "--format=text") {
            json = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wave_analyze: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    std::error_code ec;
    if (!fs::exists(root / "src", ec) && files.empty()) {
        std::fprintf(stderr, "wave_analyze: no src/ under %s\n",
                     root.string().c_str());
        return 2;
    }

    struct Job {
        fs::path full;
        std::string report;
        Scope scope;
    };
    std::vector<Job> jobs;
    if (files.empty()) {
        const auto walk = [&](const char* dir, Scope scope) {
            if (!fs::exists(root / dir, ec)) return;
            for (auto it = fs::recursive_directory_iterator(root / dir);
                 it != fs::recursive_directory_iterator(); ++it) {
                if (!it->is_regular_file()) continue;
                const std::string ext =
                    it->path().extension().string();
                if (ext != ".h" && ext != ".cc") continue;
                const std::string rel =
                    fs::relative(it->path(), root).generic_string();
                // Planted-violation corpora are analyzed explicitly
                // by analyze_test, never as part of the tree.
                if (rel.find("analyze_fixtures") != std::string::npos) {
                    continue;
                }
                jobs.push_back({it->path(), rel, scope});
            }
        };
        walk("src", Scope::kModel);
        walk("tests", Scope::kHarness);
        walk("bench", Scope::kHarness);
    } else {
        for (const std::string& f : files) {
            const fs::path p(f);
            const bool model =
                as_src ||
                p.generic_string().find("src/") != std::string::npos;
            jobs.push_back({p, p.generic_string(),
                            model ? Scope::kModel : Scope::kHarness});
        }
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) {
                  return a.report < b.report;
              });

    Analyzer analyzer(root, /*werror_missing_domain=*/true);
    std::map<std::string, SourceFile> loaded;
    std::vector<const Job*> order;
    for (const Job& job : jobs) {
        auto f = LoadFile(job.full, job.report);
        if (!f) {
            std::fprintf(stderr, "wave_analyze: cannot read %s\n",
                         job.full.string().c_str());
            return 2;
        }
        f->coroutines = ParseCoroutines(*f);
        MergeContracts(*f, analyzer.registry);
        loaded.emplace(job.report, std::move(*f));
        order.push_back(&job);
    }
    // Second pass: contracts from every file (headers annotating the
    // public API, definitions elsewhere) are visible to every check.
    for (const Job* job : order) {
        analyzer.Analyze(loaded.at(job->report), job->scope);
    }

    const std::vector<std::string> baseline =
        baseline_path.empty() ? std::vector<std::string>{}
                              : LoadBaseline(baseline_path);
    std::vector<bool> baseline_used(baseline.size(), false);

    int reported = 0;
    int suppressed = 0;
    std::vector<Status> status;
    status.reserve(analyzer.findings.size());
    for (const Finding& finding : analyzer.findings) {
        const SourceFile& f = loaded.at(finding.path);
        Status s = Status::kReported;
        for (std::size_t b = 0; b < baseline.size(); ++b) {
            if (BaselineMatches(baseline[b], finding)) {
                baseline_used[b] = true;
                s = Status::kBaseline;
            }
        }
        if (InlineSuppressed(f, finding)) s = Status::kInline;
        status.push_back(s);
        if (s == Status::kReported) {
            ++reported;
        } else {
            ++suppressed;
        }
    }

    std::vector<std::string> stale;
    for (std::size_t b = 0; b < baseline.size(); ++b) {
        if (!baseline_used[b]) stale.push_back(baseline[b]);
    }

    if (json) {
        std::printf("{\n  \"schema\": \"wave-analyze-v1\",\n");
        std::printf("  \"files\": %zu,\n", jobs.size());
        std::printf("  \"reported\": %d,\n", reported);
        std::printf("  \"suppressed\": %d,\n", suppressed);
        std::printf("  \"findings\": [");
        for (std::size_t i = 0; i < analyzer.findings.size(); ++i) {
            const Finding& fd = analyzer.findings[i];
            const char* sup =
                status[i] == Status::kReported
                    ? "null"
                    : (status[i] == Status::kInline ? "\"inline\""
                                                    : "\"baseline\"");
            std::printf(
                "%s\n    {\"rule\": \"%s\", \"path\": \"%s\", "
                "\"line\": %d, \"message\": \"%s\", "
                "\"suppressed\": %s, \"suppression\": %s}",
                i == 0 ? "" : ",", fd.rule.c_str(),
                JsonEscape(fd.path).c_str(), fd.line,
                JsonEscape(fd.message).c_str(),
                status[i] == Status::kReported ? "false" : "true", sup);
        }
        std::printf("\n  ],\n");
        // The shard-ownership map: explicit annotations, with
        // ownership derived from the domain where unambiguous. This is
        // the artifact the parallel-executor work consumes.
        std::printf("  \"ownership\": [");
        bool first = true;
        for (const Job* job : order) {
            if (job->scope != Scope::kModel) continue;
            const SourceFile& f = loaded.at(job->report);
            std::string owns = f.owns_line != 0 ? f.owns : "";
            std::string shared =
                f.has_shared ? f.shared_reason : "";
            bool derived = false;
            if (owns.empty() && !f.has_shared) {
                if (f.domain == Domain::kHost) {
                    owns = "host";
                    derived = true;
                } else if (f.domain == Domain::kNic) {
                    owns = "nic";
                    derived = true;
                }
            }
            const std::string owns_json =
                owns.empty() ? std::string("null")
                             : "\"" + JsonEscape(owns) + "\"";
            const std::string shared_json =
                f.has_shared ? "\"" + JsonEscape(shared) + "\""
                             : std::string("null");
            std::printf(
                "%s\n    {\"path\": \"%s\", \"domain\": \"%s\", "
                "\"owns\": %s, \"shared\": %s, \"derived\": %s}",
                first ? "" : ",", JsonEscape(f.path).c_str(),
                DomainName(f.domain), owns_json.c_str(),
                shared_json.c_str(), derived ? "true" : "false");
            first = false;
        }
        std::printf("\n  ],\n");
        std::printf("  \"stale_baseline\": [");
        for (std::size_t i = 0; i < stale.size(); ++i) {
            std::printf("%s\n    \"%s\"", i == 0 ? "" : ",",
                        JsonEscape(stale[i]).c_str());
        }
        std::printf("\n  ]\n}\n");
    } else {
        for (std::size_t i = 0; i < analyzer.findings.size(); ++i) {
            if (status[i] != Status::kReported) continue;
            const Finding& fd = analyzer.findings[i];
            std::printf("%s:%d: %s: %s\n", fd.path.c_str(), fd.line,
                        fd.rule.c_str(), fd.message.c_str());
        }
        for (const std::string& entry : stale) {
            std::printf(
                "wave_analyze: stale baseline entry `%s` matches no "
                "finding; delete it from %s (dead suppressions rot)\n",
                entry.c_str(), baseline_path.string().c_str());
        }
    }

    if (reported == 0 && stale.empty()) {
        if (!json) {
            std::printf("wave_analyze: OK (%zu files, %d suppressed)\n",
                        jobs.size(), suppressed);
        }
        return 0;
    }
    if (!json) {
        std::printf(
            "wave_analyze: %d finding%s (%d suppressed, %zu stale "
            "baseline entr%s)\n",
            reported, reported == 1 ? "" : "s", suppressed,
            stale.size(), stale.size() == 1 ? "y" : "ies");
    }
    return 1;
}
