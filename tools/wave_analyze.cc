/**
 * @file
 * wave_analyze: repo-specific static checks the C++ type system cannot
 * express, in the spirit of Linux's `sparse` address-space checker.
 *
 * The simulation stitches two clock domains (host x86, NIC ARM)
 * together through the PCIe model only. The strong time types
 * (sim/time.h, machine/cycles.h) make unit mixing a compile error;
 * this tool enforces the *structural* rules on top: which files may
 * know about which domain, where checker instrumentation must sit,
 * and which determinism-hostile constructs are banned from model code.
 *
 * Every model source file carries a comment annotation
 *
 *     // wave-domain: host|nic|pcie|neutral|harness
 *
 * and the analyzer walks a token/declaration-level view of the tree
 * (plain text with comments and strings stripped — no libclang):
 *
 *   W001 missing-domain        src file lacks a wave-domain annotation
 *   W002 cross-domain-include  include edge violates the domain matrix
 *   W003 cross-domain-symbol   names a symbol owned by the other domain
 *   W004 actor-domain          RegisterActor call without a domain
 *   W005 hook-coverage         checker call outside WAVE_CHECK_HOOK, or
 *                              a queue/txn endpoint file with no hooks
 *   W006 stale-reason          tolerate_stale=true without justification
 *   W007 wall-clock-rng        wall clock / unseeded RNG in model code
 *   W008 time-narrowing        double<->integer time cast outside the
 *                              sanctioned bridges (sim/time.h, cycles.h)
 *
 * A second annotation marks the per-event hot set — the code whose
 * cost is multiplied by every simulated event, and which the Wave
 * paper's wimpy-core budget argument says must stay allocation- and
 * syscall-free:
 *
 *     // wave-hot              whole file is hot
 *     // wave-hot: begin       start of a hot region
 *     // wave-hot: end         end of a hot region
 *
 * The W100-series performance rules fire only on hot lines:
 *
 *   W101 hot-alloc             heap allocation on a hot path: `new`,
 *                              make_unique/make_shared, push_back or
 *                              emplace_back without an earlier reserve
 *                              in the same hot region, std::string
 *                              construction, std::function, or a
 *                              sized Bytes/std::vector local
 *   W102 hot-throw             throw/try/catch inside a hot region
 *   W103 hot-lock              std::mutex/lock_guard/atomic (the sim
 *                              core is single-threaded by design)
 *   W104 hot-by-value          heavy type (std::string, std::vector,
 *                              Bytes, config/stats structs) passed by
 *                              value across a hot signature
 *   W105 hot-io                printf-family or iostream I/O on a
 *                              hot path
 *   W106 hot-unbatched         per-element Channel Push/Receive or
 *                              TryReceive inside a hot loop that
 *                              could use the bulk batch API
 *
 * Domain include matrix (row may include column):
 *
 *              host   nic   pcie  neutral
 *   host        yes    no    yes    yes      host code never sees NIC
 *   nic          no   yes    yes    yes      state except through the
 *   pcie         no    no    yes    yes      pcie/channel/wave seam.
 *   neutral      no    no     no    yes
 *   harness     yes   yes    yes    yes      tests/bench/tools/fuzz
 *
 * Suppression: append `// wave-analyze: allow(W00X reason)` on the
 * offending line (or the line directly above), or add `path:W00X` to
 * the baseline file passed with --baseline. Inline suppressions are
 * for deliberate, justified exceptions; the baseline exists to land
 * the checker on a tree with pre-existing debt and then burn it down.
 *
 * Usage:
 *   wave_analyze [--root DIR] [--baseline FILE] [--as-src] [FILE...]
 *   wave_analyze --list-rules
 *
 * With no FILE arguments, analyzes every .h/.cc under DIR/src. With
 * explicit FILEs (fixture snippets in tests), --as-src applies the
 * model-code rules regardless of the file's location. Exit status: 0
 * clean, 1 findings, 2 usage or I/O error.
 */
// wave-domain: harness
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

enum class Domain { kUnknown, kHost, kNic, kPcie, kNeutral, kHarness };

const char*
DomainName(Domain d)
{
    switch (d) {
        case Domain::kHost: return "host";
        case Domain::kNic: return "nic";
        case Domain::kPcie: return "pcie";
        case Domain::kNeutral: return "neutral";
        case Domain::kHarness: return "harness";
        default: return "unknown";
    }
}

std::optional<Domain>
ParseDomain(const std::string& name)
{
    if (name == "host") return Domain::kHost;
    if (name == "nic") return Domain::kNic;
    if (name == "pcie") return Domain::kPcie;
    if (name == "neutral") return Domain::kNeutral;
    if (name == "harness") return Domain::kHarness;
    return std::nullopt;
}

/** May a file in domain @p from include a file in domain @p to? */
bool
MayInclude(Domain from, Domain to)
{
    if (from == Domain::kHarness) return true;
    if (to == Domain::kNeutral) return true;
    if (to == Domain::kPcie) return from != Domain::kNeutral;
    return from == to;  // concrete domains only reach themselves
}

struct Finding {
    std::string path;  // as reported (relative to root when possible)
    int line = 0;
    std::string rule;
    std::string message;
};

/** One source line split into code and comment text. */
struct SplitLine {
    std::string code;     // strings blanked, comments removed
    std::string comment;  // contents of // and /* */ comments
};

/**
 * Comment/string-aware line splitter. Block-comment state carries
 * across lines; string contents are blanked from the code channel so
 * a "//" inside a literal is not mistaken for a comment.
 */
class LineSplitter {
  public:
    SplitLine
    Split(const std::string& line)
    {
        SplitLine out;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            if (in_block_comment_) {
                if (c == '*' && next == '/') {
                    in_block_comment_ = false;
                    ++i;
                } else {
                    out.comment += c;
                }
                continue;
            }
            if (in_string_) {
                if (c == '\\') {
                    out.code += "  ";
                    ++i;
                } else if (c == quote_) {
                    in_string_ = false;
                    out.code += c;
                } else {
                    out.code += ' ';
                }
                continue;
            }
            if (c == '/' && next == '/') {
                out.comment += line.substr(i + 2);
                break;
            }
            if (c == '/' && next == '*') {
                in_block_comment_ = true;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                in_string_ = true;
                quote_ = c;
                out.code += c;
                continue;
            }
            out.code += c;
        }
        // Strings do not span lines in this codebase (no raw strings).
        in_string_ = false;
        return out;
    }

  private:
    bool in_block_comment_ = false;
    bool in_string_ = false;
    char quote_ = '"';
};

struct SourceFile {
    std::string path;          // reported path
    std::vector<std::string> raw;
    std::vector<SplitLine> lines;
    Domain domain = Domain::kUnknown;
    int domain_line = 0;
    /**
     * Per-line hot-region id, parallel to `lines`: 0 = not hot, >0 =
     * id of the `// wave-hot` region the line belongs to. A bare
     * file-scope `// wave-hot` puts every line in one region.
     */
    std::vector<int> hot;
};

std::optional<SourceFile>
LoadFile(const fs::path& fullpath, const std::string& report_path)
{
    std::ifstream in(fullpath);
    if (!in) return std::nullopt;
    SourceFile f;
    f.path = report_path;
    std::string line;
    LineSplitter splitter;
    static const std::regex kDomainRe(
        R"(wave-domain:\s*([a-z]+))");
    // Anchored to the whole comment: prose *mentioning* wave-hot (docs,
    // fixture headers) must not mark a file hot; only a standalone
    // annotation line does.
    static const std::regex kHotRe(
        R"(^\s*wave-hot(:\s*(begin|end))?\s*$)");
    bool file_hot = false;
    int hot_depth = 0;
    int next_region = 0;
    int open_region = 0;
    while (std::getline(in, line)) {
        f.raw.push_back(line);
        f.lines.push_back(splitter.Split(line));
        const std::string& comment = f.lines.back().comment;
        if (f.domain == Domain::kUnknown) {
            std::smatch m;
            if (std::regex_search(comment, m, kDomainRe)) {
                if (auto d = ParseDomain(m[1].str())) {
                    f.domain = *d;
                    f.domain_line = static_cast<int>(f.raw.size());
                }
            }
        }
        std::smatch hm;
        if (std::regex_search(comment, hm, kHotRe)) {
            const std::string kind = hm[2].str();
            if (kind == "begin") {
                if (hot_depth == 0) open_region = ++next_region;
                ++hot_depth;
            } else if (kind == "end") {
                if (hot_depth > 0) --hot_depth;
            } else {
                file_hot = true;
            }
        }
        // The `begin` line is hot; the `end` line is not.
        f.hot.push_back(hot_depth > 0 ? open_region : 0);
    }
    if (file_hot) {
        const int file_region = ++next_region;
        for (int& h : f.hot) {
            if (h == 0) h = file_region;
        }
    }
    return f;
}

/** Net '(' minus ')' on the code channel of a string. */
int
ParenBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '(') ++n;
        if (c == ')') --n;
    }
    return n;
}

/** Net '{' minus '}' on the code channel of a string. */
int
BraceBalance(const std::string& s)
{
    int n = 0;
    for (char c : s) {
        if (c == '{') ++n;
        if (c == '}') --n;
    }
    return n;
}

/** Argument text of a call: from after '(' to its match (same line). */
std::string
CallArgument(const std::string& code, std::size_t open_paren)
{
    int depth = 0;
    for (std::size_t i = open_paren; i < code.size(); ++i) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
            --depth;
            if (depth == 0) {
                return code.substr(open_paren + 1, i - open_paren - 1);
            }
        }
    }
    return code.substr(open_paren + 1);
}

// --- rule catalog ------------------------------------------------------

struct Rule {
    const char* id;
    const char* name;
    const char* summary;
};

constexpr Rule kRules[] = {
    {"W001", "missing-domain",
     "every model source file carries a wave-domain annotation"},
    {"W002", "cross-domain-include",
     "includes respect the host/nic/pcie/neutral matrix"},
    {"W003", "cross-domain-symbol",
     "no naming symbols owned by the opposite domain"},
    {"W004", "actor-domain",
     "RegisterActor call sites declare the actor's domain"},
    {"W005", "hook-coverage",
     "checker calls gated by WAVE_CHECK_HOOK; endpoints instrumented"},
    {"W006", "stale-reason",
     "tolerate_stale != false carries a same-line justification"},
    {"W007", "wall-clock-rng",
     "no wall clock, std::rand, or unseeded RNG in model code"},
    {"W008", "time-narrowing",
     "double<->integer time conversion only through sim/time.h"},
    {"W101", "hot-alloc",
     "no heap allocation on wave-hot paths (new, make_unique/shared, "
     "unreserved push_back, std::string, std::function)"},
    {"W102", "hot-throw",
     "no throw/try/catch inside wave-hot regions"},
    {"W103", "hot-lock",
     "no mutexes or atomics in the single-threaded sim core hot set"},
    {"W104", "hot-by-value",
     "no pass-by-value of heavy types across wave-hot signatures"},
    {"W105", "hot-io",
     "no printf-family or iostream I/O on wave-hot paths"},
    {"W106", "hot-unbatched",
     "no per-element Channel ops inside wave-hot loops (bulk API)"},
};

/**
 * Namespaces owned wholly by one concrete domain. Mixed-domain
 * namespaces (ghost: host kernel + neutral policy ABI) are enforced at
 * include granularity by W002 instead.
 */
const std::map<std::string, Domain> kOwnedNamespaces = {
    {"sol", Domain::kNic},
    {"workload", Domain::kHost},
    {"rpc", Domain::kHost},
};

/**
 * Queue/txn endpoint files that must contain checker instrumentation:
 * the cross-domain data path is exactly where the dynamic checkers
 * watch for coherence and ordering bugs, so a hook-free endpoint file
 * means a blind spot. Matched as path suffixes.
 */
const char* const kEndpointFiles[] = {
    "channel/mmio_queue.cc", "channel/dma_queue.cc",
    "pcie/mmio.cc",          "pcie/dma.cc",
    "pcie/msix.cc",          "wave/txn.cc",
    "wave/shm_queue.h",
};

/**
 * wave::check entry points callable from model code. Mirrors the
 * public API of coherence.h, protocol.h, and hb.h plus attach/bind
 * helpers; extend when adding checker API. (Folded in from the retired
 * tools/lint_hooks.sh.)
 */
const char* const kCheckerCallRe =
    R"((->|\.)\s*()"
    "OnWrite|OnRead|OnCacheFill|OnCacheDrop|OnWcBuffered|"
    "OnWcDrained|OnDmaWrite|OnOrderingPoint|OnShmAccess|"
    "OnTxnCreated|OnTxnPublished|OnTxnDelivered|OnTxnOutcome|"
    "OnTxnOutcomeObserved|OnStreamSend|OnStreamRecv|"
    "OnTaskState|OnCommitDecision|OnWatchdogArmed|"
    "OnWatchdogExpired|OnWatchdogFed|"
    "OnAccess|OnRelease|OnAcquire|RegisterActor|AllowUnordered|"
    "AttachChecker|AttachCheckers|AttachProtocol|AttachHb|"
    "BindCheckers"
    R"()\s*\()";

const char* const kWallClockRe =
    R"(\bstd::chrono\b|\bgettimeofday\b|\bclock_gettime\b)"
    R"(|\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\))"
    R"(|\brandom_device\b|\bstd::mt19937|\bsteady_clock\b)"
    R"(|\bsystem_clock\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))";

/** Time-flavoured tokens: identifiers/calls that denote nanoseconds. */
const char* const kTimeTokenRe =
    R"((^|[^A-Za-z0-9_])ns([^A-Za-z0-9_]|$)|_ns\b|[A-Za-z0-9_]*Ns\b)"
    R"(|\.ns\(\)|\bNow\(\))";

/** Float-flavoured tokens inside a to-integer cast argument. */
const char* const kFloatTokenRe =
    R"(ToDouble\s*\(\)|\bghz\s*\(\)|[0-9]\.[0-9]|1e[0-9]|\bdouble\b)";

// --- analyzer ----------------------------------------------------------

class Analyzer {
  public:
    Analyzer(fs::path root, bool werror_missing_domain)
        : root_(std::move(root)),
          werror_missing_domain_(werror_missing_domain)
    {
    }

    std::vector<Finding> findings;

    /** Analyzes one file; @p as_model applies the model-code rules. */
    void
    Analyze(const SourceFile& f, bool as_model)
    {
        if (!as_model) return;  // harness trees are out of scope

        const bool in_check = PathHas(f.path, "check/");
        const bool time_bridge = PathEndsWith(f.path, "sim/time.h") ||
                                 PathEndsWith(f.path, "machine/cycles.h");

        if (f.domain == Domain::kUnknown && werror_missing_domain_) {
            Add(f.path, 1, "W001",
                "no `// wave-domain: host|nic|pcie|neutral|harness` "
                "annotation");
        }

        CheckIncludes(f);
        CheckSymbols(f);
        CheckActors(f, in_check);
        CheckHooks(f, in_check);
        CheckStaleReasons(f);
        CheckWallClock(f);
        if (!time_bridge) CheckTimeNarrowing(f);
        CheckEndpointCoverage(f);
        CheckHotPaths(f);
    }

    /** Domain of an include target, loading and caching the file. */
    Domain
    DomainOfInclude(const std::string& include_path)
    {
        auto it = include_domains_.find(include_path);
        if (it != include_domains_.end()) return it->second;
        Domain d = Domain::kUnknown;
        const fs::path full = root_ / "src" / include_path;
        if (auto f = LoadFile(full, include_path)) d = f->domain;
        include_domains_[include_path] = d;
        return d;
    }

  private:
    static bool
    PathHas(const std::string& path, const std::string& needle)
    {
        return path.find(needle) != std::string::npos;
    }

    static bool
    PathEndsWith(const std::string& path, const std::string& tail)
    {
        return path.size() >= tail.size() &&
               path.compare(path.size() - tail.size(), tail.size(),
                            tail) == 0;
    }

    void
    Add(const std::string& path, int line, const char* rule,
        std::string message)
    {
        findings.push_back({path, line, rule, std::move(message)});
    }

    void
    CheckIncludes(const SourceFile& f)
    {
        static const std::regex kIncludeRe(
            R"re(^\s*#\s*include\s+"([^"]+)")re");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(f.raw[i], m, kIncludeRe)) continue;
            const std::string target = m[1].str();
            if (target.find('/') == std::string::npos) continue;
            const Domain to = DomainOfInclude(target);
            if (to == Domain::kUnknown) continue;
            if (f.domain == Domain::kUnknown) continue;
            if (!MayInclude(f.domain, to)) {
                Add(f.path, static_cast<int>(i + 1), "W002",
                    std::string(DomainName(f.domain)) +
                        "-domain file includes " + DomainName(to) +
                        "-domain header \"" + target +
                        "\" (cross-domain access must go through the "
                        "pcie seam)");
            }
        }
    }

    void
    CheckSymbols(const SourceFile& f)
    {
        if (f.domain == Domain::kPcie || f.domain == Domain::kHarness ||
            f.domain == Domain::kUnknown) {
            return;  // the seam may name both sides
        }
        static const std::regex kQualifiedRe(
            R"((?:wave::)?\b(sol|workload|rpc)::)");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            auto begin = std::sregex_iterator(code.begin(), code.end(),
                                              kQualifiedRe);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                const std::string ns = (*it)[1].str();
                // A module may of course name itself.
                if (PathHas(f.path, ns + "/")) continue;
                const Domain owner = kOwnedNamespaces.at(ns);
                if (owner == f.domain) continue;
                Add(f.path, static_cast<int>(i + 1), "W003",
                    std::string(DomainName(f.domain)) +
                        "-domain file names " + DomainName(owner) +
                        "-owned symbol `" + ns +
                        "::...` (route through the pcie seam instead)");
            }
        }
    }

    void
    CheckActors(const SourceFile& f, bool in_check)
    {
        if (in_check) return;  // the checker framework itself
        static const std::regex kRegisterRe(
            R"((->|\.)\s*RegisterActor\s*\()");
        static const std::regex kDomainNoteRe(
            R"(wave-domain:\s*(host|nic))");
        static const std::regex kLabelRe(
            R"(RegisterActor\s*\(\s*"(host|nic)[-_])");
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            if (!std::regex_search(f.lines[i].code, kRegisterRe)) {
                continue;
            }
            const bool labeled =
                std::regex_search(f.raw[i], kLabelRe);
            const bool noted =
                std::regex_search(f.lines[i].comment, kDomainNoteRe) ||
                (i > 0 && std::regex_search(f.lines[i - 1].comment,
                                            kDomainNoteRe));
            if (!labeled && !noted) {
                Add(f.path, static_cast<int>(i + 1), "W004",
                    "RegisterActor without a domain: start the label "
                    "with \"host-\"/\"nic-\" or add a `// wave-domain: "
                    "host|nic` comment on this or the previous line");
            }
        }
    }

    void
    CheckHooks(const SourceFile& f, bool in_check)
    {
        if (in_check) return;
        static const std::regex kCallRe(kCheckerCallRe);
        int hook_balance = 0;       // open parens of WAVE_CHECK_HOOK(...)
        std::vector<bool> gated;    // #if nesting: WAVE_CHECK_ENABLED?
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& raw = f.raw[i];
            const std::string& code = f.lines[i].code;
            static const std::regex kIfRe(R"(^\s*#\s*if)");
            static const std::regex kElRe(R"(^\s*#\s*el)");
            static const std::regex kEndifRe(R"(^\s*#\s*endif)");
            if (std::regex_search(raw, kIfRe)) {
                gated.push_back(raw.find("WAVE_CHECK_ENABLED") !=
                                std::string::npos);
            } else if (std::regex_search(raw, kElRe)) {
                if (!gated.empty()) {
                    gated.back() = raw.find("WAVE_CHECK_ENABLED") !=
                                   std::string::npos;
                }
            } else if (std::regex_search(raw, kEndifRe)) {
                if (!gated.empty()) gated.pop_back();
            }
            const bool in_gate =
                std::any_of(gated.begin(), gated.end(),
                            [](bool g) { return g; });

            bool in_hook = hook_balance > 0;
            const auto hook_pos = code.find("WAVE_CHECK_HOOK");
            if (hook_pos != std::string::npos) {
                in_hook = true;
                hook_balance += ParenBalance(code.substr(hook_pos));
            } else if (hook_balance > 0) {
                hook_balance += ParenBalance(code);
            }
            if (hook_balance < 0) hook_balance = 0;

            if (!in_hook && !in_gate &&
                std::regex_search(code, kCallRe)) {
                Add(f.path, static_cast<int>(i + 1), "W005",
                    "checker call outside WAVE_CHECK_HOOK(...) or an "
                    "#ifdef WAVE_CHECK_ENABLED block");
            }
        }
    }

    void
    CheckStaleReasons(const SourceFile& f)
    {
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& raw = f.raw[i];
            static const std::regex kStaleRe(
                R"(/\*\s*tolerate_stale\s*=\s*\*/\s*([A-Za-z_][A-Za-z0-9_:\.]*|true|false))");
            std::smatch m;
            if (!std::regex_search(raw, m, kStaleRe)) continue;
            if (m[1].str() == "false") continue;
            // The /*tolerate_stale=*/ argument annotation itself lands
            // in the comment channel; it is not a justification.
            static const std::regex kSelfRe(
                R"(\s*tolerate_stale\s*=\s*)");
            const std::string note = std::regex_replace(
                f.lines[i].comment, kSelfRe, "");
            if (note.empty()) {
                Add(f.path, static_cast<int>(i + 1), "W006",
                    "tolerate_stale without a same-line justification "
                    "comment");
            }
        }
    }

    void
    CheckWallClock(const SourceFile& f)
    {
        static const std::regex kBanRe(kWallClockRe);
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            std::smatch m;
            if (std::regex_search(f.lines[i].code, m, kBanRe)) {
                Add(f.path, static_cast<int>(i + 1), "W007",
                    "determinism-hostile construct `" + m[0].str() +
                    "` in model code (use sim::Rng / sim::Simulator "
                    "time instead)");
            }
        }
    }

    void
    CheckTimeNarrowing(const SourceFile& f)
    {
        static const std::regex kToDoubleRe(
            R"(static_cast<\s*double\s*>\s*\()");
        static const std::regex kToIntRe(
            R"(static_cast<\s*(?:std::)?u?int(?:64|32)_t\s*>\s*\()");
        static const std::regex kTimeTok(kTimeTokenRe);
        static const std::regex kFloatTok(kFloatTokenRe);
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            std::smatch m;
            if (std::regex_search(code, m, kToDoubleRe)) {
                const auto open =
                    static_cast<std::size_t>(m.position(0)) +
                    m.length(0) - 1;
                const std::string arg = CallArgument(code, open);
                if (std::regex_search(arg, kTimeTok)) {
                    Add(f.path, static_cast<int>(i + 1), "W008",
                        "ad-hoc time->double cast; use "
                        "DurationNs/TimeNs ToDouble(), ToUs(), ToMs() "
                        "(sim/time.h is the only sanctioned bridge)");
                }
            }
            if (std::regex_search(code, m, kToIntRe)) {
                const auto open =
                    static_cast<std::size_t>(m.position(0)) +
                    m.length(0) - 1;
                const std::string arg = CallArgument(code, open);
                if (std::regex_search(arg, kFloatTok) &&
                    std::regex_search(code, kTimeTok)) {
                    Add(f.path, static_cast<int>(i + 1), "W008",
                        "ad-hoc double->integer time cast; use "
                        "DurationNs::FromDouble()/TimeNs::FromDouble() "
                        "(sim/time.h is the only sanctioned bridge)");
                }
            }
        }
    }

    /** Does any earlier line of hot region @p region pre-reserve? */
    static bool
    RegionReserves(const SourceFile& f, int region, std::size_t upto)
    {
        static const std::regex kReserveRe(
            R"((\.|->)\s*([Rr]eserve|resize)\s*\()");
        for (std::size_t j = 0; j < upto; ++j) {
            if (f.hot[j] != region) continue;
            if (std::regex_search(f.lines[j].code, kReserveRe)) {
                return true;
            }
        }
        return false;
    }

    /**
     * W101-W106: the per-event performance rules. Text-level like the
     * rest of the tool; each pattern names the construct so a reader
     * can judge the finding without opening the file.
     */
    void
    CheckHotPaths(const SourceFile& f)
    {
        static const std::regex kNewRe(R"(\bnew\s+[A-Za-z_:])");
        static const std::regex kMakeRe(
            R"(\bstd::make_(unique|shared)\s*<)");
        static const std::regex kGrowRe(
            R"((\.|->)\s*(push_back|emplace_back)\s*\()");
        static const std::regex kStringRe(
            R"(\bstd::string\s+[A-Za-z_]\w*\s*[;({=])"
            R"(|\bstd::string\s*[({])"
            R"(|\bstd::(to_string|ostringstream|stringstream)\b)");
        static const std::regex kFunctionRe(R"(\bstd::function\s*<)");
        // The identifier must be snake_case: sized-buffer *locals* are
        // lowercase in this tree, while PascalCase names after a vector
        // type are function declarations returning one (caller-owned by
        // contract, not a per-event allocation at this line).
        static const std::regex kSizedBufRe(
            R"(\b(Bytes|std::vector\s*<[^;=(){}]*>)\s+[a-z_]\w*\s*\()");
        static const std::regex kThrowRe(R"(\b(throw|try|catch)\b)");
        static const std::regex kLockRe(
            R"(\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex)"
            R"(|lock_guard|scoped_lock|unique_lock|condition_variable)"
            R"(|atomic)\b|\bmemory_order_seq_cst\b)");
        static const std::regex kHeavyParamRe(
            R"(\b(std::string|std::vector\s*<[^;=(){}]*>)"
            R"(|std::deque\s*<[^;=(){}]*>|std::map\s*<[^;=(){}]*>)"
            R"(|Bytes|[A-Za-z_]*Config|[A-Za-z_]*Stats))"
            R"(\s+[A-Za-z_]\w*\s*[,)])");
        static const std::regex kIoRe(
            R"(\b(printf|fprintf|sprintf|snprintf|puts|fputs|putchar)"
            R"(|fwrite|fflush)\s*\()"
            R"(|\bstd::(cout|cerr|clog|ostream|ofstream|ifstream)"
            R"(|fstream|getline)\b)");
        static const std::regex kLoopRe(R"(\b(for|while)\s*\()");
        static const std::regex kChanOpRe(
            R"((\.|->)\s*(Push|Receive|TryReceive)\s*\()");

        int depth = 0;              // brace depth across the file
        std::vector<int> loops;     // brace depth at each open hot loop
        for (std::size_t i = 0; i < f.lines.size(); ++i) {
            const std::string& code = f.lines[i].code;
            const int line_no = static_cast<int>(i + 1);
            const bool hot = f.hot[i] > 0;

            if (hot && std::regex_search(code, kLoopRe)) {
                loops.push_back(depth);
            }

            if (hot) {
                std::smatch m;
                if (std::regex_search(code, m, kNewRe)) {
                    Add(f.path, line_no, "W101",
                        "`new` on a hot path; use a pool or inline "
                        "storage (per-event allocation breaks the "
                        "wimpy-core budget)");
                }
                if (std::regex_search(code, m, kMakeRe)) {
                    Add(f.path, line_no, "W101",
                        "make_" + m[1].str() +
                        " on a hot path; allocate at setup time or "
                        "pool the object");
                }
                if (std::regex_search(code, m, kGrowRe) &&
                    !RegionReserves(f, f.hot[i], i)) {
                    Add(f.path, line_no, "W101",
                        m[2].str() +
                        " without an earlier reserve() in the same "
                        "hot region (amortized reallocation is still "
                        "a per-event allocation)");
                }
                if (std::regex_search(code, m, kStringRe)) {
                    Add(f.path, line_no, "W101",
                        "std::string construction on a hot path "
                        "(string building belongs in cold "
                        "reporting code)");
                }
                if (std::regex_search(code, m, kFunctionRe)) {
                    Add(f.path, line_no, "W101",
                        "std::function on a hot path; its capture "
                        "heap-allocates (use sim::InlineFn or a "
                        "template parameter)");
                }
                if (std::regex_search(code, m, kSizedBufRe)) {
                    Add(f.path, line_no, "W101",
                        "sized " + m[1].str() +
                        " local on a hot path; reuse a pooled "
                        "scratch buffer instead");
                }
                if (std::regex_search(code, m, kThrowRe)) {
                    Add(f.path, line_no, "W102",
                        "`" + m[1].str() +
                        "` inside a hot region (exception machinery "
                        "is for cold recovery paths only)");
                }
                if (std::regex_search(code, m, kLockRe)) {
                    Add(f.path, line_no, "W103",
                        "`" + m[0].str() +
                        "` on a hot path: the sim core is "
                        "single-threaded by design and needs no "
                        "synchronization");
                }
                if (std::regex_search(code, m, kHeavyParamRe)) {
                    Add(f.path, line_no, "W104",
                        "heavy type `" + m[1].str() +
                        "` passed by value across a hot signature; "
                        "take const& or a span");
                }
                if (std::regex_search(code, m, kIoRe)) {
                    Add(f.path, line_no, "W105",
                        "I/O call `" + m[0].str() +
                        "` on a hot path (format and print from "
                        "cold reporting code)");
                }
                if (!loops.empty() &&
                    std::regex_search(code, m, kChanOpRe)) {
                    Add(f.path, line_no, "W106",
                        "per-element Channel " + m[2].str() +
                        "() inside a hot loop; use "
                        "PushBatch()/TryReceiveBatch() to pay the "
                        "notify/schedule cost once");
                }
            }

            depth += BraceBalance(code);
            while (!loops.empty() && depth <= loops.back()) {
                loops.pop_back();
            }
        }
    }

    void
    CheckEndpointCoverage(const SourceFile& f)
    {
        for (const char* endpoint : kEndpointFiles) {
            if (!PathEndsWith(f.path, endpoint)) continue;
            for (const auto& line : f.lines) {
                if (line.code.find("WAVE_CHECK_HOOK") !=
                    std::string::npos) {
                    return;
                }
            }
            Add(f.path, 1, "W005",
                "queue/txn endpoint file carries no WAVE_CHECK_HOOK "
                "instrumentation (checker blind spot)");
        }
    }

    fs::path root_;
    bool werror_missing_domain_;
    std::map<std::string, Domain> include_domains_;
};

// --- suppression -------------------------------------------------------

/** Inline `wave-analyze: allow(W00X ...)` on the line or the previous. */
bool
InlineSuppressed(const SourceFile& f, const Finding& finding)
{
    static const std::regex kAllowRe(
        R"(wave-analyze:\s*allow\(\s*(W[0-9]{3}))");
    const auto check = [&](int line_no) {
        if (line_no < 1 ||
            line_no > static_cast<int>(f.lines.size())) {
            return false;
        }
        const std::string& comment =
            f.lines[static_cast<std::size_t>(line_no - 1)].comment;
        std::smatch m;
        return std::regex_search(comment, m, kAllowRe) &&
               m[1].str() == finding.rule;
    };
    return check(finding.line) || check(finding.line - 1);
}

/** Baseline file: `path:W00X` per line; '#' comments and blanks ok. */
std::set<std::string>
LoadBaseline(const fs::path& path)
{
    std::set<std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r')) {
            line.pop_back();
        }
        if (!line.empty()) entries.insert(line);
    }
    return entries;
}

void
ListRules()
{
    std::printf("wave_analyze rule catalog:\n");
    for (const Rule& r : kRules) {
        std::printf("  %s %-22s %s\n", r.id, r.name, r.summary);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    fs::path root = ".";
    fs::path baseline_path;
    bool as_src = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            ListRules();
            return 0;
        }
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--as-src") {
            as_src = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "wave_analyze: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    std::error_code ec;
    if (!fs::exists(root / "src", ec) && files.empty()) {
        std::fprintf(stderr, "wave_analyze: no src/ under %s\n",
                     root.string().c_str());
        return 2;
    }

    struct Job {
        fs::path full;
        std::string report;
        bool model;
    };
    std::vector<Job> jobs;
    if (files.empty()) {
        for (auto it = fs::recursive_directory_iterator(root / "src");
             it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file()) continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".cc") continue;
            const std::string rel =
                fs::relative(it->path(), root).generic_string();
            jobs.push_back({it->path(), rel, /*model=*/true});
        }
    } else {
        for (const std::string& f : files) {
            const fs::path p(f);
            const bool model =
                as_src ||
                p.generic_string().find("src/") != std::string::npos;
            jobs.push_back({p, p.generic_string(), model});
        }
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) {
                  return a.report < b.report;
              });

    Analyzer analyzer(root, /*werror_missing_domain=*/true);
    std::map<std::string, SourceFile> loaded;
    for (const Job& job : jobs) {
        auto f = LoadFile(job.full, job.report);
        if (!f) {
            std::fprintf(stderr, "wave_analyze: cannot read %s\n",
                         job.full.string().c_str());
            return 2;
        }
        analyzer.Analyze(*f, job.model);
        loaded.emplace(job.report, std::move(*f));
    }

    const std::set<std::string> baseline =
        baseline_path.empty() ? std::set<std::string>{}
                              : LoadBaseline(baseline_path);

    int reported = 0;
    int suppressed = 0;
    for (const Finding& finding : analyzer.findings) {
        const SourceFile& f = loaded.at(finding.path);
        if (InlineSuppressed(f, finding) ||
            baseline.count(finding.path + ":" + finding.rule) != 0) {
            ++suppressed;
            continue;
        }
        std::printf("%s:%d: %s: %s\n", finding.path.c_str(),
                    finding.line, finding.rule.c_str(),
                    finding.message.c_str());
        ++reported;
    }

    if (reported == 0) {
        std::printf("wave_analyze: OK (%zu files, %d suppressed)\n",
                    jobs.size(), suppressed);
        return 0;
    }
    std::printf("wave_analyze: %d finding%s (%d suppressed)\n",
                reported, reported == 1 ? "" : "s", suppressed);
    return 1;
}
