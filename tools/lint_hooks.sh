#!/usr/bin/env sh
# Repo-specific lint rules the compiler cannot enforce.
#
# Rule 1 — hook discipline: every call into the wave::check
#   instrumentation API from model code (src/, excluding src/check/
#   itself) must sit inside a WAVE_CHECK_HOOK(...) region or an
#   `#ifdef WAVE_CHECK_ENABLED` block. A bare call would break the
#   -DWAVE_CHECK=OFF build or, worse, silently keep checker work in
#   measurement builds.
#
# Rule 2 — staleness annotations: every `/*tolerate_stale=*/` call-site
#   annotation whose value is not the literal `false` must carry a
#   same-line `//` comment justifying why the optimistic read is safe
#   (e.g. "gen mismatch => retry"). Unexplained tolerance is how stale-
#   read bugs get grandfathered in.
#
# Usage: tools/lint_hooks.sh [repo-root]     (exit 1 on any finding)

set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

status=0

# --- Rule 1: checker calls outside WAVE_CHECK_HOOK / #ifdef gates -----
#
# The method list mirrors the public entry points of coherence.h,
# protocol.h, and hb.h plus the attach/bind helpers on model classes;
# extend it when adding checker API. The `->`/`.` prefix keeps method
# *declarations* (which have no receiver) out of scope.

find src -name '*.cc' -o -name '*.h' | grep -v '^src/check/' | sort |
while IFS= read -r file; do
    awk '
    function parens(s,   t, no, nc) {
        t = s; no = gsub(/\(/, "", t)
        t = s; nc = gsub(/\)/, "", t)
        return no - nc
    }
    BEGIN {
        hook = 0
        depth = 0
        call = "(->|\\.)[ \t]*(" \
            "OnWrite|OnRead|OnCacheFill|OnCacheDrop|OnWcBuffered|" \
            "OnWcDrained|OnDmaWrite|OnOrderingPoint|OnShmAccess|" \
            "OnTxnCreated|OnTxnPublished|OnTxnDelivered|OnTxnOutcome|" \
            "OnTxnOutcomeObserved|OnStreamSend|OnStreamRecv|" \
            "OnTaskState|OnCommitDecision|OnWatchdogArmed|" \
            "OnWatchdogExpired|OnWatchdogFed|" \
            "OnAccess|OnRelease|OnAcquire|RegisterActor|AllowUnordered|" \
            "AttachChecker|AttachCheckers|AttachProtocol|AttachHb|" \
            "BindCheckers" \
            ")[ \t]*\\("
    }
    {
        # Conditional-compilation gate tracking.
        if ($0 ~ /^[ \t]*#[ \t]*if/) {
            depth += 1
            gated[depth] = ($0 ~ /WAVE_CHECK_ENABLED/) ? 1 : 0
        } else if ($0 ~ /^[ \t]*#[ \t]*el/) {
            if (depth > 0) gated[depth] = ($0 ~ /WAVE_CHECK_ENABLED/)
        } else if ($0 ~ /^[ \t]*#[ \t]*endif/) {
            if (depth > 0) { gated[depth] = 0; depth -= 1 }
        }
        in_gate = 0
        for (i = 1; i <= depth; i++) if (gated[i]) in_gate = 1

        # WAVE_CHECK_HOOK(...) region tracking by paren balance.
        in_hook = (hook > 0)
        if ($0 ~ /WAVE_CHECK_HOOK/) {
            in_hook = 1
            hook += parens(substr($0, index($0, "WAVE_CHECK_HOOK")))
        } else if (hook > 0) {
            hook += parens($0)
        }
        if (hook < 0) hook = 0

        if ($0 ~ call && !in_hook && !in_gate) {
            printf "%s:%d: checker call outside WAVE_CHECK_HOOK: %s\n",
                FILENAME, FNR, $0
            found = 1
        }
    }
    END { exit found ? 1 : 0 }
    ' "$file" || echo FAIL
done | {
    out=$(cat)
    if [ -n "$out" ]; then
        printf '%s\n' "$out" | grep -v '^FAIL$'
        exit 1
    fi
}
[ $? -ne 0 ] && status=1

# --- Rule 2: tolerate_stale annotations need a same-line reason -------

find src -name '*.cc' -o -name '*.h' | sort |
while IFS= read -r file; do
    awk '
    /\/\*[ \t]*tolerate_stale[ \t]*=[ \t]*\*\// {
        rest = substr($0, index($0, "tolerate_stale"))
        sub(/^tolerate_stale[ \t]*=[ \t]*\*\/[ \t]*/, "", rest)
        if (rest ~ /^false[ \t]*[,)]/) next
        if ($0 !~ /\/\//) {
            printf "%s:%d: tolerate_stale without justification: %s\n",
                FILENAME, FNR, $0
            found = 1
        }
    }
    END { exit found ? 1 : 0 }
    ' "$file" || echo FAIL
done | {
    out=$(cat)
    if [ -n "$out" ]; then
        printf '%s\n' "$out" | grep -v '^FAIL$'
        exit 1
    fi
}
[ $? -ne 0 ] && status=1

if [ "$status" -eq 0 ]; then
    echo "lint_hooks: OK"
fi
exit "$status"
