file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_fifo.dir/bench_fig4a_fifo.cc.o"
  "CMakeFiles/bench_fig4a_fifo.dir/bench_fig4a_fifo.cc.o.d"
  "bench_fig4a_fifo"
  "bench_fig4a_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
