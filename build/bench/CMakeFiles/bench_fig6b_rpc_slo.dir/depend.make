# Empty dependencies file for bench_fig6b_rpc_slo.
# This may be replaced when dependencies are built.
