file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_rpc_slo.dir/bench_fig6b_rpc_slo.cc.o"
  "CMakeFiles/bench_fig6b_rpc_slo.dir/bench_fig6b_rpc_slo.cc.o.d"
  "bench_fig6b_rpc_slo"
  "bench_fig6b_rpc_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_rpc_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
