# Empty dependencies file for bench_sol_footprint.
# This may be replaced when dependencies are built.
