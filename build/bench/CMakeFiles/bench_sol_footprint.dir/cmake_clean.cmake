file(REMOVE_RECURSE
  "CMakeFiles/bench_sol_footprint.dir/bench_sol_footprint.cc.o"
  "CMakeFiles/bench_sol_footprint.dir/bench_sol_footprint.cc.o.d"
  "bench_sol_footprint"
  "bench_sol_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sol_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
