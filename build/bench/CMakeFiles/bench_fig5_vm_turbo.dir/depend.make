# Empty dependencies file for bench_fig5_vm_turbo.
# This may be replaced when dependencies are built.
