file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vm_turbo.dir/bench_fig5_vm_turbo.cc.o"
  "CMakeFiles/bench_fig5_vm_turbo.dir/bench_fig5_vm_turbo.cc.o.d"
  "bench_fig5_vm_turbo"
  "bench_fig5_vm_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vm_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
