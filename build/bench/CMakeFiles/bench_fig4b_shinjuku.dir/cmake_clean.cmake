file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_shinjuku.dir/bench_fig4b_shinjuku.cc.o"
  "CMakeFiles/bench_fig4b_shinjuku.dir/bench_fig4b_shinjuku.cc.o.d"
  "bench_fig4b_shinjuku"
  "bench_fig4b_shinjuku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_shinjuku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
