file(REMOVE_RECURSE
  "CMakeFiles/bench_memmgr_policies.dir/bench_memmgr_policies.cc.o"
  "CMakeFiles/bench_memmgr_policies.dir/bench_memmgr_policies.cc.o.d"
  "bench_memmgr_policies"
  "bench_memmgr_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memmgr_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
