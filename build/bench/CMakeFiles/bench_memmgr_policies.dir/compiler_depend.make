# Empty compiler generated dependencies file for bench_memmgr_policies.
# This may be replaced when dependencies are built.
