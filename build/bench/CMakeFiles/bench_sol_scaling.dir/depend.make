# Empty dependencies file for bench_sol_scaling.
# This may be replaced when dependencies are built.
