file(REMOVE_RECURSE
  "CMakeFiles/bench_sol_scaling.dir/bench_sol_scaling.cc.o"
  "CMakeFiles/bench_sol_scaling.dir/bench_sol_scaling.cc.o.d"
  "bench_sol_scaling"
  "bench_sol_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sol_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
