# Empty compiler generated dependencies file for bench_fig6a_rpc.
# This may be replaced when dependencies are built.
