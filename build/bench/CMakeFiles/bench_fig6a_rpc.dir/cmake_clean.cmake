file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_rpc.dir/bench_fig6a_rpc.cc.o"
  "CMakeFiles/bench_fig6a_rpc.dir/bench_fig6a_rpc.cc.o.d"
  "bench_fig6a_rpc"
  "bench_fig6a_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
