file(REMOVE_RECURSE
  "CMakeFiles/bench_polling_vs_interrupts.dir/bench_polling_vs_interrupts.cc.o"
  "CMakeFiles/bench_polling_vs_interrupts.dir/bench_polling_vs_interrupts.cc.o.d"
  "bench_polling_vs_interrupts"
  "bench_polling_vs_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polling_vs_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
