# Empty dependencies file for bench_polling_vs_interrupts.
# This may be replaced when dependencies are built.
