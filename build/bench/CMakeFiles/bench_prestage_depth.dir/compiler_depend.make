# Empty compiler generated dependencies file for bench_prestage_depth.
# This may be replaced when dependencies are built.
