file(REMOVE_RECURSE
  "CMakeFiles/bench_prestage_depth.dir/bench_prestage_depth.cc.o"
  "CMakeFiles/bench_prestage_depth.dir/bench_prestage_depth.cc.o.d"
  "bench_prestage_depth"
  "bench_prestage_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prestage_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
