file(REMOVE_RECURSE
  "CMakeFiles/bench_upi_interconnect.dir/bench_upi_interconnect.cc.o"
  "CMakeFiles/bench_upi_interconnect.dir/bench_upi_interconnect.cc.o.d"
  "bench_upi_interconnect"
  "bench_upi_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upi_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
