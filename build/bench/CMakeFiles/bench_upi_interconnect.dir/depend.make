# Empty dependencies file for bench_upi_interconnect.
# This may be replaced when dependencies are built.
