file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_primitives.dir/bench_queue_primitives.cc.o"
  "CMakeFiles/bench_queue_primitives.dir/bench_queue_primitives.cc.o.d"
  "bench_queue_primitives"
  "bench_queue_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
