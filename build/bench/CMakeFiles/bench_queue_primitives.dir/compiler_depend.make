# Empty compiler generated dependencies file for bench_queue_primitives.
# This may be replaced when dependencies are built.
