# Empty dependencies file for bench_opt_ladder.
# This may be replaced when dependencies are built.
