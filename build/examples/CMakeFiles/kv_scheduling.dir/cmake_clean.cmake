file(REMOVE_RECURSE
  "CMakeFiles/kv_scheduling.dir/kv_scheduling.cpp.o"
  "CMakeFiles/kv_scheduling.dir/kv_scheduling.cpp.o.d"
  "kv_scheduling"
  "kv_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
