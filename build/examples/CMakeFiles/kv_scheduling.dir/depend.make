# Empty dependencies file for kv_scheduling.
# This may be replaced when dependencies are built.
