# Empty compiler generated dependencies file for agent_recovery.
# This may be replaced when dependencies are built.
