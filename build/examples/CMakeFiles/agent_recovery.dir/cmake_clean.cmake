file(REMOVE_RECURSE
  "CMakeFiles/agent_recovery.dir/agent_recovery.cpp.o"
  "CMakeFiles/agent_recovery.dir/agent_recovery.cpp.o.d"
  "agent_recovery"
  "agent_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
