file(REMOVE_RECURSE
  "CMakeFiles/memory_tiering.dir/memory_tiering.cpp.o"
  "CMakeFiles/memory_tiering.dir/memory_tiering.cpp.o.d"
  "memory_tiering"
  "memory_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
