# Empty dependencies file for memory_tiering.
# This may be replaced when dependencies are built.
