file(REMOVE_RECURSE
  "CMakeFiles/rpc_steering.dir/rpc_steering.cpp.o"
  "CMakeFiles/rpc_steering.dir/rpc_steering.cpp.o.d"
  "rpc_steering"
  "rpc_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
