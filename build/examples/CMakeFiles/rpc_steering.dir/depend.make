# Empty dependencies file for rpc_steering.
# This may be replaced when dependencies are built.
