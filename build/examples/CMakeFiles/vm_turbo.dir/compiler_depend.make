# Empty compiler generated dependencies file for vm_turbo.
# This may be replaced when dependencies are built.
