file(REMOVE_RECURSE
  "CMakeFiles/vm_turbo.dir/vm_turbo.cpp.o"
  "CMakeFiles/vm_turbo.dir/vm_turbo.cpp.o.d"
  "vm_turbo"
  "vm_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
