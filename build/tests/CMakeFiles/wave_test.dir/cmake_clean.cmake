file(REMOVE_RECURSE
  "CMakeFiles/wave_test.dir/wave_test.cc.o"
  "CMakeFiles/wave_test.dir/wave_test.cc.o.d"
  "wave_test"
  "wave_test.pdb"
  "wave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
