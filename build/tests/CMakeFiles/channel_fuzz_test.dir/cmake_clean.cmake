file(REMOVE_RECURSE
  "CMakeFiles/channel_fuzz_test.dir/channel_fuzz_test.cc.o"
  "CMakeFiles/channel_fuzz_test.dir/channel_fuzz_test.cc.o.d"
  "channel_fuzz_test"
  "channel_fuzz_test.pdb"
  "channel_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
