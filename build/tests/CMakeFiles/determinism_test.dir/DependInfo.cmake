
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/wave_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/wave_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/wave_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ghost/CMakeFiles/wave_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wave_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/wave_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wave_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/wave_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/wave_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wave_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
