# Empty dependencies file for sol_test.
# This may be replaced when dependencies are built.
