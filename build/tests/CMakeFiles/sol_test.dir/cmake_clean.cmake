file(REMOVE_RECURSE
  "CMakeFiles/sol_test.dir/sol_test.cc.o"
  "CMakeFiles/sol_test.dir/sol_test.cc.o.d"
  "sol_test"
  "sol_test.pdb"
  "sol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
