# Empty dependencies file for memmgr_test.
# This may be replaced when dependencies are built.
