file(REMOVE_RECURSE
  "CMakeFiles/memmgr_test.dir/memmgr_test.cc.o"
  "CMakeFiles/memmgr_test.dir/memmgr_test.cc.o.d"
  "memmgr_test"
  "memmgr_test.pdb"
  "memmgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
