# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/wave_test[1]_include.cmake")
include("/root/repo/build/tests/ghost_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sol_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/enclave_test[1]_include.cmake")
include("/root/repo/build/tests/memmgr_test[1]_include.cmake")
include("/root/repo/build/tests/channel_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
