file(REMOVE_RECURSE
  "CMakeFiles/wave_core.dir/runtime.cc.o"
  "CMakeFiles/wave_core.dir/runtime.cc.o.d"
  "CMakeFiles/wave_core.dir/txn.cc.o"
  "CMakeFiles/wave_core.dir/txn.cc.o.d"
  "CMakeFiles/wave_core.dir/watchdog.cc.o"
  "CMakeFiles/wave_core.dir/watchdog.cc.o.d"
  "libwave_core.a"
  "libwave_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
