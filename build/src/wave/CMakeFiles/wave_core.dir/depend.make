# Empty dependencies file for wave_core.
# This may be replaced when dependencies are built.
