file(REMOVE_RECURSE
  "libwave_core.a"
)
