# Empty dependencies file for wave_rpc.
# This may be replaced when dependencies are built.
