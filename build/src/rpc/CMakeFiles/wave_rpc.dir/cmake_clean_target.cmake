file(REMOVE_RECURSE
  "libwave_rpc.a"
)
