file(REMOVE_RECURSE
  "CMakeFiles/wave_rpc.dir/rpc_experiment.cc.o"
  "CMakeFiles/wave_rpc.dir/rpc_experiment.cc.o.d"
  "CMakeFiles/wave_rpc.dir/rpc_stack.cc.o"
  "CMakeFiles/wave_rpc.dir/rpc_stack.cc.o.d"
  "libwave_rpc.a"
  "libwave_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
