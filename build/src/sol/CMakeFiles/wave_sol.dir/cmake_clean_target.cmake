file(REMOVE_RECURSE
  "libwave_sol.a"
)
