file(REMOVE_RECURSE
  "CMakeFiles/wave_sol.dir/agent.cc.o"
  "CMakeFiles/wave_sol.dir/agent.cc.o.d"
  "CMakeFiles/wave_sol.dir/policy.cc.o"
  "CMakeFiles/wave_sol.dir/policy.cc.o.d"
  "libwave_sol.a"
  "libwave_sol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_sol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
