# Empty compiler generated dependencies file for wave_sol.
# This may be replaced when dependencies are built.
