file(REMOVE_RECURSE
  "CMakeFiles/wave_machine.dir/turbo.cc.o"
  "CMakeFiles/wave_machine.dir/turbo.cc.o.d"
  "libwave_machine.a"
  "libwave_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
