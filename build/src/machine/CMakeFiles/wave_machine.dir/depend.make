# Empty dependencies file for wave_machine.
# This may be replaced when dependencies are built.
