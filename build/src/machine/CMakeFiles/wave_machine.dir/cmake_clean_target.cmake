file(REMOVE_RECURSE
  "libwave_machine.a"
)
