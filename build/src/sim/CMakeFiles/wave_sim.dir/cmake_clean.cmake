file(REMOVE_RECURSE
  "CMakeFiles/wave_sim.dir/logging.cc.o"
  "CMakeFiles/wave_sim.dir/logging.cc.o.d"
  "CMakeFiles/wave_sim.dir/random.cc.o"
  "CMakeFiles/wave_sim.dir/random.cc.o.d"
  "CMakeFiles/wave_sim.dir/simulator.cc.o"
  "CMakeFiles/wave_sim.dir/simulator.cc.o.d"
  "CMakeFiles/wave_sim.dir/sync.cc.o"
  "CMakeFiles/wave_sim.dir/sync.cc.o.d"
  "CMakeFiles/wave_sim.dir/trace.cc.o"
  "CMakeFiles/wave_sim.dir/trace.cc.o.d"
  "libwave_sim.a"
  "libwave_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
