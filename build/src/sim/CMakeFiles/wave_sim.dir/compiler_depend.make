# Empty compiler generated dependencies file for wave_sim.
# This may be replaced when dependencies are built.
