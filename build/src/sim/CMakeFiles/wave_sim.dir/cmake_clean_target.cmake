file(REMOVE_RECURSE
  "libwave_sim.a"
)
