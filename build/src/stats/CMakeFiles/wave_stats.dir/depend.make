# Empty dependencies file for wave_stats.
# This may be replaced when dependencies are built.
