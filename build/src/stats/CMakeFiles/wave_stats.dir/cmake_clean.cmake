file(REMOVE_RECURSE
  "CMakeFiles/wave_stats.dir/histogram.cc.o"
  "CMakeFiles/wave_stats.dir/histogram.cc.o.d"
  "CMakeFiles/wave_stats.dir/table.cc.o"
  "CMakeFiles/wave_stats.dir/table.cc.o.d"
  "libwave_stats.a"
  "libwave_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
