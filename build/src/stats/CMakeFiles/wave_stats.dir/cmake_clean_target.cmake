file(REMOVE_RECURSE
  "libwave_stats.a"
)
