# Empty compiler generated dependencies file for wave_ghost.
# This may be replaced when dependencies are built.
