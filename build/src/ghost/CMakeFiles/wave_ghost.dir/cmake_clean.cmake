file(REMOVE_RECURSE
  "CMakeFiles/wave_ghost.dir/agent.cc.o"
  "CMakeFiles/wave_ghost.dir/agent.cc.o.d"
  "CMakeFiles/wave_ghost.dir/enclave.cc.o"
  "CMakeFiles/wave_ghost.dir/enclave.cc.o.d"
  "CMakeFiles/wave_ghost.dir/kernel.cc.o"
  "CMakeFiles/wave_ghost.dir/kernel.cc.o.d"
  "CMakeFiles/wave_ghost.dir/transport.cc.o"
  "CMakeFiles/wave_ghost.dir/transport.cc.o.d"
  "libwave_ghost.a"
  "libwave_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
