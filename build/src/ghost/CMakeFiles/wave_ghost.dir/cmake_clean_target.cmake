file(REMOVE_RECURSE
  "libwave_ghost.a"
)
