# Empty dependencies file for wave_sched.
# This may be replaced when dependencies are built.
