file(REMOVE_RECURSE
  "CMakeFiles/wave_sched.dir/cfs_lite.cc.o"
  "CMakeFiles/wave_sched.dir/cfs_lite.cc.o.d"
  "CMakeFiles/wave_sched.dir/fifo.cc.o"
  "CMakeFiles/wave_sched.dir/fifo.cc.o.d"
  "CMakeFiles/wave_sched.dir/shinjuku.cc.o"
  "CMakeFiles/wave_sched.dir/shinjuku.cc.o.d"
  "CMakeFiles/wave_sched.dir/vm_policy.cc.o"
  "CMakeFiles/wave_sched.dir/vm_policy.cc.o.d"
  "libwave_sched.a"
  "libwave_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
