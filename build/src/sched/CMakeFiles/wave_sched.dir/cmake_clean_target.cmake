file(REMOVE_RECURSE
  "libwave_sched.a"
)
