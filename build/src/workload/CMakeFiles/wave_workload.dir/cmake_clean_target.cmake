file(REMOVE_RECURSE
  "libwave_workload.a"
)
