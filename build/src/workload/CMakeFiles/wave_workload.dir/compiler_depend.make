# Empty compiler generated dependencies file for wave_workload.
# This may be replaced when dependencies are built.
