file(REMOVE_RECURSE
  "CMakeFiles/wave_workload.dir/kv_service.cc.o"
  "CMakeFiles/wave_workload.dir/kv_service.cc.o.d"
  "CMakeFiles/wave_workload.dir/loadgen.cc.o"
  "CMakeFiles/wave_workload.dir/loadgen.cc.o.d"
  "CMakeFiles/wave_workload.dir/sched_experiment.cc.o"
  "CMakeFiles/wave_workload.dir/sched_experiment.cc.o.d"
  "libwave_workload.a"
  "libwave_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
