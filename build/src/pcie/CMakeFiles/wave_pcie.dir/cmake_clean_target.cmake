file(REMOVE_RECURSE
  "libwave_pcie.a"
)
