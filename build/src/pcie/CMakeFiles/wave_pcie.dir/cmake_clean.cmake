file(REMOVE_RECURSE
  "CMakeFiles/wave_pcie.dir/dma.cc.o"
  "CMakeFiles/wave_pcie.dir/dma.cc.o.d"
  "CMakeFiles/wave_pcie.dir/mmio.cc.o"
  "CMakeFiles/wave_pcie.dir/mmio.cc.o.d"
  "CMakeFiles/wave_pcie.dir/msix.cc.o"
  "CMakeFiles/wave_pcie.dir/msix.cc.o.d"
  "libwave_pcie.a"
  "libwave_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
