# Empty dependencies file for wave_pcie.
# This may be replaced when dependencies are built.
