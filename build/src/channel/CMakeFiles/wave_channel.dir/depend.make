# Empty dependencies file for wave_channel.
# This may be replaced when dependencies are built.
