file(REMOVE_RECURSE
  "CMakeFiles/wave_channel.dir/dma_queue.cc.o"
  "CMakeFiles/wave_channel.dir/dma_queue.cc.o.d"
  "CMakeFiles/wave_channel.dir/mmio_queue.cc.o"
  "CMakeFiles/wave_channel.dir/mmio_queue.cc.o.d"
  "libwave_channel.a"
  "libwave_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
