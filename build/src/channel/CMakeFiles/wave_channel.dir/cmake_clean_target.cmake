file(REMOVE_RECURSE
  "libwave_channel.a"
)
