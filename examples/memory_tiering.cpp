/**
 * @file
 * Example: ML-based memory tiering with the SOL policy on the
 * SmartNIC (§4.2, §7.4).
 *
 * A 2 GiB address space with a 25% hot set is managed by a SOL agent
 * running on 8 SmartNIC ARM cores. Access bits flow to the NIC over
 * DMA; page-migration decisions flow back and are applied through the
 * madvise path. Watch the fast-tier footprint shrink epoch by epoch
 * while the host keeps all of its cores.
 *
 * Build & run:  ./build/examples/memory_tiering
 */
#include <cstdio>

#include "machine/machine.h"
#include "pcie/dma.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sol/agent.h"

using namespace wave;

namespace {

constexpr std::size_t kPages = 524'288;  // 2 GiB
constexpr std::size_t kHotPages = kPages / 4;

/** Background workload touching mostly the hot quarter. */
sim::Task<>
TouchLoop(sim::Simulator& sim, memmgr::AddressSpace& space)
{
    sim::Rng rng(99);
    for (;;) {
        for (int i = 0; i < 4096; ++i) {
            const std::size_t page =
                rng.NextBernoulli(0.97)
                    ? rng.NextBounded(kHotPages)
                    : kHotPages + rng.NextBounded(kPages - kHotPages);
            space.Touch(page);
        }
        co_await sim.Delay(50'000'000);  // every 50 ms
    }
}

}  // namespace

int
main()
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    memmgr::AddressSpace space(kPages);

    // The SOL agent runs on 8 SmartNIC cores; transfers use the DMA
    // engine (high throughput, latency tolerant — §4.2).
    sol::SolDeployment deployment;
    for (int i = 0; i < 8; ++i) {
        deployment.cpus.push_back(&machine.NicCpu(i));
    }
    pcie::DmaEngine dma(sim, pcie::PcieConfig{});
    deployment.dma = &dma;
    sol::SolAgent agent(sim, space, deployment);

    sim.Spawn(TouchLoop(sim, space));
    const sim::DurationNs epoch = agent.Policy().EpochNs();
    sim.Spawn([](sol::SolAgent& a, sim::TimeNs until) -> sim::Task<> {
        co_await a.RunUntil(until);
    }(agent, sim::TimeNs{3 * epoch + epoch / 2}));

    std::printf("%-16s %16s %14s %12s\n", "time", "fast tier (MiB)",
                "iterations", "migrated");
    for (int step = 0; step <= 7; ++step) {
        sim.RunUntil(sim::TimeNs{step * epoch / 2});
        std::printf("%13.1f s  %15zu %14llu %12llu\n",
                    sim::ToSec(sim.Now()),
                    space.FastTierBytes() >> 20,
                    static_cast<unsigned long long>(
                        agent.Stats().iterations),
                    static_cast<unsigned long long>(
                        agent.Stats().pages_migrated));
    }

    std::printf("\nlast iteration took %.0f ms on 8 ARM cores "
                "(16 host cores stayed free)\n",
                sim::ToMs(agent.Stats().last_iteration_ns));
    return 0;
}
