/**
 * @file
 * Quickstart: offload a FIFO thread scheduler to the SmartNIC with
 * Wave, end to end, in ~80 lines.
 *
 * This walks the Figure 2 decision lifetime:
 *   1. build the simulated machine (host cores + SmartNIC cores),
 *   2. create the Wave runtime and a PCIe scheduling transport,
 *   3. start the ghOSt kernel scheduling class on two host cores,
 *   4. run a FIFO policy in an agent on a SmartNIC core,
 *   5. add a few threads and watch them get scheduled across PCIe.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sched/fifo.h"
#include "sim/simulator.h"
#include "wave/runtime.h"

using namespace wave;

/** A thread that does 5 us of work each time it is scheduled. */
class Worker : public ghost::ThreadBody {
  public:
    explicit Worker(int id) : id_(id) {}

    sim::Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        sim::DurationNs remaining = 5'000;
        while (remaining > 0) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(remaining);
            remaining -= std::min(ran, remaining);
            if (remaining > 0) co_return ghost::RunStop::kPreempted;
        }
        std::printf("[%9.3f us] worker %d finished a request on %s\n",
                    sim::ToUs(ctx.sim.Now()), id_, ctx.cpu.Name().c_str());
        co_return ghost::RunStop::kBlocked;
    }

  private:
    int id_;
};

int
main()
{
    // 1. The simulated testbed: an AMD-style host and a Mount
    //    Evans-style SmartNIC, connected by PCIe (Table 2 latencies).
    sim::Simulator sim;
    machine::Machine machine(sim);

    // 2. The Wave runtime with all §5 optimizations enabled, and a
    //    scheduling transport serving two host cores: one message
    //    queue, per-core MMIO decision/outcome queues, MSI-X vectors.
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    ghost::WaveSchedTransport transport(runtime, /*cores=*/2);

    // 3. The ghOSt scheduling class in the host kernel: it forwards
    //    thread events to the agent and enforces its decisions.
    ghost::KernelSched kernel(sim, machine, transport);

    // 4. A FIFO policy inside a Wave agent on SmartNIC core 0
    //    (START_WAVE_AGENT).
    auto policy = std::make_shared<sched::FifoPolicy>();
    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = {0, 1};
    auto agent = std::make_shared<ghost::GhostAgent>(transport, policy,
                                                     agent_cfg);
    runtime.StartWaveAgent(agent, /*nic_core=*/0);

    // 5. Threads. Each create/block/wake event crosses PCIe as a Wave
    //    message; each placement comes back as a Wave transaction.
    for (int tid = 1; tid <= 6; ++tid) {
        kernel.AddThread(tid, std::make_shared<Worker>(tid));
    }
    kernel.Start({0, 1});

    sim.RunFor(1'000'000);  // 1 ms of simulated time

    std::printf("\ncommits: %llu ok, %llu failed | messages: %llu | "
                "agent decisions: %llu (%llu prestaged)\n",
                static_cast<unsigned long long>(kernel.Stats().commits_ok),
                static_cast<unsigned long long>(
                    kernel.Stats().commits_failed),
                static_cast<unsigned long long>(
                    kernel.Stats().messages_sent),
                static_cast<unsigned long long>(agent->Stats().decisions),
                static_cast<unsigned long long>(agent->Stats().prestages));
    return 0;
}
