/**
 * @file
 * Example: scheduler-RPC synergy on the SmartNIC (§7.3).
 *
 * Runs the full RPC pipeline — protocol processing, SLO-aware
 * steering, ghOSt-scheduled workers, response path — under the three
 * placements of Figure 6 and prints where each saturates. The point
 * the paper makes: offloading the RPC stack *without* the scheduler
 * (OnHost-Scheduler) is the worst of both worlds, because every
 * steering decision crosses PCIe.
 *
 * Build & run:  ./build/examples/rpc_steering
 */
#include <cstdio>

#include "rpc/rpc_experiment.h"

using namespace wave;
using rpc::RpcExperimentConfig;
using rpc::RpcScenario;

int
main()
{
    struct Row {
        const char* name;
        RpcScenario scenario;
        int rocksdb_cores;
        const char* freed;
    };
    const Row rows[] = {
        {"OnHost-All (RPC 8c + sched 1c + RocksDB 15c)",
         RpcScenario::kOnHostAll, 15, "0"},
        {"OnHost-Scheduler (RPC on NIC, sched on host)",
         RpcScenario::kOnHostScheduler, 15, "8"},
        {"Offload-All (RPC + sched on NIC, RocksDB 16c)",
         RpcScenario::kOffloadAll, 16, "9"},
    };

    std::printf("Multi-queue Shinjuku with per-RPC SLOs, "
                "99.5%% GET / 0.5%% RANGE\n\n");
    std::printf("%-46s %10s %12s\n", "scenario", "saturation",
                "cores freed");
    for (const Row& row : rows) {
        RpcExperimentConfig cfg;
        cfg.scenario = row.scenario;
        cfg.multi_queue = true;
        cfg.rocksdb_cores = row.rocksdb_cores;
        cfg.warmup_ns = 50'000'000;
        cfg.measure_ns = 200'000'000;
        const double sat = rpc::FindRpcSaturation(cfg, 60'000, 260'000,
                                                  20'000, 200'000);
        std::printf("%-46s %9.0fk %12s\n", row.name, sat / 1e3,
                    row.freed);
    }

    std::printf("\nCo-locating steering with scheduling on the NIC keeps\n"
                "the SLO visible for free; splitting them puts 8 MMIO\n"
                "loads on every steering decision.\n");
    return 0;
}
