/**
 * @file
 * Example: tickless VM scheduling and the turbo dividend (§7.2.4).
 *
 * One busy vCPU on a mostly idle socket: the on-host scheduler needs
 * 1 ms ticks on every core (keeping idle cores in shallow sleep), the
 * Wave scheduler on the SmartNIC needs none. This example prints the
 * busy vCPU's attained work under both and the resulting boost.
 *
 * Build & run:  ./build/examples/vm_turbo
 */
#include <cstdio>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "machine/turbo.h"
#include "sched/vm_policy.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "workload/busy_loop.h"

using namespace wave;

namespace {

double
RunTrial(bool ticks)
{
    sim::Simulator sim;
    machine::MachineConfig mc;
    mc.host_cores = 17;  // 16 VM cores + 1 for a possible host agent
    machine::Machine machine(sim, mc);

    machine::TurboModel turbo;
    const machine::FreqGhz freq =
        turbo.Frequency(/*active=*/1, /*idle_cores_deep=*/!ticks);
    machine.HostDomain().SetSpeed(freq.RatioTo(machine::kReferenceFreq));

    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    std::unique_ptr<ghost::SchedTransport> transport;
    if (ticks) {
        transport = std::make_unique<ghost::ShmSchedTransport>(sim, 16);
    } else {
        transport =
            std::make_unique<ghost::WaveSchedTransport>(runtime, 16);
    }
    ghost::KernelOptions options;
    options.timer_ticks = ticks;
    ghost::KernelSched kernel(sim, machine, *transport,
                              ghost::GhostCosts{}, options);

    auto policy = std::make_shared<sched::VmPolicy>();
    ghost::AgentConfig cfg;
    for (int c = 0; c < 16; ++c) cfg.cores.push_back(c);
    cfg.prestage = false;
    auto agent =
        std::make_shared<ghost::GhostAgent>(*transport, policy, cfg);
    std::unique_ptr<AgentContext> host_ctx;
    if (ticks) {
        host_ctx = std::make_unique<AgentContext>(sim, machine.HostCpu(16));
        sim.Spawn(agent->Run(*host_ctx));
    } else {
        runtime.StartWaveAgent(agent, 0);
    }

    // One busy vCPU on core 0; idle vCPUs pinned everywhere else.
    auto busy = std::make_shared<workload::BusyLoopBody>();
    policy->PinVcpu(100, 0);
    kernel.AddThread(100, busy);
    for (int c = 1; c < 16; ++c) {
        policy->PinVcpu(100 + c, c);
        kernel.AddThread(100 + c,
                         std::make_shared<workload::IdleVcpuBody>());
    }
    std::vector<int> cores;
    for (int c = 0; c < 16; ++c) cores.push_back(c);
    kernel.Start(cores);

    sim.RunFor(100'000'000);  // 100 ms
    return sim::ToSec(busy->BusyNs()) * freq.ghz();  // GHz-seconds of work
}

}  // namespace

int
main()
{
    const double with_ticks = RunTrial(/*ticks=*/true);
    const double no_ticks = RunTrial(/*ticks=*/false);
    std::printf("busy vCPU work in 100 ms:\n");
    std::printf("  on-host ghOSt (1 ms ticks, shallow idle): %.4f GHz-s\n",
                with_ticks);
    std::printf("  Wave on SmartNIC (tickless, deep idle):   %.4f GHz-s\n",
                no_ticks);
    std::printf("  improvement: %+.1f%%  (paper Fig 5b: +11.2%%)\n",
                (no_ticks / with_ticks - 1.0) * 100.0);
    return 0;
}
