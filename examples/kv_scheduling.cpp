/**
 * @file
 * Example: the paper's flagship scenario — a RocksDB-style key-value
 * service scheduled by Wave vs on-host ghOSt (§7.2).
 *
 * Runs the same Shinjuku policy (30 us preemption) over both
 * transports at one load point and prints the apples-to-apples
 * comparison: same worker cores, only the agent placement differs.
 *
 * Build & run:  ./build/examples/kv_scheduling [offered_krps]
 */
#include <cstdio>
#include <cstdlib>

#include "workload/sched_experiment.h"

using namespace wave;
using workload::Deployment;
using workload::SchedExperimentConfig;

int
main(int argc, char** argv)
{
    double offered_krps = 150.0;
    if (argc > 1) offered_krps = std::atof(argv[1]);

    std::printf("KV service, 99.5%% 10us GET + 0.5%% 10ms RANGE at "
                "%.0fk req/s\n\n",
                offered_krps);
    std::printf("%-22s %10s %10s %10s %12s\n", "deployment", "achieved",
                "GET p50", "GET p99", "preemptions");

    for (Deployment deployment : {Deployment::kOnHost, Deployment::kWave}) {
        SchedExperimentConfig cfg;
        cfg.deployment = deployment;
        cfg.policy = workload::PolicyKind::kShinjuku;
        cfg.get_fraction = 0.995;
        cfg.worker_cores = 15;  // apples-to-apples: same worker cores
        cfg.num_workers = 64;
        cfg.offered_rps = offered_krps * 1e3;
        cfg.warmup_ns = 50'000'000;
        cfg.measure_ns = 200'000'000;
        const auto r = workload::RunSchedExperiment(cfg);
        std::printf("%-22s %9.0fk %8.1fus %8.1fus %12llu\n",
                    deployment == Deployment::kWave
                        ? "Wave (SmartNIC agent)"
                        : "on-host ghOSt",
                    r.achieved_rps / 1e3, sim::ToUs(r.get_p50), sim::ToUs(r.get_p99),
                    static_cast<unsigned long long>(r.preemptions));
    }

    std::printf("\nThe Wave deployment frees the host core the on-host\n"
                "agent occupied; rerun the Figure 4 benches to see the\n"
                "full throughput-latency curves.\n");
    return 0;
}
