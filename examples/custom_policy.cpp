/**
 * @file
 * Example: writing your own scheduling policy against the public API.
 *
 * Wave's pitch (§2.3, §6) is that policies are ordinary userspace
 * logic: implement ghost::SchedPolicy and the same code runs on-host
 * or on the SmartNIC. This example builds a two-level strict-priority
 * policy from scratch (~60 lines), offloads it, and shows
 * high-priority threads cutting ahead of a low-priority backlog.
 *
 * Build & run:  ./build/examples/custom_policy
 */
#include <cstdio>
#include <deque>
#include <unordered_set>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "wave/runtime.h"

using namespace wave;

namespace {

/** Strict two-level priority scheduling: high runs before low, always. */
class PriorityPolicy : public ghost::SchedPolicy {
  public:
    std::string Name() const override { return "two-level-priority"; }

    /** Marks a thread high priority (call before it becomes runnable). */
    void MarkHigh(ghost::Tid tid) { high_.insert(tid); }

    void
    OnMessage(const ghost::GhostMessage& message) override
    {
        switch (message.type) {
          case ghost::MsgType::kThreadCreated:
          case ghost::MsgType::kThreadWakeup:
          case ghost::MsgType::kThreadYield:
          case ghost::MsgType::kThreadPreempted:
            Enqueue(message.tid);
            break;
          case ghost::MsgType::kThreadDead:
            dead_.insert(message.tid);
            break;
          case ghost::MsgType::kThreadBlocked:
            break;
        }
    }

    std::optional<ghost::GhostDecision>
    PickNext(int core, sim::TimeNs) override
    {
        for (auto* queue : {&high_queue_, &low_queue_}) {
            while (!queue->empty()) {
                const ghost::Tid tid = queue->front();
                queue->pop_front();
                queued_.erase(tid);
                if (dead_.count(tid)) continue;
                ghost::GhostDecision d{};
                d.type = ghost::DecisionType::kRunThread;
                d.tid = tid;
                d.core = core;
                return d;
            }
        }
        return std::nullopt;
    }

    void
    OnDecisionFailed(const ghost::GhostDecision& d) override
    {
        Enqueue(d.tid);
    }

    std::size_t
    RunQueueDepth() const override
    {
        return high_queue_.size() + low_queue_.size();
    }

  private:
    void
    Enqueue(ghost::Tid tid)
    {
        if (dead_.count(tid) || queued_.count(tid)) return;
        (high_.count(tid) ? high_queue_ : low_queue_).push_back(tid);
        queued_.insert(tid);
    }

    std::deque<ghost::Tid> high_queue_;
    std::deque<ghost::Tid> low_queue_;
    std::unordered_set<ghost::Tid> high_;
    std::unordered_set<ghost::Tid> queued_;
    std::unordered_set<ghost::Tid> dead_;
};

/** 20 us of work, then exit; records its completion time. */
class OneShot : public ghost::ThreadBody {
  public:
    explicit OneShot(sim::TimeNs& done_at) : done_at_(done_at) {}

    sim::Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        co_await ctx.interrupt.SleepInterruptible(20'000);
        done_at_ = ctx.sim.Now();
        co_return ghost::RunStop::kExited;
    }

  private:
    sim::TimeNs& done_at_;
};

}  // namespace

int
main()
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    ghost::WaveSchedTransport transport(runtime, /*cores=*/1);
    ghost::KernelSched kernel(sim, machine, transport);

    auto policy = std::make_shared<PriorityPolicy>();
    ghost::AgentConfig cfg;
    cfg.cores = {0};
    auto agent = std::make_shared<ghost::GhostAgent>(transport, policy,
                                                     cfg);
    runtime.StartWaveAgent(agent, 0);

    // 8 low-priority threads arrive first; one high-priority straggler
    // arrives last but must finish near the front of the line.
    sim::TimeNs done[16] = {};
    for (ghost::Tid tid = 1; tid <= 8; ++tid) {
        kernel.AddThread(tid, std::make_shared<OneShot>(done[tid]));
    }
    policy->MarkHigh(9);
    kernel.AddThread(9, std::make_shared<OneShot>(done[9]));
    kernel.Start({0});
    sim.RunFor(2'000'000);

    std::printf("completion times on one core (20 us each):\n");
    for (ghost::Tid tid = 1; tid <= 9; ++tid) {
        std::printf("  tid %d (%s): %7.1f us\n", tid,
                    tid == 9 ? "HIGH" : "low ", sim::ToUs(done[tid]));
    }
    int finished_before_high = 0;
    for (ghost::Tid tid = 1; tid <= 8; ++tid) {
        finished_before_high += done[tid] < done[9];
    }
    std::printf("\nlow-priority threads that beat the high-priority one: "
                "%d (arrival order would make it 8)\n",
                finished_before_high);
    return 0;
}
