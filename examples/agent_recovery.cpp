/**
 * @file
 * Example: fault recovery — the watchdog kills a wedged SmartNIC agent
 * and a replacement takes over (§3.3, §6 "Keep Fault Recovery Simple").
 *
 * The host kernel is the source of truth for thread state, so the
 * replacement agent needs no checkpoint: it re-learns the world from
 * the kernel's messages and scheduling resumes.
 *
 * Build & run:  ./build/examples/agent_recovery
 */
#include <cstdio>

#include "ghost/agent.h"
#include "ghost/kernel.h"
#include "ghost/transport.h"
#include "machine/machine.h"
#include "sched/fifo.h"
#include "sim/simulator.h"
#include "wave/runtime.h"
#include "wave/watchdog.h"

using namespace wave;
using namespace sim::time_literals;

namespace {

/** Worker that reports completions. */
class Worker : public ghost::ThreadBody {
  public:
    explicit Worker(int& completions) : completions_(completions) {}

    sim::Task<ghost::RunStop>
    Run(ghost::RunContext& ctx) override
    {
        sim::DurationNs remaining = 10'000;
        while (remaining > 0) {
            const auto ran =
                co_await ctx.interrupt.SleepInterruptible(remaining);
            remaining -= std::min(ran, remaining);
            if (remaining > 0) co_return ghost::RunStop::kPreempted;
        }
        ++completions_;
        co_return ghost::RunStop::kYielded;  // stay runnable forever
    }

  private:
    int& completions_;
};

}  // namespace

int
main()
{
    sim::Simulator sim;
    machine::Machine machine(sim);
    WaveRuntime runtime(sim, machine, pcie::PcieConfig{},
                        api::OptimizationConfig::Full());
    ghost::WaveSchedTransport transport(runtime, 2);
    ghost::KernelSched kernel(sim, machine, transport);

    int completions = 0;
    for (ghost::Tid tid = 1; tid <= 8; ++tid) {
        kernel.AddThread(tid, std::make_shared<Worker>(completions));
    }

    ghost::AgentConfig agent_cfg;
    agent_cfg.cores = {0, 1};

    // Generation 1: a healthy agent that will be killed artificially
    // after 2 ms (simulating a wedge) by simply stopping it.
    auto policy1 = std::make_shared<sched::FifoPolicy>();
    auto agent1 = std::make_shared<ghost::GhostAgent>(transport, policy1,
                                                      agent_cfg);
    const AgentId gen1 = runtime.StartWaveAgent(agent1, 0);
    kernel.Start({0, 1});

    // The on-host watchdog: no decision for >20 ms -> kill + restart.
    Watchdog watchdog(sim, /*timeout=*/20_ms, /*check_interval=*/1_ms,
                      [&] {
                          std::printf("[%8.3f ms] watchdog fired: killing "
                                      "agent, starting replacement\n",
                                      sim::ToMs(sim.Now()));
                          runtime.KillWaveAgent(gen1);
                          auto policy2 =
                              std::make_shared<sched::FifoPolicy>();
                          auto agent2 =
                              std::make_shared<ghost::GhostAgent>(
                                  transport, policy2, agent_cfg);
                          runtime.StartWaveAgent(agent2, 1);
                          // Replacement re-pulls state: the kernel
                          // re-announces every runnable thread.
                          for (ghost::Tid tid = 1; tid <= 8; ++tid) {
                              kernel.WakeThread(tid);
                          }
                      });
    watchdog.Arm();

    // Feed the watchdog while decisions flow; "wedge" the agent at 2 ms
    // by killing it without telling the watchdog.
    sim.Spawn([](sim::Simulator& s, ghost::KernelSched& k,
                 Watchdog& dog) -> sim::Task<> {
        std::uint64_t last_commits = 0;
        for (;;) {
            co_await s.Delay(1_ms);
            if (k.Stats().commits_ok > last_commits) {
                last_commits = k.Stats().commits_ok;
                dog.NoteDecision();
            }
        }
    }(sim, kernel, watchdog));
    sim.Schedule(2_ms, [&] {
        std::printf("[%8.3f ms] agent wedges (no more decisions)\n",
                    sim::ToMs(sim.Now()));
        runtime.KillWaveAgent(gen1);
    });

    sim.RunFor(10_ms);
    const int before_recovery = completions;
    std::printf("[%8.3f ms] completions so far: %d (stalled)\n",
                sim::ToMs(sim.Now()), completions);

    sim.RunFor(50_ms);
    std::printf("[%8.3f ms] completions after recovery: %d\n",
                sim::ToMs(sim.Now()), completions);
    std::printf("\nrecovered: %s (watchdog expired: %s)\n",
                completions > before_recovery ? "yes" : "no",
                watchdog.Expired() ? "yes" : "no");
    return 0;
}
