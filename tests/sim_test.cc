/**
 * @file
 * Unit tests for the discrete-event simulation kernel: event ordering,
 * coroutine tasks, synchronization primitives, and RNG distributions.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace wave::sim {
namespace {

using namespace time_literals;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.Now().ns(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.Schedule(30, [&] { order.push_back(3); });
    sim.Schedule(10, [&] { order.push_back(1); });
    sim.Schedule(20, [&] { order.push_back(2); });
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.Now().ns(), 30u);
}

TEST(Simulator, EqualTimestampsRunInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.Schedule(5, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    std::vector<int> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    sim.Schedule(1, [&] {
        ++fired;
        sim.Schedule(1, [&] { ++fired; });
    });
    sim.Run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.Now().ns(), 2u);
}

TEST(Simulator, RunForAdvancesClockExactly)
{
    Simulator sim;
    bool ran = false;
    sim.Schedule(100, [&] { ran = true; });
    sim.Schedule(5000, [&] { FAIL() << "should not run"; });
    EXPECT_EQ(sim.RunFor(1000).ns(), 1000u);
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.Now().ns(), 1000u);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents)
{
    Simulator sim;
    bool boundary = false;
    sim.Schedule(100, [&] { boundary = true; });
    sim.RunUntil(TimeNs{100});
    EXPECT_TRUE(boundary);
}

TEST(Simulator, OrderingHoldsAcrossWheelHorizons)
{
    // Delays spanning the event queue's tiers — within the current
    // 4096 ns wheel page, a few pages out (far ring), and beyond the
    // ~16.8 ms far horizon (overflow) — must run in strict timestamp
    // order regardless of insertion order.
    Simulator sim;
    std::vector<std::uint64_t> ran;
    const std::uint64_t delays[] = {40'000'000, 5,     20'000'000, 4'096,
                                    17'000'000, 100,   8'191,      1'000'000,
                                    0,          4'095, 16'777'216};
    for (std::uint64_t d : delays) {
        sim.Schedule(d, [&ran, d] { ran.push_back(d); });
    }
    sim.Run();
    std::vector<std::uint64_t> expect(std::begin(delays),
                                      std::end(delays));
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(ran, expect);
}

TEST(Simulator, KeyedOrderingHoldsAfterPageMigration)
{
    // Keyed events at one far-future timestamp run in key order (with
    // unkeyed events last) even though they reach the current wheel
    // page by migration, in whatever order the far tier held them.
    Simulator sim;
    std::vector<std::uint64_t> ran;
    sim.Schedule(1'000'000, [&ran] { ran.push_back(100); });
    for (std::uint64_t key : {7ull, 3ull, 9ull, 1ull, 5ull}) {
        sim.ScheduleKeyed(1'000'000, key,
                          [&ran, key] { ran.push_back(key); });
    }
    sim.Run();
    EXPECT_EQ(ran, (std::vector<std::uint64_t>{1, 3, 5, 7, 9, 100}));
}

TEST(Simulator, EventsScheduledIntoAnIdleGapRunFirst)
{
    // RunUntil peeking past an idle gap rotates the event queue toward
    // the then-minimum event. A later Schedule into the gap must still
    // run first — both within the current 4096 ns wheel page (scan
    // cursor rollback) and on an earlier page (rewind).
    Simulator sim;
    std::vector<int> order;
    sim.Schedule(10, [&] { order.push_back(1); });
    sim.Schedule(3'000, [&] { order.push_back(3); });        // same page
    sim.Schedule(10'000'000, [&] { order.push_back(5); });   // far page
    sim.RunUntil(TimeNs{100});
    EXPECT_EQ(sim.Now().ns(), 100u);
    sim.Schedule(100, [&] { order.push_back(2); });  // t=200 < 3000
    sim.RunUntil(TimeNs{5'000});
    EXPECT_EQ(sim.Now().ns(), 5'000u);
    sim.Schedule(1'000, [&] { order.push_back(4); });  // t=6000 < 10 ms
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(sim.Now().ns(), 10'000'000u);
}

TEST(Simulator, StopDuringRunForLeavesClockAtStoppingEvent)
{
    // Pinned semantics: Stop() inside a RunFor window returns with the
    // clock at the stopping event's timestamp — the clock never
    // advances past an event the caller asked to stop on — and the
    // return value reports that time, not the window end.
    Simulator sim;
    std::vector<std::uint64_t> ran;
    sim.Schedule(100, [&] { ran.push_back(100); });
    sim.Schedule(250, [&] {
        ran.push_back(250);
        sim.Stop();
    });
    sim.Schedule(400, [&] { ran.push_back(400); });
    sim.Schedule(900, [&] { ran.push_back(900); });

    EXPECT_EQ(sim.RunFor(500).ns(), 250u);
    EXPECT_EQ(sim.Now().ns(), 250u);
    EXPECT_EQ(ran, (std::vector<std::uint64_t>{100, 250}));

    // Re-entering clears the stop flag and resumes from the stop time:
    // the event at 400 still runs, and this window's end is measured
    // from the stop point (250 + 500 = 750), past 400 but short of 900.
    EXPECT_EQ(sim.RunFor(500).ns(), 750u);
    EXPECT_EQ(ran, (std::vector<std::uint64_t>{100, 250, 400}));

    sim.Run();
    EXPECT_EQ(ran, (std::vector<std::uint64_t>{100, 250, 400, 900}));
    EXPECT_EQ(sim.Now().ns(), 900u);
}

TEST(Simulator, StopHaltsRun)
{
    Simulator sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i) {
        sim.Schedule(i, [&] {
            ++count;
            if (count == 3) sim.Stop();
        });
    }
    sim.Run();
    EXPECT_EQ(count, 3);
}

Task<>
DelayProcess(Simulator& sim, std::vector<TimeNs>& stamps)
{
    stamps.push_back(sim.Now());
    co_await sim.Delay(10_us);
    stamps.push_back(sim.Now());
    co_await sim.Delay(5_us);
    stamps.push_back(sim.Now());
}

TEST(Coroutines, DelayAdvancesTime)
{
    Simulator sim;
    std::vector<TimeNs> stamps;
    sim.Spawn(DelayProcess(sim, stamps));
    sim.Run();
    ASSERT_EQ(stamps.size(), 3u);
    EXPECT_EQ(stamps[0].ns(), 0u);
    EXPECT_EQ(stamps[1].ns(), 10'000u);
    EXPECT_EQ(stamps[2].ns(), 15'000u);
}

Task<int>
Compute(Simulator& sim, int x)
{
    co_await sim.Delay(100);
    co_return x * 2;
}

Task<>
NestedProcess(Simulator& sim, int& out)
{
    out = co_await Compute(sim, 21);
}

TEST(Coroutines, NestedTasksComposeAndReturnValues)
{
    Simulator sim;
    int out = 0;
    sim.Spawn(NestedProcess(sim, out));
    sim.Run();
    EXPECT_EQ(out, 42);
    EXPECT_EQ(sim.Now().ns(), 100u);
}

Task<>
DeepChain(Simulator& sim, int depth, int& leaf_count)
{
    if (depth == 0) {
        ++leaf_count;
        co_return;
    }
    co_await DeepChain(sim, depth - 1, leaf_count);
}

// Sanitizer instrumentation keeps stack frames alive across what would
// be symmetric-transfer tail calls (sibling-call optimization is
// disabled), so under ASan/TSan the native stack grows linearly with
// chain depth and the full-depth run would overflow by construction,
// not because of a Task bug. Keep enough depth to catch recursive
// resume regressions while fitting the instrumented stack.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kDeepChainDepth = 5'000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int kDeepChainDepth = 5'000;
#else
constexpr int kDeepChainDepth = 100'000;
#endif
#else
constexpr int kDeepChainDepth = 100'000;
#endif

TEST(Coroutines, DeepTaskChainsDoNotOverflowStack)
{
    Simulator sim;
    int leaves = 0;
    sim.Spawn(DeepChain(sim, kDeepChainDepth, leaves));
    sim.Run();
    EXPECT_EQ(leaves, 1);
}

Task<>
InfiniteLoop(Simulator& sim, int& iterations)
{
    for (;;) {
        co_await sim.Delay(1_ms);
        ++iterations;
    }
}

TEST(Coroutines, InfiniteProcessesAreDestroyedAtTeardown)
{
    int iterations = 0;
    {
        Simulator sim;
        sim.Spawn(InfiniteLoop(sim, iterations));
        sim.RunFor(10_ms);
    }
    // 10 iterations ran; the suspended frame was torn down without leaking
    // (verified under ASan in CI-style runs) and without crashing here.
    EXPECT_EQ(iterations, 10);
}

Task<>
ImmediateProcess()
{
    co_return;
}

TEST(Coroutines, AdjacentDoneRootsAreReapedAcrossSpawns)
{
    Simulator sim;
    for (int i = 0; i < 3; ++i) sim.Spawn(ImmediateProcess());
    sim.Run();
    // All three root frames are done but unreaped: the periodic sweep
    // only fires every few thousand events.
    EXPECT_EQ(sim.RootCount(), 3u);

    // A spawn's two-slot reap budget counts distinct slots examined,
    // not erases: removing a done root shifts its successor into the
    // same slot, where it is examined for free. One spawn therefore
    // clears the whole adjacent run of three...
    std::vector<TimeNs> stamps;
    sim.Spawn(DelayProcess(sim, stamps));
    EXPECT_EQ(sim.RootCount(), 1u);

    // ...and after a second spawn only the two live (not yet resumed)
    // frames remain: three adjacent done roots never survive two
    // spawns.
    sim.Spawn(DelayProcess(sim, stamps));
    EXPECT_EQ(sim.RootCount(), 2u);

    sim.Run();
    EXPECT_EQ(stamps.size(), 6u);
}

TEST(Sync, SignalWakesWaitersInFifoOrder)
{
    Simulator sim;
    Signal signal(sim);
    std::vector<int> order;

    auto waiter = [](Simulator&, Signal& s, std::vector<int>& ord,
                     int id) -> Task<> {
        co_await s.Wait();
        ord.push_back(id);
    };
    for (int i = 0; i < 3; ++i) {
        sim.Spawn(waiter(sim, signal, order, i));
    }
    sim.RunFor(1);
    EXPECT_EQ(signal.WaiterCount(), 3u);
    signal.NotifyAll();
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Sync, NotifyOneWakesExactlyOne)
{
    Simulator sim;
    Signal signal(sim);
    int woken = 0;
    auto waiter = [](Signal& s, int& w) -> Task<> {
        co_await s.Wait();
        ++w;
    };
    sim.Spawn(waiter(signal, woken));
    sim.Spawn(waiter(signal, woken));
    sim.RunFor(1);
    signal.NotifyOne();
    sim.Run();
    EXPECT_EQ(woken, 1);
}

TEST(Sync, ChannelDeliversInFifoOrder)
{
    Simulator sim;
    Channel<int> chan(sim);
    std::vector<int> received;

    auto consumer = [](Channel<int>& c, std::vector<int>& out) -> Task<> {
        for (int i = 0; i < 3; ++i) {
            out.push_back(co_await c.Receive());
        }
    };
    sim.Spawn(consumer(chan, received));
    sim.RunFor(1);
    chan.Push(1);
    chan.Push(2);
    chan.Push(3);
    sim.Run();
    EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
}

TEST(Sync, ChannelReceiveBeforePushSuspends)
{
    Simulator sim;
    Channel<int> chan(sim);
    int got = 0;
    auto consumer = [](Simulator& s, Channel<int>& c, int& out) -> Task<> {
        out = co_await c.Receive();
        EXPECT_EQ(s.Now().ns(), 500u);
    };
    sim.Spawn(consumer(sim, chan, got));
    sim.Schedule(500, [&] { chan.Push(7); });
    sim.Run();
    EXPECT_EQ(got, 7);
}

TEST(Sync, ChannelTryReceive)
{
    Simulator sim;
    Channel<int> chan(sim);
    EXPECT_FALSE(chan.TryReceive().has_value());
    chan.Push(9);
    auto v = chan.TryReceive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
    EXPECT_TRUE(chan.Empty());
}

TEST(Sync, ResourceLimitsConcurrency)
{
    Simulator sim;
    Resource res(sim, 2);
    int peak = 0;
    int active = 0;

    auto user = [](Simulator& s, Resource& r, int& act, int& pk) -> Task<> {
        co_await r.Acquire();
        ++act;
        pk = std::max(pk, act);
        co_await s.Delay(100);
        --act;
        r.Release();
    };
    for (int i = 0; i < 6; ++i) {
        sim.Spawn(user(sim, res, active, peak));
    }
    sim.Run();
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(active, 0);
    // 6 users, 2 at a time, 100 ns each -> 3 rounds.
    EXPECT_EQ(sim.Now().ns(), 300u);
}

TEST(Sync, AwaitAllJoinsConcurrentTasks)
{
    Simulator sim;
    int done = 0;
    auto work = [](Simulator& s, DurationNs d, int& dn) -> Task<> {
        co_await s.Delay(d);
        ++dn;
    };
    auto parent = [](Simulator& s, int& dn,
                     decltype(work)& w) -> Task<> {
        std::vector<Task<>> tasks;
        tasks.push_back(w(s, 100, dn));
        tasks.push_back(w(s, 300, dn));
        tasks.push_back(w(s, 200, dn));
        co_await AwaitAll(s, std::move(tasks));
        EXPECT_EQ(dn, 3);
        // Concurrent, not sequential: ends at max, not sum.
        EXPECT_EQ(s.Now().ns(), 300u);
    };
    sim.Spawn(parent(sim, done, work));
    sim.Run();
    EXPECT_EQ(done, 3);
}

TEST(Rng, IsDeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Next(), b.Next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.Next() == b.Next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double v = rng.NextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextBoundedRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(rng.NextBounded(17), 17u);
    }
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(123);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        sum += rng.NextExponential(10.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, GaussianMomentsConverge)
{
    Rng rng(321);
    double sum = 0;
    double sum_sq = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.NextGaussian();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

// Property sweep: Beta(a, b) mean must converge to a / (a + b).
class BetaMeanTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaMeanTest, MeanMatchesAnalytic)
{
    const auto [alpha, beta] = GetParam();
    Rng rng(55);
    double sum = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.NextBeta(alpha, beta);
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, alpha / (alpha + beta), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BetaMeanTest,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{2.0, 5.0},
                      std::pair{5.0, 2.0}, std::pair{0.5, 0.5},
                      std::pair{10.0, 1.0}, std::pair{0.3, 2.0}));

// Property sweep: Zipf rank-0 probability matches 1 / H_{n,theta}.
class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, HeadProbabilityMatchesAnalytic)
{
    const double theta = GetParam();
    const std::size_t n = 1000;
    ZipfDistribution zipf(n, theta);
    Rng rng(77);
    double harmonic = 0;
    for (std::size_t r = 1; r <= n; ++r) {
        harmonic += 1.0 / std::pow(static_cast<double>(r), theta);
    }
    const double expected_head = 1.0 / harmonic;

    int head_hits = 0;
    const int samples = 200'000;
    for (int i = 0; i < samples; ++i) {
        const std::size_t rank = zipf.Sample(rng);
        ASSERT_LT(rank, n);
        if (rank == 0) ++head_hits;
    }
    EXPECT_NEAR(static_cast<double>(head_hits) / samples, expected_head,
                0.01);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.2));

TEST(Zipf, ZeroThetaIsUniform)
{
    ZipfDistribution zipf(10, 0.0);
    Rng rng(99);
    std::vector<int> counts(10, 0);
    const int samples = 100'000;
    for (int i = 0; i < samples; ++i) {
        ++counts[zipf.Sample(rng)];
    }
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / samples, 0.1, 0.01);
    }
}

}  // namespace
}  // namespace wave::sim

namespace wave::sim {
namespace {

class TraceTest : public ::testing::Test {
  protected:
    void SetUp() override { Trace::Reset(); }
    void TearDown() override { Trace::Reset(); }
};

TEST_F(TraceTest, CategoriesAreOffByDefault)
{
    EXPECT_FALSE(Trace::Enabled("queue"));
}

TEST_F(TraceTest, EnableDisableRoundTrip)
{
    Trace::Enable("queue");
    EXPECT_TRUE(Trace::Enabled("queue"));
    EXPECT_FALSE(Trace::Enabled("ghost"));
    Trace::Disable("queue");
    EXPECT_FALSE(Trace::Enabled("queue"));
}

TEST_F(TraceTest, AllEnablesEverything)
{
    Trace::Enable("all");
    EXPECT_TRUE(Trace::Enabled("anything"));
    Trace::Disable("all");
    EXPECT_FALSE(Trace::Enabled("anything"));
}

TEST_F(TraceTest, MacroShortCircuitsWhenDisabled)
{
    const auto before = Trace::EmittedCount();
    WAVE_TRACE_EVENT(nullptr, "off-category", "should not emit %d", 1);
    EXPECT_EQ(Trace::EmittedCount(), before);

    Trace::Enable("on-category");
    WAVE_TRACE_EVENT(nullptr, "on-category", "emits %d", 1);
    EXPECT_EQ(Trace::EmittedCount(), before + 1);
}

TEST_F(TraceTest, EmitsWithSimulatedTimestamp)
{
    Trace::Enable("t");
    Simulator sim;
    sim.Schedule(123, [&] {
        WAVE_TRACE_EVENT(&sim, "t", "at 123");
    });
    const auto before = Trace::EmittedCount();
    sim.Run();
    EXPECT_EQ(Trace::EmittedCount(), before + 1);
}

}  // namespace
}  // namespace wave::sim
