/**
 * @file
 * Unit tests for the histogram and table utilities.
 */
#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace wave::stats {
namespace {

TEST(Histogram, EmptyHistogramIsZero)
{
    Histogram h;
    EXPECT_EQ(h.Count(), 0u);
    EXPECT_EQ(h.Min(), 0u);
    EXPECT_EQ(h.Max(), 0u);
    EXPECT_EQ(h.Mean(), 0.0);
    EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 32; ++v) {
        h.Record(v);
    }
    EXPECT_EQ(h.Count(), 32u);
    EXPECT_EQ(h.Min(), 0u);
    EXPECT_EQ(h.Max(), 31u);
    EXPECT_EQ(h.Percentile(0.0), 0u);
    EXPECT_EQ(h.Percentile(1.0), 31u);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h;
    h.Record(10);
    h.Record(20);
    h.Record(30);
    EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(Histogram, PercentilesHaveBoundedRelativeError)
{
    Histogram h;
    // Uniform ramp 1..100000.
    for (std::uint64_t v = 1; v <= 100'000; ++v) {
        h.Record(v);
    }
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double expected = q * 100'000;
        const double got = static_cast<double>(h.Percentile(q));
        EXPECT_NEAR(got, expected, expected * 0.04)
            << "quantile " << q;
    }
}

TEST(Histogram, RecordManyEquivalentToRepeatedRecord)
{
    Histogram a;
    Histogram b;
    a.RecordMany(500, 10);
    for (int i = 0; i < 10; ++i) b.Record(500);
    EXPECT_EQ(a.Count(), b.Count());
    EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
    EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(Histogram, MergeCombinesSamples)
{
    Histogram a;
    Histogram b;
    a.Record(100);
    b.Record(200);
    b.Record(300);
    a.Merge(b);
    EXPECT_EQ(a.Count(), 3u);
    EXPECT_EQ(a.Min(), 100u);
    EXPECT_EQ(a.Max(), 300u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.Record(42);
    h.Reset();
    EXPECT_EQ(h.Count(), 0u);
    h.Record(7);
    EXPECT_EQ(h.Count(), 1u);
    EXPECT_EQ(h.Max(), 7u);
}

TEST(Histogram, HugeValuesDoNotOverflow)
{
    Histogram h;
    h.Record(1ull << 62);
    h.Record((1ull << 62) + 12345);
    EXPECT_EQ(h.Count(), 2u);
    const double rep = static_cast<double>(h.Percentile(0.5));
    const double expected = static_cast<double>(1ull << 62);
    EXPECT_NEAR(rep / expected, 1.0, 0.05);
}

TEST(Histogram, PercentileNeverFallsBelowMin)
{
    // 102 maps to a two-wide bucket whose midpoint representative (103)
    // differs from the sample; the low quantile used to report the raw
    // midpoint, which can sit outside the recorded range entirely.
    Histogram h;
    h.Record(102);
    EXPECT_EQ(h.Percentile(0.0), 102u);
    EXPECT_EQ(h.Percentile(0.5), 102u);
    for (double q : {0.0, 0.001, 0.25, 0.5, 0.99, 1.0}) {
        EXPECT_GE(h.Percentile(q), h.Min()) << "quantile " << q;
        EXPECT_LE(h.Percentile(q), h.Max()) << "quantile " << q;
    }
}

TEST(Histogram, TopPercentileIsExactMax)
{
    // 2'000'000 lands mid-bucket at this magnitude: the old midpoint
    // representative overshot the recorded maximum. q=1.0 must return
    // Max() exactly, and every quantile must stay within [Min(), Max()].
    Histogram h;
    h.Record(1'000'000);
    h.Record(2'000'000);
    EXPECT_EQ(h.Percentile(1.0), 2'000'000u);
    for (double q : {0.0, 0.5, 0.9, 0.999, 1.0}) {
        EXPECT_GE(h.Percentile(q), 1'000'000u) << "quantile " << q;
        EXPECT_LE(h.Percentile(q), 2'000'000u) << "quantile " << q;
    }
}

TEST(Histogram, PercentileStaysInRangeAcrossMagnitudes)
{
    // Sparse extreme samples: bucket midpoints at the top magnitude sit
    // well above max_ without clamping (width 2^57 at msb 62).
    Histogram h;
    h.Record(3);
    h.Record(1ull << 62);
    for (double q : {0.0, 0.4, 0.6, 1.0}) {
        EXPECT_GE(h.Percentile(q), 3u);
        EXPECT_LE(h.Percentile(q), 1ull << 62);
    }
    EXPECT_EQ(h.Percentile(1.0), 1ull << 62);
}

// Property sweep: representative value of the bucket containing v must be
// within the bucket's relative-error bound for magnitudes across the range.
class HistogramAccuracyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramAccuracyTest, RepresentativeWithinRelativeError)
{
    const std::uint64_t v = GetParam();
    Histogram h;
    h.Record(v);
    const double rep = static_cast<double>(h.Percentile(0.5));
    const double val = static_cast<double>(v);
    EXPECT_NEAR(rep / val, 1.0, 1.0 / 32 + 0.001) << "value " << v;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramAccuracyTest,
                         ::testing::Values(40ull, 1000ull, 750ull,
                                           10'000ull, 1'000'000ull,
                                           123'456'789ull,
                                           98'765'432'101ull));

// Reference implementation of the historical branchy bucket mapping.
// The branch-free BucketIndex must agree with it everywhere: the table
// layout (and with it BucketRepresentative, golden percentiles, and
// merged histograms) is frozen by this equivalence.
std::size_t
ReferenceBucketIndex(std::uint64_t value)
{
    constexpr int kBits = 5;
    constexpr std::uint64_t kSub = 1ull << kBits;
    if (value < kSub) return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kBits;
    const std::uint64_t sub = (value >> shift) & (kSub - 1);
    const std::size_t row = static_cast<std::size_t>(msb - kBits);
    return kSub + row * kSub + static_cast<std::size_t>(sub);
}

TEST(Histogram, BranchFreeBucketIndexMatchesReference)
{
    // Exhaustive over the exact range and the first two msb rows,
    // where the clamped shift/row terms change behavior.
    for (std::uint64_t v = 0; v < 4096; ++v) {
        ASSERT_EQ(Histogram::BucketIndex(v), ReferenceBucketIndex(v))
            << "value " << v;
    }
    // Power-of-two edges and their neighbors across all magnitudes.
    for (int msb = 5; msb < 64; ++msb) {
        const std::uint64_t base = 1ull << msb;
        for (std::uint64_t v :
             {base - 1, base, base + 1, base + (base >> 1),
              base + (base - 1)}) {
            ASSERT_EQ(Histogram::BucketIndex(v), ReferenceBucketIndex(v))
                << "value " << v;
        }
    }
    // A deterministic pseudo-random sweep across the full 64-bit range.
    std::uint64_t v = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 100'000; ++i) {
        v ^= v << 13;
        v ^= v >> 7;
        v ^= v << 17;
        ASSERT_EQ(Histogram::BucketIndex(v), ReferenceBucketIndex(v))
            << "value " << v;
    }
    EXPECT_EQ(Histogram::BucketIndex(~0ull), ReferenceBucketIndex(~0ull));
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"load", "p99 (us)"});
    t.AddRow({"100000", "12.5"});
    t.AddRow({"200000", "31.0"});
    const std::string out = t.ToString();
    EXPECT_NE(out.find("load"), std::string::npos);
    EXPECT_NE(out.find("12.5"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, FmtFormats)
{
    EXPECT_EQ(Table::Fmt("%.1f%%", 4.65), "4.7%");
    EXPECT_EQ(Table::Fmt("%d", 42), "42");
}

}  // namespace
}  // namespace wave::stats

namespace wave::stats {
namespace {

TEST(Summary, ExtractsThePercentileSet)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v * 100);
    const Summary s = Summary::From(h);
    EXPECT_EQ(s.count, 1000u);
    EXPECT_NEAR(static_cast<double>(s.p50), 50'000, 2'000);
    EXPECT_NEAR(static_cast<double>(s.p99), 99'000, 4'000);
    EXPECT_EQ(s.max, 100'000u);
    EXPECT_NEAR(s.mean, 50'050, 100);
}

TEST(Summary, FormatsReadably)
{
    Histogram h;
    h.Record(12'000);
    const std::string out = Summary::From(h).ToString();
    EXPECT_NE(out.find("n=1"), std::string::npos);
    EXPECT_NE(out.find("p99"), std::string::npos);
}

TEST(Summary, EmptyHistogramIsAllZero)
{
    const Summary s = Summary::From(Histogram{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p99, 0u);
}

}  // namespace
}  // namespace wave::stats
