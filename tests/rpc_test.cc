/**
 * @file
 * Tests for the RPC stack and the §7.3 experiment harness: protocol
 * processing costs, pipeline integrity (no lost requests), scenario
 * placement effects, and SLO-aware steering.
 */
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "rpc/rpc_experiment.h"
#include "rpc/rpc_stack.h"
#include "sim/simulator.h"

namespace wave::rpc {
namespace {

using sim::Simulator;
using workload::Request;
using namespace sim::time_literals;

TEST(RpcStack, ProcessesIncomingWithProtocolCost)
{
    Simulator sim;
    machine::ClockDomain domain(1.0);
    machine::Cpu cpu(sim, "rpc0", &domain);
    RpcStack stack(sim, {&cpu});
    stack.Start();

    Request request;
    request.id = 1;
    bool delivered = false;
    sim::TimeNs delivered_at{};
    stack.ProcessIncoming(request, [&](Request r) {
        EXPECT_EQ(r.id, 1u);
        delivered = true;
        delivered_at = sim.Now();
    });
    sim.RunFor(100_us);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(delivered_at, sim::TimeNs{RpcCosts{}.request_process_ns});
}

TEST(RpcStack, ResponsePathCostsLess)
{
    Simulator sim;
    machine::ClockDomain domain(1.0);
    machine::Cpu cpu(sim, "rpc0", &domain);
    RpcStack stack(sim, {&cpu});
    stack.Start();

    bool sent = false;
    sim::TimeNs sent_at{};
    stack.ProcessResponse(Request{}, [&](Request) {
        sent = true;
        sent_at = sim.Now();
    });
    sim.RunFor(100_us);
    EXPECT_TRUE(sent);
    EXPECT_EQ(sent_at, sim::TimeNs{RpcCosts{}.response_process_ns});
}

TEST(RpcStack, NicCoresProcessSlower)
{
    Simulator sim;
    machine::Machine machine(sim);
    RpcStack host_stack(sim, {&machine.HostCpu(0)});
    RpcStack nic_stack(sim, {&machine.NicCpu(0)});
    host_stack.Start();
    nic_stack.Start();

    sim::TimeNs host_done{};
    sim::TimeNs nic_done{};
    host_stack.ProcessIncoming(Request{}, [&](Request) {
        host_done = sim.Now();
    });
    nic_stack.ProcessIncoming(Request{}, [&](Request) {
        nic_done = sim.Now();
    });
    sim.RunFor(1_ms);
    EXPECT_GT(nic_done, host_done) << "ARM cores are slower per RPC";
}

class ScenarioTest : public ::testing::TestWithParam<RpcScenario> {};

TEST_P(ScenarioTest, PipelineCompletesAllRequestsAtLightLoad)
{
    RpcExperimentConfig cfg;
    cfg.scenario = GetParam();
    cfg.rocksdb_cores = 8;
    cfg.num_workers = 32;
    cfg.offered_rps = 30'000;
    cfg.get_fraction = 1.0;  // GETs only for a deterministic check
    cfg.warmup_ns = 10_ms;
    cfg.measure_ns = 100_ms;
    auto r = RunRpcExperiment(cfg);
    EXPECT_NEAR(r.achieved_rps, 30'000, 2'000)
        << "no requests may be lost in the pipeline";
    EXPECT_LT(r.get_p50, 40'000u);
}

TEST_P(ScenarioTest, MixedWorkloadPreempts)
{
    RpcExperimentConfig cfg;
    cfg.scenario = GetParam();
    cfg.rocksdb_cores = 8;
    cfg.num_workers = 48;
    cfg.offered_rps = 60'000;
    cfg.warmup_ns = 20_ms;
    cfg.measure_ns = 150_ms;
    auto r = RunRpcExperiment(cfg);
    EXPECT_GT(r.preemptions, 100u)
        << "RANGEs must be preempted at the 30 us slice";
    // GET tail stays bounded because of preemption.
    EXPECT_LT(r.get_p99, 2'000'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioTest,
    ::testing::Values(RpcScenario::kOnHostAll,
                      RpcScenario::kOnHostScheduler,
                      RpcScenario::kOffloadAll),
    [](const ::testing::TestParamInfo<RpcScenario>& param_info) {
        switch (param_info.param) {
          case RpcScenario::kOnHostAll: return "OnHostAll";
          case RpcScenario::kOnHostScheduler: return "OnHostScheduler";
          default: return "OffloadAll";
        }
    });

TEST(RpcScenarios, OnHostSchedulerSaturatesLowest)
{
    // The defining Figure 6 shape: splitting the RPC stack from the
    // scheduler across PCIe caps throughput well below the other two.
    auto run_at = [](RpcScenario scenario, double rps) {
        RpcExperimentConfig cfg;
        cfg.scenario = scenario;
        cfg.rocksdb_cores = scenario == RpcScenario::kOffloadAll ? 16 : 15;
        cfg.offered_rps = rps;
        cfg.warmup_ns = 30_ms;
        cfg.measure_ns = 120_ms;
        return RunRpcExperiment(cfg);
    };
    const double rps = 170'000;
    const auto onhost_all = run_at(RpcScenario::kOnHostAll, rps);
    const auto onhost_sched = run_at(RpcScenario::kOnHostScheduler, rps);
    const auto offload_all = run_at(RpcScenario::kOffloadAll, rps);

    EXPECT_NEAR(onhost_all.achieved_rps, rps, rps * 0.05);
    EXPECT_NEAR(offload_all.achieved_rps, rps, rps * 0.05);
    EXPECT_LT(onhost_sched.achieved_rps, rps * 0.85)
        << "per-RPC MMIO header reads must cap the on-host scheduler";
}

TEST(RpcScenarios, SloAwareSteeringImprovesGetTail)
{
    // §7.3.2: with the scheduler co-located on the NIC, multi-queue
    // Shinjuku isolates GETs from RANGEs.
    RpcExperimentConfig cfg;
    cfg.scenario = RpcScenario::kOffloadAll;
    cfg.rocksdb_cores = 16;
    cfg.offered_rps = 200'000;
    cfg.warmup_ns = 30_ms;
    cfg.measure_ns = 150_ms;

    RpcExperimentConfig mq = cfg;
    mq.multi_queue = true;
    const auto single = RunRpcExperiment(cfg);
    const auto multi = RunRpcExperiment(mq);
    EXPECT_LE(multi.get_p99.ToDouble(), single.get_p99.ToDouble() * 1.1)
        << "SLO awareness must not hurt GET tails near saturation";
}

TEST(RpcScenarios, CoherentInterconnectShrinksTheGap)
{
    // §7.3.3: a UPI-attached "SmartNIC" narrows offload's penalty.
    auto saturated_p99 = [](const pcie::PcieConfig& pcie,
                            double nic_speed) {
        RpcExperimentConfig cfg;
        cfg.scenario = RpcScenario::kOffloadAll;
        cfg.rocksdb_cores = 15;
        cfg.pcie = pcie;
        cfg.nic_speed = nic_speed;
        cfg.offered_rps = 180'000;
        cfg.warmup_ns = 30_ms;
        cfg.measure_ns = 120_ms;
        return RunRpcExperiment(cfg).get_p99;
    };
    const auto pcie_p99 = saturated_p99(pcie::PcieConfig{}, 0.61);
    const auto upi_p99 =
        saturated_p99(pcie::PcieConfig::Upi(), 3.0 / 3.5);
    EXPECT_LE(upi_p99, pcie_p99)
        << "UPI + faster cores must not be worse than PCIe";
}

}  // namespace
}  // namespace wave::rpc
